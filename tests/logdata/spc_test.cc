#include "logdata/spc.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ff {
namespace logdata {
namespace {

// Baseline resembling a stable forecast: 40 ks with bounded +/- 800 s
// jitter. Bounded noise keeps an in-control process deterministically
// inside the 3-sigma limits (sigma estimate ~470 s, so UCL-center
// ~1400 s > the 800 s maximum deviation).
std::vector<double> StableBaseline(size_t n, uint64_t seed = 3) {
  util::Rng rng(seed);
  std::vector<double> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(40000.0 + rng.Uniform(-800.0, 800.0));
  }
  return out;
}

TEST(ControlChartTest, FitComputesSaneLimits) {
  auto chart = FitControlChart(StableBaseline(20));
  ASSERT_TRUE(chart.ok());
  EXPECT_NEAR(chart->center, 40000.0, 500.0);
  EXPECT_GT(chart->sigma, 100.0);
  EXPECT_LT(chart->sigma, 1500.0);
  EXPECT_NEAR(chart->ucl, chart->center + 3.0 * chart->sigma, 1e-9);
  EXPECT_NEAR(chart->lcl, chart->center - 3.0 * chart->sigma, 1e-9);
}

TEST(ControlChartTest, RequiresFiveSamples) {
  EXPECT_FALSE(FitControlChart({1, 2, 3, 4}).ok());
  EXPECT_TRUE(FitControlChart({1, 2, 3, 4, 5}).ok());
}

TEST(ControlChartTest, LclClampedAtZero) {
  // Huge variability around a small mean.
  auto chart = FitControlChart({100, 900, 50, 950, 100, 900});
  ASSERT_TRUE(chart.ok());
  EXPECT_DOUBLE_EQ(chart->lcl, 0.0);
}

TEST(ControlChartTest, ConstantBaselineDegenerate) {
  auto chart = FitControlChart(std::vector<double>(10, 40000.0));
  ASSERT_TRUE(chart.ok());
  EXPECT_DOUBLE_EQ(chart->sigma, 0.0);
  EXPECT_TRUE(chart->InControl(40000.0));
  EXPECT_FALSE(chart->InControl(40000.1));
}

TEST(SpcMonitorTest, InControlProcessHasNoLimitViolations) {
  // Run rules (4 and 2) can legitimately fire on random drift; the hard
  // 3-sigma rule must stay silent for an in-control process.
  auto chart = FitControlChart(StableBaseline(20, 3));
  ASSERT_TRUE(chart.ok());
  auto signals = Monitor(*chart, StableBaseline(30, 4));
  for (const auto& s : signals) {
    EXPECT_NE(s.rule, SpcRule::kBeyondLimits) << s.index;
  }
}

TEST(SpcMonitorTest, Rule1CatchesContentionSpike) {
  auto chart = FitControlChart(StableBaseline(20));
  ASSERT_TRUE(chart.ok());
  auto samples = StableBaseline(10, 5);
  samples[4] = 120000.0;  // Fig. 9-style contention day
  auto signals = Monitor(*chart, samples);
  ASSERT_FALSE(signals.empty());
  EXPECT_EQ(signals[0].index, 4u);
  EXPECT_EQ(signals[0].rule, SpcRule::kBeyondLimits);
  EXPECT_TRUE(signals[0].above);
}

TEST(SpcMonitorTest, Rule1CatchesLowSide) {
  auto chart = FitControlChart(StableBaseline(20));
  ASSERT_TRUE(chart.ok());
  std::vector<double> samples{40000.0, 10000.0};
  auto signals = Monitor(*chart, samples);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_FALSE(signals[0].above);
}

TEST(SpcMonitorTest, Rule4CatchesSustainedShift) {
  // A level shift too small for rule 1 but persistent: the Fig. 9 day-150
  // kind of change (center 40000, shift +1200 with sigma ~600).
  auto chart = FitControlChart(StableBaseline(25));
  ASSERT_TRUE(chart.ok());
  std::vector<double> samples(12, chart->center + 1.2 * chart->sigma);
  auto signals = Monitor(*chart, samples);
  bool run_signal = false;
  for (const auto& s : signals) {
    if (s.rule == SpcRule::kRunOfEight) {
      run_signal = true;
      EXPECT_EQ(s.index, 7u);  // the 8th consecutive sample
      EXPECT_TRUE(s.above);
    }
  }
  EXPECT_TRUE(run_signal);
}

TEST(SpcMonitorTest, Rule2TwoOfThreeBeyondTwoSigma) {
  auto chart = FitControlChart(StableBaseline(25));
  ASSERT_TRUE(chart.ok());
  double warn = chart->center + 2.5 * chart->sigma;  // between 2 and 3
  std::vector<double> samples{chart->center, warn, chart->center, warn};
  auto signals = Monitor(*chart, samples);
  bool rule2 = false;
  for (const auto& s : signals) {
    if (s.rule == SpcRule::kTwoOfThreeBeyond2Sigma) {
      rule2 = true;
      EXPECT_EQ(s.index, 3u);
    }
    EXPECT_NE(s.rule, SpcRule::kBeyondLimits);
  }
  EXPECT_TRUE(rule2);
}

TEST(SpcReportTest, EndToEnd) {
  auto series = StableBaseline(40);
  series[30] = 90000.0;
  auto report = SpcReport(series, /*baseline_n=*/20, /*first_day=*/100);
  ASSERT_TRUE(report.ok());
  // Sample 30 = day 130.
  EXPECT_NE(report->find("day 130"), std::string::npos) << *report;
  EXPECT_NE(report->find("beyond-3-sigma"), std::string::npos);
}

TEST(SpcReportTest, CleanProcessReported) {
  auto report = SpcReport(StableBaseline(40), 20, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("in control"), std::string::npos);
}

TEST(SpcReportTest, BaselineTooLargeRejected) {
  EXPECT_FALSE(SpcReport(StableBaseline(10), 10, 1).ok());
  EXPECT_FALSE(SpcReport(StableBaseline(10), 20, 1).ok());
}

TEST(SpcRuleTest, Names) {
  EXPECT_STREQ(SpcRuleName(SpcRule::kBeyondLimits), "beyond-3-sigma");
  EXPECT_STREQ(SpcRuleName(SpcRule::kRunOfEight), "run-of-8");
  EXPECT_STREQ(SpcRuleName(SpcRule::kTwoOfThreeBeyond2Sigma),
               "2-of-3-beyond-2-sigma");
}

}  // namespace
}  // namespace logdata
}  // namespace ff
