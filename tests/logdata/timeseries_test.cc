#include "logdata/timeseries.h"

#include <gtest/gtest.h>

namespace ff {
namespace logdata {
namespace {

// A Fig. 8-like series: level 40k, step to 80k at index 20, spike at 35.
std::vector<double> Fig8Like() {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) {
    double v = i < 20 ? 40000.0 : 80000.0;
    v += (i % 5) * 100.0;  // small noise
    xs.push_back(v);
  }
  xs[35] = 120000.0;  // contention spike
  return xs;
}

TEST(MovingAverageTest, SmoothsConstantSeries) {
  auto ma = MovingAverage(std::vector<double>(10, 5.0), 3);
  ASSERT_TRUE(ma.ok());
  for (double v : *ma) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  std::vector<double> xs{1, 2, 3};
  auto ma = MovingAverage(xs, 1);
  ASSERT_TRUE(ma.ok());
  EXPECT_EQ(*ma, xs);
}

TEST(MovingAverageTest, EdgesUseAvailableSamples) {
  auto ma = MovingAverage({0, 10, 20}, 3);
  ASSERT_TRUE(ma.ok());
  EXPECT_DOUBLE_EQ((*ma)[0], 5.0);   // mean of {0,10}
  EXPECT_DOUBLE_EQ((*ma)[1], 10.0);  // mean of all
  EXPECT_DOUBLE_EQ((*ma)[2], 15.0);  // mean of {10,20}
}

TEST(MovingAverageTest, Errors) {
  EXPECT_FALSE(MovingAverage({}, 3).ok());
  EXPECT_FALSE(MovingAverage({1.0}, 0).ok());
}

TEST(ChangePointTest, DetectsTimestepDoubling) {
  auto cps = DetectChangePoints(Fig8Like(), 5, 10000.0);
  ASSERT_TRUE(cps.ok());
  ASSERT_GE(cps->size(), 1u);
  const ChangePoint& cp = (*cps)[0];
  EXPECT_NEAR(static_cast<double>(cp.index), 20.0, 2.0);
  EXPECT_NEAR(cp.level_before, 40000.0, 1500.0);
  EXPECT_NEAR(cp.level_after, 80000.0, 1500.0);
  EXPECT_GT(cp.shift(), 35000.0);
}

TEST(ChangePointTest, NoFalsePositivesOnFlatNoise) {
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(50000.0 + (i % 7) * 300.0);
  auto cps = DetectChangePoints(xs, 5, 5000.0);
  ASSERT_TRUE(cps.ok());
  EXPECT_TRUE(cps->empty());
}

TEST(ChangePointTest, DetectsDecrease) {
  std::vector<double> xs(40, 60000.0);
  for (int i = 20; i < 40; ++i) xs[static_cast<size_t>(i)] = 53000.0;
  auto cps = DetectChangePoints(xs, 5, 5000.0);
  ASSERT_TRUE(cps.ok());
  ASSERT_EQ(cps->size(), 1u);
  EXPECT_LT((*cps)[0].shift(), -5000.0);
}

TEST(ChangePointTest, MultipleShiftsFig9Style) {
  // Fig. 9: -5k at 10, +26k at 20, -7k at 40 (indices shifted).
  std::vector<double> xs;
  auto level = [](int i) {
    if (i < 10) return 60000.0;
    if (i < 20) return 55000.0;
    if (i < 40) return 81000.0;
    return 74000.0;
  };
  for (int i = 0; i < 60; ++i) xs.push_back(level(i));
  auto cps = DetectChangePoints(xs, 5, 4000.0);
  ASSERT_TRUE(cps.ok());
  ASSERT_EQ(cps->size(), 3u);
  EXPECT_NEAR((*cps)[0].shift(), -5000.0, 500.0);
  EXPECT_NEAR((*cps)[1].shift(), 26000.0, 500.0);
  EXPECT_NEAR((*cps)[2].shift(), -7000.0, 500.0);
}

TEST(ChangePointTest, ShortSeriesEmpty) {
  auto cps = DetectChangePoints({1, 2, 3}, 5, 1.0);
  ASSERT_TRUE(cps.ok());
  EXPECT_TRUE(cps->empty());
}

TEST(ChangePointTest, ParameterValidation) {
  EXPECT_FALSE(DetectChangePoints({1, 2}, 1, 1.0).ok());
  EXPECT_FALSE(DetectChangePoints({1, 2}, 5, 0.0).ok());
}

TEST(SpikeTest, DetectsContentionSpike) {
  auto spikes = DetectSpikes(Fig8Like(), 7, 5.0);
  ASSERT_TRUE(spikes.ok());
  ASSERT_EQ(spikes->size(), 1u);
  EXPECT_EQ((*spikes)[0].index, 35u);
  EXPECT_NEAR((*spikes)[0].value, 120000.0, 1.0);
  EXPECT_GT((*spikes)[0].z, 5.0);
}

TEST(SpikeTest, LevelShiftIsNotASpike) {
  std::vector<double> xs(20, 40000.0);
  for (int i = 10; i < 20; ++i) xs[static_cast<size_t>(i)] = 80000.0;
  auto spikes = DetectSpikes(xs, 5, 4.0);
  ASSERT_TRUE(spikes.ok());
  EXPECT_TRUE(spikes->empty());
}

TEST(SpikeTest, TwoSpikesFig9Days172And192) {
  std::vector<double> xs(60, 80000.0);
  for (size_t i = 0; i < xs.size(); ++i) xs[i] += (i % 3) * 200.0;
  xs[32] = 108000.0;  // "day 172"
  xs[52] = 104000.0;  // "day 192"
  auto spikes = DetectSpikes(xs, 7, 5.0);
  ASSERT_TRUE(spikes.ok());
  ASSERT_EQ(spikes->size(), 2u);
  EXPECT_EQ((*spikes)[0].index, 32u);
  EXPECT_EQ((*spikes)[1].index, 52u);
}

TEST(SpikeTest, ParameterValidation) {
  EXPECT_FALSE(DetectSpikes({1, 2, 3}, 2, 3.0).ok());
  EXPECT_FALSE(DetectSpikes({1, 2, 3}, 5, 0.0).ok());
}

TEST(AnalyzeSeriesTest, ReportsShiftsAndSpikesWithDayLabels) {
  std::string report = AnalyzeSeries(Fig8Like(), /*first_day=*/1, 5,
                                     10000.0, 5.0);
  EXPECT_NE(report.find("level shift at day 21"), std::string::npos)
      << report;
  EXPECT_NE(report.find("spike at day 36"), std::string::npos) << report;
}

}  // namespace
}  // namespace logdata
}  // namespace ff
