#include "logdata/loader.h"

#include <gtest/gtest.h>

namespace ff {
namespace logdata {
namespace {

std::vector<LogRecord> SampleRecords() {
  std::vector<LogRecord> out;
  for (int day = 1; day <= 5; ++day) {
    LogRecord r;
    r.forecast = day % 2 ? "till" : "dev";
    r.region = day % 2 ? "tillamook" : "columbia";
    r.day = day;
    r.node = day % 2 ? "f1" : "f2";
    r.code_version = "v1";
    r.mesh_sides = 23400;
    r.timesteps = 5760;
    r.start_time = day * 86400.0;
    r.end_time = r.start_time + 40000.0;
    r.walltime = 40000.0 + day;
    r.status = RunStatus::kCompleted;
    out.push_back(r);
  }
  LogRecord running;
  running.forecast = "till";
  running.day = 6;
  running.node = "f1";
  running.status = RunStatus::kRunning;
  out.push_back(running);
  return out;
}

TEST(LoaderTest, LoadRunsCreatesIndexedTable) {
  statsdb::Database db;
  auto table = LoadRuns(&db, SampleRecords());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 6u);
  EXPECT_TRUE((*table)->HasIndex("forecast"));
  EXPECT_TRUE((*table)->HasIndex("code_version"));
  EXPECT_TRUE((*table)->HasIndex("node"));
}

TEST(LoaderTest, RunningRunsHaveNullCompletion) {
  statsdb::Database db;
  ASSERT_TRUE(LoadRuns(&db, SampleRecords()).ok());
  auto rs = db.Sql("SELECT walltime, end_time FROM runs WHERE day = 6");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_TRUE(rs->rows[0][0].is_null());
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

TEST(LoaderTest, LoadReplacesExistingTable) {
  statsdb::Database db;
  ASSERT_TRUE(LoadRuns(&db, SampleRecords()).ok());
  ASSERT_TRUE(LoadRuns(&db, {}).ok());
  auto rs = db.Sql("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 0);
}

TEST(LoaderTest, PaperQueriesWork) {
  statsdb::Database db;
  ASSERT_TRUE(LoadRuns(&db, SampleRecords()).ok());
  auto rs = db.Sql(
      "SELECT forecast, AVG(walltime) AS w FROM runs "
      "WHERE status = 'completed' GROUP BY forecast ORDER BY forecast");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "dev");
  EXPECT_EQ(rs->rows[1][0].string_value(), "till");
}

TEST(LoaderTest, AppendRun) {
  statsdb::Database db;
  auto table = LoadRuns(&db, {});
  ASSERT_TRUE(table.ok());
  LogRecord r;
  r.forecast = "x";
  r.day = 1;
  r.walltime = 5.0;
  r.status = RunStatus::kCompleted;
  ASSERT_TRUE(AppendRun(*table, r).ok());
  EXPECT_EQ((*table)->num_rows(), 1u);
}

TEST(LoaderTest, RowToRecordRoundTrip) {
  statsdb::Database db;
  auto records = SampleRecords();
  auto table = LoadRuns(&db, records);
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < (*table)->num_rows(); ++i) {
    auto rec = RowToRecord((*table)->schema(), (*table)->row(i));
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->forecast, records[i].forecast);
    EXPECT_EQ(rec->day, records[i].day);
    EXPECT_EQ(rec->status, records[i].status);
    if (records[i].status == RunStatus::kCompleted) {
      EXPECT_NEAR(rec->walltime, records[i].walltime, 1e-9);
    }
  }
}

TEST(LoaderTest, SchemaHasDocumentedColumns) {
  statsdb::Schema s = RunsSchema();
  for (const char* col :
       {"forecast", "region", "day", "node", "code_version", "mesh_sides",
        "timesteps", "start_time", "end_time", "walltime", "status"}) {
    EXPECT_TRUE(s.Has(col)) << col;
  }
}

}  // namespace
}  // namespace logdata
}  // namespace ff
