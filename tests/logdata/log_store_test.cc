#include "logdata/log_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ff {
namespace logdata {
namespace {

namespace fs = std::filesystem;

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ff_logs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  LogRecord SampleRecord() {
    LogRecord r;
    r.forecast = "forecast-tillamook";
    r.region = "tillamook";
    r.day = 21;
    r.node = "f1";
    r.code_version = "elcirc-5.01";
    r.mesh_sides = 23400;
    r.timesteps = 11520;
    r.start_time = 21 * 86400.0 + 3600.0;
    r.end_time = r.start_time + 80000.0;
    r.walltime = 80000.0;
    r.status = RunStatus::kCompleted;
    return r;
  }

  fs::path root_;
};

TEST_F(LogStoreTest, FormatParseRoundTrip) {
  LogRecord r = SampleRecord();
  auto parsed = ParseRunLog(FormatRunLog(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->forecast, r.forecast);
  EXPECT_EQ(parsed->region, r.region);
  EXPECT_EQ(parsed->day, r.day);
  EXPECT_EQ(parsed->node, r.node);
  EXPECT_EQ(parsed->code_version, r.code_version);
  EXPECT_EQ(parsed->mesh_sides, r.mesh_sides);
  EXPECT_EQ(parsed->timesteps, r.timesteps);
  EXPECT_NEAR(parsed->walltime, r.walltime, 1e-3);
  EXPECT_EQ(parsed->status, RunStatus::kCompleted);
}

TEST_F(LogStoreTest, ParseIgnoresNoiseAndComments) {
  std::string text =
      "# produced by run script\n"
      "forecast: dev\n"
      "day: 160\n"
      "random diagnostics without colon format --\n"
      "custom_key: ignored\n"
      "status: running\n";
  auto parsed = ParseRunLog(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->forecast, "dev");
  EXPECT_EQ(parsed->day, 160);
  EXPECT_EQ(parsed->status, RunStatus::kRunning);
}

TEST_F(LogStoreTest, ParseRequiresForecastKey) {
  EXPECT_FALSE(ParseRunLog("day: 3\n").ok());
}

TEST_F(LogStoreTest, ParseRejectsMalformedNumbers) {
  EXPECT_FALSE(ParseRunLog("forecast: x\nday: twenty\n").ok());
  EXPECT_FALSE(ParseRunLog("forecast: x\nwalltime: fast\n").ok());
  EXPECT_FALSE(ParseRunLog("forecast: x\nstatus: bogus\n").ok());
}

TEST_F(LogStoreTest, WriteCreatesPaperLayout) {
  LogStore store(root_.string());
  ASSERT_TRUE(store.Write(SampleRecord()).ok());
  EXPECT_TRUE(
      fs::exists(root_ / "forecast-tillamook" / "day021" / "run.log"));
}

TEST_F(LogStoreTest, WriteOverwritesForUpdatedStatus) {
  LogStore store(root_.string());
  LogRecord r = SampleRecord();
  r.status = RunStatus::kRunning;
  r.walltime = 0.0;
  ASSERT_TRUE(store.Write(r).ok());
  r.status = RunStatus::kCompleted;
  r.walltime = 80000.0;
  ASSERT_TRUE(store.Write(r).ok());
  Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].status, RunStatus::kCompleted);
}

TEST_F(LogStoreTest, WriteRejectsEmptyForecast) {
  LogStore store(root_.string());
  LogRecord r;
  EXPECT_TRUE(store.Write(r).IsInvalidArgument());
}

TEST_F(LogStoreTest, CrawlerFindsAllRecordsSorted) {
  LogStore store(root_.string());
  for (int day : {3, 1, 2}) {
    LogRecord r = SampleRecord();
    r.day = day;
    ASSERT_TRUE(store.Write(r).ok());
  }
  LogRecord dev = SampleRecord();
  dev.forecast = "dev";
  dev.day = 5;
  ASSERT_TRUE(store.Write(dev).ok());

  Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0].forecast, "dev");
  EXPECT_EQ((*records)[1].day, 1);
  EXPECT_EQ((*records)[2].day, 2);
  EXPECT_EQ((*records)[3].day, 3);
  EXPECT_EQ(crawler.files_seen(), 4u);
  EXPECT_EQ(crawler.files_skipped(), 0u);
}

TEST_F(LogStoreTest, CrawlerSkipsMalformedFiles) {
  LogStore store(root_.string());
  ASSERT_TRUE(store.Write(SampleRecord()).ok());
  fs::create_directories(root_ / "broken" / "day001");
  std::ofstream(root_ / "broken" / "day001" / "run.log")
      << "day: not_a_number\n";
  Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(crawler.files_seen(), 2u);
  EXPECT_EQ(crawler.files_skipped(), 1u);
}

TEST_F(LogStoreTest, CrawlerIgnoresOtherFiles) {
  LogStore store(root_.string());
  ASSERT_TRUE(store.Write(SampleRecord()).ok());
  std::ofstream(root_ / "forecast-tillamook" / "day021" / "outputs.dat")
      << "binary-ish";
  Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(LogStoreTest, CrawlerMissingRootFails) {
  Crawler crawler((root_ / "nope").string());
  EXPECT_TRUE(crawler.CrawlAll().status().IsNotFound());
}

TEST_F(LogStoreTest, StatusNamesRoundTrip) {
  EXPECT_STREQ(RunStatusName(RunStatus::kCompleted), "completed");
  EXPECT_STREQ(RunStatusName(RunStatus::kRunning), "running");
  EXPECT_STREQ(RunStatusName(RunStatus::kDropped), "dropped");
  EXPECT_STREQ(RunStatusName(RunStatus::kFailed), "failed");
}

}  // namespace
}  // namespace logdata
}  // namespace ff
