#include "fault/injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/link.h"
#include "cluster/machine.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"

namespace ff {
namespace fault {
namespace {

TEST(FaultInjectorTest, NodeCrashFlipsMachineDownThenRepairs) {
  sim::Simulator sim;
  cluster::Machine m(&sim, "n1", 1);
  FaultPlan plan;
  plan.Add({100.0, FaultKind::kNodeCrash, "n1", 50.0, 1.0});
  FaultInjector inj(&sim, std::move(plan));
  inj.RegisterMachine(&m);
  inj.Arm();

  sim.RunUntil(120.0);
  EXPECT_FALSE(m.up());
  sim.RunUntil(200.0);
  EXPECT_TRUE(m.up());
  EXPECT_EQ(inj.faults_injected(), 1u);
  EXPECT_EQ(inj.injected_by_kind()[static_cast<int>(FaultKind::kNodeCrash)],
            1u);
}

// Overlapping down windows nest: the target comes back only when the
// *last* overlapping window ends.
TEST(FaultInjectorTest, OverlappingOutagesNest) {
  sim::Simulator sim;
  cluster::Link link(&sim, "l1", 10.0);
  FaultPlan plan;
  plan.Add({100.0, FaultKind::kLinkOutage, "l1", 100.0, 1.0});  // ends 200
  plan.Add({150.0, FaultKind::kLinkOutage, "l1", 100.0, 1.0});  // ends 250
  FaultInjector inj(&sim, std::move(plan));
  inj.RegisterLink(&link);
  inj.Arm();

  sim.RunUntil(120.0);
  EXPECT_FALSE(link.up());
  sim.RunUntil(220.0);  // first repair fired, second window still open
  EXPECT_FALSE(link.up());
  sim.RunUntil(260.0);
  EXPECT_TRUE(link.up());
}

// Overlapping degrades multiply while both are active.
TEST(FaultInjectorTest, OverlappingDegradesMultiply) {
  sim::Simulator sim;
  cluster::Link link(&sim, "l1", 10.0);
  FaultPlan plan;
  plan.Add({0.0, FaultKind::kLinkDegrade, "l1", 100.0, 0.5});   // ends 100
  plan.Add({50.0, FaultKind::kLinkDegrade, "l1", 100.0, 0.5});  // ends 150
  FaultInjector inj(&sim, std::move(plan));
  inj.RegisterLink(&link);
  inj.Arm();

  sim.RunUntil(60.0);
  EXPECT_DOUBLE_EQ(link.degrade(), 0.25);
  sim.RunUntil(120.0);
  EXPECT_DOUBLE_EQ(link.degrade(), 0.5);
  sim.RunUntil(160.0);
  EXPECT_DOUBLE_EQ(link.degrade(), 1.0);
}

// Transient and corruption faults are notify-only: the injector changes
// no plant state and listeners see injection edges (no repair edge —
// these faults have no window).
TEST(FaultInjectorTest, TransientFaultsNotifyListenersOnly) {
  sim::Simulator sim;
  cluster::Machine m(&sim, "n1", 1);
  cluster::Link link(&sim, "l1", 10.0);
  FaultPlan plan;
  plan.Add({10.0, FaultKind::kTaskTransient, "n1", 0.0, 0.5});
  plan.Add({20.0, FaultKind::kTransferCorruption, "l1", 0.0, 0.3});
  FaultInjector inj(&sim, std::move(plan));
  inj.RegisterMachine(&m);
  inj.RegisterLink(&link);
  std::vector<FaultNotice> seen;
  inj.AddListener([&](const FaultNotice& n) { seen.push_back(n); });
  inj.Arm();
  sim.Run();

  EXPECT_TRUE(m.up());
  EXPECT_TRUE(link.up());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].event->kind, FaultKind::kTaskTransient);
  EXPECT_FALSE(seen[0].repair);
  EXPECT_EQ(seen[1].event->kind, FaultKind::kTransferCorruption);
  EXPECT_FALSE(seen[1].repair);
  EXPECT_EQ(inj.faults_injected(), 2u);
}

// Repair edges are broadcast (with repair = true) but not counted as
// injections.
TEST(FaultInjectorTest, RepairEdgesNotifyButDoNotCount) {
  sim::Simulator sim;
  cluster::Machine m(&sim, "n1", 1);
  FaultPlan plan;
  plan.Add({10.0, FaultKind::kNodeCrash, "n1", 5.0, 1.0});
  FaultInjector inj(&sim, std::move(plan));
  inj.RegisterMachine(&m);
  int injections = 0, repairs = 0;
  inj.AddListener([&](const FaultNotice& n) {
    (n.repair ? repairs : injections)++;
  });
  inj.Arm();
  sim.Run();
  EXPECT_EQ(injections, 1);
  EXPECT_EQ(repairs, 1);
  EXPECT_EQ(inj.faults_injected(), 1u);
}

}  // namespace
}  // namespace fault
}  // namespace ff
