#include "fault/retry.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ff {
namespace fault {
namespace {

TEST(RetryPolicyTest, AllowsRetryCountsAttemptsIncludingTheFirst) {
  RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_TRUE(p.AllowsRetry(1));
  EXPECT_TRUE(p.AllowsRetry(2));
  EXPECT_FALSE(p.AllowsRetry(3));
  p.max_attempts = 1;  // never retry
  EXPECT_FALSE(p.AllowsRetry(1));
}

TEST(RetryPolicyTest, JitterlessDelayIsAnExponentialLadderWithCap) {
  RetryPolicy p;
  p.base_backoff = 60.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff = 200.0;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.NextDelay(1, nullptr), 60.0);
  EXPECT_DOUBLE_EQ(p.NextDelay(2, nullptr), 120.0);
  EXPECT_DOUBLE_EQ(p.NextDelay(3, nullptr), 200.0);  // capped, not 240
  EXPECT_DOUBLE_EQ(p.NextDelay(4, nullptr), 200.0);
}

TEST(RetryPolicyTest, JitterStaysInsideTheBandAndIsDeterministic) {
  RetryPolicy p;
  p.base_backoff = 100.0;
  p.backoff_multiplier = 1.0;
  p.jitter = 0.25;
  util::Rng rng(11);
  for (int i = 1; i <= 50; ++i) {
    double d = p.NextDelay(i, &rng);
    EXPECT_GE(d, 75.0);
    EXPECT_LE(d, 125.0);
  }
  util::Rng a(11), b(11);
  EXPECT_DOUBLE_EQ(p.NextDelay(1, &a), p.NextDelay(1, &b));
}

TEST(RetryPolicyTest, LabelIsCompactAndNamesNoRetry) {
  RetryPolicy none;
  none.max_attempts = 1;
  EXPECT_EQ(RetryPolicyLabel(none), "no-retry");
  RetryPolicy p;
  p.max_attempts = 6;
  p.base_backoff = 120.0;
  p.backoff_multiplier = 2.0;
  EXPECT_EQ(RetryPolicyLabel(p), "6x@120s*2");
}

}  // namespace
}  // namespace fault
}  // namespace ff
