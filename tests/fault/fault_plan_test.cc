#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ff {
namespace fault {
namespace {

bool SameEvent(const FaultEvent& a, const FaultEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.target == b.target &&
         a.duration == b.duration && a.magnitude == b.magnitude;
}

ChaosConfig AllKindsConfig() {
  ChaosConfig cfg;
  cfg.horizon = 86400.0;
  cfg.node_crash_rate = 1.0;
  cfg.link_outage_rate = 2.0;
  cfg.link_degrade_rate = 1.5;
  cfg.task_transient_rate = 3.0;
  cfg.transfer_corrupt_rate = 2.0;
  return cfg;
}

TEST(FaultPlanTest, ScriptedEventsSortByTimeKindTarget) {
  FaultPlan plan;
  plan.Add({300.0, FaultKind::kLinkOutage, "l1", 60.0, 1.0});
  plan.Add({100.0, FaultKind::kNodeCrash, "n2", 10.0, 1.0});
  plan.Add({100.0, FaultKind::kNodeCrash, "n1", 10.0, 1.0});
  plan.Add({100.0, FaultKind::kLinkOutage, "l1", 10.0, 1.0});
  const auto& ev = plan.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].target, "n1");  // (100, crash, n1)
  EXPECT_EQ(ev[1].target, "n2");  // (100, crash, n2)
  EXPECT_EQ(ev[2].kind, FaultKind::kLinkOutage);  // (100, outage, l1)
  EXPECT_EQ(ev[3].time, 300.0);
}

TEST(FaultPlanTest, GenerateIsAPureFunctionOfItsInputs) {
  ChaosConfig cfg = AllKindsConfig();
  std::vector<std::string> machines = {"n1", "n2"};
  std::vector<std::string> links = {"n1->server", "n2->server"};
  util::Rng rng(7);
  FaultPlan a = FaultPlan::Generate(cfg, machines, links, rng);
  FaultPlan b = FaultPlan::Generate(cfg, machines, links, rng);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(SameEvent(a.events()[i], b.events()[i])) << "event " << i;
  }
}

TEST(FaultPlanTest, ZeroIntensityDrawsNothing) {
  ChaosConfig cfg = AllKindsConfig();
  cfg.intensity = 0.0;
  FaultPlan plan = FaultPlan::Generate(cfg, {"n1"}, {"n1->server"},
                                       util::Rng(7));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, ZeroRatesDrawNothing) {
  ChaosConfig cfg;  // all rates default to 0
  FaultPlan plan = FaultPlan::Generate(cfg, {"n1"}, {"n1->server"},
                                       util::Rng(7));
  EXPECT_TRUE(plan.empty());
}

// The per-(kind, target) substream discipline: enabling another fault
// class, or adding a target, must not perturb the events an existing
// (kind, target) pair generates.
TEST(FaultPlanTest, SubstreamsAreDisjointAcrossKindsAndTargets) {
  ChaosConfig crash_only;
  crash_only.node_crash_rate = 1.0;
  std::vector<std::string> machines = {"n1", "n2"};
  std::vector<std::string> links = {"n1->server", "n2->server"};
  util::Rng rng(42);
  FaultPlan base = FaultPlan::Generate(crash_only, machines, links, rng);
  ASSERT_FALSE(base.empty());

  ChaosConfig all = AllKindsConfig();
  all.node_crash_rate = crash_only.node_crash_rate;
  FaultPlan wide = FaultPlan::Generate(all, machines, links, rng);

  FaultPlan more_targets = FaultPlan::Generate(
      crash_only, {"n1", "n2", "n3"}, links, rng);

  std::vector<FaultEvent> wide_crashes;
  for (const auto& ev : wide.events()) {
    if (ev.kind == FaultKind::kNodeCrash) wide_crashes.push_back(ev);
  }
  std::vector<FaultEvent> subset_crashes;
  for (const auto& ev : more_targets.events()) {
    if (ev.target != "n3") subset_crashes.push_back(ev);
  }
  ASSERT_EQ(wide_crashes.size(), base.size());
  ASSERT_EQ(subset_crashes.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(SameEvent(base.events()[i], wide_crashes[i])) << i;
    EXPECT_TRUE(SameEvent(base.events()[i], subset_crashes[i])) << i;
  }
}

TEST(FaultPlanTest, EventsStayInsideHorizon) {
  ChaosConfig cfg = AllKindsConfig();
  cfg.horizon = 3600.0;
  FaultPlan plan = FaultPlan::Generate(cfg, {"n1", "n2"},
                                       {"n1->server", "n2->server"},
                                       util::Rng(3));
  for (const auto& ev : plan.events()) {
    EXPECT_GE(ev.time, 0.0);
    EXPECT_LT(ev.time, cfg.horizon);
  }
}

TEST(FaultPlanTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNodeCrash), "node_crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkOutage), "link_outage");
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkDegrade), "link_degrade");
  EXPECT_STREQ(FaultKindName(FaultKind::kTaskTransient), "task_transient");
  EXPECT_STREQ(FaultKindName(FaultKind::kTransferCorruption),
               "transfer_corruption");
}

}  // namespace
}  // namespace fault
}  // namespace ff
