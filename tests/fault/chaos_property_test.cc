// Determinism-under-faults properties (the PR's acceptance gate):
//  1. The same chaos sweep on 1, 4 and 16 workers yields byte-identical
//     merged artifacts — run records, trace JSON, metrics CSV.
//  2. Fault timelines pair across policies (common random numbers): at a
//     given intensity every policy faces the same faults.
//  3. Fault plumbing is free when unused: a run configured with a retry
//     policy and an RNG but no injector behaves byte-identically to a
//     fault-unaware run, so the no-fault baselines (fig6/fig7/t3) are
//     untouched by this subsystem.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "dataflow/forecast_run.h"
#include "fault/chaos.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/fleet.h"

namespace ff {
namespace fault {
namespace {

ChaosSweepConfig SmallConfig() {
  ChaosSweepConfig cfg;
  cfg.spec = workload::MakeElcircEstuaryForecast();
  cfg.num_nodes = 2;
  cfg.arch = dataflow::Architecture::kProductsAtNode;
  cfg.horizon = 86400.0;
  cfg.base_seed = 977;
  cfg.replicas_per_cell = 2;
  cfg.intensities = {0.0, 1.0};
  cfg.faults.node_crash_rate = 0.5;
  cfg.faults.node_repair_median = 1800.0;
  cfg.faults.link_outage_rate = 2.0;
  cfg.faults.link_outage_median = 600.0;
  cfg.faults.link_degrade_rate = 2.0;
  cfg.faults.task_transient_rate = 4.0;
  cfg.faults.task_kill_probability = 0.5;
  cfg.faults.transfer_corrupt_rate = 2.0;
  ChaosPolicy none;
  none.retry.max_attempts = 1;
  ChaosPolicy retry;
  retry.retry.max_attempts = 6;
  retry.retry.base_backoff = 120.0;
  retry.retry.transfer_timeout = 1800.0;
  cfg.policies = {none, retry};
  return cfg;
}

std::string RunsDigest(const ChaosSweepResult& r) {
  std::string out;
  for (const auto& rec : r.runs) {
    out += util::StrFormat(
        "%lld,%lld,%.4f,%s,%s,%s,%d,%d,%.6f,%lld,%.6f,%lld\n",
        static_cast<long long>(rec.replica),
        static_cast<long long>(rec.cell), rec.intensity,
        rec.policy.c_str(), rec.forecast.c_str(), rec.node.c_str(),
        rec.delivered ? 1 : 0, rec.abandoned ? 1 : 0,
        rec.delivery_seconds, static_cast<long long>(rec.retries),
        rec.wasted_cpu_seconds,
        static_cast<long long>(rec.faults_injected));
  }
  return out;
}

TEST(ChaosDeterminismTest, WorkerCountDoesNotChangeMergedArtifacts) {
  std::vector<std::string> runs_digests, traces, metrics;
  for (size_t workers : {1, 4, 16}) {
    ChaosSweepConfig cfg = SmallConfig();
    cfg.num_workers = workers;
    ChaosSweepResult result = RunChaosSweep(cfg);
    runs_digests.push_back(RunsDigest(result));
    traces.push_back(
        obs::ChromeTraceJson(*result.outputs.merged_trace,
                             result.outputs.merged_metrics.get()));
    std::ostringstream csv;
    obs::WriteMetricSamplesCsv(*result.outputs.merged_metrics, &csv);
    metrics.push_back(csv.str());
  }
  ASSERT_FALSE(runs_digests[0].empty());
  for (size_t i = 1; i < runs_digests.size(); ++i) {
    EXPECT_EQ(runs_digests[i], runs_digests[0]);
    EXPECT_EQ(traces[i], traces[0]);
    EXPECT_EQ(metrics[i], metrics[0]);
  }
}

TEST(ChaosDeterminismTest, FaultTimelinesPairAcrossPolicies) {
  ChaosSweepConfig cfg = SmallConfig();
  cfg.num_workers = 1;
  ChaosSweepResult result = RunChaosSweep(cfg);
  // Key: (intensity, replica-within-cell) -> faults_injected must agree
  // for every policy (common random numbers).
  std::map<std::pair<double, int64_t>, int64_t> faults;
  for (const auto& rec : result.runs) {
    int64_t in_cell = rec.replica % cfg.replicas_per_cell;
    auto key = std::make_pair(rec.intensity, in_cell);
    auto it = faults.find(key);
    if (it == faults.end()) {
      faults[key] = rec.faults_injected;
    } else {
      EXPECT_EQ(it->second, rec.faults_injected)
          << "policy " << rec.policy << " sees a different fault "
          << "timeline at intensity " << rec.intensity;
    }
  }
  // The intensity-1 cells must actually inject something.
  EXPECT_GT(faults.at({1.0, 0}), 0);
}

TEST(ChaosDeterminismTest, ZeroIntensityCellsInjectNothingAndDeliver) {
  ChaosSweepConfig cfg = SmallConfig();
  cfg.num_workers = 1;
  ChaosSweepResult result = RunChaosSweep(cfg);
  for (const auto& rec : result.runs) {
    if (rec.intensity != 0.0) continue;
    EXPECT_EQ(rec.faults_injected, 0);
    EXPECT_TRUE(rec.delivered);
    EXPECT_EQ(rec.retries, 0);
    EXPECT_EQ(rec.wasted_cpu_seconds, 0.0);
  }
}

// The satellite contract: fault plumbing must not perturb the no-fault
// baseline. A run with a retry policy + RNG wired but no injector and no
// transfer watchdog schedules no extra events and draws nothing.
TEST(ChaosDeterminismTest, FaultUnawareAndFaultIdleRunsAreIdentical) {
  auto run_once = [](bool wire_fault_config) {
    sim::Simulator sim;
    cluster::Cluster plant(&sim, 2, 2.6 / 2.8, 1.0e9);
    cluster::NodeSpec spec;
    spec.name = "n1";
    EXPECT_TRUE(plant.AddNode(spec).ok());
    util::Rng rng(5);
    dataflow::RunConfig rc;
    rc.arch = dataflow::Architecture::kProductsAtNode;
    rc.record_series = false;
    if (wire_fault_config) {
      rc.retry.max_attempts = 6;
      rc.retry.base_backoff = 120.0;
      rc.retry.transfer_timeout = 0.0;  // watchdog off
      rc.rng = &rng;
      rc.injector = nullptr;
    }
    dataflow::ForecastRun run(&sim, *plant.node("n1"), *plant.uplink("n1"),
                              plant.server(), nullptr,
                              workload::MakeElcircEstuaryForecast(), rc);
    run.Start();
    sim.Run();
    EXPECT_TRUE(run.done());
    return std::make_pair(run.finish_time(), run.bytes_transferred());
  };
  auto base = run_once(false);
  auto idle = run_once(true);
  EXPECT_DOUBLE_EQ(base.first, idle.first);
  EXPECT_DOUBLE_EQ(base.second, idle.second);
}

}  // namespace
}  // namespace fault
}  // namespace ff
