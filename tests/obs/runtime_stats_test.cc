#include "obs/runtime_stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"

namespace ff {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// RuntimeHistogram

TEST(RuntimeHistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(RuntimeHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(RuntimeHistogram::BucketIndex(1024), 11u);
  // Values beyond the covered range clamp into the last bucket.
  EXPECT_EQ(RuntimeHistogram::BucketIndex(~0ull),
            RuntimeHistogram::kBuckets - 1);
}

TEST(RuntimeHistogramTest, BucketLowIsInclusiveLowerBound) {
  EXPECT_EQ(RuntimeHistogram::BucketLowNs(0), 0u);
  EXPECT_EQ(RuntimeHistogram::BucketLowNs(1), 1u);
  EXPECT_EQ(RuntimeHistogram::BucketLowNs(2), 2u);
  EXPECT_EQ(RuntimeHistogram::BucketLowNs(3), 4u);
  for (size_t b = 1; b < RuntimeHistogram::kBuckets; ++b) {
    EXPECT_EQ(RuntimeHistogram::BucketIndex(RuntimeHistogram::BucketLowNs(b)),
              b)
        << "bucket " << b;
  }
}

TEST(RuntimeHistogramTest, RecordAndSnapshot) {
  RuntimeHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(1000);
  h.Record(1000);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.SumNs(), 2001u);
  RuntimeHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum_ns, 2001u);
  EXPECT_DOUBLE_EQ(s.MeanNs(), 2001.0 / 4.0);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[10], 2u);  // 1000 has bit_width 10
}

TEST(RuntimeHistogramTest, QuantilesAreMonotoneAndBracketed) {
  RuntimeHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  RuntimeHistogram::Snapshot s = h.Snap();
  double p50 = s.QuantileNs(0.50);
  double p95 = s.QuantileNs(0.95);
  double p99 = s.QuantileNs(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log2 buckets: each estimate is right to within a factor of two.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_EQ(RuntimeHistogram::Snapshot{}.QuantileNs(0.5), 0.0);
}

TEST(RuntimeHistogramTest, SinceSubtractsCounters) {
  RuntimeHistogram h;
  h.Record(10);
  h.Record(20);
  RuntimeHistogram::Snapshot before = h.Snap();
  h.Record(30);
  RuntimeHistogram::Snapshot delta = h.Snap().Since(before);
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum_ns, 30u);
  EXPECT_EQ(delta.buckets[5], 1u);  // 30 has bit_width 5
}

TEST(RuntimeHistogramTest, MergeFromSumsBuckets) {
  RuntimeHistogram a, b;
  a.Record(10);
  b.Record(10);
  b.Record(1000);
  RuntimeHistogram::Snapshot s = a.Snap();
  s.MergeFrom(b.Snap());
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum_ns, 1020u);
  EXPECT_EQ(s.buckets[4], 2u);
  EXPECT_EQ(s.buckets[10], 1u);
}

// The profiler's core concurrency claim: Record() from many threads at
// once loses no increments and tears no counters. Run under TSan in CI.
TEST(RuntimeHistogramTest, ConcurrentWritersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  RuntimeHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  RuntimeHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// Concurrent snapshots while writers are live must be internally usable
// (no torn vector state, monotone counts) — readers use relaxed loads.
TEST(RuntimeHistogramTest, SnapshotDuringWritesIsMonotone) {
  RuntimeHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) h.Record(42);
  });
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t now = h.Snap().count;
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---------------------------------------------------------------------------
// Pool runtime profile + the steals() shim.

TEST(PoolRuntimeProfileTest, CountsTasksAndMatchesStealsShim) {
  parallel::ThreadPool pool(4);
  std::atomic<uint64_t> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  PoolRuntimeProfile p = pool.RuntimeProfile();
  EXPECT_EQ(ran.load(), 200u);
  EXPECT_EQ(p.num_threads, 4u);
  EXPECT_EQ(p.workers.size(), 4u);
  EXPECT_EQ(p.TotalTasks(), 200u);
  // The legacy accessor is a shim over the same per-worker counters —
  // and stays live even with FF_PROFILING=OFF.
  EXPECT_EQ(pool.steals(), p.TotalSteals());
  if constexpr (kProfilingCompiledIn) {
    EXPECT_GT(p.lifetime_ns, 0u);
    EXPECT_GT(p.TotalRunNs(), 0u);
    EXPECT_EQ(p.MergedTaskNs().count, 200u);
    EXPECT_GT(p.Occupancy(), 0.0);
    EXPECT_LE(p.Occupancy(), 1.0);
  } else {
    EXPECT_EQ(p.TotalRunNs(), 0u);
    EXPECT_EQ(p.MergedTaskNs().count, 0u);
  }
}

TEST(PoolRuntimeProfileTest, SinceWindowsTheCounters) {
  parallel::ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) pool.Submit([] {});
  pool.Wait();
  PoolRuntimeProfile before = pool.RuntimeProfile();
  for (int i = 0; i < 30; ++i) pool.Submit([] {});
  pool.Wait();
  PoolRuntimeProfile window = pool.RuntimeProfile().Since(before);
  EXPECT_EQ(window.num_threads, 2u);
  EXPECT_EQ(window.TotalTasks(), 30u);
  if constexpr (kProfilingCompiledIn) {
    EXPECT_EQ(window.MergedTaskNs().count, 30u);
  }
}

TEST(PoolRuntimeProfileTest, EmptyPoolProfileIsZero) {
  PoolRuntimeProfile p;
  EXPECT_EQ(p.TotalTasks(), 0u);
  EXPECT_EQ(p.TotalSteals(), 0u);
  EXPECT_DOUBLE_EQ(p.Occupancy(), 0.0);
}

// ---------------------------------------------------------------------------
// OperatorProfile / QueryProfile.

TEST(OperatorProfileTest, SelfNsClampsWhenChildrenExceedWall) {
  // Under a parallel unit, child wall_ns is CPU time summed across
  // morsels and can exceed the coordinator's wall clock.
  OperatorProfile op;
  op.wall_ns = 100;
  op.AddChild()->wall_ns = 250;
  EXPECT_EQ(op.SelfNs(), 0u);
  op.wall_ns = 400;
  EXPECT_EQ(op.SelfNs(), 150u);
}

TEST(OperatorProfileTest, MergeFromFoldsMorselProfiles) {
  OperatorProfile merged;
  OperatorProfile m1, m2;
  m1.name = "Scan(runs)";
  m1.is_scan = true;
  m1.rows_out = 10;
  m1.batches = 1;
  m1.wall_ns = 100;
  m1.chunks_scanned = 2;
  m2.name = "Scan(runs)";
  m2.is_scan = true;
  m2.rows_out = 30;
  m2.batches = 2;
  m2.wall_ns = 300;
  m2.chunks_scanned = 3;
  merged.MergeFrom(m1);
  merged.MergeFrom(m2);
  EXPECT_EQ(merged.name, "Scan(runs)");
  EXPECT_TRUE(merged.is_scan);
  EXPECT_EQ(merged.rows_out, 40u);
  EXPECT_EQ(merged.batches, 3u);
  EXPECT_EQ(merged.wall_ns, 400u);
  EXPECT_EQ(merged.chunks_scanned, 5u);
}

TEST(QueryProfileTest, RenderShowsEngineAndTree) {
  QueryProfile prof;
  prof.engine = "parallel";
  prof.total_ns = 1500000;  // 1.5ms
  prof.root = std::make_unique<OperatorProfile>();
  prof.root->name = "Limit(5)";
  prof.root->rows_out = 5;
  prof.root->batches = 1;
  OperatorProfile* scan = prof.root->AddChild();
  scan->name = "Scan(runs)";
  scan->is_scan = true;
  scan->rows_out = 100;
  scan->batches = 1;
  scan->chunks_scanned = 1;
  scan->chunks_pruned = 5;
  std::vector<std::string> lines = prof.RenderLines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("engine=parallel"), 0u);
  EXPECT_EQ(lines[1].find("  Limit(5)"), 0u);
  EXPECT_EQ(lines[2].find("    Scan(runs)"), 0u);
  if constexpr (kProfilingCompiledIn) {
    EXPECT_NE(lines[0].find("total=1.500ms"), std::string::npos);
    EXPECT_NE(lines[1].find("rows=5"), std::string::npos);
    EXPECT_NE(lines[2].find("chunks=1 pruned=5"), std::string::npos);
  } else {
    EXPECT_NE(lines[0].find("profiling compiled out"), std::string::npos);
    EXPECT_EQ(lines[2].find("pruned"), std::string::npos);
  }
}

TEST(FormatNsAsMsTest, FixedThreeDecimalMs) {
  EXPECT_EQ(FormatNsAsMs(0), "0.000ms");
  EXPECT_EQ(FormatNsAsMs(1234567), "1.235ms");
  EXPECT_EQ(FormatNsAsMs(2500000000ull), "2500.000ms");
}

TEST(RuntimeClockTest, MonotoneNonDecreasing) {
  int64_t a = RuntimeNowNs();
  int64_t b = RuntimeNowNs();
  EXPECT_GE(b, a);
  if constexpr (!kProfilingCompiledIn) {
    SUCCEED() << "profiling compiled out; clock still required to exist";
  }
}

}  // namespace
}  // namespace obs
}  // namespace ff
