#include "obs/statsdb_bridge.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "statsdb/database.h"

namespace ff {
namespace obs {
namespace {

class StatsdbBridgeTest : public ::testing::Test {
 protected:
  statsdb::ResultSet Sql(const std::string& q) {
    auto rs = db_.Sql(q);
    EXPECT_TRUE(rs.ok()) << q << " -> " << rs.status();
    return rs.ok() ? *rs : statsdb::ResultSet{};
  }

  statsdb::Database db_;
};

TEST_F(StatsdbBridgeTest, LoadSpansAnswersP95PerTrack) {
  TraceRecorder tr;
  StrId name = tr.Intern("sim");
  // 20 task spans on f1 with durations 1..20s, and one transfer span that
  // the category filter must exclude.
  for (int i = 1; i <= 20; ++i) {
    SpanId s = tr.BeginSpan(100.0 * i, SpanCategory::kTask, name,
                            tr.Intern("f1"));
    tr.EndSpan(s, 100.0 * i + i);
  }
  SpanId xfer =
      tr.BeginSpan(0.0, SpanCategory::kTransfer, "rsync", "uplink");
  tr.EndSpan(xfer, 999.0);

  ASSERT_TRUE(LoadSpans(tr, &db_).ok());
  auto rs = Sql(
      "SELECT track, COUNT(*) AS n, P95(duration_s) AS p95_s FROM spans "
      "WHERE category = 'task' GROUP BY track ORDER BY track");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "f1");
  EXPECT_EQ(rs.rows[0][1].int64_value(), 20);
  // Percentile with linear interpolation: 0.95*(20-1) = 18.05 -> 19.05.
  EXPECT_NEAR(*rs.rows[0][2].AsDouble(), 19.05, 1e-9);
}

TEST_F(StatsdbBridgeTest, LoadSpansReplacesExistingTable) {
  TraceRecorder tr;
  SpanId s = tr.BeginSpan(0.0, SpanCategory::kRun, "r", "runs");
  tr.EndSpan(s, 1.0);
  ASSERT_TRUE(LoadSpans(tr, &db_).ok());
  ASSERT_TRUE(LoadSpans(tr, &db_).ok());  // reload must not duplicate
  auto rs = Sql("SELECT COUNT(*) AS n FROM spans");
  EXPECT_EQ(rs.rows[0][0].int64_value(), 1);
}

TEST_F(StatsdbBridgeTest, LoadInstantsAndMetricSamples) {
  TraceRecorder tr;
  tr.Instant(50.0, SpanCategory::kSpc, "spc.signal:tide", "spc");
  ASSERT_TRUE(LoadInstants(tr, &db_).ok());
  auto events = Sql("SELECT name FROM trace_events WHERE category = 'spc'");
  ASSERT_EQ(events.rows.size(), 1u);
  EXPECT_EQ(events.rows[0][0].string_value(), "spc.signal:tide");

  MetricsRegistry m;
  m.counter("runs")->Add(3);
  m.SampleAll(60.0);
  m.SampleAll(120.0);
  ASSERT_TRUE(LoadMetricSamples(m, &db_).ok());
  auto samples = Sql(
      "SELECT COUNT(*) AS n, MAX(time_s) AS t FROM metric_samples "
      "WHERE metric = 'runs'");
  EXPECT_EQ(samples.rows[0][0].int64_value(), 2);
  EXPECT_DOUBLE_EQ(*samples.rows[0][1].AsDouble(), 120.0);
}

TEST_F(StatsdbBridgeTest, P95OfEmptyGroupIsNull) {
  ASSERT_TRUE(db_.Sql("CREATE TABLE t (x DOUBLE)").ok());
  ASSERT_TRUE(db_.Sql("INSERT INTO t VALUES (NULL)").ok());
  auto rs = Sql("SELECT P95(x) AS p FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

}  // namespace
}  // namespace obs
}  // namespace ff
