#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace ff {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndAddWrapModulo64) {
  Counter c;
  c.Increment();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  c.Add(~uint64_t{0});  // +2^64-1 == -1 mod 2^64
  EXPECT_EQ(c.value(), 4u);
}

TEST(HistogramTest, BucketingAndTotals) {
  Histogram h({10.0, 20.0, 30.0});
  for (double x : {5.0, 10.0, 15.0, 25.0, 99.0}) h.Observe(x);
  // Bounds are inclusive upper edges; the 4th bucket is overflow.
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 154.0);
}

TEST(HistogramTest, QuantileInterpolatesInsideBucket) {
  Histogram h({100.0, 200.0});
  for (int i = 0; i < 10; ++i) h.Observe(50.0);   // bucket [0, 100]
  for (int i = 0; i < 10; ++i) h.Observe(150.0);  // bucket (100, 200]
  // rank = q*(n-1)+1; within-bucket linear interpolation.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 105.0);  // rank 10.5 -> 0.05 into b1
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 181.0);  // rank 18.1 -> 0.81 into b1
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Quantile(0.5), 0.0);  // empty
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstruments) {
  MetricsRegistry m;
  Counter* c = m.counter("a");
  c->Increment();
  EXPECT_EQ(m.counter("a"), c);
  EXPECT_EQ(m.FindCounter("a")->value(), 1u);
  EXPECT_EQ(m.FindCounter("missing"), nullptr);
  m.gauge("g")->Set(2.5);
  EXPECT_DOUBLE_EQ(m.FindGauge("g")->value(), 2.5);
}

TEST(MetricsRegistryTest, SampleAllSnapshotsInNameOrder) {
  MetricsRegistry m;
  m.counter("z.count")->Add(7);
  m.gauge("a.depth")->Set(3.0);
  m.histogram("h", {10.0})->Observe(4.0);
  m.SampleAll(100.0);
  // Deterministic order: counters, gauges, histograms each in name order.
  std::vector<std::string> names;
  for (const auto& s : m.samples()) names.push_back(m.metric_name(s.metric));
  EXPECT_EQ(names, (std::vector<std::string>{"z.count", "a.depth", "h.count",
                                             "h.sum"}));
  for (const auto& s : m.samples()) EXPECT_DOUBLE_EQ(s.time, 100.0);
}

TEST(MetricsRegistryTest, RecordAndSeriesValues) {
  MetricsRegistry m;
  m.Record(1.0, "walltime.tide", 100.0);
  m.Record(2.0, "walltime.tide", 110.0);
  m.Record(2.0, "walltime.other", 55.0);
  EXPECT_EQ(m.SeriesValues("walltime.tide"),
            (std::vector<double>{100.0, 110.0}));
  ASSERT_EQ(m.SeriesSamples("walltime.other").size(), 1u);
  EXPECT_DOUBLE_EQ(m.SeriesSamples("walltime.other")[0].value, 55.0);
  EXPECT_TRUE(m.SeriesValues("missing").empty());
}

TEST(CachedCounterTest, RevalidatesOnEpochChange) {
  ASSERT_TRUE(kTracingCompiledIn);
  CachedCounter cache;
  MetricsRegistry m1;
  {
    ScopedObservability scope(nullptr, &m1);
    cache.Get(&m1, "hits")->Increment();
    EXPECT_EQ(cache.Get(&m1, "hits"), m1.FindCounter("hits"));
  }
  EXPECT_EQ(m1.FindCounter("hits")->value(), 1u);
  MetricsRegistry m2;
  {
    // New install epoch: the cache must resolve against m2, not keep the
    // stale m1 pointer (which may even be a reused address in real use).
    ScopedObservability scope(nullptr, &m2);
    cache.Get(&m2, "hits")->Increment();
  }
  EXPECT_EQ(m1.FindCounter("hits")->value(), 1u);
  ASSERT_NE(m2.FindCounter("hits"), nullptr);
  EXPECT_EQ(m2.FindCounter("hits")->value(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace ff
