#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"

namespace ff {
namespace obs {
namespace {

TEST(TraceRecorderTest, InternIsStableAndDeduplicates) {
  TraceRecorder tr;
  StrId a = tr.Intern("alpha");
  StrId b = tr.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.Intern("alpha"), a);
  EXPECT_EQ(tr.str(a), "alpha");
  EXPECT_EQ(tr.str(0), "");  // id 0 is reserved for the empty string
}

TEST(TraceRecorderTest, SpanLifecycleAndCounts) {
  TraceRecorder tr;
  SpanId run = tr.BeginSpan(10.0, SpanCategory::kRun, "r", "runs");
  SpanId task = tr.BeginSpan(11.0, SpanCategory::kTask, "t", "f1", run);
  EXPECT_EQ(run, 1u);
  EXPECT_EQ(task, 2u);
  EXPECT_EQ(tr.OpenSpans(), 2u);
  tr.EndSpan(task, 15.0);
  tr.EndSpan(run, 20.0);
  EXPECT_EQ(tr.OpenSpans(), 0u);
  EXPECT_EQ(tr.CountSpans(SpanCategory::kRun), 1u);
  EXPECT_EQ(tr.CountSpans(SpanCategory::kTask), 1u);
  EXPECT_EQ(tr.CountSpans(SpanCategory::kTransfer), 0u);
  EXPECT_DOUBLE_EQ(tr.spans()[1].start, 11.0);
  EXPECT_DOUBLE_EQ(tr.spans()[1].end, 15.0);
  EXPECT_EQ(tr.spans()[1].parent, run);
}

TEST(TraceRecorderTest, EndSpanIsIdempotentAndIgnoresNull) {
  TraceRecorder tr;
  SpanId s = tr.BeginSpan(1.0, SpanCategory::kTask, "t", "x");
  tr.EndSpan(s, 2.0);
  tr.EndSpan(s, 99.0);  // already closed; keeps the first end time
  EXPECT_DOUBLE_EQ(tr.spans()[0].end, 2.0);
  tr.EndSpan(0, 5.0);  // no-op
  EXPECT_EQ(tr.spans().size(), 1u);
}

TEST(TraceRecorderTest, InlineArgAndRemovedFlag) {
  TraceRecorder tr;
  StrId key = tr.Intern("work");
  SpanId a = tr.BeginSpan(0.0, SpanCategory::kTask, tr.Intern("t"),
                          tr.Intern("x"), 0, key, 42.5);
  SpanId b = tr.BeginSpan(0.0, SpanCategory::kTask, "t", "x");
  tr.EndSpan(a, 1.0);
  tr.EndSpanRemoved(b, 1.0);
  EXPECT_EQ(tr.spans()[0].arg_key, key);
  EXPECT_DOUBLE_EQ(tr.spans()[0].arg_value, 42.5);
  EXPECT_EQ(tr.spans()[0].flags, 0);
  EXPECT_EQ(tr.spans()[1].arg_key, 0u);
  EXPECT_EQ(tr.spans()[1].flags, kSpanFlagRemoved);
}

TEST(TraceRecorderTest, SideTableArgs) {
  TraceRecorder tr;
  SpanId s = tr.BeginSpan(0.0, SpanCategory::kPlan, "p", "planner");
  tr.SpanArg(s, "makespan", 123.0);
  tr.SpanArg(s, "node", std::string_view("f1"));
  ASSERT_EQ(tr.num_args().size(), 1u);
  ASSERT_EQ(tr.str_args().size(), 1u);
  EXPECT_EQ(tr.num_args()[0].span, s);
  EXPECT_EQ(tr.str(tr.num_args()[0].key), "makespan");
  EXPECT_DOUBLE_EQ(tr.num_args()[0].value, 123.0);
  EXPECT_EQ(tr.str(tr.str_args()[0].value), "f1");
}

TEST(ScopedObservabilityTest, InstallRestoreAndEpochBump) {
  ASSERT_TRUE(kTracingCompiledIn);
  EXPECT_EQ(ActiveTrace(), nullptr);
  uint64_t e0 = ObsEpoch();
  {
    TraceRecorder tr;
    MetricsRegistry m;
    ScopedObservability scope(&tr, &m);
    EXPECT_EQ(ActiveTrace(), &tr);
    EXPECT_EQ(ActiveMetrics(), &m);
    EXPECT_NE(ObsEpoch(), e0);
    {
      TraceRecorder inner;
      ScopedObservability nested(&inner, nullptr);
      EXPECT_EQ(ActiveTrace(), &inner);
      EXPECT_EQ(ActiveMetrics(), nullptr);
    }
    EXPECT_EQ(ActiveTrace(), &tr);  // restored
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(ActiveMetrics(), nullptr);
  EXPECT_NE(ObsEpoch(), e0);  // every install/uninstall bumps
}

TEST(SpanRaiiTest, NoopWithoutRecorderRecordsWithOne) {
  { Span s(SpanCategory::kPlan, "p", "planner"); }  // no recorder: no-op
  TraceRecorder tr;
  tr.SetClock([] { return 42.0; });
  {
    ScopedObservability scope(&tr, nullptr);
    Span s(SpanCategory::kPlan, "plan_day", "planner");
    s.Arg("fleet", 6.0);
  }
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(tr.spans()[0].start, 42.0);
  EXPECT_DOUBLE_EQ(tr.spans()[0].end, 42.0);
  EXPECT_EQ(tr.num_args().size(), 1u);
}

// The exporter's byte format is part of the contract: fixed `%.3f`
// microsecond timestamps and `%.6g` arg values make exports diffable and
// golden-testable. If this test breaks, either the change is accidental
// (fix it) or the format evolved deliberately (re-bless the golden).
TEST(ChromeTraceTest, GoldenExport) {
  TraceRecorder tr;
  StrId task = tr.Intern("sim");
  StrId track = tr.Intern("f1");
  StrId work = tr.Intern("work");
  SpanId run = tr.BeginSpan(3600.0, SpanCategory::kRun, "tide-a", "runs");
  SpanId t1 =
      tr.BeginSpan(3600.0, SpanCategory::kTask, task, track, run, work,
                   19061.5);
  tr.SpanArg(run, "node", std::string_view("f1"));
  tr.EndSpan(t1, 7200.25);
  SpanId t2 = tr.BeginSpan(7200.25, SpanCategory::kTask, task, track, run);
  tr.EndSpanRemoved(t2, 7300.0);
  tr.EndSpan(run, 7300.0);
  tr.Instant(7300.0, SpanCategory::kPlan, "node_down:f1", "campaign");
  MetricsRegistry m;
  m.counter("runs.completed")->Increment();
  m.SampleAll(7300.0);

  const std::string kGolden = R"({
"displayTimeUnit": "ms",
"traceEvents": [
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"forecast-factory"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"runs"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"f1"}},
{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"campaign"}},
{"ph":"X","pid":1,"tid":1,"cat":"run","name":"tide-a","ts":3600000000.000,"dur":3700000000.000,"args":{"span_id":1,"parent_id":0,"node":"f1"}},
{"ph":"X","pid":1,"tid":2,"cat":"task","name":"sim","ts":3600000000.000,"dur":3600250000.000,"args":{"span_id":2,"parent_id":1,"work":19061.5}},
{"ph":"X","pid":1,"tid":2,"cat":"task","name":"sim","ts":7200250000.000,"dur":99750000.000,"args":{"span_id":3,"parent_id":1,"removed":1}},
{"ph":"i","pid":1,"tid":3,"cat":"plan","name":"node_down:f1","ts":7300000000.000,"s":"t"},
{"ph":"C","pid":1,"tid":0,"name":"runs.completed","ts":7300000000.000,"args":{"value":1}}
]
}
)";
  EXPECT_EQ(ChromeTraceJson(tr, &m), kGolden);
}

TEST(ChromeTraceTest, OpenSpansExportWithZeroDuration) {
  TraceRecorder tr;
  tr.BeginSpan(5.0, SpanCategory::kRun, "r", "runs");
  std::string json = ChromeTraceJson(tr);
  EXPECT_NE(json.find("\"dur\":0.000"), std::string::npos);
}

TEST(ChromeTraceTest, EscapesJsonMetacharacters) {
  TraceRecorder tr;
  SpanId s = tr.BeginSpan(0.0, SpanCategory::kRun, "a\"b\\c\n", "runs");
  tr.EndSpan(s, 1.0);
  std::string json = ChromeTraceJson(tr);
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
}

TEST(ChromeTraceTest, SpansCsvRoundsTrips) {
  TraceRecorder tr;
  SpanId run = tr.BeginSpan(1.0, SpanCategory::kRun, "r", "runs");
  tr.EndSpan(run, 2.5);
  std::ostringstream csv;
  WriteSpansCsv(tr, &csv);
  EXPECT_EQ(csv.str(),
            "span_id,parent_id,category,name,track,start_s,end_s,"
            "duration_s\n"
            "1,0,run,r,runs,1.000000,2.500000,1.500000\n");
}

}  // namespace
}  // namespace obs
}  // namespace ff
