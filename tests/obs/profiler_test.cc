// Cold-path exporters for the runtime profiler: statsdb runtime_*
// tables, the dual-process Chrome-trace lane, and the SetLogSink
// summary route. Everything here is a pure function of an
// already-collected profile, so the tests fabricate profiles directly
// and assert on bytes/rows — no timing assumptions.

#include "obs/profiler.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "statsdb/database.h"
#include "util/logging.h"

namespace ff {
namespace obs {
namespace {

PoolRuntimeProfile MakePoolProfile() {
  PoolRuntimeProfile p;
  p.num_threads = 2;
  p.lifetime_ns = 10'000'000;  // 10ms
  p.global_queue_peak = 3;
  p.workers.resize(2);
  p.workers[0].tasks_run = 4;
  p.workers[0].run_ns = 6'000'000;
  p.workers[0].idle_ns = 4'000'000;
  p.workers[0].steals = 1;
  p.workers[1].tasks_run = 2;
  p.workers[1].run_ns = 2'000'000;
  p.workers[1].idle_ns = 8'000'000;
  p.workers[1].steal_fails = 5;
  return p;
}

SweepRuntimeProfile MakeSweepProfile() {
  SweepRuntimeProfile s;
  s.wall_ms = 12.5;
  s.replicas.resize(2);
  s.replicas[0].replica = 0;
  s.replicas[0].worker = 1;
  s.replicas[0].queue_wait_ms = 0.5;
  s.replicas[0].wall_ms = 3.0;
  s.replicas[1].replica = 1;
  s.replicas[1].worker = SIZE_MAX;  // ran inline
  s.replicas[1].queue_wait_ms = 0.0;
  s.replicas[1].wall_ms = 4.0;
  s.pool = MakePoolProfile();
  s.worker_occupancy = {0.6, 0.2};
  return s;
}

TEST(ProfilerExportTest, LoadRuntimeWorkersRows) {
  statsdb::Database db;
  auto table = LoadRuntimeWorkers(MakePoolProfile(), &db);
  ASSERT_TRUE(table.ok()) << table.status();
  auto rs = db.Sql(
      "SELECT worker, tasks, steals, steal_fails FROM runtime_workers "
      "ORDER BY worker");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][1].int64_value(), 4);
  EXPECT_EQ(rs->rows[0][2].int64_value(), 1);
  EXPECT_EQ(rs->rows[1][3].int64_value(), 5);
  // Aggregate the profile back out of SQL, as an embedder would.
  auto sum = db.Sql("SELECT SUM(tasks) AS t, SUM(run_ms) AS r "
                    "FROM runtime_workers");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->rows[0][0].int64_value(), 6);
  EXPECT_NEAR(sum->rows[0][1].double_value(), 8.0, 1e-9);
}

TEST(ProfilerExportTest, LoadRuntimeCacheRows) {
  statsdb::QueryCacheStats stats;
  stats.plan_hits = 10;
  stats.plan_misses = 3;
  stats.plan_bypasses = 1;
  stats.plan_invalidations = 2;
  stats.plan_evictions = 4;
  stats.plan_entries = 5;
  stats.result_hits = 20;
  stats.result_misses = 6;
  stats.result_bypasses = 7;
  stats.result_invalidations = 8;
  stats.result_evictions = 9;
  stats.result_entries = 11;
  stats.result_bytes = 4096;

  statsdb::Database db;
  auto table = LoadRuntimeCache(stats, &db);
  ASSERT_TRUE(table.ok()) << table.status();
  auto rs = db.Sql(
      "SELECT tier, hits, misses, bypasses, invalidations, evictions, "
      "entries, bytes FROM runtime_cache ORDER BY tier");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "plan");
  EXPECT_EQ(rs->rows[0][1].int64_value(), 10);
  EXPECT_EQ(rs->rows[0][2].int64_value(), 3);
  EXPECT_EQ(rs->rows[0][4].int64_value(), 2);
  EXPECT_EQ(rs->rows[0][7].int64_value(), 0) << "plans carry no bytes";
  EXPECT_EQ(rs->rows[1][0].string_value(), "result");
  EXPECT_EQ(rs->rows[1][1].int64_value(), 20);
  EXPECT_EQ(rs->rows[1][6].int64_value(), 11);
  EXPECT_EQ(rs->rows[1][7].int64_value(), 4096);

  // Live round trip: a warm database exports its own cache counters
  // (snapshot precedes the exporter's own table writes, so the
  // self-observation is coherent).
  statsdb::CacheConfig cfg;
  cfg.mode = statsdb::CacheConfig::Mode::kFull;
  db.set_cache_config(cfg);
  ASSERT_TRUE(db.Sql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Sql("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.Sql("SELECT a FROM t").ok());
  ASSERT_TRUE(db.Sql("SELECT a FROM t").ok());
  ASSERT_TRUE(LoadRuntimeCache(db.cache().Stats(), &db).ok());
  auto hits = db.Sql("SELECT hits FROM runtime_cache WHERE tier = 'result'");
  ASSERT_TRUE(hits.ok()) << hits.status();
  ASSERT_EQ(hits->rows.size(), 1u);
  EXPECT_EQ(hits->rows[0][0].int64_value(), 1);
}

TEST(ProfilerExportTest, LoadRuntimeOperatorsPreservesTree) {
  QueryProfile prof;
  prof.engine = "parallel";
  prof.root = std::make_unique<OperatorProfile>();
  prof.root->name = "Limit(5)";
  prof.root->rows_out = 5;
  prof.root->wall_ns = 3'000'000;
  OperatorProfile* scan = prof.root->AddChild();
  scan->name = "Scan(runs)";
  scan->is_scan = true;
  scan->rows_out = 100;
  scan->wall_ns = 2'000'000;
  scan->chunks_scanned = 1;
  scan->chunks_pruned = 5;

  statsdb::Database db;
  ASSERT_TRUE(LoadRuntimeOperators(prof, &db).ok());
  auto rs = db.Sql(
      "SELECT op_id, parent_id, depth, name, rows, chunks_pruned "
      "FROM runtime_operators ORDER BY op_id");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].int64_value(), 1);
  EXPECT_EQ(rs->rows[0][1].int64_value(), 0);  // root has no parent
  EXPECT_EQ(rs->rows[0][3].string_value(), "Limit(5)");
  EXPECT_EQ(rs->rows[1][1].int64_value(), 1);  // scan's parent is root
  EXPECT_EQ(rs->rows[1][2].int64_value(), 1);
  EXPECT_EQ(rs->rows[1][5].int64_value(), 5);
}

TEST(ProfilerExportTest, LoadRuntimeReplicasMapsInlineToMinusOne) {
  statsdb::Database db;
  ASSERT_TRUE(LoadRuntimeReplicas(MakeSweepProfile(), &db).ok());
  auto rs = db.Sql(
      "SELECT replica, worker, wall_ms FROM runtime_replicas "
      "ORDER BY replica");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][1].int64_value(), 1);
  EXPECT_EQ(rs->rows[1][1].int64_value(), -1);
  EXPECT_NEAR(rs->rows[1][2].double_value(), 4.0, 1e-9);
}

TEST(ProfilerExportTest, SweepRuntimeTraceRidesASecondProcess) {
  // A virtual-time trace (the determinism-gated artifact)...
  TraceRecorder sim;
  SpanId s = sim.BeginSpan(0.0, SpanCategory::kRun, "till-day1", "f1");
  sim.EndSpan(s, 40000.0);
  const std::string single = ChromeTraceJson(sim);

  // ...must not change byte-for-byte when a runtime lane is added.
  TraceRecorder runtime;
  FillSweepRuntimeTrace(MakeSweepProfile(), &runtime);
  ChromeTraceOptions opt;
  opt.runtime_trace = &runtime;
  const std::string dual = ChromeTraceJson(sim, nullptr, opt);

  EXPECT_NE(single, dual);
  // The exporter appends the runtime process; everything before the
  // closing "\n]\n}\n" must be byte-identical to the single-process doc.
  ASSERT_GE(single.size(), 5u);
  EXPECT_EQ(dual.rfind(single.substr(0, single.size() - 5), 0), 0u)
      << "dual-process output must extend the single-process bytes";
  EXPECT_NE(dual.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(dual.find("runtime (wall clock)"), std::string::npos);
  EXPECT_EQ(single.find("\"pid\":2"), std::string::npos);
  // Replica lanes: one per worker plus the inline lane.
  EXPECT_NE(dual.find("\"w1\""), std::string::npos);
  EXPECT_NE(dual.find("\"inline\""), std::string::npos);
}

TEST(ProfilerExportTest, SummariesRenderWithoutAPool) {
  // Inline sweeps (no pool) must still summarize cleanly.
  SweepRuntimeProfile s;
  s.wall_ms = 1.0;
  s.replicas.resize(1);
  s.replicas[0].wall_ms = 1.0;
  std::string text = SweepRuntimeSummary(s);
  EXPECT_NE(text.find("replicas=1"), std::string::npos) << text;
  EXPECT_EQ(text.find("pool:"), std::string::npos) << text;

  std::string pool_text = PoolRuntimeSummary(MakePoolProfile());
  EXPECT_NE(pool_text.find("threads=2"), std::string::npos) << pool_text;
  EXPECT_NE(pool_text.find("steals=1"), std::string::npos) << pool_text;
}

TEST(ProfilerExportTest, LogRuntimeSummaryRoutesThroughSink) {
  std::vector<std::string> captured;
  util::LogLevel saved_level = util::GetMinLogLevel();
  util::SetMinLogLevel(util::LogLevel::kInfo);
  util::SetLogSink([&captured](util::LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  LogRuntimeSummary("mybench", "line one\nline two\n");
  util::SetLogSink(nullptr);
  util::SetMinLogLevel(saved_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_NE(captured[0].find("mybench"), std::string::npos);
  EXPECT_NE(captured[0].find("line one"), std::string::npos);
  EXPECT_NE(captured[1].find("line two"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ff
