#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace ff {
namespace parallel {
namespace {

TEST(TaskDequeTest, OwnerPopsLifoThiefStealsFifo) {
  TaskDeque dq;
  std::vector<int> ran;
  for (int i = 0; i < 4; ++i) {
    dq.PushBottom(new TaskDeque::Task([&ran, i] { ran.push_back(i); }));
  }
  // A thief takes the oldest task...
  TaskDeque::Task* stolen = dq.StealTop();
  ASSERT_NE(stolen, nullptr);
  (*stolen)();
  delete stolen;
  EXPECT_EQ(ran, std::vector<int>({0}));
  // ...while the owner drains newest-first.
  while (TaskDeque::Task* t = dq.PopBottom()) {
    (*t)();
    delete t;
  }
  EXPECT_EQ(ran, std::vector<int>({0, 3, 2, 1}));
  EXPECT_EQ(dq.PopBottom(), nullptr);
  EXPECT_EQ(dq.StealTop(), nullptr);
}

TEST(TaskDequeTest, GrowsPastInitialCapacity) {
  TaskDeque dq;
  std::atomic<int> sum{0};
  constexpr int kTasks = 5000;  // far beyond the initial ring size
  for (int i = 0; i < kTasks; ++i) {
    dq.PushBottom(new TaskDeque::Task([&sum] { sum.fetch_add(1); }));
  }
  int popped = 0;
  while (TaskDeque::Task* t = dq.PopBottom()) {
    (*t)();
    delete t;
    ++popped;
  }
  EXPECT_EQ(popped, kTasks);
  EXPECT_EQ(sum.load(), kTasks);
}

// Owner pushes and occasionally pops while thieves hammer StealTop: every
// task must execute exactly once (the each-task-runs-once guarantee is
// exactly what the PopBottom/StealTop CAS race protects).
TEST(TaskDequeTest, ConcurrentStealFuzzRunsEachTaskOnce) {
  constexpr int kThieves = 3;
  constexpr int kTasks = 20000;
  TaskDeque dq;
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) r.store(0);
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (TaskDeque::Task* task = dq.StealTop()) {
          (*task)();
          delete task;
          executed.fetch_add(1);
        }
      }
      // Final drain so nothing is stranded between done and empty.
      while (TaskDeque::Task* task = dq.StealTop()) {
        (*task)();
        delete task;
        executed.fetch_add(1);
      }
    });
  }

  util::Rng rng(7);
  for (int i = 0; i < kTasks; ++i) {
    dq.PushBottom(new TaskDeque::Task([&ran, &executed, i] {
      ran[static_cast<size_t>(i)].fetch_add(1);
    }));
    if (rng.UniformInt(0, 3) == 0) {
      if (TaskDeque::Task* task = dq.PopBottom()) {
        (*task)();
        delete task;
        executed.fetch_add(1);
      }
    }
  }
  while (TaskDeque::Task* task = dq.PopBottom()) {
    (*task)();
    delete task;
    executed.fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(executed.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
  pool.Wait();
}

TEST(ThreadPoolTest, WorkerSpawnedTasksRecurse) {
  // Tasks that spawn tasks land on the spawning worker's own deque; a
  // binary fan-out to 255 leaves checks that path (and Wait's pending
  // accounting) end to end.
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    pool.Submit([&spawn, depth] { spawn(depth - 1); });
    pool.Submit([&spawn, depth] { spawn(depth - 1); });
  };
  pool.Submit([&spawn] { spawn(7); });
  pool.Wait();
  EXPECT_EQ(leaves.load(), 128);
}

TEST(ThreadPoolTest, BoundedQueueBackpressureStillRunsEverything) {
  ThreadPool::Options opt;
  opt.num_threads = 2;
  opt.max_queue = 4;  // external submits must block, not drop
  ThreadPool pool(opt);
  std::atomic<int> count{0};
  for (int i = 0; i < 300; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

// Shutdown fuzz: pools of varying width live for one randomly sized
// burst of recursively spawning tasks and are destroyed immediately
// after; the destructor must drain (Wait) then join without losing or
// double-running work.
TEST(ThreadPoolTest, StealShutdownFuzz) {
  util::Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    size_t width = static_cast<size_t>(rng.UniformInt(1, 4));
    int roots = static_cast<int>(rng.UniformInt(1, 40));
    int children = static_cast<int>(rng.UniformInt(0, 8));
    std::atomic<int> count{0};
    {
      ThreadPool pool(width);
      for (int i = 0; i < roots; ++i) {
        pool.Submit([&pool, &count, children] {
          count.fetch_add(1);
          for (int c = 0; c < children; ++c) {
            pool.Submit([&count] { count.fetch_add(1); });
          }
        });
      }
      // No explicit Wait: the destructor owns the drain.
    }
    EXPECT_EQ(count.load(), roots * (1 + children)) << "round " << round;
  }
}

TEST(ThreadPoolTest, StealsAreCountedWhenThievesDrainAnIdleOwner) {
  // Force steals deterministically: a root task parks its worker after
  // filling its own deque, so every enqueued task can only run via
  // another worker's StealTop.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (count.load(std::memory_order_acquire) < 64) {
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  pool.Wait();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(pool.steals(), 64u);
}

TEST(TaskGroupTest, WaitFromExternalThreadScopesToOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> grouped{0};
  std::atomic<bool> release{false};
  // An unrelated long-running pool task must not hold up the group wait.
  pool.Submit([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Submit([&grouped] { grouped.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(grouped.load(), 32);
  release.store(true, std::memory_order_release);
  pool.Wait();
}

TEST(TaskGroupTest, NestedParallelForInsideAPoolTask) {
  // Pool-wide ParallelFor/Wait would deadlock (and FF_CHECK) on a worker
  // thread; TaskGroup::ParallelFor is the sanctioned nested form — this
  // is the shape of a morsel-parallel statsdb query issued from inside a
  // sweep replica. Fuzz a few rounds to shake out lost-wakeup races.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> inner_sum{0};
    TaskGroup outer(&pool);
    outer.ParallelFor(4, [&](size_t) {
      TaskGroup inner(&pool);
      inner.ParallelFor(16, [&](size_t j) {
        inner_sum.fetch_add(static_cast<int>(j) + 1);
      });
      // inner.Wait() ran inside ParallelFor; all 16 indices done here.
    });
    EXPECT_EQ(inner_sum.load(), 4 * (16 * 17 / 2)) << "round " << round;
  }
  pool.Wait();
}

TEST(TaskGroupTest, DestructorWaitsAndGroupsAreReusableSequentially) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 8; ++batch) {
    TaskGroup group(&pool);
    for (int i = 0; i < 16; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    // No explicit Wait: the destructor owns the barrier.
  }
  EXPECT_EQ(count.load(), 8 * 16);
}

}  // namespace
}  // namespace parallel
}  // namespace ff
