#include "parallel/sweep.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/merge.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/sql.h"

namespace ff {
namespace parallel {
namespace {

// Synthetic replica with everything the merge has to order: spans with
// parents and args, exact virtual-time ties across replicas, metric
// samples, counters/gauges/histograms, and log records. Values are drawn
// from ctx.rng, so a worker-count leak into seeding would show up in the
// bytes immediately.
void SyntheticReplica(ReplicaContext& ctx) {
  double jitter = static_cast<double>(ctx.replica % 3) * 0.25;
  obs::SpanId day = ctx.trace->BeginSpan(jitter, obs::SpanCategory::kRun,
                                         "day", "campaign");
  for (int k = 0; k < 8; ++k) {
    double start = static_cast<double>(k) + jitter;
    obs::SpanId run = ctx.trace->BeginSpan(
        start, obs::SpanCategory::kTask, "run", "node", day);
    ctx.trace->SpanArg(run, "work", ctx.rng.Uniform(10.0, 20.0));
    ctx.trace->SpanArg(run, "forecast",
                       std::string("fc" + std::to_string(k % 4)));
    double wall = ctx.rng.Uniform(1.0, 2.0);
    ctx.trace->EndSpan(run, start + wall);
    ctx.metrics->counter("runs.completed")->Increment();
    ctx.metrics->gauge("queue.depth")->Set(static_cast<double>(k));
    ctx.metrics->histogram("walltime", {1.0, 1.5, 2.0})->Observe(wall);
    ctx.metrics->Record(start + wall, "campaign.walltime", wall);

    logdata::LogRecord rec;
    rec.forecast = "fc" + std::to_string(k % 4);
    rec.region = "estuary";
    rec.day = k;
    rec.node = "f" + std::to_string(ctx.replica % 4 + 1);
    rec.code_version = "v1";
    rec.mesh_sides = 4;
    rec.timesteps = 100;
    rec.start_time = start;
    rec.end_time = start + wall;
    rec.walltime = wall;
    rec.status = logdata::RunStatus::kCompleted;
    ctx.records->push_back(rec);
  }
  ctx.trace->EndSpan(day, 10.0 + jitter);
  ctx.trace->Instant(jitter + 0.5, obs::SpanCategory::kPlan, "replan",
                     "planner");
}

struct Artifacts {
  std::string chrome_json;
  std::string metrics_csv;
  std::string query_csv;
};

Artifacts MakeArtifacts(const SweepOutputs& outputs) {
  Artifacts a;
  a.chrome_json = obs::ChromeTraceJson(*outputs.merged_trace,
                                       outputs.merged_metrics.get());
  std::ostringstream csv;
  obs::WriteMetricSamplesCsv(*outputs.merged_metrics, &csv);
  a.metrics_csv = csv.str();

  statsdb::Database db;
  auto table = LoadSweepRuns(&db, outputs);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  auto plan = statsdb::PlanSql(
      "SELECT replica, node, COUNT(*) AS n, AVG(walltime) AS avg_w "
      "FROM sweep_runs GROUP BY replica, node ORDER BY replica, node");
  EXPECT_TRUE(plan.ok());
  auto rs = statsdb::ExecutePlan(*plan, db);
  EXPECT_TRUE(rs.ok());
  a.query_csv = rs->ToCsv();
  return a;
}

Artifacts RunSweep(size_t workers, size_t replicas = 24) {
  SweepOptions opt;
  opt.num_workers = workers;
  opt.base_seed = 99;
  SweepRunner runner(opt);
  SweepOutputs outputs = runner.Run(replicas, SyntheticReplica);
  EXPECT_EQ(outputs.num_replicas, replicas);
  EXPECT_EQ(outputs.num_workers, workers);
  return MakeArtifacts(outputs);
}

// The contract the whole subsystem hangs on: merged artifacts are
// byte-identical on 1, 4 and 16 workers, and across repeated runs.
TEST(SweepDeterminismTest, MergedArtifactsByteIdenticalAcrossWorkerCounts) {
  Artifacts serial = RunSweep(1);
  EXPECT_FALSE(serial.chrome_json.empty());
  EXPECT_FALSE(serial.metrics_csv.empty());
  EXPECT_FALSE(serial.query_csv.empty());
  for (size_t workers : {4, 16}) {
    Artifacts parallel = RunSweep(workers);
    EXPECT_EQ(parallel.chrome_json, serial.chrome_json)
        << "chrome trace diverged at " << workers << " workers";
    EXPECT_EQ(parallel.metrics_csv, serial.metrics_csv)
        << "metrics csv diverged at " << workers << " workers";
    EXPECT_EQ(parallel.query_csv, serial.query_csv)
        << "statsdb query diverged at " << workers << " workers";
  }
}

TEST(SweepDeterminismTest, RepeatedRunsAreByteIdentical) {
  Artifacts first = RunSweep(4);
  Artifacts second = RunSweep(4);
  EXPECT_EQ(first.chrome_json, second.chrome_json);
  EXPECT_EQ(first.metrics_csv, second.metrics_csv);
  EXPECT_EQ(first.query_csv, second.query_csv);
}

TEST(SweepRunnerTest, ReplicaStreamsAreIndependentOfReplicaCount) {
  // Replica i's RNG stream is Split(i) of the base seed: adding replicas
  // must not perturb the existing ones' draws.
  SweepOptions opt;
  opt.num_workers = 1;
  opt.base_seed = 7;
  SweepRunner runner(opt);
  std::vector<uint64_t> small(4), large(8);
  runner.Run(4, [&](ReplicaContext& ctx) {
    small[ctx.replica] = ctx.rng.Next();
  });
  runner.Run(8, [&](ReplicaContext& ctx) {
    large[ctx.replica] = ctx.rng.Next();
  });
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]) << "replica " << i;
  }
}

TEST(SweepRunnerTest, RecordingTogglesLeaveArtifactsNull) {
  SweepOptions opt;
  opt.num_workers = 2;
  opt.record_traces = false;
  opt.record_metrics = false;
  SweepRunner runner(opt);
  SweepOutputs outputs = runner.Run(3, [](ReplicaContext& ctx) {
    EXPECT_EQ(ctx.trace, nullptr);
    EXPECT_EQ(ctx.metrics, nullptr);
    logdata::LogRecord rec;
    rec.forecast = "fc" + std::to_string(ctx.replica);
    ctx.records->push_back(rec);
  });
  EXPECT_EQ(outputs.merged_trace, nullptr);
  EXPECT_EQ(outputs.merged_metrics, nullptr);
  ASSERT_EQ(outputs.merged_records.size(), 3u);
  // Records concatenate in replica order, not completion order.
  EXPECT_EQ(outputs.merged_records[0].forecast, "fc0");
  EXPECT_EQ(outputs.merged_records[2].forecast, "fc2");
}

TEST(SweepRunnerTest, EmptySweepProducesEmptyMergedArtifacts) {
  SweepOptions opt;
  opt.num_workers = 1;
  SweepRunner runner(opt);
  SweepOutputs outputs =
      runner.Run(0, [](ReplicaContext&) { FAIL() << "no replicas"; });
  ASSERT_NE(outputs.merged_trace, nullptr);
  EXPECT_TRUE(outputs.merged_trace->spans().empty());
  ASSERT_NE(outputs.merged_metrics, nullptr);
  EXPECT_TRUE(outputs.merged_metrics->samples().empty());
  EXPECT_TRUE(outputs.merged_records.empty());
}

TEST(SweepRunnerTest, LoadSweepRunsIsRerunnableAndIndexed) {
  SweepOptions opt;
  opt.num_workers = 1;
  opt.record_traces = false;
  opt.record_metrics = false;
  SweepRunner runner(opt);
  SweepOutputs outputs = runner.Run(5, [](ReplicaContext& ctx) {
    for (int k = 0; k < 8; ++k) {
      logdata::LogRecord rec;
      rec.forecast = "fc" + std::to_string(k % 4);
      rec.node = "f" + std::to_string(ctx.replica % 4 + 1);
      rec.day = k;
      rec.walltime = ctx.rng.Uniform(1.0, 2.0);
      ctx.records->push_back(rec);
    }
  });

  statsdb::Database db;
  auto first = LoadSweepRuns(&db, outputs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Re-loading drops and rebuilds the table instead of erroring.
  auto second = LoadSweepRuns(&db, outputs);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*second)->num_rows(), 5u * 8u);

  auto plan = statsdb::PlanSql(
      "SELECT COUNT(*) AS n FROM sweep_runs WHERE replica = 3");
  ASSERT_TRUE(plan.ok());
  auto rs = statsdb::ExecutePlan(*plan, db);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].int64_value(), 8);
}

// Hand-checkable merge: two replicas, three spans, one exact tie. The
// merged ids, lane tracks and remapped parent are all pinned.
TEST(MergeTracesTest, OrdersByTimeThenReplicaAndRemapsParents) {
  obs::TraceRecorder r0, r1;
  obs::SpanId a = r0.BeginSpan(1.0, obs::SpanCategory::kRun, "A", "x");
  obs::SpanId b = r0.BeginSpan(2.0, obs::SpanCategory::kTask, "B", "x", a);
  r0.EndSpan(b, 3.0);
  r0.EndSpan(a, 4.0);
  obs::SpanId c = r1.BeginSpan(1.0, obs::SpanCategory::kRun, "C", "x");
  r1.EndSpan(c, 2.5);

  obs::TraceRecorder merged;
  obs::MergeTraces({&r0, &r1}, &merged);
  ASSERT_EQ(merged.spans().size(), 3u);
  // t=1.0 tie: replica 0's A precedes replica 1's C.
  EXPECT_EQ(merged.str(merged.spans()[0].name), "A");
  EXPECT_EQ(merged.str(merged.spans()[1].name), "C");
  EXPECT_EQ(merged.str(merged.spans()[2].name), "B");
  EXPECT_EQ(merged.str(merged.spans()[0].track), "r0/x");
  EXPECT_EQ(merged.str(merged.spans()[1].track), "r1/x");
  EXPECT_EQ(merged.str(merged.spans()[2].track), "r0/x");
  // B's parent followed A to its merged id (span 1).
  EXPECT_EQ(merged.spans()[2].parent, 1u);
  EXPECT_EQ(merged.spans()[0].parent, 0u);
  EXPECT_EQ(merged.spans()[1].parent, 0u);
}

TEST(MergeMetricsTest, UnionsSeriesAndAggregatesInstruments) {
  obs::MetricsRegistry r0, r1;
  r0.counter("runs")->Add(3);
  r1.counter("runs")->Add(4);
  r0.gauge("depth")->Set(2.0);
  r1.gauge("depth")->Set(5.0);
  r0.Record(1.0, "wall", 10.0);
  r0.Record(3.0, "wall", 30.0);
  r1.Record(2.0, "wall", 20.0);
  r1.Record(3.0, "wall", 31.0);  // exact tie: replica 0's sample first

  obs::MetricsRegistry merged;
  obs::MergeMetrics({&r0, &r1}, &merged);
  EXPECT_EQ(merged.FindCounter("runs")->value(), 7u);
  // Gauges cannot sum meaningfully; they live under replica lanes.
  ASSERT_NE(merged.FindGauge("r0/depth"), nullptr);
  ASSERT_NE(merged.FindGauge("r1/depth"), nullptr);
  EXPECT_DOUBLE_EQ(merged.FindGauge("r1/depth")->value(), 5.0);

  auto wall = merged.SeriesValues("wall");
  ASSERT_EQ(wall.size(), 4u);
  EXPECT_DOUBLE_EQ(wall[0], 10.0);
  EXPECT_DOUBLE_EQ(wall[1], 20.0);
  EXPECT_DOUBLE_EQ(wall[2], 30.0);
  EXPECT_DOUBLE_EQ(wall[3], 31.0);
}

}  // namespace
}  // namespace parallel
}  // namespace ff
