// Seeded frame fuzzing over the wire protocol: byte-flips and
// truncations applied to a corpus of RECORDED VALID frames, pushed
// through ParseFrame and every body decoder, plus a live-server lane
// firing garbage frames over a real socket. Every outcome must be a
// clean typed error or a valid parse — no crash, no hang, no
// unbounded allocation (serialize.h's decoders Need()-check payloads
// before sizing buffers; this test is the enforcement). Iteration
// counts are fixed and seeds are pinned: the fuzz corpus is part of
// the test, not a source of flakes. CI runs this under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/serialize.h"
#include "net/server.h"
#include "net/wire.h"
#include "statsdb/database.h"
#include "statsdb/query.h"
#include "statsdb/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace ff {
namespace net {
namespace {

using statsdb::DataType;
using statsdb::ResultSet;
using statsdb::Schema;
using statsdb::Value;
using util::Rng;
using util::Status;

/// A result set exercising every column encoding: dict strings, int64,
/// double, bool, an all-null column, and a mixed (tagged) column.
ResultSet SampleResultSet() {
  ResultSet rs;
  rs.schema = Schema({{"forecast", DataType::kString},
                      {"day", DataType::kInt64},
                      {"walltime", DataType::kDouble},
                      {"done", DataType::kBool},
                      {"hole", DataType::kDouble},
                      {"mixed", DataType::kInt64}});
  for (int i = 0; i < 41; ++i) {
    rs.rows.push_back({
        i % 7 == 0 ? Value::Null() : Value::String("f-" + std::to_string(i % 3)),
        Value::Int64(i),
        i % 5 == 0 ? Value::Null() : Value::Double(3.25 * i),
        Value::Bool(i % 2 == 0),
        Value::Null(),
        i % 2 == 0 ? Value::Int64(i) : Value::Double(0.5 * i),
    });
  }
  return rs;
}

/// Recorded valid frames, one per opcode family the protocol ships.
std::vector<std::pair<Opcode, std::string>> Corpus() {
  std::vector<std::pair<Opcode, std::string>> corpus;
  const ResultSet rs = SampleResultSet();
  {
    WireWriter w;
    EncodeResultSet(rs, &w);
    corpus.emplace_back(Opcode::kResultSet, w.Take());
  }
  {
    WireWriter w;
    EncodeSchema(rs.schema, &w);
    corpus.emplace_back(Opcode::kRowHeader, w.Take());
  }
  {
    WireWriter w;
    for (const auto& v : rs.rows[3]) w.Value(v);
    corpus.emplace_back(Opcode::kRow, w.Take());
  }
  {
    WireWriter w;
    w.U64(rs.rows.size());
    corpus.emplace_back(Opcode::kRowEnd, w.Take());
  }
  {
    WireWriter w;
    w.U8(static_cast<uint8_t>(util::StatusCode::kNotFound));
    const std::string msg = "no table named 'runs'";
    w.Raw(msg.data(), msg.size());
    corpus.emplace_back(Opcode::kError, w.Take());
  }
  {
    WireWriter w;
    w.U32(7);
    w.U32(2);
    corpus.emplace_back(Opcode::kPrepared, w.Take());
  }
  {
    WireWriter w;
    w.U8(0);
    const std::string sql = "SELECT day, AVG(walltime) FROM runs GROUP BY day";
    w.Raw(sql.data(), sql.size());
    corpus.emplace_back(Opcode::kQuery, w.Take());
  }
  {
    WireWriter w;
    w.U32(7);
    w.U8(0);
    w.U16(2);
    w.Value(Value::Int64(12));
    w.Value(Value::String("till"));
    corpus.emplace_back(Opcode::kExecute, w.Take());
  }
  return corpus;
}

/// Decodes one frame body with the decoder matching its opcode; the
/// return value is irrelevant — reaching a Status at all (instead of a
/// crash or over-allocation) is the property.
void DecodeBody(Opcode op, std::string_view body) {
  WireReader r(body);
  switch (op) {
    case Opcode::kResultSet: {
      auto rs = DecodeResultSet(&r);
      if (rs.ok()) rs->ToCsv();  // rendering must survive decoded garbage
      break;
    }
    case Opcode::kRowHeader:
      (void)DecodeSchema(&r);
      break;
    case Opcode::kRow:
      while (!r.AtEnd()) {
        if (!r.Value().ok()) break;
      }
      break;
    case Opcode::kRowEnd:
      (void)r.U64();
      break;
    case Opcode::kError:
      if (r.U8().ok()) r.Rest();
      break;
    case Opcode::kPrepared:
      if (r.U32().ok()) (void)r.U32();
      break;
    case Opcode::kExecute: {
      if (!r.U32().ok() || !r.U8().ok()) break;
      auto n = r.U16();
      if (!n.ok()) break;
      for (uint16_t i = 0; i < *n; ++i) {
        if (!r.Value().ok()) break;
      }
      break;
    }
    default:
      r.Rest();
      break;
  }
}

TEST(FrameFuzz, TruncationsAreAlwaysNeedMoreNeverMisparsed) {
  for (const auto& [op, body] : Corpus()) {
    const std::string frame = EncodeFrame(op, body);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      FrameView view;
      size_t consumed = 0;
      const FrameParse outcome = ParseFrame(
          std::string_view(frame).substr(0, cut), kDefaultMaxFrameBytes,
          &view, &consumed);
      // A prefix of a valid frame is incomplete — it must never be
      // mistaken for a whole frame or a poisoned stream.
      ASSERT_EQ(outcome, FrameParse::kNeedMore)
          << "opcode " << static_cast<int>(op) << " cut at " << cut;
    }
    FrameView view;
    size_t consumed = 0;
    ASSERT_EQ(ParseFrame(frame, kDefaultMaxFrameBytes, &view, &consumed),
              FrameParse::kFrame);
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(view.opcode, op);
  }
}

TEST(FrameFuzz, TruncatedBodiesFailDecodingCleanly) {
  for (const auto& [op, body] : Corpus()) {
    for (size_t cut = 0; cut < body.size(); ++cut) {
      ASSERT_NO_FATAL_FAILURE(
          DecodeBody(op, std::string_view(body).substr(0, cut)));
    }
  }
}

TEST(FrameFuzz, SeededByteFlipsParseOrFailCleanly) {
  const auto corpus = Corpus();
  Rng rng(0xf11bed);
  for (int iter = 0; iter < 2500; ++iter) {
    const auto& [op, body] = corpus[rng.Index(corpus.size())];
    std::string frame = EncodeFrame(op, body);
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int f = 0; f < flips; ++f) {
      frame[rng.Index(frame.size())] ^=
          static_cast<char>(rng.UniformInt(1, 255));
    }
    FrameView view;
    size_t consumed = 0;
    switch (ParseFrame(frame, kDefaultMaxFrameBytes, &view, &consumed)) {
      case FrameParse::kFrame:
        ASSERT_LE(consumed, frame.size());
        // The opcode byte may have been flipped to anything; decode by
        // whatever it now claims to be.
        ASSERT_NO_FATAL_FAILURE(DecodeBody(view.opcode, view.body));
        break;
      case FrameParse::kNeedMore:  // flipped length now promises more
      case FrameParse::kBad:       // flipped length is zero / oversized
        break;
    }
  }
}

TEST(FrameFuzz, SeededBodyFlipsNeverBreakTheResultSetDecoder) {
  WireWriter w;
  EncodeResultSet(SampleResultSet(), &w);
  const std::string valid = w.Take();
  Rng rng(0xdec0de);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string body = valid;
    const int flips = static_cast<int>(rng.UniformInt(1, 6));
    for (int f = 0; f < flips; ++f) {
      body[rng.Index(body.size())] ^=
          static_cast<char>(rng.UniformInt(1, 255));
    }
    WireReader r(body);
    auto rs = DecodeResultSet(&r);
    // ok (the flip hit ignored padding / a value payload) or a clean
    // ParseError — either way the decoder returned instead of crashing
    // or sizing a buffer off a lying header.
    if (rs.ok()) rs->ToCsv();
  }
}

// The live lane: seeded garbage frames (random opcodes, random bodies)
// and raw unframed noise against a real server over a real socket. The
// server must answer or close every time, never wedge, and still serve
// clean clients afterwards.
TEST(FrameFuzz, LiveServerSurvivesGarbageFrames) {
  ServerConfig cfg;
  cfg.pool_threads = 2;
  auto server = std::make_unique<Server>(cfg);
  {
    Schema runs({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"walltime", DataType::kDouble}});
    statsdb::Table* t = *server->db().CreateTable("runs", runs);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(t->Insert({Value::String("till"), Value::Int64(i % 30),
                             Value::Double(10.0 * i)})
                      .ok());
    }
  }
  ASSERT_TRUE(server->Start().ok());

  ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  // A garbage header can promise bytes that never come; the deadline
  // turns that into a clean client-side timeout + reconnect.
  copts.io_timeout_ms = 200;

  Rng rng(0x5e4ff);
  int responses = 0, closes = 0;
  auto client = Client::Connect("127.0.0.1", server->port(), copts);
  ASSERT_TRUE(client.ok());
  for (int iter = 0; iter < 150; ++iter) {
    if (!client->connected()) {
      client = Client::Connect("127.0.0.1", server->port(), copts);
      ASSERT_TRUE(client.ok()) << "server must keep accepting";
    }
    std::string payload;
    if (iter % 6 == 5) {
      // Raw unframed noise: 1..16 bytes straight onto the stream.
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 16));
      for (size_t i = 0; i < n; ++i) {
        payload.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
    } else {
      // A well-framed body under a random opcode.
      std::string body;
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 64));
      for (size_t i = 0; i < n; ++i) {
        body.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
      payload = EncodeFrame(static_cast<Opcode>(rng.UniformInt(1, 255)),
                            body);
    }
    if (!client->SendRaw(payload).ok()) {
      ++closes;
      client->Close();
      continue;
    }
    auto frame = client->ReadFrame();
    if (frame.ok()) {
      ++responses;  // typically kError; kStatsOk for a lucky 0x05
    } else {
      ++closes;  // poisoned stream or our read deadline — reconnect
      client->Close();
    }
  }
  EXPECT_GT(responses, 0) << "recoverable garbage should get answers";

  // The server took 150 rounds of abuse and still works.
  auto fresh = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(fresh.ok());
  auto rs = fresh->Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "n\n50\n");
  server->Stop();
}

}  // namespace
}  // namespace net
}  // namespace ff
