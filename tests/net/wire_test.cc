// Wire codec tests: scalar/Value round trips, frame parsing, columnar
// ResultSet serialization (every encoding path, null bitmaps across
// 64-row word boundaries, bit-exact doubles) and the malformed-input
// lane — truncated bodies, lying headers, unknown tags — which must
// fail with ParseError, never crash or over-allocate. CI runs this
// binary under ASan/UBSan and TSan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/serialize.h"
#include "net/wire.h"
#include "statsdb/batch.h"
#include "statsdb/column_store.h"
#include "statsdb/query.h"
#include "statsdb/value.h"

namespace ff {
namespace net {
namespace {

using statsdb::ColumnVector;
using statsdb::DataType;
using statsdb::Dictionary;
using statsdb::ResultSet;
using statsdb::Row;
using statsdb::Schema;
using statsdb::Value;
using util::StatusCode;

TEST(WireReaderWriter, ScalarsRoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(-0.0);
  w.F64(1.0 / 3.0);
  w.Str("forecast");
  w.Str("");

  WireReader r(w.buffer());
  EXPECT_EQ(*r.U8(), 0xab);
  EXPECT_EQ(*r.U16(), 0xbeef);
  EXPECT_EQ(*r.U32(), 0xdeadbeefu);
  EXPECT_EQ(*r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.I64(), -42);
  double neg_zero = *r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero)) << "-0.0 must survive bit-exactly";
  EXPECT_EQ(*r.F64(), 1.0 / 3.0);
  EXPECT_EQ(*r.Str(), "forecast");
  EXPECT_EQ(*r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderWriter, LittleEndianLayout) {
  WireWriter w;
  w.U32(0x04030201u);
  ASSERT_EQ(w.buffer().size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(w.buffer()[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(w.buffer()[3]), 0x04);
}

TEST(WireReaderWriter, ValueRoundTripEveryTag) {
  const Value vals[] = {Value::Null(),
                        Value::Bool(true),
                        Value::Bool(false),
                        Value::Int64(INT64_MIN),
                        Value::Double(-0.0),
                        Value::Double(12345.678),
                        Value::String(""),
                        Value::String("umpqua\n,quoted")};
  WireWriter w;
  for (const Value& v : vals) w.Value(v);
  WireReader r(w.buffer());
  for (const Value& v : vals) {
    auto got = r.Value();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->type(), v.type());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(got->ToString(), v.ToString());
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderWriter, EveryGetterFailsCleanlyOnTruncation) {
  // One byte is not enough for any multi-byte getter.
  std::string one(1, '\x7f');
  EXPECT_EQ(WireReader(one).U16().status().code(), StatusCode::kParseError);
  EXPECT_EQ(WireReader(one).U32().status().code(), StatusCode::kParseError);
  EXPECT_EQ(WireReader(one).U64().status().code(), StatusCode::kParseError);
  EXPECT_EQ(WireReader(one).F64().status().code(), StatusCode::kParseError);
  EXPECT_EQ(WireReader("").U8().status().code(), StatusCode::kParseError);
  // Str whose declared length exceeds the remaining bytes.
  WireWriter w;
  w.U32(100);
  w.Raw("abc", 3);
  auto s = WireReader(w.buffer()).Str();
  EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  EXPECT_NE(s.status().ToString().find("truncated frame"), std::string::npos)
      << s.status().ToString();
}

TEST(WireReaderWriter, ValueRejectsUnknownTag) {
  std::string bad(1, '\xee');
  auto v = WireReader(bad).Value();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(FrameParsing, RoundTripAndPartialDelivery) {
  std::string a =
      EncodeFrame(Opcode::kQuery, std::string_view("\x00SELECT 1", 9));
  std::string b = EncodeFrame(Opcode::kStatsOk, "");
  std::string stream = a + b;

  // Every strict prefix of the first frame parses as kNeedMore.
  for (size_t n = 0; n < a.size(); ++n) {
    FrameView f;
    size_t consumed = 0;
    EXPECT_EQ(ParseFrame(stream.substr(0, n), kDefaultMaxFrameBytes, &f,
                         &consumed),
              FrameParse::kNeedMore)
        << "prefix " << n;
  }

  FrameView f;
  size_t consumed = 0;
  ASSERT_EQ(ParseFrame(stream, kDefaultMaxFrameBytes, &f, &consumed),
            FrameParse::kFrame);
  EXPECT_EQ(f.opcode, Opcode::kQuery);
  EXPECT_EQ(f.body, std::string("\x00SELECT 1", 9));
  EXPECT_EQ(consumed, a.size());

  std::string_view rest = std::string_view(stream).substr(consumed);
  ASSERT_EQ(ParseFrame(rest, kDefaultMaxFrameBytes, &f, &consumed),
            FrameParse::kFrame);
  EXPECT_EQ(f.opcode, Opcode::kStatsOk);
  EXPECT_TRUE(f.body.empty());
  EXPECT_EQ(consumed, b.size());
}

TEST(FrameParsing, ZeroAndOversizedLengthsPoisonTheStream) {
  FrameView f;
  size_t consumed = 0;
  // Declared length 0: a frame must at least carry its opcode.
  std::string zero("\x00\x00\x00\x00", 4);
  EXPECT_EQ(ParseFrame(zero, kDefaultMaxFrameBytes, &f, &consumed),
            FrameParse::kBad);
  // Declared length over the cap: protocol error even though no body
  // bytes arrived — the decision is made from the header alone.
  std::string big("\xff\xff\xff\xff", 4);
  EXPECT_EQ(ParseFrame(big, kDefaultMaxFrameBytes, &f, &consumed),
            FrameParse::kBad);
  // Exactly at the cap is still legal framing (just not yet complete).
  WireWriter w;
  w.U32(kDefaultMaxFrameBytes);
  EXPECT_EQ(ParseFrame(w.buffer(), kDefaultMaxFrameBytes, &f, &consumed),
            FrameParse::kNeedMore);
}

Schema TestSchema() {
  return Schema({{"flag", DataType::kBool},
                 {"day", DataType::kInt64},
                 {"walltime", DataType::kDouble},
                 {"node", DataType::kString},
                 {"mixed", DataType::kInt64}});
}

TEST(Serialize, SchemaRoundTrip) {
  Schema s = TestSchema();
  WireWriter w;
  EncodeSchema(s, &w);
  WireReader r(w.buffer());
  auto got = DecodeSchema(&r);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->num_columns(), s.num_columns());
  for (size_t i = 0; i < s.num_columns(); ++i) {
    EXPECT_EQ(got->column(i).name, s.column(i).name);
    EXPECT_EQ(got->column(i).type, s.column(i).type);
  }
  EXPECT_TRUE(r.AtEnd());
}

// Builds a result whose columns hit every encoding: kBool, kInt64,
// kDouble, kDict (strings) and kTagged (the "mixed" column holds int64
// in even rows and double in odd rows — runtime types diverging from
// the declared schema, as post-aggregation columns do). NULLs land on
// word-boundary rows 63, 64 and 127 so multi-word bitmaps are real.
ResultSet MixedResult(size_t nrows) {
  ResultSet rs;
  rs.schema = TestSchema();
  const char* nodes[] = {"f1", "f2", "f3"};
  for (size_t i = 0; i < nrows; ++i) {
    Row row;
    row.push_back(i % 7 == 0 ? Value::Null()
                             : Value::Bool(i % 2 == 0));
    row.push_back(i == 63 || i == 64 || i == 127
                      ? Value::Null()
                      : Value::Int64(static_cast<int64_t>(i) - 5));
    row.push_back(i % 11 == 3
                      ? Value::Null()
                      : Value::Double(i == 0 ? -0.0 : 0.25 * i));
    row.push_back(i % 13 == 5 ? Value::Null() : Value::String(nodes[i % 3]));
    row.push_back(i % 2 == 0 ? Value::Int64(static_cast<int64_t>(i))
                             : Value::Double(i + 0.5));
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

void ExpectResultSetRoundTrips(const ResultSet& rs) {
  WireWriter w;
  EncodeResultSet(rs, &w);
  WireReader r(w.buffer());
  auto got = DecodeResultSet(&r);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(got->rows.size(), rs.rows.size());
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    for (size_t c = 0; c < rs.schema.num_columns(); ++c) {
      const Value& want = rs.rows[i][c];
      const Value& have = got->rows[i][c];
      ASSERT_EQ(have.type(), want.type()) << "row " << i << " col " << c;
      ASSERT_EQ(have, want) << "row " << i << " col " << c;
    }
  }
  // The equivalence lane's actual contract: rendered CSV, byte for byte.
  EXPECT_EQ(got->ToCsv(), rs.ToCsv());
}

TEST(Serialize, ResultSetRoundTripAcrossBitmapWords) {
  ExpectResultSetRoundTrips(MixedResult(130));  // 3 bitmap words
}

TEST(Serialize, ResultSetRoundTripExactWordBoundary) {
  ExpectResultSetRoundTrips(MixedResult(64));
  ExpectResultSetRoundTrips(MixedResult(65));
}

TEST(Serialize, ResultSetRoundTripSingleRowAndEmpty) {
  ExpectResultSetRoundTrips(MixedResult(1));
  ExpectResultSetRoundTrips(MixedResult(0));
}

TEST(Serialize, NegativeZeroSurvivesBitExactly) {
  ResultSet rs = MixedResult(2);
  WireWriter w;
  EncodeResultSet(rs, &w);
  WireReader r(w.buffer());
  auto got = DecodeResultSet(&r);
  ASSERT_TRUE(got.ok());
  double d = got->rows[0][2].double_value();
  EXPECT_TRUE(std::signbit(d));
}

TEST(Serialize, AllNullColumnCarriesItsBitmap) {
  ResultSet rs;
  rs.schema = Schema({{"v", DataType::kDouble}});
  for (int i = 0; i < 100; ++i) rs.rows.push_back({Value::Null()});
  ExpectResultSetRoundTrips(rs);
}

TEST(Serialize, TruncationAtEveryByteFailsCleanly) {
  ResultSet rs = MixedResult(130);
  WireWriter w;
  EncodeResultSet(rs, &w);
  const std::string& full = w.buffer();
  // Any strict prefix must decode to an error (the codec has no
  // optional trailing sections), and must do so without reading past
  // the buffer — ASan enforces the second half.
  for (size_t n = 0; n < full.size(); ++n) {
    WireReader r(std::string_view(full).substr(0, n));
    auto got = DecodeResultSet(&r);
    ASSERT_FALSE(got.ok()) << "prefix " << n << " of " << full.size();
    ASSERT_EQ(got.status().code(), StatusCode::kParseError) << "prefix " << n;
  }
}

TEST(Serialize, LyingHeadersCannotForceAllocation) {
  // ncols claims 2^31 columns in a 10-byte body.
  {
    WireWriter w;
    w.U32(1u << 31);
    w.Raw("abcdef", 6);
    WireReader r(w.buffer());
    EXPECT_FALSE(DecodeResultSet(&r).ok());
  }
  // One kAllNull column claiming 2^60 rows without bitmap bytes: the
  // bitmap requirement bounds nrows by payload actually present.
  {
    WireWriter w;
    w.U32(1);  // ncols
    w.Str("v");
    w.U8(static_cast<uint8_t>(DataType::kDouble));
    w.U64(uint64_t{1} << 60);  // nrows
    w.U8(0);                   // ColumnEncoding::kAllNull
    w.U8(1);                   // has_nulls... but no words follow
    WireReader r(w.buffer());
    auto got = DecodeResultSet(&r);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kParseError);
  }
  // kAllNull with nrows > 0 but has_nulls=0 violates the format.
  {
    WireWriter w;
    w.U32(1);
    w.Str("v");
    w.U8(static_cast<uint8_t>(DataType::kDouble));
    w.U64(4);
    w.U8(0);  // kAllNull
    w.U8(0);  // has_nulls=0: illegal for nonzero nrows
    WireReader r(w.buffer());
    EXPECT_FALSE(DecodeResultSet(&r).ok());
  }
}

TEST(Serialize, DictCodeOutOfRangeIsAParseError) {
  // Legitimate frame for one 2-row string column, then corrupt the
  // final code (last 4 bytes) to point past the dictionary.
  ResultSet rs;
  rs.schema = Schema({{"node", DataType::kString}});
  rs.rows.push_back({Value::String("f1")});
  rs.rows.push_back({Value::String("f2")});
  WireWriter w;
  EncodeResultSet(rs, &w);
  std::string buf = w.Take();
  buf[buf.size() - 4] = '\x7f';
  WireReader r(buf);
  auto got = DecodeResultSet(&r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
}

TEST(Serialize, UnknownColumnEncodingRejected) {
  WireWriter w;
  w.U32(1);
  w.Str("v");
  w.U8(static_cast<uint8_t>(DataType::kInt64));
  w.U64(1);
  w.U8(0x6b);  // not a ColumnEncoding
  w.U8(0);
  w.U64(7);
  WireReader r(w.buffer());
  EXPECT_FALSE(DecodeResultSet(&r).ok());
}

TEST(Serialize, TrailingBytesAreRejected) {
  // A frame body is exactly one result; junk after a well-formed
  // result means the frame is corrupt, and the decoder says so rather
  // than silently ignoring bytes.
  ResultSet rs = MixedResult(3);
  WireWriter w;
  EncodeResultSet(rs, &w);
  w.U8(0x99);
  WireReader r(w.buffer());
  auto got = DecodeResultSet(&r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
}

// EncodeColumnVector's block-copy path: contiguous owned i64 storage
// with a multi-word null bitmap ships via single memcpys and decodes
// back to the same logical values.
TEST(Serialize, ColumnVectorInt64BlockCopy) {
  const size_t n = 70;
  ColumnVector col;
  col.type = DataType::kInt64;
  col.length = n;
  for (size_t i = 0; i < n; ++i) {
    col.own_i64.push_back(static_cast<int64_t>(i * 3) - 7);
  }
  col.SetNull(0);
  col.SetNull(63);
  col.SetNull(64);
  col.Seal();

  WireWriter w;
  EncodeColumnVector(col, n, &w);
  WireReader r(w.buffer());
  std::vector<Value> out;
  auto st = DecodeColumn(&r, n, &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(out.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], col.GetValue(i)) << "index " << i;
  }
}

TEST(Serialize, ColumnVectorDictRemapsToFrameLocalDictionary) {
  // The shared dictionary interns strings the column never uses; the
  // frame must ship only the used subset, remapped, and still decode to
  // the same strings.
  auto dict = std::make_shared<Dictionary>();
  dict->Intern("unused-a");
  uint32_t f1 = dict->Intern("f1");
  dict->Intern("unused-b");
  uint32_t f9 = dict->Intern("f9");

  const size_t n = 5;
  ColumnVector col;
  col.type = DataType::kString;
  col.length = n;
  col.own_codes = {f1, f9, f1, f1, f9};
  col.own_dict = dict;
  col.SetNull(2);
  col.Seal();

  WireWriter w;
  EncodeColumnVector(col, n, &w);
  WireReader r(w.buffer());
  std::vector<Value> out;
  ASSERT_TRUE(DecodeColumn(&r, n, &out).ok());
  ASSERT_EQ(out.size(), n);
  EXPECT_EQ(out[0], Value::String("f1"));
  EXPECT_EQ(out[1], Value::String("f9"));
  EXPECT_TRUE(out[2].is_null());
  EXPECT_EQ(out[3], Value::String("f1"));
  EXPECT_EQ(out[4], Value::String("f9"));
}

}  // namespace
}  // namespace net
}  // namespace ff
