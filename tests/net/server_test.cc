// Served statsdb end-to-end tests: query/prepare/execute lifecycle over
// a real loopback socket, error-text identity with in-process
// execution, the malformed-frame hardening contract (clean kError or
// session close — never a crash or hang; CI runs this binary under
// ASan/UBSan), pipelined ordering, runtime-table export, and the
// concurrent readers-plus-writer lane that the TSan job exists for.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/table.h"
#include "util/status.h"

namespace ff {
namespace net {
namespace {

using statsdb::CacheConfig;
using statsdb::DataType;
using statsdb::Schema;
using statsdb::Value;
using util::Status;
using util::StatusCode;

// Seeds the same tiny runs table into a server-owned or reference
// database so wire answers can be diffed against in-process ones.
void SeedRuns(statsdb::Database* db) {
  Schema runs({{"forecast", DataType::kString},
               {"day", DataType::kInt64},
               {"walltime", DataType::kDouble}});
  statsdb::Table* t = *db->CreateTable("runs", runs);
  const char* forecasts[] = {"till", "dev", "coos"};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t->Insert({Value::String(forecasts[i % 3]),
                           Value::Int64(i % 30),
                           i % 17 == 0 ? Value::Null()
                                       : Value::Double(100.0 * i)})
                    .ok());
  }
}

std::unique_ptr<Server> StartedServer(bool seed = true,
                                      size_t pool_threads = 4) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.pool_threads = pool_threads;
  auto server = std::make_unique<Server>(cfg);
  if (seed) SeedRuns(&server->db());
  Status st = server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(server->port(), 0);
  return server;
}

Client ConnectTo(const Server& server) {
  auto c = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return std::move(*c);
}

TEST(IsWriteStatementTest, ClassifiesFirstKeyword) {
  EXPECT_TRUE(IsWriteStatement("INSERT INTO t VALUES (1)"));
  EXPECT_TRUE(IsWriteStatement("  update t set x = 1"));
  EXPECT_TRUE(IsWriteStatement("DELETE FROM t"));
  EXPECT_TRUE(IsWriteStatement("CREATE TABLE t (x INT)"));
  EXPECT_TRUE(IsWriteStatement("DROP TABLE t"));
  EXPECT_TRUE(IsWriteStatement("  -- audit note\nINSERT INTO t VALUES (1)"));
  EXPECT_TRUE(IsWriteStatement("/* hint */ UPDATE t SET x = 1"));
  EXPECT_FALSE(IsWriteStatement("SELECT * FROM t"));
  EXPECT_FALSE(IsWriteStatement("EXPLAIN SELECT 1"));
  EXPECT_FALSE(IsWriteStatement("INSERTT INTO t"));  // not the keyword
  EXPECT_FALSE(IsWriteStatement(""));
  EXPECT_FALSE(IsWriteStatement("/* unterminated INSERT"));
}

TEST(ServerLifecycle, StartStopIsIdempotent) {
  auto server = StartedServer(/*seed=*/false);
  EXPECT_TRUE(server->running());
  EXPECT_FALSE(server->Start().ok()) << "double Start must refuse";
  server->Stop();
  EXPECT_FALSE(server->running());
  server->Stop();  // second Stop is a no-op
}

TEST(ServerQuery, BatchAndRowFramingsAgree) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  const std::string sql =
      "SELECT forecast, COUNT(*) AS n, AVG(walltime) AS aw FROM runs "
      "GROUP BY forecast ORDER BY forecast";
  auto batch = c.Query(sql);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  auto rows = c.QueryRows(sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(batch->ToCsv(), rows->ToCsv());
  EXPECT_EQ(batch->rows.size(), 3u);
}

TEST(ServerQuery, WritesLandAndReadBackOverTheWire) {
  auto server = StartedServer(/*seed=*/false);
  Client c = ConnectTo(*server);
  ASSERT_TRUE(
      c.Query("CREATE TABLE t (name TEXT, x INT)").ok());
  ASSERT_TRUE(c.Query("INSERT INTO t VALUES ('a', 1)").ok());
  ASSERT_TRUE(c.Query("INSERT INTO t VALUES ('b', 2)").ok());
  ASSERT_TRUE(c.Query("UPDATE t SET x = 7 WHERE name = 'a'").ok());
  ASSERT_TRUE(c.Query("DELETE FROM t WHERE name = 'b'").ok());
  auto rs = c.Query("SELECT name, x FROM t ORDER BY name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "name,x\na,7\n");
}

TEST(ServerQuery, ErrorTextIsByteIdenticalToInProcess) {
  auto server = StartedServer();
  statsdb::Database ref;
  ASSERT_NO_FATAL_FAILURE(SeedRuns(&ref));
  ref.set_cache_config(CacheConfig{});
  Client c = ConnectTo(*server);
  const char* statements[] = {
      "SELEC walltime FROM runs",
      "SELECT * FROM missing_table",
      "SELECT no_such_column FROM runs",
      "SELECT day FROM runs WHERE",
      "INSERT INTO runs VALUES (1)",
      "not sql at all",
  };
  for (const char* sql : statements) {
    auto wire = c.Query(sql);
    auto local = ref.Sql(sql);
    ASSERT_FALSE(local.ok()) << sql << " unexpectedly parsed";
    ASSERT_FALSE(wire.ok()) << sql;
    EXPECT_EQ(wire.status().ToString(), local.status().ToString()) << sql;
  }
  // The session survives every error above.
  auto rs = c.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "n\n300\n");
}

TEST(ServerPrepared, LifecycleAndStaleIdErrors) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  auto stmt = c.Prepare("SELECT day, walltime FROM runs WHERE day = ? "
                        "ORDER BY walltime DESC");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->num_params, 1u);

  auto rs = c.ExecutePrepared(*stmt, {Value::Int64(7)});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 10u);  // 300 rows, day = i % 30
  for (const auto& row : rs->rows) EXPECT_EQ(row[0], Value::Int64(7));

  // Row-at-a-time framing of the same execute matches byte-for-byte.
  auto rows = c.ExecutePrepared(*stmt, {Value::Int64(7)},
                                /*row_at_a_time=*/true);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->ToCsv(), rs->ToCsv());

  // Wrong parameter count is the engine's error, not a protocol one.
  EXPECT_FALSE(c.ExecutePrepared(*stmt, {}).ok());

  ASSERT_TRUE(c.ClosePrepared(*stmt).ok());
  auto stale = c.ExecutePrepared(*stmt, {Value::Int64(7)});
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);
  EXPECT_NE(stale.status().ToString().find("no prepared statement"),
            std::string::npos)
      << stale.status().ToString();
  EXPECT_EQ(c.ClosePrepared(*stmt).code(), StatusCode::kNotFound);

  // Prepare is SELECT-only; a write statement is refused.
  EXPECT_FALSE(c.Prepare("INSERT INTO runs VALUES ('x', 1, 2.0)").ok());
}

TEST(ServerPrepared, PipelinedResponsesArriveInSendOrder) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  auto stmt = c.Prepare(
      "SELECT day, COUNT(*) AS n FROM runs WHERE day = ? GROUP BY day");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  constexpr int kInFlight = 24;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(c.SendExecute(*stmt, {Value::Int64(i % 30)}).ok());
  }
  for (int i = 0; i < kInFlight; ++i) {
    auto rs = c.ReadResult();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][0], Value::Int64(i % 30))
        << "response " << i << " out of order";
  }
}

// Malformed-frame hardening. Recoverable garbage answers kError and the
// session continues; untrustworthy framing answers one kError and the
// server closes the session; a mid-frame disconnect just reaps. The
// server must stay alive and Stop() cleanly afterwards in every case.
TEST(ServerHardening, UnknownOpcodeIsRecoverable) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  ASSERT_TRUE(c.SendRaw(EncodeFrame(static_cast<Opcode>(0x7f), "junk")).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->first, Opcode::kError);
  auto rs = c.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << "session should survive an unknown opcode";
}

TEST(ServerHardening, TruncatedBodyIsRecoverable) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  // kExecute whose body stops inside the u32 stmt_id.
  ASSERT_TRUE(c.SendRaw(EncodeFrame(Opcode::kExecute, "\x01")).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->first, Opcode::kError);
  auto rs = c.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << "session should survive a truncated body";
}

void ExpectErrorThenClose(Client* c) {
  auto frame = c->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->first, Opcode::kError);
  // After the kError the server closes its end: the next read must
  // terminate (IoError on clean close), not hang.
  auto next = c->ReadFrame();
  EXPECT_FALSE(next.ok());
}

TEST(ServerHardening, ZeroLengthFramePoisonsTheSession) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  ASSERT_TRUE(c.SendRaw(std::string("\x00\x00\x00\x00", 4)).ok());
  ASSERT_NO_FATAL_FAILURE(ExpectErrorThenClose(&c));
  // The server itself is unharmed: new sessions work.
  Client c2 = ConnectTo(*server);
  EXPECT_TRUE(c2.Query("SELECT COUNT(*) AS n FROM runs").ok());
}

TEST(ServerHardening, OversizedDeclaredLengthPoisonsTheSession) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  ASSERT_TRUE(c.SendRaw(std::string("\xff\xff\xff\xff", 4)).ok());
  ASSERT_NO_FATAL_FAILURE(ExpectErrorThenClose(&c));
  Client c2 = ConnectTo(*server);
  EXPECT_TRUE(c2.Query("SELECT COUNT(*) AS n FROM runs").ok());
}

TEST(ServerHardening, MidFrameDisconnectReapsQuietly) {
  auto server = StartedServer();
  {
    Client c = ConnectTo(*server);
    // Header promising 100 bytes, then only 5, then vanish.
    WireWriter w;
    w.U32(100);
    w.Raw("abcde", 5);
    ASSERT_TRUE(c.SendRaw(w.buffer()).ok());
  }  // ~Client closes the socket mid-frame
  {
    Client c = ConnectTo(*server);
    // Bare truncated header (2 of 4 length bytes), then vanish.
    ASSERT_TRUE(c.SendRaw(std::string("\x05\x00", 2)).ok());
  }
  Client c = ConnectTo(*server);
  EXPECT_TRUE(c.Query("SELECT COUNT(*) AS n FROM runs").ok());
  server->Stop();  // must not hang on the half-dead sessions
}

TEST(ServerRuntime, SessionAndCacheTablesAreServed) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        c.Query("SELECT COUNT(*) AS n FROM runs WHERE day = " +
                std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(c.Query("SELECT nothing FROM nowhere").status().code() ==
              StatusCode::kNotFound);
  ASSERT_TRUE(c.RefreshServerStats().ok());

  auto sessions = c.Query(
      "SELECT session, queries, errors FROM runtime_sessions "
      "ORDER BY session");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  ASSERT_GE(sessions->rows.size(), 1u);
  EXPECT_GE(sessions->rows[0][1].int64_value(), 6);  // this session's
  EXPECT_GE(sessions->rows[0][2].int64_value(), 1);  // the NotFound above

  auto cache = c.Query(
      "SELECT tier, hits, misses FROM runtime_cache ORDER BY tier");
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ(cache->rows.size(), 2u);  // plan + result tiers

  // SessionStats agrees with what the table reported.
  auto snaps = server->SessionStats();
  ASSERT_GE(snaps.size(), 1u);
  EXPECT_GE(snaps[0].queries, 6u);
}

TEST(ServerRuntime, CacheDefaultsFullUnlessConfiguredOff) {
  if (std::getenv("FF_STATSDB_CACHE") != nullptr) {
    GTEST_SKIP() << "FF_STATSDB_CACHE overrides the server default";
  }
  {
    auto server = StartedServer(/*seed=*/false);
    EXPECT_EQ(server->db().cache_config().mode, CacheConfig::Mode::kFull);
  }
  {
    ServerConfig cfg;
    cfg.port = 0;
    cfg.cache_default_full = false;
    Server server(cfg);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.db().cache_config().mode, CacheConfig::Mode::kOff);
  }
}

TEST(ServerRuntime, SubmitWriteRunsUnderExclusionWhileServing) {
  auto server = StartedServer();
  Client c = ConnectTo(*server);
  Status st = server->SubmitWrite([&]() -> Status {
    return server->db()
        .Sql("INSERT INTO runs VALUES ('till', 99, 1.0)")
        .status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto rs = c.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ToCsv(), "n\n301\n");
}

// The TSan lane: concurrent read sessions racing a write session, with
// morsel-parallel SELECTs fanning out on the same pool the session
// tasks run on. Row counts are checked loosely (writes land in some
// serial order) and exactly after the dust settles.
TEST(ServerConcurrency, ParallelReadersWithInterleavedWrites) {
  auto server = StartedServer(/*seed=*/true, /*pool_threads=*/4);
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 40;
  constexpr int kWrites = 40;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      auto c = Client::Connect("127.0.0.1", server->port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kQueriesPerReader; ++i) {
        auto rs = (i + t) % 2 == 0
                      ? c->Query("SELECT forecast, COUNT(*) AS n, "
                                 "AVG(walltime) AS aw FROM runs "
                                 "GROUP BY forecast ORDER BY forecast")
                      : c->Query("SELECT COUNT(*) AS n FROM runs "
                                 "WHERE day = " + std::to_string(i % 30));
        if (!rs.ok() || rs->rows.empty()) ++failures;
      }
    });
  }
  threads.emplace_back([&] {
    auto c = Client::Connect("127.0.0.1", server->port());
    if (!c.ok()) {
      ++failures;
      return;
    }
    for (int i = 0; i < kWrites; ++i) {
      auto rs = c->Query("INSERT INTO runs VALUES ('dev', " +
                         std::to_string(i % 30) + ", 42.0)");
      if (!rs.ok()) ++failures;
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  Client c = ConnectTo(*server);
  auto rs = c.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ToCsv(), "n\n" + std::to_string(300 + kWrites) + "\n");
  server->Stop();
}

}  // namespace
}  // namespace net
}  // namespace ff
