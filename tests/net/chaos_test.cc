// Robustness tests for the chaos-hardened serving stack: deterministic
// fault injection (chaos_transport.h) on a real socketpair, the
// RetryingClient's retry discipline (reads retry, mutations never,
// server errors never), client deadlines, and every server overload
// limit — admission shedding, connection ceiling, idle/stall/overflow
// closes, graceful Stop() under load and the drain deadline. CI runs
// this binary under ASan/UBSan and TSan.

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos_transport.h"
#include "net/client.h"
#include "net/retrying_client.h"
#include "net/server.h"
#include "net/transport.h"
#include "net/wire.h"
#include "statsdb/database.h"
#include "statsdb/table.h"
#include "util/status.h"

namespace ff {
namespace net {
namespace {

using statsdb::DataType;
using statsdb::Schema;
using statsdb::Value;
using util::Status;
using util::StatusCode;

void SeedRuns(statsdb::Database* db, int rows = 300) {
  Schema runs({{"forecast", DataType::kString},
               {"day", DataType::kInt64},
               {"walltime", DataType::kDouble}});
  statsdb::Table* t = *db->CreateTable("runs", runs);
  const char* forecasts[] = {"till", "dev", "coos"};
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(t->Insert({Value::String(forecasts[i % 3]),
                           Value::Int64(i % 30), Value::Double(100.0 * i)})
                    .ok());
  }
}

std::unique_ptr<Server> StartedServer(ServerConfig cfg, int rows = 300) {
  cfg.port = 0;
  auto server = std::make_unique<Server>(cfg);
  SeedRuns(&server->db(), rows);
  Status st = server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return server;
}

/// Waits (bounded) for a server counter to become nonzero — limits fire
/// on the event thread's sweep tick, not synchronously with the client.
bool EventuallyNonzero(const std::atomic<uint64_t>& counter,
                       int deadline_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (counter.load(std::memory_order_relaxed) > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return counter.load(std::memory_order_relaxed) > 0;
}

// ---------------------------------------------------------------------
// ChaosTransport determinism on a real socketpair
// ---------------------------------------------------------------------

struct ChaosRun {
  std::string received;   // bytes as seen by the raw peer
  std::string counters;   // ChaosCounters::ToString()
  size_t sent = 0;        // bytes the chaotic sender got through
  std::string error;      // terminal send error, if any
};

/// Pushes `payload` through a ChaosTransport over one side of a
/// socketpair and collects what the raw other side received.
void PushThroughChaos(const std::string& payload,
                      const ChaosProfile& profile, uint64_t conn_index,
                      ChaosRun* run) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      ssize_t n = recv(fds[1], buf, sizeof(buf), 0);
      if (n <= 0) break;
      run->received.append(buf, static_cast<size_t>(n));
    }
  });
  {
    auto base = SocketTransport::Adopt(fds[0], TransportDeadlines{});
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    ChaosCounters counters;
    ChaosTransport chaos(std::move(*base), profile, conn_index, &counters);
    while (run->sent < payload.size()) {
      auto n = chaos.Send(payload.data() + run->sent,
                          payload.size() - run->sent);
      if (!n.ok()) {
        run->error = n.status().ToString();
        break;
      }
      run->sent += *n;
    }
    chaos.Close();  // fds[0] belongs to the transport
    run->counters = counters.ToString();
  }
  reader.join();
  close(fds[1]);
}

TEST(ChaosTransportSocket, SameSeedSameBytesSameCounters) {
  std::string payload(16 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131) & 0xff);
  }
  ChaosProfile profile;
  profile.seed = 0xdecaf;
  profile.split_gap_bytes = 64;
  profile.corrupt_gap_bytes = 512;

  ChaosRun a, b;
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 0, &a));
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 0, &b));
  EXPECT_EQ(a.sent, payload.size());
  EXPECT_EQ(a.received.size(), payload.size());
  EXPECT_NE(a.received, payload) << "corruption should have fired";
  EXPECT_EQ(a.counters.find("splits=0 "), std::string::npos) << a.counters;
  EXPECT_EQ(a.counters.find("corruptions=0 "), std::string::npos)
      << a.counters;
  // The whole point: however the kernel chunked the socketpair I/O, the
  // faulted byte stream and the counters replay exactly.
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(ChaosTransportSocket, DifferentConnIndexDifferentTimeline) {
  std::string payload(16 * 1024, 'x');
  ChaosProfile profile;
  profile.seed = 0xdecaf;
  profile.split_gap_bytes = 64;
  profile.corrupt_gap_bytes = 512;
  ChaosRun a, b;
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 0, &a));
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 1, &b));
  EXPECT_NE(a.received, b.received)
      << "conn_index must select distinct substreams";
}

TEST(ChaosTransportSocket, ResetFiresAtDeterministicOffset) {
  std::string payload(64 * 1024, 'r');
  ChaosProfile profile;
  profile.seed = 0xdecaf;
  profile.reset_gap_bytes = 4096;
  ChaosRun a, b;
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 3, &a));
  ASSERT_NO_FATAL_FAILURE(PushThroughChaos(payload, profile, 3, &b));
  EXPECT_LT(a.sent, payload.size());
  EXPECT_NE(a.error.find("connection reset"), std::string::npos) << a.error;
  EXPECT_EQ(a.sent, b.sent) << "reset offset must be seed-deterministic";
  EXPECT_EQ(a.counters, b.counters);
}

// ---------------------------------------------------------------------
// RetryingClient retry discipline
// ---------------------------------------------------------------------

/// Pass-through transport that fails every Recv while armed. Injected
/// via ClientOptions::wrap_transport on selected connection indexes to
/// simulate "request sent, response lost".
class RecvFailTransport : public Transport {
 public:
  RecvFailTransport(std::unique_ptr<Transport> base, bool fail)
      : base_(std::move(base)), fail_(fail) {}
  util::StatusOr<size_t> Send(const char* data, size_t n) override {
    return base_->Send(data, n);
  }
  util::StatusOr<size_t> Recv(char* buf, size_t n) override {
    if (fail_) return Status::IoError("injected: response lost");
    return base_->Recv(buf, n);
  }
  void Close() override { base_->Close(); }

 private:
  std::unique_ptr<Transport> base_;
  bool fail_;
};

/// Options whose first connection loses every response; later
/// connections are healthy.
RetryingClientOptions FirstConnectionLossy() {
  RetryingClientOptions opts;
  auto conn = std::make_shared<std::atomic<uint64_t>>(0);
  opts.client.wrap_transport =
      [conn](std::unique_ptr<Transport> base) -> std::unique_ptr<Transport> {
    const uint64_t index = conn->fetch_add(1);
    return std::make_unique<RecvFailTransport>(std::move(base), index == 0);
  };
  opts.policy.base_backoff = 0.001;  // keep the ladder fast in tests
  opts.policy.max_backoff = 0.01;
  return opts;
}

TEST(RetryingClientTest, ReadRetriesAcrossALostResponse) {
  auto server = StartedServer(ServerConfig{});
  RetryingClient client("127.0.0.1", server->port(), FirstConnectionLossy());
  auto rs = client.Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "n\n300\n");
  EXPECT_EQ(client.stats().connects, 2u);  // reconnected once
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().gave_up, 0u);
}

TEST(RetryingClientTest, MutationIsNeverRetriedAfterSend) {
  auto server = StartedServer(ServerConfig{});
  RetryingClient client("127.0.0.1", server->port(), FirstConnectionLossy());
  auto rs = client.Query("INSERT INTO runs VALUES ('new', 99, 1.0)");
  ASSERT_FALSE(rs.ok()) << "a lost response must surface, not be retried";
  EXPECT_FALSE(client.raw().last_error_was_server_reported());
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().not_retried, 1u);

  // The refusal is the safe choice BECAUSE the statement actually
  // committed before the response was lost — a blind re-send would have
  // double-applied it. The commit is asynchronous to our error, so poll.
  auto check = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(check.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::string csv;
  while (std::chrono::steady_clock::now() < deadline) {
    auto count =
        check->Query("SELECT COUNT(*) AS n FROM runs WHERE day = 99");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    csv = count->ToCsv();
    if (csv != "n\n0\n") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(csv, "n\n1\n") << "the unretried INSERT landed exactly once";
}

TEST(RetryingClientTest, ServerReportedErrorIsNotRetried) {
  auto server = StartedServer(ServerConfig{});
  RetryingClientOptions opts;
  RetryingClient client("127.0.0.1", server->port(), std::move(opts));
  auto rs = client.Query("SELECT nope FROM nowhere");
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(client.raw().last_error_was_server_reported());
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().not_retried, 1u);
  // The session survived: the error WAS the answer, not a failure.
  EXPECT_TRUE(client.Query("SELECT COUNT(*) AS n FROM runs").ok());
}

TEST(RetryingClientTest, PreparedStatementSurvivesReconnect) {
  auto server = StartedServer(ServerConfig{});
  RetryingClient client("127.0.0.1", server->port(), FirstConnectionLossy());
  // Prepare retries onto connection 1; the later drop forces a
  // transparent re-prepare on connection 2.
  auto stmt = client.Prepare("SELECT COUNT(*) AS n FROM runs WHERE day = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto rs = client.ExecutePrepared(*stmt, {Value::Int64(7)});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "n\n10\n");
  client.raw().Close();  // sever the session behind the client's back
  auto again = client.ExecutePrepared(*stmt, {Value::Int64(7)});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToCsv(), "n\n10\n");
  EXPECT_GE(client.stats().reprepared, 1u);
}

TEST(ClientDeadlines, SilentServerSurfacesDeadlineMissed) {
  // A listener that completes the TCP handshake and then says nothing.
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  ClientOptions opts;
  opts.connect_timeout_ms = 2000;
  opts.io_timeout_ms = 100;
  auto client = Client::Connect("127.0.0.1", ntohs(addr.sin_port), opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto t0 = std::chrono::steady_clock::now();
  auto rs = client->Query("SELECT 1");
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().IsDeadlineMissed()) << rs.status().ToString();
  EXPECT_LT(waited_ms, 5000.0) << "deadline must bound the wait";
  close(listener);
}

// ---------------------------------------------------------------------
// Server overload limits
// ---------------------------------------------------------------------

TEST(ServerOverload, AdmissionBudgetShedsTypedUnavailable) {
  ServerConfig cfg;
  cfg.pool_threads = 1;
  cfg.max_pending_frames = 1;
  auto server = StartedServer(cfg);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  // One burst of pipelined queries, sent as a single write so the event
  // thread enqueues them back-to-back against the budget of 1.
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    WireWriter w;
    w.U8(0);
    const std::string sql =
        "SELECT COUNT(*) AS n FROM runs WHERE day = " + std::to_string(i % 30);
    w.Raw(sql.data(), sql.size());
    burst += EncodeFrame(Opcode::kQuery, w.buffer());
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());

  int ok = 0, shed = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << "response " << i << ": "
                            << frame.status().ToString();
    if (frame->first == Opcode::kResultSet) {
      ++ok;
    } else if (frame->first == Opcode::kError && !frame->second.empty() &&
               static_cast<uint8_t>(frame->second[0]) ==
                   static_cast<uint8_t>(StatusCode::kUnavailable)) {
      ++shed;
      EXPECT_NE(frame->second.find("overloaded"), std::string::npos);
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0) << "the first frame is always under budget";
  EXPECT_GT(shed, 0) << "a 64-frame burst against budget 1 must shed";
  EXPECT_GT(server->counters().shed_frames.load(), 0u);

  // Shedding is per-frame, not per-session: the session still works.
  auto rs = client->Query("SELECT COUNT(*) AS n FROM runs");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->ToCsv(), "n\n300\n");

  // The shed count is visible in the session's runtime row.
  auto snaps = server->SessionStats();
  ASSERT_GE(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].shed, static_cast<uint64_t>(shed));
}

TEST(ServerOverload, ConnectionLimitRefusesWithReason) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  auto server = StartedServer(cfg);
  auto first = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first).Query("SELECT COUNT(*) AS n FROM runs").ok());

  {
    // The over-limit connection is accepted, told why, and closed — a
    // typed kUnavailable, not a silent RST.
    auto refused = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(refused.ok()) << "TCP accept itself must succeed";
    auto frame = refused->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->first, Opcode::kError);
    ASSERT_FALSE(frame->second.empty());
    EXPECT_EQ(static_cast<uint8_t>(frame->second[0]),
              static_cast<uint8_t>(StatusCode::kUnavailable));
    EXPECT_NE(frame->second.find("connection limit"), std::string::npos);
    EXPECT_FALSE(refused->ReadFrame().ok()) << "then the server closes";
  }
  EXPECT_GE(server->counters().refused_connections.load(), 1u);

  // Freeing the slot re-opens the door (the reap happens on the event
  // thread, so poll briefly).
  first->Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < deadline) {
    auto next = Client::Connect("127.0.0.1", server->port());
    if (next.ok() && next->Query("SELECT COUNT(*) AS n FROM runs").ok()) {
      admitted = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(ServerOverload, IdleSessionIsClosed) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 80;
  auto server = StartedServer(cfg);
  ClientOptions copts;
  copts.io_timeout_ms = 5000;
  auto client = Client::Connect("127.0.0.1", server->port(), copts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client).Query("SELECT COUNT(*) AS n FROM runs").ok());
  // Go quiet. The next read terminates with the server's clean close —
  // not a hang, and not a deadline on OUR side.
  auto frame = client->ReadFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsIoError()) << frame.status().ToString();
  EXPECT_TRUE(EventuallyNonzero(server->counters().idle_closed));
}

/// Connects a raw socket with a deliberately tiny receive buffer (set
/// BEFORE connect, which pins the TCP window and defeats receive-side
/// autotuning), fires `count` pipelined full-table queries, and never
/// reads — wedging response bytes in the server's outbound buffers.
/// Returns the fd (caller closes); -1 on failure.
int WedgeReader(uint16_t port, int count) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int rcvbuf = 8 * 1024;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  std::string burst;
  for (int i = 0; i < count; ++i) {
    WireWriter w;
    w.U8(0);
    const std::string sql = "SELECT forecast, day, walltime FROM runs";
    w.Raw(sql.data(), sql.size());
    burst += EncodeFrame(Opcode::kQuery, w.buffer());
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    ssize_t n = send(fd, burst.data() + sent, burst.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  return fd;
}

TEST(ServerOverload, OutboundOverflowClosesTheSlowReader) {
  ServerConfig cfg;
  cfg.max_outbound_buffer_bytes = 16 * 1024;
  auto server = StartedServer(cfg, /*rows=*/20000);
  int fd = WedgeReader(server->port(), 40);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(EventuallyNonzero(server->counters().overflow_closed))
      << "a reader this far behind must be cut loose";
  close(fd);
  // The server itself is unharmed.
  auto fresh = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh).Query("SELECT COUNT(*) AS n FROM runs").ok());
}

TEST(ServerOverload, WriteStallTimeoutClosesTheWedgedReader) {
  ServerConfig cfg;
  cfg.write_stall_timeout_ms = 100;
  auto server = StartedServer(cfg, /*rows=*/20000);
  int fd = WedgeReader(server->port(), 40);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(EventuallyNonzero(server->counters().stall_closed));
  close(fd);
  auto fresh = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh).Query("SELECT COUNT(*) AS n FROM runs").ok());
}

// ---------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------

// Pipelined clients hammer the server while Stop() lands. Every
// response a client DOES read must be a whole frame: a graceful drain
// may close a session between frames (clean IoError) but never inside
// one ("connection closed mid-frame" ParseError) — responses flush
// fully before the socket closes.
TEST(ServerShutdown, StopUnderLoadNeverTearsAFrame) {
  ServerConfig cfg;
  cfg.pool_threads = 4;
  auto server = StartedServer(cfg);
  constexpr int kClients = 4;
  std::atomic<int> torn{0}, responses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) return;
      for (;;) {
        constexpr int kWindow = 8;
        std::string burst;
        for (int i = 0; i < kWindow; ++i) {
          WireWriter w;
          w.U8(0);
          const std::string sql = "SELECT COUNT(*) AS n FROM runs";
          w.Raw(sql.data(), sql.size());
          burst += EncodeFrame(Opcode::kQuery, w.buffer());
        }
        if (!client->SendRaw(burst).ok()) return;
        for (int i = 0; i < kWindow; ++i) {
          auto frame = client->ReadFrame();
          if (!frame.ok()) {
            if (frame.status().ToString().find("mid-frame") !=
                std::string::npos) {
              ++torn;
            }
            return;
          }
          ++responses;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(responses.load(), 0);
}

TEST(ServerShutdown, DrainDeadlineBoundsStopAgainstAWedgedReader) {
  ServerConfig cfg;
  cfg.drain_deadline_ms = 200;
  auto server = StartedServer(cfg, /*rows=*/20000);
  // A backlog the client will never read: without the deadline, Stop()
  // would wait forever for these outbound bytes to drain.
  int fd = WedgeReader(server->port(), 40);
  ASSERT_GE(fd, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  server->Stop();
  const double stop_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  EXPECT_LT(stop_ms, 5000.0) << "drain deadline must bound Stop()";
  EXPECT_GE(server->counters().drain_forced.load(), 1u);
  close(fd);
}

// ---------------------------------------------------------------------
// End-to-end chaos against a live server
// ---------------------------------------------------------------------

// The bench's chaos lane in miniature, as a test: a RetryingClient
// behind a full-fault ChaosTransport completes every read against a
// live server (TSan runs this with all server threads live).
TEST(ChaosEndToEnd, RetryingClientCompletesEveryReadUnderFaults) {
  ServerConfig cfg;
  cfg.pool_threads = 2;
  auto server = StartedServer(cfg);

  ChaosProfile profile;
  profile.seed = 0xfeedface;
  profile.split_gap_bytes = 48;
  profile.delay_gap_bytes = 1024;
  profile.delay_min_ms = 0.05;
  profile.delay_max_ms = 0.5;
  profile.corrupt_gap_bytes = 8192;
  profile.reset_gap_bytes = 8192;

  RetryingClientOptions opts;
  opts.client.connect_timeout_ms = 2000;
  opts.client.io_timeout_ms = 500;
  auto counters = std::make_shared<ChaosCounters>();
  auto conn = std::make_shared<std::atomic<uint64_t>>(0);
  opts.client.wrap_transport =
      [profile, counters,
       conn](std::unique_ptr<Transport> base) -> std::unique_ptr<Transport> {
    return std::make_unique<ChaosTransport>(std::move(base), profile,
                                            conn->fetch_add(1),
                                            counters.get());
  };
  opts.policy.max_attempts = 12;
  opts.policy.base_backoff = 0.001;
  opts.policy.max_backoff = 0.02;

  RetryingClient client("127.0.0.1", server->port(), std::move(opts));
  int completed = 0;
  for (int i = 0; i < 80; ++i) {
    auto rs = client.Query("SELECT COUNT(*) AS n FROM runs WHERE day = " +
                           std::to_string(i % 30));
    // rows OR a server-reported error (a corrupted byte may have turned
    // the SQL to garbage — the server's parse error is a complete
    // answer to what actually arrived). What must NOT happen is an
    // exhausted ladder or a hang.
    if (rs.ok() || client.raw().last_error_was_server_reported()) {
      ++completed;
    }
  }
  EXPECT_EQ(completed, 80);
  EXPECT_EQ(client.stats().gave_up, 0u);
  server->Stop();
}

}  // namespace
}  // namespace net
}  // namespace ff
