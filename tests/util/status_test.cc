#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace ff {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::DeadlineMissed("x").IsDeadlineMissed());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("table runs");
  EXPECT_EQ(s.ToString(), "NotFound: table runs");
}

TEST(StatusTest, WithContextPrependsForErrors) {
  Status s = Status::IoError("open failed").WithContext("crawling /logs");
  EXPECT_EQ(s.message(), "crawling /logs: open failed");
  EXPECT_TRUE(s.IsIoError());
}

TEST(StatusTest, WithContextPassesOkThrough) {
  Status s = Status::OK().WithContext("ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared rep
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    FF_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
    return Status::NotFound("after");
  };
  EXPECT_TRUE(f(true).IsInternal());
  EXPECT_TRUE(f(false).IsNotFound());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineMissed),
               "DeadlineMissed");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::OutOfRange("bad");
    return 10;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    FF_ASSIGN_OR_RETURN(int x, inner(fail));
    return x * 2;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 20);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace util
}  // namespace ff
