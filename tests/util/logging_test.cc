#include "util/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

namespace ff {
namespace util {
namespace {

struct Captured {
  LogLevel level;
  std::string text;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_level_ = GetMinLogLevel();
    SetMinLogLevel(LogLevel::kDebug);
    SetLogSink([this](LogLevel level, const std::string& text) {
      captured_.push_back({level, text});
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(prev_level_);
  }

  std::vector<Captured> captured_;
  LogLevel prev_level_;
};

TEST_F(LoggingTest, SinkReceivesFormattedMessage) {
  FF_LOG(WARNING) << "disk " << 42 << " full";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kWarning);
  EXPECT_NE(captured_[0].text.find("disk 42 full"), std::string::npos);
  EXPECT_NE(captured_[0].text.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, PrefixHasTimestampSeverityAndLocation) {
  FF_LOG(INFO) << "hello";
  ASSERT_EQ(captured_.size(), 1u);
  // [YYYY-MM-DD hh:mm:ss.mmm LEVEL file:line] message
  std::regex prefix(
      R"(^\[\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} INFO )"
      R"(\S*logging_test\.cc:\d+\] hello$)");
  EXPECT_TRUE(std::regex_match(captured_[0].text, prefix))
      << captured_[0].text;
}

TEST_F(LoggingTest, MinLevelFiltersBelowThreshold) {
  SetMinLogLevel(LogLevel::kError);
  FF_LOG(DEBUG) << "quiet";
  FF_LOG(WARNING) << "also quiet";
  FF_LOG(ERROR) << "loud";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kError);
}

TEST_F(LoggingTest, CheckPassesWithoutEmitting) {
  FF_CHECK(1 + 1 == 2) << "never streamed";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, DcheckActiveUnderForcedDebugChecks) {
  // The test suite compiles with FF_FORCE_DCHECK, so FF_DCHECK evaluates
  // its condition even in optimized builds.
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return true;
  };
  FF_DCHECK(count());
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(FF_LOG(FATAL) << "boom", "boom");
  EXPECT_DEATH(FF_CHECK(false) << "invariant", "Check failed");
}

}  // namespace
}  // namespace util
}  // namespace ff
