#include "util/summary_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ff {
namespace util {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SummaryStatsTest, MergeMatchesSequential) {
  SummaryStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.7 - 3.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  SummaryStats a_copy = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(FitLinearTest, ExactLine) {
  auto fit = FitLinear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10.0), 21.0, 1e-12);
}

TEST(FitLinearTest, NoisyLineHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(5.0 * i + 100.0 + ((i % 3) - 1) * 0.5);
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 5.0, 0.01);
  EXPECT_GT(fit->r_squared, 0.999);
}

TEST(FitLinearTest, ErrorsOnBadInput) {
  EXPECT_FALSE(FitLinear({1.0}, {2.0}).ok());
  EXPECT_FALSE(FitLinear({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(FitLinear({3, 3, 3}, {1, 2, 3}).ok());  // constant x
}

TEST(FitLinearTest, ConstantYPerfectFit) {
  auto fit = FitLinear({1, 2, 3}, {4, 4, 4});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

TEST(PercentileTest, KnownQuartiles) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 12.5), 1.5);  // interpolated
}

TEST(PercentileTest, Errors) {
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile({1.0}, -1).ok());
  EXPECT_FALSE(Percentile({1.0}, 101).ok());
  EXPECT_DOUBLE_EQ(*Percentile({7.0}, 99), 7.0);
}

TEST(MadTest, RobustToOutlier) {
  // Median 3, deviations {2,1,0,1,2} -> MAD 1 regardless of the outlier.
  EXPECT_DOUBLE_EQ(*MedianAbsDeviation({1, 2, 3, 4, 1000}), 1.0);
}

}  // namespace
}  // namespace util
}  // namespace ff
