#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ff {
namespace util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {2,3,4,5} appear
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(19);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Exponential(0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsMedian) {
  Rng rng(29);
  constexpr int kN = 20001;
  std::vector<double> xs;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    xs.push_back(rng.LogNormalMedian(40000.0, 0.1));
  }
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2] / 40000.0, 1.0, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, IndexInBounds) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(10), 10u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(99);
  Rng child_a = a.Fork();
  Rng b(99);
  Rng child_b = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.Next(), child_b.Next());
  }
}

}  // namespace
}  // namespace util
}  // namespace ff
