#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ff {
namespace util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {2,3,4,5} appear
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(19);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Exponential(0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsMedian) {
  Rng rng(29);
  constexpr int kN = 20001;
  std::vector<double> xs;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    xs.push_back(rng.LogNormalMedian(40000.0, 0.1));
  }
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2] / 40000.0, 1.0, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, IndexInBounds) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(10), 10u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Pins the raw streams of the seeds the reproduction harnesses use
// (campaign default 42, a2 fleet 21, t4 plan 17, failure_drill 13, t3
// sweep 1..5). The fig6/fig7/t3 byte-identity guarantee rests on these
// sequences never changing — any edit to seeding, state layout, or
// Next() must fail here before it silently moves every golden output.
TEST(RngTest, PinnedSingleStreamSequencesUnchanged) {
  struct Pin {
    uint64_t seed;
    uint64_t expect[4];
  };
  const Pin kPins[] = {
      {42, {0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL,
            0xae17533239e499a1ULL, 0xecb8ad4703b360a1ULL}},
      {21, {0x07ed1dd6e5c94c11ULL, 0xce85619758d07de3ULL,
            0xae829f097b888ac3ULL, 0x51e4e810a139f05dULL}},
      {17, {0xa8722ce678e6e2caULL, 0xb0c58defa535f501ULL,
            0xf057b25ffb0bf1b9ULL, 0xf7aba65f754fde47ULL}},
      {13, {0x3e0712664d19f162ULL, 0xc865b20546892b77ULL,
            0xf68146bd1fb14ff8ULL, 0x1b522c2ca82e677eULL}},
      {1, {0xb3f2af6d0fc710c5ULL, 0x853b559647364ceaULL,
           0x92f89756082a4514ULL, 0x642e1c7bc266a3a7ULL}},
      {5, {0x49d55178ca54cf69ULL, 0x9a22115a4d2624dcULL,
           0xa648b1ccf0bbbbaeULL, 0xd2511e20de933bc5ULL}},
  };
  for (const Pin& p : kPins) {
    Rng rng(p.seed);
    for (uint64_t e : p.expect) {
      EXPECT_EQ(rng.Next(), e) << "seed " << p.seed;
    }
  }
  // Derived draws (a double path and the Fork chain), pinned as well.
  Rng u(42);
  EXPECT_DOUBLE_EQ(u.Uniform01(), 0.083862971059882163);
  EXPECT_DOUBLE_EQ(u.Uniform01(), 0.37898025066266861);
  Rng l(21);
  EXPECT_DOUBLE_EQ(l.LogNormalMedian(40000.0, 0.015), 40555.708164463678);
  Rng f(99);
  EXPECT_EQ(f.Fork().Next(), 0x5fca3b5c85812a83ULL);
}

TEST(RngTest, SplitIsDeterministicAndDrawOrderIndependent) {
  Rng a(1234);
  Rng b(1234);
  // Children are a pure function of (state, i): same state, same child.
  for (uint64_t i : {0ull, 1ull, 7ull, 1000ull}) {
    Rng ca = a.Split(i);
    Rng cb = b.Split(i);
    for (int k = 0; k < 16; ++k) EXPECT_EQ(ca.Next(), cb.Next());
  }
  // Split does not consume parent draws: the parents still agree.
  for (int k = 0; k < 16; ++k) EXPECT_EQ(a.Next(), b.Next());
  // ...and splitting after unequal draw counts yields different children
  // (the child depends on the state), while splitting at the same point
  // in the stream always yields the same family.
  Rng c(1234);
  c.Next();
  EXPECT_NE(c.Split(0).Next(), Rng(1234).Split(0).Next());
}

TEST(RngTest, SplitChildrenMutuallyIndependent) {
  Rng parent(42);
  // Distinct indices give streams that disagree essentially everywhere,
  // and no child equals the parent's own stream.
  Rng c0 = parent.Split(0);
  Rng c1 = parent.Split(1);
  Rng c2 = parent.Split(2);
  int diff01 = 0, diff12 = 0, diff0p = 0;
  Rng p_copy(42);
  for (int i = 0; i < 64; ++i) {
    uint64_t v0 = c0.Next(), v1 = c1.Next(), v2 = c2.Next();
    diff01 += v0 != v1;
    diff12 += v1 != v2;
    diff0p += v0 != p_copy.Next();
  }
  EXPECT_GE(diff01, 63);
  EXPECT_GE(diff12, 63);
  EXPECT_GE(diff0p, 63);
}

TEST(RngTest, JumpAdvancesWithoutOverlap) {
  Rng jumped(7);
  jumped.Jump();
  // The jumped stream must not reproduce the head of the original
  // stream (it sits 2^128 draws ahead).
  Rng head(7);
  std::set<uint64_t> head_vals;
  for (int i = 0; i < 256; ++i) head_vals.insert(head.Next());
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(head_vals.count(jumped.Next()), 0u);
  }
  // Jump is deterministic.
  Rng j2(7);
  j2.Jump();
  Rng j3(7);
  j3.Jump();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(j2.Next(), j3.Next());
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(99);
  Rng child_a = a.Fork();
  Rng b(99);
  Rng child_b = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.Next(), child_b.Next());
  }
}

}  // namespace
}  // namespace util
}  // namespace ff
