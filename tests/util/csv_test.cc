#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ff {
namespace util {
namespace {

TEST(CsvEscapeTest, PlainFieldsUnchanged) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("3.14"), "3.14");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRowTest, JoinsEscaped) {
  EXPECT_EQ(CsvRow({"a", "b,c", "d"}), "a,\"b,c\",d");
  EXPECT_EQ(CsvRow({}), "");
}

TEST(ParseCsvTest, HeaderAndRows) {
  auto doc = ParseCsv("name,day\ntillamook,21\ndev,160\n", true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"name", "day"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"tillamook", "21"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"dev", "160"}));
}

TEST(ParseCsvTest, NoHeader) {
  auto doc = ParseCsv("1,2\n3,4\n", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(ParseCsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto doc = ParseCsv("a,\"x,y\"\n\"line\nbreak\",b\n", false);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][1], "x,y");
  EXPECT_EQ(doc->rows[1][0], "line\nbreak");
}

TEST(ParseCsvTest, DoubledQuotes) {
  auto doc = ParseCsv("\"he said \"\"ok\"\"\"\n", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "he said \"ok\"");
}

TEST(ParseCsvTest, CrLfHandled) {
  auto doc = ParseCsv("a,b\r\nc,d\r\n", false);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("\"open", false).ok());
}

TEST(ParseCsvTest, EmptyInput) {
  auto doc = ParseCsv("", true);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_TRUE(doc->rows.empty());
}

TEST(ParseCsvLineTest, SingleRecord) {
  auto rec = ParseCsvLine("x,y,z");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, (std::vector<std::string>{"x", "y", "z"}));
}

TEST(CsvRoundTripTest, EscapeThenParse) {
  std::vector<std::string> fields{"plain", "a,b", "q\"q", "multi\nline",
                                  ""};
  auto parsed = ParseCsvLine(CsvRow(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(&os, {"a", "b"});
  ASSERT_TRUE(w.WriteRow({"1", "2"}).ok());
  ASSERT_TRUE(w.WriteRow({"3", "4"}).ok());
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriterTest, RejectsWidthMismatch) {
  std::ostringstream os;
  CsvWriter w(&os, {"a", "b"});
  EXPECT_FALSE(w.WriteRow({"1"}).ok());
  EXPECT_TRUE(w.WriteRow({"1", "2"}).ok());
}

TEST(CsvWriterTest, HeaderlessFixesWidthFromFirstRow) {
  std::ostringstream os;
  CsvWriter w(&os, {});
  ASSERT_TRUE(w.WriteRow({"1", "2", "3"}).ok());
  EXPECT_FALSE(w.WriteRow({"1"}).ok());
}

}  // namespace
}  // namespace util
}  // namespace ff
