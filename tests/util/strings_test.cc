#include "util/strings.h"

#include <gtest/gtest.h>

namespace ff {
namespace util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(TrimTest, Variants) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("FoReCaSt"), "forecast");
  EXPECT_EQ(ToUpper("FoReCaSt"), "FORECAST");
  EXPECT_EQ(ToLower("123-abc"), "123-abc");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("forecast-tillamook", "forecast-"));
  EXPECT_FALSE(StartsWith("fore", "forecast"));
  EXPECT_TRUE(EndsWith("1_salt.63", ".63"));
  EXPECT_FALSE(EndsWith(".63", "1_salt.63"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 3.14159), "7-x-3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
  // Long output exceeding any small static buffer.
  std::string long_out = StrFormat("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  99  "), 99);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

}  // namespace
}  // namespace util
}  // namespace ff
