// Golden-value regression tests: these fingerprints key the statsdb
// plan/result caches, so the exact output of every function here is
// frozen. If one of these tests fails, the hash changed — that silently
// invalidates warm caches and re-keys persisted artifacts, so either
// revert the change or update the goldens *deliberately* in the same
// change that documents why.

#include "util/fingerprint.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace ff {
namespace util {
namespace {

TEST(Fingerprint64Test, MatchesPublishedFnv1aVectors) {
  // Canonical FNV-1a 64 test vectors (cross-checkable against any
  // independent implementation).
  EXPECT_EQ(Fingerprint64(""), 14695981039346656037ULL);  // offset basis
  EXPECT_EQ(Fingerprint64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fingerprint64("abc"), 16654208175385433931ULL);
  EXPECT_EQ(Fingerprint64("foobar"), 9625390261332436968ULL);
  EXPECT_EQ(Fingerprint64("SELECT 1"), 1846049006458406130ULL);
}

TEST(Fingerprint64Test, EmbeddedNulBytesAreHashed) {
  std::string_view with_nul("a\0b", 3);
  EXPECT_NE(Fingerprint64(with_nul), Fingerprint64("ab"));
  EXPECT_NE(Fingerprint64(with_nul), Fingerprint64("a"));
}

TEST(SplitMix64Test, Goldens) {
  EXPECT_EQ(SplitMix64(0), 16294208416658607535ULL);
  EXPECT_EQ(SplitMix64(1), 10451216379200822465ULL);
  EXPECT_EQ(SplitMix64(0xdeadbeefULL), 5395234354446855067ULL);
}

TEST(FingerprintCombineTest, GoldensAndOrderDependence) {
  EXPECT_EQ(FingerprintCombine(1, 2), 4557874333849936870ULL);
  EXPECT_EQ(FingerprintCombine(2, 1), 15538830299641316923ULL);
  EXPECT_EQ(FingerprintCombine(0, 0), 7960286522194355700ULL);
  EXPECT_NE(FingerprintCombine(1, 2), FingerprintCombine(2, 1));
}

TEST(FingerprintStreamTest, Golden) {
  FingerprintStream fp;
  fp.Str("runs").U64(42).U8(7);
  EXPECT_EQ(fp.State(), 3745689956911367838ULL);
  EXPECT_EQ(fp.Digest(), 10416011049876419696ULL);
}

TEST(FingerprintStreamTest, EmptyStreamDigestsOffsetBasis) {
  FingerprintStream fp;
  EXPECT_EQ(fp.State(), kFnv64Offset);
  EXPECT_EQ(fp.Digest(), SplitMix64(kFnv64Offset));
}

TEST(FingerprintStreamTest, StringsAreLengthPrefixed) {
  FingerprintStream a;
  a.Str("ab").Str("c");
  FingerprintStream b;
  b.Str("a").Str("bc");
  EXPECT_NE(a.Digest(), b.Digest());

  // Raw Bytes() has no framing: the two streams above concatenate the
  // same payload bytes, so only the length prefixes separate them.
  FingerprintStream c, d;
  c.Bytes("abc", 3);
  d.Bytes("ab", 2).Bytes("c", 1);
  EXPECT_EQ(c.Digest(), d.Digest());
}

TEST(FingerprintStreamTest, DigestDoesNotConsume) {
  FingerprintStream fp;
  fp.Str("x");
  uint64_t first = fp.Digest();
  EXPECT_EQ(first, fp.Digest());
  fp.U8(1);
  EXPECT_NE(first, fp.Digest());
}

TEST(FingerprintStreamTest, MatchesFingerprint64ForRawBytes) {
  FingerprintStream fp;
  fp.Bytes("SELECT 1", 8);
  EXPECT_EQ(fp.State(), Fingerprint64("SELECT 1"));
}

}  // namespace
}  // namespace util
}  // namespace ff
