#include "util/time_util.h"

#include <gtest/gtest.h>

namespace ff {
namespace util {
namespace {

TEST(TimeUtilTest, DayOfTime) {
  EXPECT_EQ(DayOfTime(0.0), 0);
  EXPECT_EQ(DayOfTime(86399.9), 0);
  EXPECT_EQ(DayOfTime(86400.0), 1);
  EXPECT_EQ(DayOfTime(86400.0 * 50 + 10), 50);
  EXPECT_EQ(DayOfTime(-5.0), 0);
}

TEST(TimeUtilTest, TimeOfDay) {
  EXPECT_DOUBLE_EQ(TimeOfDay(0.0), 0.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(3600.0), 3600.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(86400.0 + 7200.0), 7200.0);
}

TEST(TimeUtilTest, StartOfDayAndMakeTime) {
  EXPECT_DOUBLE_EQ(StartOfDay(2), 172800.0);
  EXPECT_DOUBLE_EQ(MakeTime(1, 1, 30, 15.0), 86400.0 + 5415.0);
  EXPECT_DOUBLE_EQ(MakeTime(0, 0), 0.0);
}

TEST(TimeUtilTest, RoundTripDayAndTimeOfDay) {
  for (int64_t day : {0, 1, 21, 50, 365}) {
    double t = MakeTime(day, 13, 45, 30.0);
    EXPECT_EQ(DayOfTime(t), day);
    EXPECT_NEAR(TimeOfDay(t), 13 * 3600.0 + 45 * 60.0 + 30.0, 1e-6);
  }
}

TEST(TimeUtilTest, FormatTime) {
  EXPECT_EQ(FormatTime(MakeTime(21, 1, 0, 0.0)), "d021 01:00:00");
  EXPECT_EQ(FormatTime(0.0), "d000 00:00:00");
  EXPECT_EQ(FormatTime(MakeTime(5, 23, 59, 59.0)), "d005 23:59:59");
}

TEST(TimeUtilTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0.0), "00:00:00");
  EXPECT_EQ(FormatDuration(3661.0), "01:01:01");
  EXPECT_EQ(FormatDuration(-60.0), "-00:01:00");
  // 40,000 s forecast walltime = 11h06m40s.
  EXPECT_EQ(FormatDuration(40000.0), "11:06:40");
}

TEST(TimeUtilTest, Constants) {
  EXPECT_DOUBLE_EQ(kSecondsPerDay, 86400.0);
  EXPECT_DOUBLE_EQ(kSecondsPerHour, 3600.0);
  EXPECT_DOUBLE_EQ(kSecondsPerMinute, 60.0);
}

}  // namespace
}  // namespace util
}  // namespace ff
