// Property test: randomized SQL SELECTs run through three engines — the
// vectorized engine (planner + exec.h, what production uses), the
// retained row-at-a-time reference engine (PlanNode::Execute), and the
// morsel-parallel executor (parallel_exec.h) at pool sizes 1, 4 and 16.
//
// Vectorized-vs-reference comparison is ordering-insensitive (rendered
// rows are sorted) unless the query has an ORDER BY, in which case row
// order must match too. The parallel engine is held to the stricter
// contract it documents: its CSV output (and any error string) must be
// BYTE-identical to the serial vectorized engine at every pool size.
// The generator only compares columns against literals of a comparable
// type and never divides in predicates: the zone-map/index fast paths
// legitimately skip evaluating rows a full scan would visit, so a
// predicate that errors on skipped rows is a documented divergence, not
// a bug this test should trip over.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/plan.h"
#include "statsdb/sql.h"
#include "statsdb/table.h"
#include "util/rng.h"
#include "util/strings.h"

#include "sqlgen.h"

namespace ff {
namespace statsdb {
namespace {

constexpr int kQueries = 300;

class StatsDbPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_NO_FATAL_FAILURE(property::BuildPropertyTables(&db_));
    // Engine-agreement tests must exercise the engines, not the result
    // cache, whatever FF_STATSDB_CACHE says; the cache lane opts in.
    db_.set_cache_config(CacheConfig{});
  }

  // Runs `plan` through the parallel executor at pool sizes 1/4/16 and
  // asserts the result — success CSV or error string — is byte-identical
  // to the serial vectorized engine. min_chunks drops to 2 because the
  // test table is only two chunks (5000 rows); explicit max_threads > 1
  // forces a real fan-out even on a 1-core host. Shared fixture pools
  // avoid rebuilding threads for each of the 360 statements.
  void ExpectParallelByteIdentical(const PlanPtr& plan,
                                   const std::string& sql) {
    ParallelConfig serial;
    serial.enabled = false;
    db_.set_parallel_config(serial);
    auto base = ExecutePlan(plan, db_);
    struct Variant {
      size_t threads;
      parallel::ThreadPool* pool;
    };
    const Variant variants[] = {{1, nullptr}, {4, &pool4_}, {16, &pool16_}};
    for (const Variant& v : variants) {
      ParallelConfig cfg;
      cfg.max_threads = v.threads;
      cfg.morsel_chunks = 1;
      cfg.min_chunks = 2;
      cfg.pool = v.pool;
      db_.set_parallel_config(cfg);
      auto par = ExecutePlan(plan, db_);
      ASSERT_EQ(base.ok(), par.ok())
          << sql << "\nthreads=" << v.threads
          << "\nserial: " << base.status().ToString()
          << "\nparallel: " << par.status().ToString();
      if (!base.ok()) {
        ASSERT_EQ(base.status().ToString(), par.status().ToString())
            << sql << "\nthreads=" << v.threads;
        continue;
      }
      ASSERT_EQ(base->ToCsv(), par->ToCsv())
          << sql << "\nthreads=" << v.threads;
    }
    db_.set_parallel_config(serial);
  }

  Database db_;
  parallel::ThreadPool pool4_{4};
  parallel::ThreadPool pool16_{16};
};

TEST_F(StatsDbPropertyTest, EnginesAgreeOnRandomQueries) {
  property::SqlGen gen(0x5eed);
  int executed = 0;
  for (int q = 0; q < kQueries; ++q) {
    bool ordered = false;
    std::string sql = gen.Next(&ordered);
    auto plan = PlanSql(sql);
    ASSERT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
    auto ref = (*plan)->Execute(db_);
    auto vec = ExecutePlan(*plan, db_);
    ASSERT_EQ(ref.ok(), vec.ok())
        << sql << "\nref: " << ref.status().ToString()
        << "\nvec: " << vec.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectParallelByteIdentical(*plan, sql));
    if (!ref.ok()) continue;  // both failed: loose error agreement
    ++executed;
    ASSERT_EQ(property::Canonical(*ref, ordered), property::Canonical(*vec, ordered)) << sql;
  }
  // The generator should produce overwhelmingly valid queries.
  EXPECT_GT(executed, kQueries * 9 / 10);
}

TEST_F(StatsDbPropertyTest, EnginesAgreeAfterMutations) {
  // Interleave DML with checks: update/delete dirty the zone maps, and
  // subsequent scans must still agree.
  property::SqlGen gen(0xbadc0de);
  ASSERT_TRUE(
      db_.Sql("UPDATE runs SET walltime = 12345.0 WHERE day = 100").ok());
  ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day > 350").ok());
  ASSERT_TRUE(
      db_.Sql("INSERT INTO runs VALUES ('till', 400, 'f9', 77.0)").ok());
  for (int q = 0; q < 60; ++q) {
    bool ordered = false;
    std::string sql = gen.Next(&ordered);
    auto plan = PlanSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    auto ref = (*plan)->Execute(db_);
    auto vec = ExecutePlan(*plan, db_);
    ASSERT_EQ(ref.ok(), vec.ok()) << sql;
    ASSERT_NO_FATAL_FAILURE(ExpectParallelByteIdentical(*plan, sql));
    if (!ref.ok()) continue;
    ASSERT_EQ(property::Canonical(*ref, ordered), property::Canonical(*vec, ordered)) << sql;
  }
}

// Cache lane: every statement the two engine tests draw (300 + 60 =
// 360), re-run with the two-tier cache in full mode at pool sizes
// 1/4/16, with random DML interleaved so epoch invalidation is under
// constant attack. Contract (cache.h): a cache-on run — cold, warm, or
// freshly invalidated — is BYTE-identical to cache-off, rows and error
// text alike. The result cache deliberately survives pool-size changes
// (a serially-computed result may serve a parallel session), so warm
// hits at pool 4/16 often serve bytes first computed at pool 1 — that
// cross-engine serving is exactly what the comparison pins down.
TEST_F(StatsDbPropertyTest, CacheOnMatchesCacheOffAcrossWritesAndPools) {
  CacheConfig off;  // kOff
  CacheConfig full;
  full.mode = CacheConfig::Mode::kFull;

  util::Rng writes(0xcac4e);
  property::SqlGen gen(0x5eed);        // statement stream of EnginesAgree...
  property::SqlGen gen2(0xbadc0de);    // ...and of EnginesAgreeAfterMutations
  uint64_t checked = 0;

  for (int q = 0; q < kQueries + 60; ++q) {
    bool ordered = false;
    std::string sql =
        q < kQueries ? gen.Next(&ordered) : gen2.Next(&ordered);

    struct Variant {
      size_t threads;
      parallel::ThreadPool* pool;
    };
    const Variant variants[] = {{1, nullptr}, {4, &pool4_}, {16, &pool16_}};
    for (const Variant& v : variants) {
      ParallelConfig cfg;
      cfg.max_threads = v.threads;
      cfg.morsel_chunks = 1;
      cfg.min_chunks = 2;
      cfg.pool = v.pool;
      db_.set_parallel_config(cfg);

      db_.set_cache_config(off);
      auto base = db_.Sql(sql);
      db_.set_cache_config(full);
      auto cold = db_.Sql(sql);  // miss (or invalidated): executes
      auto warm = db_.Sql(sql);  // typically a hit: served bytes
      for (const auto* run : {&cold, &warm}) {
        ASSERT_EQ(base.ok(), run->ok())
            << sql << "\nthreads=" << v.threads
            << "\noff: " << base.status().ToString()
            << "\non:  " << run->status().ToString();
        if (base.ok()) {
          ASSERT_EQ(base->ToCsv(), (*run)->ToCsv())
              << sql << "\nthreads=" << v.threads;
        } else {
          ASSERT_EQ(base.status().ToString(), run->status().ToString())
              << sql << "\nthreads=" << v.threads;
        }
      }
      ++checked;
    }

    // Random write interleaving: the next statements must observe the
    // mutation through the cache (epoch mismatch), never stale bytes.
    if (writes.Bernoulli(0.2)) {
      db_.set_cache_config(full);  // write while caching is live
      int day = static_cast<int>(writes.UniformInt(0, 364));
      switch (writes.UniformInt(0, 2)) {
        case 0:
          ASSERT_TRUE(db_.Sql("UPDATE runs SET walltime = " +
                              std::to_string(day) + ".5 WHERE day = " +
                              std::to_string(day))
                          .ok());
          break;
        case 1:
          ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day = " +
                              std::to_string(day))
                          .ok());
          break;
        default:
          ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('till', " +
                              std::to_string(day) + ", 'f2', 42.0)")
                          .ok());
          break;
      }
    }
  }

  EXPECT_EQ(checked, static_cast<uint64_t>(kQueries + 60) * 3);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_GT(s.result_hits, 0u) << "lane never exercised a warm hit";
  EXPECT_GT(s.result_invalidations, 0u)
      << "lane never caught an epoch invalidation";
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
