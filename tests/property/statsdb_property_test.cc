// Property test: randomized SQL SELECTs run through three engines — the
// vectorized engine (planner + exec.h, what production uses), the
// retained row-at-a-time reference engine (PlanNode::Execute), and the
// morsel-parallel executor (parallel_exec.h) at pool sizes 1, 4 and 16.
//
// Vectorized-vs-reference comparison is ordering-insensitive (rendered
// rows are sorted) unless the query has an ORDER BY, in which case row
// order must match too. The parallel engine is held to the stricter
// contract it documents: its CSV output (and any error string) must be
// BYTE-identical to the serial vectorized engine at every pool size.
// The generator only compares columns against literals of a comparable
// type and never divides in predicates: the zone-map/index fast paths
// legitimately skip evaluating rows a full scan would visit, so a
// predicate that errors on skipped rows is a documented divergence, not
// a bug this test should trip over.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/plan.h"
#include "statsdb/sql.h"
#include "statsdb/table.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace {

constexpr size_t kRows = 5000;  // > kChunkRows: exercises chunk slicing
constexpr int kQueries = 300;

class StatsDbPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema runs({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"node", DataType::kString},
                 {"walltime", DataType::kDouble}});
    Table* t = *db_.CreateTable("runs", runs);
    util::Rng rng(0xf0f0);
    const char* forecasts[] = {"till", "dev", "coos", "umpqua"};
    const char* nodes[] = {"f1", "f2", "f3", "f4", "f5"};
    Table::BulkAppender app(t);
    app.Reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      app.String(forecasts[rng.UniformInt(0, 3)])
          .Int64(rng.UniformInt(0, 364))
          .String(nodes[rng.UniformInt(0, 4)]);
      if (rng.Bernoulli(0.08)) {
        app.Null();  // in-flight run: walltime unknown
      } else {
        app.Double(rng.Uniform(1000.0, 90000.0));
      }
      ASSERT_TRUE(app.EndRow().ok());
    }
    ASSERT_TRUE(app.Finish().ok());
    ASSERT_TRUE(t->CreateIndex("forecast").ok());
    ASSERT_TRUE(t->CreateIndex("node").ok());

    Schema speeds({{"node", DataType::kString},
                   {"speed", DataType::kDouble}});
    Table* n = *db_.CreateTable("nodes", speeds);
    for (int i = 1; i <= 4; ++i) {  // f5 intentionally unmatched
      ASSERT_TRUE(n->Insert({Value::String("f" + std::to_string(i)),
                             Value::Double(1.0 + 0.1 * i)})
                      .ok());
    }
    // Engine-agreement tests must exercise the engines, not the result
    // cache, whatever FF_STATSDB_CACHE says; the cache lane opts in.
    db_.set_cache_config(CacheConfig{});
  }

  // Runs `plan` through the parallel executor at pool sizes 1/4/16 and
  // asserts the result — success CSV or error string — is byte-identical
  // to the serial vectorized engine. min_chunks drops to 2 because the
  // test table is only two chunks (5000 rows); explicit max_threads > 1
  // forces a real fan-out even on a 1-core host. Shared fixture pools
  // avoid rebuilding threads for each of the 360 statements.
  void ExpectParallelByteIdentical(const PlanPtr& plan,
                                   const std::string& sql) {
    ParallelConfig serial;
    serial.enabled = false;
    db_.set_parallel_config(serial);
    auto base = ExecutePlan(plan, db_);
    struct Variant {
      size_t threads;
      parallel::ThreadPool* pool;
    };
    const Variant variants[] = {{1, nullptr}, {4, &pool4_}, {16, &pool16_}};
    for (const Variant& v : variants) {
      ParallelConfig cfg;
      cfg.max_threads = v.threads;
      cfg.morsel_chunks = 1;
      cfg.min_chunks = 2;
      cfg.pool = v.pool;
      db_.set_parallel_config(cfg);
      auto par = ExecutePlan(plan, db_);
      ASSERT_EQ(base.ok(), par.ok())
          << sql << "\nthreads=" << v.threads
          << "\nserial: " << base.status().ToString()
          << "\nparallel: " << par.status().ToString();
      if (!base.ok()) {
        ASSERT_EQ(base.status().ToString(), par.status().ToString())
            << sql << "\nthreads=" << v.threads;
        continue;
      }
      ASSERT_EQ(base->ToCsv(), par->ToCsv())
          << sql << "\nthreads=" << v.threads;
    }
    db_.set_parallel_config(serial);
  }

  Database db_;
  parallel::ThreadPool pool4_{4};
  parallel::ThreadPool pool16_{16};
};

struct SqlGen {
  util::Rng rng;
  explicit SqlGen(uint64_t seed) : rng(seed) {}

  int Pick(int n) { return static_cast<int>(rng.UniformInt(0, n - 1)); }
  template <size_t N>
  const char* OneOf(const char* (&arr)[N]) {
    return arr[Pick(static_cast<int>(N))];
  }

  std::string StringLit() {
    static const char* vals[] = {"'till'", "'dev'", "'coos'", "'umpqua'",
                                 "'ghost'", "'f1'", "'f3'", "'f5'"};
    return OneOf(vals);
  }
  std::string IntLit() { return std::to_string(rng.UniformInt(-5, 370)); }
  std::string DoubleLit() {
    return util::StrFormat("%.1f", rng.Uniform(0.0, 95000.0));
  }

  // One comparison whose literal type is comparable with the column's.
  std::string Comparison(bool joined) {
    static const char* cmps[] = {"=", "<>", "<", "<=", ">", ">="};
    int c = Pick(joined ? 6 : 4);
    switch (c) {
      case 0:
        return "forecast " + std::string(OneOf(cmps)) + " " + StringLit();
      case 1:
        return "day " + std::string(OneOf(cmps)) + " " + IntLit();
      case 2: {
        int k = Pick(4);
        if (k == 0) return "walltime IS NULL";
        if (k == 1) return "walltime IS NOT NULL";
        return "walltime " + std::string(OneOf(cmps)) + " " + DoubleLit();
      }
      case 3: {
        int k = Pick(4);
        if (k == 0) return "node LIKE 'f%'";
        if (k == 1) return "node IN ('f1', 'f2', 'f5')";
        if (k == 2) return "day BETWEEN 50 AND 300";
        return "node " + std::string(OneOf(cmps)) + " " + StringLit();
      }
      case 4:
        return "speed " + std::string(OneOf(cmps)) + " " + DoubleLit();
      default:
        return "node_r " + std::string(OneOf(cmps)) + " " + StringLit();
    }
  }

  std::string Where(bool joined) {
    int n = Pick(3) + 1;
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += Pick(4) == 0 ? " OR " : " AND ";
      out += Comparison(joined);
    }
    return out;
  }

  std::string Next(bool* ordered) {
    bool joined = Pick(4) == 0;
    std::string from =
        joined ? "FROM runs JOIN nodes ON node = node" : "FROM runs";
    bool agg = !joined && Pick(3) == 0;
    std::string sql;
    std::vector<std::string> order_cols;
    if (agg) {
      static const char* keys[] = {"forecast", "node", "day"};
      std::string key = keys[Pick(Pick(3) == 0 ? 3 : 2)];
      sql = "SELECT " + key +
            ", COUNT(*) AS n, AVG(walltime) AS aw, MIN(walltime) AS lo, "
            "MAX(walltime) AS hi, SUM(day) AS sd " +
            from + " ";
      if (Pick(2) == 0) sql += "WHERE " + Where(false) + " ";
      sql += "GROUP BY " + key + " ";
      if (Pick(3) == 0) sql += "HAVING n > 5 ";
      order_cols = {key, "n", "aw"};
    } else {
      static const char* items[] = {
          "*", "forecast, day", "node, walltime",
          "forecast, day, node, walltime", "day, day + 1 AS next_day"};
      std::string item = OneOf(items);
      if (joined) item = Pick(2) == 0 ? "*" : "forecast, day, speed";
      bool distinct = !joined && Pick(5) == 0;
      if (distinct) item = Pick(2) == 0 ? "forecast" : "forecast, node";
      sql = std::string("SELECT ") + (distinct ? "DISTINCT " : "") + item +
            " " + from + " ";
      if (Pick(5) != 0) sql += "WHERE " + Where(joined) + " ";
      if (item == "*") {
        order_cols = {"forecast", "day", "node", "walltime"};
      } else if (!distinct) {
        order_cols = {"day"};
      } else {
        order_cols = {"forecast"};
      }
    }
    *ordered = Pick(2) == 0;
    if (*ordered) {
      sql += "ORDER BY " + order_cols[Pick(static_cast<int>(
                               order_cols.size()))];
      if (Pick(2) == 0) sql += " DESC";
      if (order_cols.size() > 1 && Pick(2) == 0) {
        sql += ", " + order_cols[0] + " ASC";
      }
      sql += " ";
    }
    if (Pick(3) == 0) {
      sql += "LIMIT " + std::to_string(Pick(40));
      if (Pick(2) == 0) sql += " OFFSET " + std::to_string(Pick(20));
    }
    return sql;
  }
};

// Rendered result, row order normalized away unless `ordered`.
std::string Canonical(const ResultSet& rs, bool ordered) {
  std::string csv = rs.ToCsv();
  if (ordered) return csv;
  std::vector<std::string> lines = util::Split(csv, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() > 1) std::sort(lines.begin() + 1, lines.end());
  return util::Join(lines, "\n");
}

TEST_F(StatsDbPropertyTest, EnginesAgreeOnRandomQueries) {
  SqlGen gen(0x5eed);
  int executed = 0;
  for (int q = 0; q < kQueries; ++q) {
    bool ordered = false;
    std::string sql = gen.Next(&ordered);
    auto plan = PlanSql(sql);
    ASSERT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
    auto ref = (*plan)->Execute(db_);
    auto vec = ExecutePlan(*plan, db_);
    ASSERT_EQ(ref.ok(), vec.ok())
        << sql << "\nref: " << ref.status().ToString()
        << "\nvec: " << vec.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectParallelByteIdentical(*plan, sql));
    if (!ref.ok()) continue;  // both failed: loose error agreement
    ++executed;
    ASSERT_EQ(Canonical(*ref, ordered), Canonical(*vec, ordered)) << sql;
  }
  // The generator should produce overwhelmingly valid queries.
  EXPECT_GT(executed, kQueries * 9 / 10);
}

TEST_F(StatsDbPropertyTest, EnginesAgreeAfterMutations) {
  // Interleave DML with checks: update/delete dirty the zone maps, and
  // subsequent scans must still agree.
  SqlGen gen(0xbadc0de);
  ASSERT_TRUE(
      db_.Sql("UPDATE runs SET walltime = 12345.0 WHERE day = 100").ok());
  ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day > 350").ok());
  ASSERT_TRUE(
      db_.Sql("INSERT INTO runs VALUES ('till', 400, 'f9', 77.0)").ok());
  for (int q = 0; q < 60; ++q) {
    bool ordered = false;
    std::string sql = gen.Next(&ordered);
    auto plan = PlanSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    auto ref = (*plan)->Execute(db_);
    auto vec = ExecutePlan(*plan, db_);
    ASSERT_EQ(ref.ok(), vec.ok()) << sql;
    ASSERT_NO_FATAL_FAILURE(ExpectParallelByteIdentical(*plan, sql));
    if (!ref.ok()) continue;
    ASSERT_EQ(Canonical(*ref, ordered), Canonical(*vec, ordered)) << sql;
  }
}

// Cache lane: every statement the two engine tests draw (300 + 60 =
// 360), re-run with the two-tier cache in full mode at pool sizes
// 1/4/16, with random DML interleaved so epoch invalidation is under
// constant attack. Contract (cache.h): a cache-on run — cold, warm, or
// freshly invalidated — is BYTE-identical to cache-off, rows and error
// text alike. The result cache deliberately survives pool-size changes
// (a serially-computed result may serve a parallel session), so warm
// hits at pool 4/16 often serve bytes first computed at pool 1 — that
// cross-engine serving is exactly what the comparison pins down.
TEST_F(StatsDbPropertyTest, CacheOnMatchesCacheOffAcrossWritesAndPools) {
  CacheConfig off;  // kOff
  CacheConfig full;
  full.mode = CacheConfig::Mode::kFull;

  util::Rng writes(0xcac4e);
  SqlGen gen(0x5eed);        // statement stream of EnginesAgree...
  SqlGen gen2(0xbadc0de);    // ...and of EnginesAgreeAfterMutations
  uint64_t checked = 0;

  for (int q = 0; q < kQueries + 60; ++q) {
    bool ordered = false;
    std::string sql =
        q < kQueries ? gen.Next(&ordered) : gen2.Next(&ordered);

    struct Variant {
      size_t threads;
      parallel::ThreadPool* pool;
    };
    const Variant variants[] = {{1, nullptr}, {4, &pool4_}, {16, &pool16_}};
    for (const Variant& v : variants) {
      ParallelConfig cfg;
      cfg.max_threads = v.threads;
      cfg.morsel_chunks = 1;
      cfg.min_chunks = 2;
      cfg.pool = v.pool;
      db_.set_parallel_config(cfg);

      db_.set_cache_config(off);
      auto base = db_.Sql(sql);
      db_.set_cache_config(full);
      auto cold = db_.Sql(sql);  // miss (or invalidated): executes
      auto warm = db_.Sql(sql);  // typically a hit: served bytes
      for (const auto* run : {&cold, &warm}) {
        ASSERT_EQ(base.ok(), run->ok())
            << sql << "\nthreads=" << v.threads
            << "\noff: " << base.status().ToString()
            << "\non:  " << run->status().ToString();
        if (base.ok()) {
          ASSERT_EQ(base->ToCsv(), (*run)->ToCsv())
              << sql << "\nthreads=" << v.threads;
        } else {
          ASSERT_EQ(base.status().ToString(), run->status().ToString())
              << sql << "\nthreads=" << v.threads;
        }
      }
      ++checked;
    }

    // Random write interleaving: the next statements must observe the
    // mutation through the cache (epoch mismatch), never stale bytes.
    if (writes.Bernoulli(0.2)) {
      db_.set_cache_config(full);  // write while caching is live
      int day = static_cast<int>(writes.UniformInt(0, 364));
      switch (writes.UniformInt(0, 2)) {
        case 0:
          ASSERT_TRUE(db_.Sql("UPDATE runs SET walltime = " +
                              std::to_string(day) + ".5 WHERE day = " +
                              std::to_string(day))
                          .ok());
          break;
        case 1:
          ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day = " +
                              std::to_string(day))
                          .ok());
          break;
        default:
          ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('till', " +
                              std::to_string(day) + ", 'f2', 42.0)")
                          .ok());
          break;
      }
    }
  }

  EXPECT_EQ(checked, static_cast<uint64_t>(kQueries + 60) * 3);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_GT(s.result_hits, 0u) << "lane never exercised a warm hit";
  EXPECT_GT(s.result_invalidations, 0u)
      << "lane never caught an epoch invalidation";
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
