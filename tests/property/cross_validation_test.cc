// Property tests cross-validating the three independent implementations
// of the paper's CPU-sharing semantics:
//   1. cluster::Machine (discrete-event execution),
//   2. core::PredictCompletions (ForeMan's analytic model),
//   3. first principles (work conservation, serial bounds).
// Randomized workloads, deterministic seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "cluster/machine.h"
#include "core/share_model.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ff {
namespace {

struct RandomWorkload {
  std::vector<core::ShareJob> jobs;
  double total_work = 0.0;
};

RandomWorkload MakeWorkload(uint64_t seed, int n_jobs) {
  util::Rng rng(seed);
  RandomWorkload out;
  for (int i = 0; i < n_jobs; ++i) {
    core::ShareJob job;
    job.id = "j" + std::to_string(i);
    job.node = "m";
    job.start_time = rng.Uniform(0.0, 20000.0);
    job.work = rng.Uniform(100.0, 50000.0);
    out.total_work += job.work;
    out.jobs.push_back(std::move(job));
  }
  return out;
}

class CrossValidationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(CrossValidationSweep, AnalyticModelMatchesDiscreteEvent) {
  auto [n_jobs, cpus, seed] = GetParam();
  RandomWorkload wl = MakeWorkload(seed, n_jobs);

  // Analytic prediction.
  auto pred = core::PredictCompletions(
      {core::NodeInfo{"m", cpus, 1.0}}, wl.jobs);
  ASSERT_TRUE(pred.ok());

  // Discrete-event execution.
  sim::Simulator sim;
  cluster::Machine machine(&sim, "m", cpus, 1.0);
  std::map<std::string, double> actual;
  for (const auto& job : wl.jobs) {
    sim.ScheduleAt(job.start_time, [&, job] {
      machine.StartTask(job.work,
                        [&, id = job.id] { actual[id] = sim.now(); });
    });
  }
  sim.Run();

  ASSERT_EQ(actual.size(), wl.jobs.size());
  for (const auto& job : wl.jobs) {
    double predicted = pred->completion.at(job.id);
    double executed = actual.at(job.id);
    EXPECT_NEAR(predicted, executed, 1e-3 + executed * 1e-9) << job.id;
    // First principles: a serial job can never beat start + work.
    EXPECT_GE(executed + 1e-6, job.start_time + job.work) << job.id;
  }

  // Work conservation: the machine delivered exactly the demanded work.
  EXPECT_NEAR(machine.total_cpu_seconds(), wl.total_work,
              wl.total_work * 1e-9 + 1e-3);

  // Makespan lower bounds: total/capacity and the longest single chain.
  double longest = 0.0;
  for (const auto& job : wl.jobs) {
    longest = std::max(longest, job.start_time + job.work);
  }
  EXPECT_GE(pred->makespan + 1e-6,
            std::max(wl.total_work / cpus, longest - 20000.0));
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, CrossValidationSweep,
    ::testing::Combine(::testing::Values(1, 3, 7, 15),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, uint64_t>>&
           info) {
      return std::to_string(std::get<0>(info.param)) + "jobs_" +
             std::to_string(std::get<1>(info.param)) + "cpus_seed" +
             std::to_string(std::get<2>(info.param));
    });

// Interruption equivalence: pausing a machine (node down/up) must shift
// every completion by exactly the outage, never lose work.
TEST(CrossValidationTest, OutageShiftsCompletionsExactly) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    RandomWorkload wl = MakeWorkload(seed, 6);
    auto run = [&](bool with_outage) {
      sim::Simulator sim;
      cluster::Machine machine(&sim, "m", 2, 1.0);
      std::map<std::string, double> done;
      for (const auto& job : wl.jobs) {
        sim.ScheduleAt(job.start_time, [&, job] {
          machine.StartTask(job.work,
                            [&, id = job.id] { done[id] = sim.now(); });
        });
      }
      if (with_outage) {
        // Outage strictly after every arrival, before any completion can
        // drain: [25,000, 35,000).
        sim.ScheduleAt(25000.0, [&] { machine.SetUp(false); });
        sim.ScheduleAt(35000.0, [&] { machine.SetUp(true); });
      }
      sim.Run();
      return done;
    };
    auto base = run(false);
    auto outage = run(true);
    for (const auto& [id, t] : base) {
      if (t <= 25000.0) {
        EXPECT_NEAR(outage.at(id), t, 1e-6) << id;
      } else {
        EXPECT_NEAR(outage.at(id), t + 10000.0, 1e-3) << id;
      }
    }
  }
}

// Migration equivalence: removing a task and restarting its remaining
// work elsewhere conserves total work.
TEST(CrossValidationTest, MigrationConservesWork) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    sim::Simulator sim;
    cluster::Machine a(&sim, "a", 2, 1.0);
    cluster::Machine b(&sim, "b", 2, 1.0);
    double work = rng.Uniform(5000.0, 50000.0);
    double migrate_at = rng.Uniform(100.0, work * 0.9);
    double done_at = -1.0;
    cluster::TaskId id = a.StartTask(work, nullptr);
    sim.ScheduleAt(migrate_at, [&] {
      auto remaining = a.RemoveTask(id);
      ASSERT_TRUE(remaining.ok());
      // Task alone on a 2-CPU machine runs at rate 1.
      EXPECT_NEAR(*remaining, work - migrate_at, 1e-6);
      b.StartTask(*remaining, [&] { done_at = sim.now(); });
    });
    sim.Run();
    EXPECT_NEAR(done_at, work, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ff
