// Wire equivalence lane: the exact 360-statement corpus the in-process
// property tests draw (seeds 0x5eed x 300 and 0xbadc0de x 60, via the
// shared generator in sqlgen.h) replayed through a served statsdb
// (net/server.h) and required to come back BYTE-identical — rendered
// CSV, row order, and error strings alike — to in-process
// Database::Sql on an identically-built reference database. The server
// runs with its production defaults (query cache full, morsel-parallel
// reads on its own pool) at pool sizes 1, 4 and 16, so this lane
// transitively pins the serialize/deserialize round trip, the
// cache-on-equals-cache-off contract, and the parallel byte-determinism
// contract, all through real sockets.
//
// The seeded-chaos lanes repeat the corpus through a RetryingClient
// behind a ChaosTransport injecting delays and partial I/O only (no
// corruption, no resets — the payload must arrive intact for a
// byte-equality gate to be meaningful): timing jitter and arbitrary
// kernel/chaos chunking must not change a single byte either.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "net/chaos_transport.h"
#include "net/client.h"
#include "net/retrying_client.h"
#include "net/server.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/parallel_exec.h"
#include "util/status.h"

#include "sqlgen.h"

namespace ff {
namespace net {
namespace {

using statsdb::CacheConfig;
using statsdb::Database;
using statsdb::ParallelConfig;

class WireEquivalence {
 public:
  // gtest ASSERTs only work in void-returning bodies, hence Init()
  // instead of a constructor.
  void Init(size_t pool_threads, bool chaos = false) {
    chaos_ = chaos;
    ServerConfig cfg;
    cfg.port = 0;
    cfg.pool_threads = pool_threads;
    // Match the in-process property lane's morsel sizing: the table is
    // only two chunks, so min_chunks must drop for parallel scans to
    // engage at all.
    cfg.morsel_chunks = 1;
    cfg.min_chunks = 2;
    server_ = std::make_unique<Server>(cfg);
    statsdb::property::BuildPropertyTables(&server_->db());
    util::Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();

    statsdb::property::BuildPropertyTables(&ref_);
    // The reference is the plainest path there is: serial vectorized
    // engine, no cache. Whatever the server layers on top must not
    // change a byte.
    ref_.set_cache_config(CacheConfig{});
    ParallelConfig serial;
    serial.enabled = false;
    ref_.set_parallel_config(serial);

    if (chaos_) {
      // Delays + partial I/O only; small stalls so 360 statements stay
      // fast. With no corruption or resets the retry ladder never
      // engages — the gate is that chunked, jittered transport moves
      // the exact same bytes.
      ChaosProfile profile;
      profile.seed = 0x77a11eedULL + pool_threads;
      profile.split_gap_bytes = 96;
      profile.delay_gap_bytes = 8192;
      profile.delay_min_ms = 0.02;
      profile.delay_max_ms = 0.2;
      counters_ = std::make_shared<ChaosCounters>();
      auto conn = std::make_shared<std::atomic<uint64_t>>(0);
      RetryingClientOptions opts;
      opts.client.connect_timeout_ms = 5000;
      opts.client.io_timeout_ms = 5000;
      auto counters = counters_;
      opts.client.wrap_transport =
          [profile, counters, conn](std::unique_ptr<Transport> base)
          -> std::unique_ptr<Transport> {
        return std::make_unique<ChaosTransport>(std::move(base), profile,
                                                conn->fetch_add(1),
                                                counters.get());
      };
      rclient_ = std::make_unique<RetryingClient>(
          "127.0.0.1", server_->port(), std::move(opts));
      util::Status connect = rclient_->Connect();
      ASSERT_TRUE(connect.ok()) << connect.ToString();
      return;
    }
    auto c = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    client_ = std::move(*c);
  }

  /// One statement through both worlds; hard-fails on any byte of
  /// divergence. DML flows through here too — the wire side takes the
  /// writer-thread path while the reference mutates in-process, and
  /// both must report the same outcome.
  void Check(const std::string& sql) {
    auto local = ref_.Sql(sql);
    auto wire = chaos_ ? rclient_->Query(sql) : client_.Query(sql);
    ASSERT_EQ(local.ok(), wire.ok())
        << sql << "\nlocal: " << local.status().ToString()
        << "\nwire:  " << wire.status().ToString();
    if (!local.ok()) {
      ASSERT_EQ(local.status().ToString(), wire.status().ToString()) << sql;
      return;
    }
    ASSERT_EQ(local->ToCsv(), wire->ToCsv()) << sql;
    ++checked_;

    // Periodically pin the alternative framings to the same bytes: the
    // row-at-a-time stream and a parameterless server-side prepared
    // statement must render identically to the batched frame.
    if (checked_ % 10 == 0) {
      auto rows = chaos_ ? rclient_->QueryRows(sql) : client_.QueryRows(sql);
      ASSERT_TRUE(rows.ok()) << sql << "\n" << rows.status().ToString();
      ASSERT_EQ(local->ToCsv(), rows->ToCsv()) << sql;
    }
    if (checked_ % 15 == 0) {
      if (chaos_) {
        auto stmt = rclient_->Prepare(sql);
        ASSERT_TRUE(stmt.ok()) << sql << "\n" << stmt.status().ToString();
        auto prepped = rclient_->ExecutePrepared(*stmt, {});
        ASSERT_TRUE(prepped.ok()) << sql << "\n"
                                  << prepped.status().ToString();
        ASSERT_EQ(local->ToCsv(), prepped->ToCsv()) << sql;
        ASSERT_TRUE(rclient_->ClosePrepared(*stmt).ok());
      } else {
        auto stmt = client_.Prepare(sql);
        ASSERT_TRUE(stmt.ok()) << sql << "\n" << stmt.status().ToString();
        auto prepped = client_.ExecutePrepared(*stmt, {});
        ASSERT_TRUE(prepped.ok()) << sql << "\n"
                                  << prepped.status().ToString();
        ASSERT_EQ(local->ToCsv(), prepped->ToCsv()) << sql;
        ASSERT_TRUE(client_.ClosePrepared(*stmt).ok());
      }
    }
  }

  void RunCorpus() {
    statsdb::property::SqlGen gen(0x5eed);
    bool ordered = false;
    for (int q = 0; q < 300; ++q) {
      ASSERT_NO_FATAL_FAILURE(Check(gen.Next(&ordered)));
    }
    // The mutation lane's DML, then its 60 statements over the dirtied
    // zone maps — the server's writer thread re-warms scan state under
    // exclusion, and the bytes must still match.
    const char* dml[] = {
        "UPDATE runs SET walltime = 12345.0 WHERE day = 100",
        "DELETE FROM runs WHERE day > 350",
        "INSERT INTO runs VALUES ('till', 400, 'f9', 77.0)",
    };
    for (const char* stmt : dml) {
      ASSERT_NO_FATAL_FAILURE(Check(stmt));
    }
    statsdb::property::SqlGen gen2(0xbadc0de);
    for (int q = 0; q < 60; ++q) {
      ASSERT_NO_FATAL_FAILURE(Check(gen2.Next(&ordered)));
    }
    EXPECT_GT(checked_, (300 + 60) * 9 / 10)
        << "generator should produce overwhelmingly valid queries";
  }

  /// Chaos-lane postcondition: the transport really was chaotic, and
  /// the retry ladder never had to engage (delays and splits are not
  /// failures — just inconvenient deliveries of the same bytes).
  void CheckChaosHappened() {
    ASSERT_TRUE(chaos_);
    EXPECT_GT(counters_->splits.load(), 0u);
    EXPECT_GT(counters_->delays.load(), 0u);
    EXPECT_EQ(counters_->corruptions.load(), 0u);
    EXPECT_EQ(counters_->resets.load(), 0u);
    EXPECT_EQ(rclient_->stats().gave_up, 0u);
  }

 private:
  std::unique_ptr<Server> server_;
  Database ref_;
  Client client_;
  std::unique_ptr<RetryingClient> rclient_;
  std::shared_ptr<ChaosCounters> counters_;
  bool chaos_ = false;
  int checked_ = 0;
};

TEST(WirePropertyTest, CorpusByteIdenticalAtPool1) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(1));
  lane.RunCorpus();
}

TEST(WirePropertyTest, CorpusByteIdenticalAtPool4) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(4));
  lane.RunCorpus();
}

TEST(WirePropertyTest, CorpusByteIdenticalAtPool16) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(16));
  lane.RunCorpus();
}

TEST(WirePropertyTest, CorpusByteIdenticalUnderSeededChaosAtPool1) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(1, /*chaos=*/true));
  lane.RunCorpus();
  lane.CheckChaosHappened();
}

TEST(WirePropertyTest, CorpusByteIdenticalUnderSeededChaosAtPool4) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(4, /*chaos=*/true));
  lane.RunCorpus();
  lane.CheckChaosHappened();
}

TEST(WirePropertyTest, CorpusByteIdenticalUnderSeededChaosAtPool16) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(16, /*chaos=*/true));
  lane.RunCorpus();
  lane.CheckChaosHappened();
}

}  // namespace
}  // namespace net
}  // namespace ff
