// Wire equivalence lane: the exact 360-statement corpus the in-process
// property tests draw (seeds 0x5eed x 300 and 0xbadc0de x 60, via the
// shared generator in sqlgen.h) replayed through a served statsdb
// (net/server.h) and required to come back BYTE-identical — rendered
// CSV, row order, and error strings alike — to in-process
// Database::Sql on an identically-built reference database. The server
// runs with its production defaults (query cache full, morsel-parallel
// reads on its own pool) at pool sizes 1, 4 and 16, so this lane
// transitively pins the serialize/deserialize round trip, the
// cache-on-equals-cache-off contract, and the parallel byte-determinism
// contract, all through real sockets.

#include <gtest/gtest.h>

#include <string>

#include "net/client.h"
#include "net/server.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/parallel_exec.h"
#include "util/status.h"

#include "sqlgen.h"

namespace ff {
namespace net {
namespace {

using statsdb::CacheConfig;
using statsdb::Database;
using statsdb::ParallelConfig;

class WireEquivalence {
 public:
  // gtest ASSERTs only work in void-returning bodies, hence Init()
  // instead of a constructor.
  void Init(size_t pool_threads) {
    ServerConfig cfg;
    cfg.port = 0;
    cfg.pool_threads = pool_threads;
    // Match the in-process property lane's morsel sizing: the table is
    // only two chunks, so min_chunks must drop for parallel scans to
    // engage at all.
    cfg.morsel_chunks = 1;
    cfg.min_chunks = 2;
    server_ = std::make_unique<Server>(cfg);
    statsdb::property::BuildPropertyTables(&server_->db());
    util::Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();

    statsdb::property::BuildPropertyTables(&ref_);
    // The reference is the plainest path there is: serial vectorized
    // engine, no cache. Whatever the server layers on top must not
    // change a byte.
    ref_.set_cache_config(CacheConfig{});
    ParallelConfig serial;
    serial.enabled = false;
    ref_.set_parallel_config(serial);

    auto c = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    client_ = std::move(*c);
  }

  /// One statement through both worlds; hard-fails on any byte of
  /// divergence. DML flows through here too — the wire side takes the
  /// writer-thread path while the reference mutates in-process, and
  /// both must report the same outcome.
  void Check(const std::string& sql) {
    auto local = ref_.Sql(sql);
    auto wire = client_.Query(sql);
    ASSERT_EQ(local.ok(), wire.ok())
        << sql << "\nlocal: " << local.status().ToString()
        << "\nwire:  " << wire.status().ToString();
    if (!local.ok()) {
      ASSERT_EQ(local.status().ToString(), wire.status().ToString()) << sql;
      return;
    }
    ASSERT_EQ(local->ToCsv(), wire->ToCsv()) << sql;
    ++checked_;

    // Periodically pin the alternative framings to the same bytes: the
    // row-at-a-time stream and a parameterless server-side prepared
    // statement must render identically to the batched frame.
    if (checked_ % 10 == 0) {
      auto rows = client_.QueryRows(sql);
      ASSERT_TRUE(rows.ok()) << sql << "\n" << rows.status().ToString();
      ASSERT_EQ(local->ToCsv(), rows->ToCsv()) << sql;
    }
    if (checked_ % 15 == 0) {
      auto stmt = client_.Prepare(sql);
      ASSERT_TRUE(stmt.ok()) << sql << "\n" << stmt.status().ToString();
      auto prepped = client_.ExecutePrepared(*stmt, {});
      ASSERT_TRUE(prepped.ok()) << sql << "\n"
                                << prepped.status().ToString();
      ASSERT_EQ(local->ToCsv(), prepped->ToCsv()) << sql;
      ASSERT_TRUE(client_.ClosePrepared(*stmt).ok());
    }
  }

  void RunCorpus() {
    statsdb::property::SqlGen gen(0x5eed);
    bool ordered = false;
    for (int q = 0; q < 300; ++q) {
      ASSERT_NO_FATAL_FAILURE(Check(gen.Next(&ordered)));
    }
    // The mutation lane's DML, then its 60 statements over the dirtied
    // zone maps — the server's writer thread re-warms scan state under
    // exclusion, and the bytes must still match.
    const char* dml[] = {
        "UPDATE runs SET walltime = 12345.0 WHERE day = 100",
        "DELETE FROM runs WHERE day > 350",
        "INSERT INTO runs VALUES ('till', 400, 'f9', 77.0)",
    };
    for (const char* stmt : dml) {
      ASSERT_NO_FATAL_FAILURE(Check(stmt));
    }
    statsdb::property::SqlGen gen2(0xbadc0de);
    for (int q = 0; q < 60; ++q) {
      ASSERT_NO_FATAL_FAILURE(Check(gen2.Next(&ordered)));
    }
    EXPECT_GT(checked_, (300 + 60) * 9 / 10)
        << "generator should produce overwhelmingly valid queries";
  }

 private:
  std::unique_ptr<Server> server_;
  Database ref_;
  Client client_;
  int checked_ = 0;
};

TEST(WirePropertyTest, CorpusByteIdenticalAtPool1) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(1));
  lane.RunCorpus();
}

TEST(WirePropertyTest, CorpusByteIdenticalAtPool4) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(4));
  lane.RunCorpus();
}

TEST(WirePropertyTest, CorpusByteIdenticalAtPool16) {
  WireEquivalence lane;
  ASSERT_NO_FATAL_FAILURE(lane.Init(16));
  lane.RunCorpus();
}

}  // namespace
}  // namespace net
}  // namespace ff
