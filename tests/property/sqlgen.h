// Shared fixtures for the randomized-SQL property lanes: the table
// builder, the statement generator, and the order-normalizing renderer.
// statsdb_property_test.cc uses them to pit the engines against each
// other in-process; wire_property_test.cc replays the exact same
// statement streams through the served statsdb (net/server.h) and
// requires byte-identical answers over the wire. Keeping one generator
// means the wire lane cannot silently drift to an easier corpus.

#ifndef FF_TESTS_PROPERTY_SQLGEN_H_
#define FF_TESTS_PROPERTY_SQLGEN_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "statsdb/database.h"
#include "statsdb/query.h"
#include "statsdb/table.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace property {

constexpr size_t kPropertyRows = 5000;  // > kChunkRows: chunk slicing

/// Builds the `runs` (5000 rows, 8% NULL walltime, indexed on forecast
/// and node) and `nodes` tables every property lane queries. Determinism
/// matters: two databases built by this function hold identical bytes,
/// which is what lets the wire lane diff a served database against an
/// in-process reference row for row.
inline void BuildPropertyTables(Database* db) {
  Schema runs({{"forecast", DataType::kString},
               {"day", DataType::kInt64},
               {"node", DataType::kString},
               {"walltime", DataType::kDouble}});
  Table* t = *db->CreateTable("runs", runs);
  util::Rng rng(0xf0f0);
  const char* forecasts[] = {"till", "dev", "coos", "umpqua"};
  const char* nodes[] = {"f1", "f2", "f3", "f4", "f5"};
  Table::BulkAppender app(t);
  app.Reserve(kPropertyRows);
  for (size_t i = 0; i < kPropertyRows; ++i) {
    app.String(forecasts[rng.UniformInt(0, 3)])
        .Int64(rng.UniformInt(0, 364))
        .String(nodes[rng.UniformInt(0, 4)]);
    if (rng.Bernoulli(0.08)) {
      app.Null();  // in-flight run: walltime unknown
    } else {
      app.Double(rng.Uniform(1000.0, 90000.0));
    }
    ASSERT_TRUE(app.EndRow().ok());
  }
  ASSERT_TRUE(app.Finish().ok());
  ASSERT_TRUE(t->CreateIndex("forecast").ok());
  ASSERT_TRUE(t->CreateIndex("node").ok());

  Schema speeds({{"node", DataType::kString},
                 {"speed", DataType::kDouble}});
  Table* n = *db->CreateTable("nodes", speeds);
  for (int i = 1; i <= 4; ++i) {  // f5 intentionally unmatched
    ASSERT_TRUE(n->Insert({Value::String("f" + std::to_string(i)),
                           Value::Double(1.0 + 0.1 * i)})
                    .ok());
  }
}

/// Randomized SELECT generator over the property tables. The generator
/// only compares columns against literals of a comparable type and
/// never divides in predicates: the zone-map/index fast paths
/// legitimately skip evaluating rows a full scan would visit, so a
/// predicate that errors on skipped rows is a documented divergence,
/// not a bug these tests should trip over.
struct SqlGen {
  util::Rng rng;
  explicit SqlGen(uint64_t seed) : rng(seed) {}

  int Pick(int n) { return static_cast<int>(rng.UniformInt(0, n - 1)); }
  template <size_t N>
  const char* OneOf(const char* (&arr)[N]) {
    return arr[Pick(static_cast<int>(N))];
  }

  std::string StringLit() {
    static const char* vals[] = {"'till'", "'dev'", "'coos'", "'umpqua'",
                                 "'ghost'", "'f1'", "'f3'", "'f5'"};
    return OneOf(vals);
  }
  std::string IntLit() { return std::to_string(rng.UniformInt(-5, 370)); }
  std::string DoubleLit() {
    return util::StrFormat("%.1f", rng.Uniform(0.0, 95000.0));
  }

  // One comparison whose literal type is comparable with the column's.
  std::string Comparison(bool joined) {
    static const char* cmps[] = {"=", "<>", "<", "<=", ">", ">="};
    int c = Pick(joined ? 6 : 4);
    switch (c) {
      case 0:
        return "forecast " + std::string(OneOf(cmps)) + " " + StringLit();
      case 1:
        return "day " + std::string(OneOf(cmps)) + " " + IntLit();
      case 2: {
        int k = Pick(4);
        if (k == 0) return "walltime IS NULL";
        if (k == 1) return "walltime IS NOT NULL";
        return "walltime " + std::string(OneOf(cmps)) + " " + DoubleLit();
      }
      case 3: {
        int k = Pick(4);
        if (k == 0) return "node LIKE 'f%'";
        if (k == 1) return "node IN ('f1', 'f2', 'f5')";
        if (k == 2) return "day BETWEEN 50 AND 300";
        return "node " + std::string(OneOf(cmps)) + " " + StringLit();
      }
      case 4:
        return "speed " + std::string(OneOf(cmps)) + " " + DoubleLit();
      default:
        return "node_r " + std::string(OneOf(cmps)) + " " + StringLit();
    }
  }

  std::string Where(bool joined) {
    int n = Pick(3) + 1;
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += Pick(4) == 0 ? " OR " : " AND ";
      out += Comparison(joined);
    }
    return out;
  }

  std::string Next(bool* ordered) {
    bool joined = Pick(4) == 0;
    std::string from =
        joined ? "FROM runs JOIN nodes ON node = node" : "FROM runs";
    bool agg = !joined && Pick(3) == 0;
    std::string sql;
    std::vector<std::string> order_cols;
    if (agg) {
      static const char* keys[] = {"forecast", "node", "day"};
      std::string key = keys[Pick(Pick(3) == 0 ? 3 : 2)];
      sql = "SELECT " + key +
            ", COUNT(*) AS n, AVG(walltime) AS aw, MIN(walltime) AS lo, "
            "MAX(walltime) AS hi, SUM(day) AS sd " +
            from + " ";
      if (Pick(2) == 0) sql += "WHERE " + Where(false) + " ";
      sql += "GROUP BY " + key + " ";
      if (Pick(3) == 0) sql += "HAVING n > 5 ";
      order_cols = {key, "n", "aw"};
    } else {
      static const char* items[] = {
          "*", "forecast, day", "node, walltime",
          "forecast, day, node, walltime", "day, day + 1 AS next_day"};
      std::string item = OneOf(items);
      if (joined) item = Pick(2) == 0 ? "*" : "forecast, day, speed";
      bool distinct = !joined && Pick(5) == 0;
      if (distinct) item = Pick(2) == 0 ? "forecast" : "forecast, node";
      sql = std::string("SELECT ") + (distinct ? "DISTINCT " : "") + item +
            " " + from + " ";
      if (Pick(5) != 0) sql += "WHERE " + Where(joined) + " ";
      if (item == "*") {
        order_cols = {"forecast", "day", "node", "walltime"};
      } else if (!distinct) {
        order_cols = {"day"};
      } else {
        order_cols = {"forecast"};
      }
    }
    *ordered = Pick(2) == 0;
    if (*ordered) {
      sql += "ORDER BY " + order_cols[Pick(static_cast<int>(
                               order_cols.size()))];
      if (Pick(2) == 0) sql += " DESC";
      if (order_cols.size() > 1 && Pick(2) == 0) {
        sql += ", " + order_cols[0] + " ASC";
      }
      sql += " ";
    }
    if (Pick(3) == 0) {
      sql += "LIMIT " + std::to_string(Pick(40));
      if (Pick(2) == 0) sql += " OFFSET " + std::to_string(Pick(20));
    }
    return sql;
  }
};

/// Rendered result, row order normalized away unless `ordered`.
inline std::string Canonical(const ResultSet& rs, bool ordered) {
  std::string csv = rs.ToCsv();
  if (ordered) return csv;
  std::vector<std::string> lines = util::Split(csv, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() > 1) std::sort(lines.begin() + 1, lines.end());
  return util::Join(lines, "\n");
}

}  // namespace property
}  // namespace statsdb
}  // namespace ff

#endif  // FF_TESTS_PROPERTY_SQLGEN_H_
