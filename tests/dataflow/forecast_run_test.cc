#include "dataflow/forecast_run.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "workload/fleet.h"

namespace ff {
namespace dataflow {
namespace {

struct TestPlant {
  sim::Simulator sim;
  cluster::Cluster plant{&sim, 2, 2.6 / 2.8, 1.0e9};
  sim::SeriesRecorder recorder;

  TestPlant() {
    cluster::NodeSpec spec;
    spec.name = "client";
    spec.num_cpus = 2;
    spec.ram_bytes = 1.0e9;
    FF_CHECK(plant.AddNode(spec).ok());
  }

  std::unique_ptr<ForecastRun> MakeRun(const workload::ForecastSpec& spec,
                                       RunConfig cfg) {
    return std::make_unique<ForecastRun>(
        &sim, *plant.node("client"), *plant.uplink("client"),
        plant.server(), &recorder, spec, cfg);
  }
};

// A tiny forecast that runs fast in both architectures.
workload::ForecastSpec TinySpec() {
  workload::ForecastSpec spec = workload::MakeElcircEstuaryForecast();
  spec.name = "tiny";
  spec.mesh_sides = 700;  // ~1100 CPU-s of simulation
  spec.increments = 12;
  for (auto& f : spec.output_files) f.total_bytes /= 10;
  for (auto& p : spec.products) {
    p.cpu_per_increment = 4.0;
    p.bytes_per_increment /= 10;
  }
  return spec;
}

TEST(ForecastRunTest, CompletesInBothArchitectures) {
  for (Architecture arch : {Architecture::kProductsAtNode,
                            Architecture::kProductsAtServer}) {
    TestPlant tp;
    RunConfig cfg;
    cfg.arch = arch;
    auto run = tp.MakeRun(TinySpec(), cfg);
    bool completed = false;
    run->set_on_complete([&] { completed = true; });
    run->Start();
    tp.sim.Run();
    EXPECT_TRUE(run->done()) << ArchitectureName(arch);
    EXPECT_TRUE(completed);
    EXPECT_GT(run->finish_time(), 0.0);
    EXPECT_GE(run->finish_time(), run->sim_finish_time());
  }
}

TEST(ForecastRunTest, AllBytesReachServer) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtNode;
  auto spec = TinySpec();
  auto run = tp.MakeRun(spec, cfg);
  run->Start();
  tp.sim.Run();
  ASSERT_TRUE(run->done());
  // Every tracked entity reaches fraction 1.0 at the server.
  for (const auto& f : spec.output_files) {
    auto last = tp.recorder.LastValue(f.name);
    ASSERT_TRUE(last.ok()) << f.name;
    EXPECT_NEAR(*last, 1.0, 1e-6) << f.name;
  }
  for (const auto& p : spec.products) {
    auto last = tp.recorder.LastValue(p.name);
    ASSERT_TRUE(last.ok()) << p.name;
    EXPECT_NEAR(*last, 1.0, 1e-6) << p.name;
  }
}

TEST(ForecastRunTest, Arch1TransfersModelPlusProducts) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtNode;
  auto spec = TinySpec();
  auto run = tp.MakeRun(spec, cfg);
  run->Start();
  tp.sim.Run();
  ASSERT_TRUE(run->done());
  EXPECT_NEAR(run->bytes_transferred(),
              spec.TotalModelBytes() + spec.TotalProductBytes(),
              spec.TotalModelBytes() * 0.01);
}

TEST(ForecastRunTest, Arch2TransfersOnlyModelBytes) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtServer;
  auto spec = TinySpec();
  auto run = tp.MakeRun(spec, cfg);
  run->Start();
  tp.sim.Run();
  ASSERT_TRUE(run->done());
  EXPECT_NEAR(run->bytes_transferred(), spec.TotalModelBytes(),
              spec.TotalModelBytes() * 0.01);
  EXPECT_NEAR(run->product_bytes_generated(), spec.TotalProductBytes(),
              1.0);
}

TEST(ForecastRunTest, Arch2SimIsFasterThanArch1) {
  // The headline §4.2 result: separating product generation from the
  // simulation node shortens the end-to-end time.
  double finish[2];
  for (int i = 0; i < 2; ++i) {
    TestPlant tp;
    RunConfig cfg;
    cfg.arch = i == 0 ? Architecture::kProductsAtNode
                      : Architecture::kProductsAtServer;
    auto run = tp.MakeRun(TinySpec(), cfg);
    run->Start();
    tp.sim.Run();
    EXPECT_TRUE(run->done());
    finish[i] = run->finish_time();
  }
  EXPECT_LT(finish[1], finish[0]);
}

TEST(ForecastRunTest, IncrementalDeliveryBeforeCompletion) {
  // §1: "it is normal to move forecasts and products incrementally" —
  // half the day-1 salinity file must be at the server well before the
  // run finishes.
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtServer;
  auto spec = TinySpec();
  auto run = tp.MakeRun(spec, cfg);
  run->Start();
  tp.sim.Run();
  ASSERT_TRUE(run->done());
  auto t_half = tp.recorder.FirstTimeAtLeast("1_salt.63", 0.5);
  ASSERT_TRUE(t_half.ok());
  EXPECT_LT(*t_half, run->finish_time() * 0.5);
}

TEST(ForecastRunTest, Day1FileCompletesBeforeDay2File) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtServer;
  auto run = tp.MakeRun(TinySpec(), cfg);
  run->Start();
  tp.sim.Run();
  auto t1 = tp.recorder.FirstTimeAtLeast("1_salt.63", 0.999);
  auto t2 = tp.recorder.FirstTimeAtLeast("2_salt.63", 0.999);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_LT(*t1, *t2);
}

TEST(ForecastRunTest, SeriesFractionsMonotonic) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtNode;
  auto run = tp.MakeRun(TinySpec(), cfg);
  run->Start();
  tp.sim.Run();
  for (const auto& name : tp.recorder.SeriesNames()) {
    auto pts = tp.recorder.Get(name);
    ASSERT_TRUE(pts.ok());
    double prev = -1.0;
    for (const auto& p : *pts) {
      EXPECT_GE(p.value, prev) << name;
      EXPECT_LE(p.value, 1.0 + 1e-9) << name;
      prev = p.value;
    }
  }
}

TEST(ForecastRunTest, SeriesPrefixApplied) {
  TestPlant tp;
  RunConfig cfg;
  cfg.arch = Architecture::kProductsAtServer;
  cfg.series_prefix = "tiny/";
  auto run = tp.MakeRun(TinySpec(), cfg);
  run->Start();
  tp.sim.Run();
  EXPECT_TRUE(tp.recorder.Has("tiny/1_salt.63"));
  EXPECT_FALSE(tp.recorder.Has("1_salt.63"));
}

TEST(ForecastRunTest, NoSeriesWhenDisabled) {
  TestPlant tp;
  RunConfig cfg;
  cfg.record_series = false;
  auto run = tp.MakeRun(TinySpec(), cfg);
  run->Start();
  tp.sim.Run();
  EXPECT_TRUE(tp.recorder.SeriesNames().empty());
}

TEST(ForecastRunTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    TestPlant tp;
    RunConfig cfg;
    cfg.arch = Architecture::kProductsAtNode;
    auto run = tp.MakeRun(TinySpec(), cfg);
    run->Start();
    tp.sim.Run();
    return run->finish_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dataflow
}  // namespace ff
