#include "dataflow/partitioned_run.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/logging.h"
#include "workload/fleet.h"

namespace ff {
namespace dataflow {
namespace {

// A plant with one primary, K secondary hosts and explicit down/up links.
struct PartitionedPlant {
  sim::Simulator sim;
  cluster::Machine primary{&sim, "primary", 2, 1.0, 1.0e9};
  cluster::Link primary_uplink{&sim, "primary->server", 12.5e6};
  std::vector<std::unique_ptr<cluster::Machine>> machines;
  std::vector<std::unique_ptr<cluster::Link>> links;
  std::vector<SecondaryHost> secondaries;
  sim::SeriesRecorder recorder;

  explicit PartitionedPlant(int k, double bps = 12.5e6) {
    for (int i = 0; i < k; ++i) {
      machines.push_back(std::make_unique<cluster::Machine>(
          &sim, "sec" + std::to_string(i), 2, 1.0, 1.0e9));
      links.push_back(std::make_unique<cluster::Link>(
          &sim, "down" + std::to_string(i), bps));
      links.push_back(std::make_unique<cluster::Link>(
          &sim, "up" + std::to_string(i), bps));
      SecondaryHost host;
      host.machine = machines.back().get();
      host.downlink = links[links.size() - 2].get();
      host.uplink = links.back().get();
      secondaries.push_back(host);
    }
  }
};

workload::ForecastSpec TinySpec() {
  workload::ForecastSpec spec = workload::MakeElcircEstuaryForecast();
  spec.name = "tiny";
  spec.mesh_sides = 700;
  spec.increments = 12;
  for (auto& f : spec.output_files) f.total_bytes /= 10;
  for (auto& p : spec.products) {
    p.cpu_per_increment = 4.0;
    p.bytes_per_increment /= 10;
  }
  return spec;
}

std::vector<int> RoundRobinPartition(size_t n_products, int hosts) {
  std::vector<int> out;
  for (size_t i = 0; i < n_products; ++i) {
    out.push_back(static_cast<int>(i) % hosts);
  }
  return out;
}

TEST(PartitionedRunTest, CompletesWithOneSecondary) {
  PartitionedPlant plant(1);
  auto spec = TinySpec();
  PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                     plant.secondaries,
                     RoundRobinPartition(spec.products.size(), 1),
                     &plant.recorder, spec, PartitionedConfig{});
  bool completed = false;
  run.set_on_complete([&] { completed = true; });
  run.Start();
  plant.sim.Run();
  EXPECT_TRUE(run.done());
  EXPECT_TRUE(completed);
  EXPECT_GE(run.finish_time(), run.sim_finish_time());
}

TEST(PartitionedRunTest, CompletesWithThreeSecondaries) {
  PartitionedPlant plant(3);
  auto spec = TinySpec();
  PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                     plant.secondaries,
                     RoundRobinPartition(spec.products.size(), 3),
                     &plant.recorder, spec, PartitionedConfig{});
  run.Start();
  plant.sim.Run();
  ASSERT_TRUE(run.done());
  // Every product directory fully lands at the server.
  for (const auto& p : spec.products) {
    auto last = plant.recorder.LastValue(p.name);
    ASSERT_TRUE(last.ok()) << p.name;
    EXPECT_NEAR(*last, 1.0, 1e-6) << p.name;
  }
}

TEST(PartitionedRunTest, TransferOverheadExceedsArchitecture2) {
  // The §2.2 concern: replication to secondaries + product push-back
  // means more bytes on the wire than model outputs alone.
  PartitionedPlant plant(2);
  auto spec = TinySpec();
  PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                     plant.secondaries,
                     RoundRobinPartition(spec.products.size(), 2),
                     &plant.recorder, spec, PartitionedConfig{});
  run.Start();
  plant.sim.Run();
  ASSERT_TRUE(run.done());
  EXPECT_GT(run.bytes_transferred(),
            spec.TotalModelBytes() + spec.TotalProductBytes());
}

TEST(PartitionedRunTest, SimulationUnperturbedByProducts) {
  // The primary runs nothing but the simulation: its finish time matches
  // the serial CPU demand.
  PartitionedPlant plant(2);
  auto spec = TinySpec();
  PartitionedConfig cfg;
  PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                     plant.secondaries,
                     RoundRobinPartition(spec.products.size(), 2),
                     &plant.recorder, spec, cfg);
  run.Start();
  plant.sim.Run();
  ASSERT_TRUE(run.done());
  EXPECT_NEAR(run.sim_finish_time(),
              cfg.cost_model.SimulationCpuSeconds(spec), 1.0);
}

TEST(PartitionedRunTest, SlowDownlinkDelaysCompletion) {
  double fast_finish, slow_finish;
  {
    PartitionedPlant plant(1, /*bps=*/12.5e6);
    auto spec = TinySpec();
    PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                       plant.secondaries,
                       RoundRobinPartition(spec.products.size(), 1),
                       &plant.recorder, spec, PartitionedConfig{});
    run.Start();
    plant.sim.Run();
    ASSERT_TRUE(run.done());
    fast_finish = run.finish_time();
  }
  {
    PartitionedPlant plant(1, /*bps=*/0.05e6);  // ~0.4 Mb/s replication
    auto spec = TinySpec();
    PartitionedRun run(&plant.sim, &plant.primary, &plant.primary_uplink,
                       plant.secondaries,
                       RoundRobinPartition(spec.products.size(), 1),
                       &plant.recorder, spec, PartitionedConfig{});
    run.Start();
    plant.sim.Run();
    ASSERT_TRUE(run.done());
    slow_finish = run.finish_time();
  }
  EXPECT_GT(slow_finish, fast_finish * 1.2);
}

TEST(PartitionedRunTest, ValidatesPartitionVector) {
  PartitionedPlant plant(1);
  auto spec = TinySpec();
  EXPECT_DEATH(
      {
        PartitionedRun run(&plant.sim, &plant.primary,
                           &plant.primary_uplink, plant.secondaries,
                           RoundRobinPartition(spec.products.size(), 3),
                           &plant.recorder, spec, PartitionedConfig{});
      },
      "bad partition entry");
}

}  // namespace
}  // namespace dataflow
}  // namespace ff
