#include "cluster/machine.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace ff {
namespace cluster {
namespace {

TEST(MachineTest, SerialTaskBoundedByOneCpu) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  double done = -1.0;
  m.StartTask(1000.0, [&] { done = s.now(); });
  s.Run();
  EXPECT_NEAR(done, 1000.0, 1e-6);
}

TEST(MachineTest, SpeedScalesRuntime) {
  sim::Simulator s;
  Machine fast(&s, "fast", 2, 2.0);
  Machine slow(&s, "slow", 2, 0.5);
  double fast_done = -1.0, slow_done = -1.0;
  fast.StartTask(100.0, [&] { fast_done = s.now(); });
  slow.StartTask(100.0, [&] { slow_done = s.now(); });
  s.Run();
  EXPECT_NEAR(fast_done, 50.0, 1e-6);
  EXPECT_NEAR(slow_done, 200.0, 1e-6);
}

TEST(MachineTest, PaperExampleThreeForecastsTwoCpus) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  m.StartTask(100.0, nullptr);
  m.StartTask(100.0, nullptr);
  m.StartTask(100.0, nullptr);
  EXPECT_NEAR(m.CurrentRatePerTask(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.active_tasks(), 3u);
}

TEST(MachineTest, RemoveTaskForMigration) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  TaskId id = m.StartTask(500.0, nullptr);
  s.RunUntil(200.0);
  auto remaining = m.RemoveTask(id);
  ASSERT_TRUE(remaining.ok());
  EXPECT_NEAR(*remaining, 300.0, 1e-6);
  EXPECT_EQ(m.active_tasks(), 0u);
}

TEST(MachineTest, DownMachineMakesNoProgress) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  double done = -1.0;
  m.StartTask(100.0, [&] { done = s.now(); });
  m.SetUp(false);
  EXPECT_FALSE(m.up());
  s.RunUntil(1000.0);
  EXPECT_EQ(done, -1.0);
  m.SetUp(true);
  s.Run();
  EXPECT_NEAR(done, 1100.0, 1e-6);
}

TEST(MachineTest, MemoryWithinRamNoThrash) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0, /*ram_bytes=*/1.0e9);
  m.StartTask(100.0, nullptr, /*mem_bytes=*/400e6);
  m.StartTask(100.0, nullptr, /*mem_bytes=*/500e6);
  EXPECT_DOUBLE_EQ(m.thrash_factor(), 1.0);
  EXPECT_NEAR(m.resident_bytes(), 900e6, 1.0);
}

TEST(MachineTest, MemoryOverRamThrashesProportionally) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0, 1.0e9);
  m.StartTask(100.0, nullptr, 700e6);
  m.StartTask(100.0, nullptr, 800e6);
  // 1.5 GB resident on 1 GB RAM -> factor 2/3.
  EXPECT_NEAR(m.thrash_factor(), 1.0e9 / 1.5e9, 1e-9);
  // Both tasks fit on separate CPUs, but thrash slows both.
  EXPECT_NEAR(m.CurrentRatePerTask(), 1.0e9 / 1.5e9, 1e-9);
}

TEST(MachineTest, ThrashClearsWhenTaskFinishes) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0, 1.0e9);
  m.StartTask(30.0, nullptr, 700e6);
  m.StartTask(10000.0, nullptr, 800e6);
  s.RunUntil(60.0);  // short task done (30 / (2/3) = 45)
  EXPECT_EQ(m.active_tasks(), 1u);
  EXPECT_DOUBLE_EQ(m.thrash_factor(), 1.0);
  EXPECT_NEAR(m.resident_bytes(), 800e6, 1.0);
}

TEST(MachineTest, RemoveTaskReleasesMemory) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0, 1.0e9);
  TaskId id = m.StartTask(100.0, nullptr, 900e6);
  m.StartTask(100.0, nullptr, 900e6);
  EXPECT_LT(m.thrash_factor(), 1.0);
  ASSERT_TRUE(m.RemoveTask(id).ok());
  EXPECT_DOUBLE_EQ(m.thrash_factor(), 1.0);
  EXPECT_NEAR(m.resident_bytes(), 900e6, 1.0);
}

TEST(MachineTest, UtilizationAccountsDelivery) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  m.StartTask(100.0, nullptr);
  m.StartTask(100.0, nullptr);
  s.Run();
  // 200 CPU-s delivered over 100 s on 2 CPUs: 100% busy.
  EXPECT_NEAR(m.AverageUtilization(0.0), 1.0, 1e-6);
  EXPECT_NEAR(m.total_cpu_seconds(), 200.0, 1e-3);
}

TEST(MachineTest, HalfUtilization) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  m.StartTask(100.0, nullptr);
  s.Run();
  EXPECT_NEAR(m.AverageUtilization(0.0), 0.5, 1e-6);
}

// Regression for the former std::min(1.0, ...) clamp: utilization is now
// returned unclamped with an FF_DCHECK'd <= 1 + slack invariant, so
// capacity-accounting drift fails loudly instead of being truncated. A
// long churn-heavy saturated run must stay inside the tolerance band
// (above 1 - eps because the machine is saturated throughout; below
// 1 + kUtilizationSlack or the DCHECK inside would have fired).
TEST(MachineTest, UtilizationInvariantSurvivesChurnUnclamped) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, /*speed=*/1.3);
  // Keep >= 4 tasks resident so both CPUs stay busy while speed changes
  // force frequent accounting segments.
  for (int i = 0; i < 6; ++i) m.StartTask(5000.0, nullptr);
  for (int i = 1; i <= 400; ++i) {
    s.ScheduleAt(i * 3.0, [&m, i] {
      m.StartTask(40.0 + (i % 7), nullptr);
    });
  }
  s.Run();
  double u = m.AverageUtilization(0.0);
  EXPECT_GE(u, 1.0 - 1e-9);
  EXPECT_LE(u, 1.0 + Machine::kUtilizationSlack);
}

TEST(MachineTest, UtilizationIdleMachineIsZero) {
  sim::Simulator s;
  Machine m(&s, "f1", 2, 1.0);
  s.RunUntil(100.0);
  EXPECT_DOUBLE_EQ(m.AverageUtilization(0.0), 0.0);
}

}  // namespace
}  // namespace cluster
}  // namespace ff
