#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/link.h"
#include "sim/simulator.h"

namespace ff {
namespace cluster {
namespace {

TEST(LinkTest, TransferTimeIsBytesOverBandwidth) {
  sim::Simulator s;
  Link link(&s, "lan", 12.5e6);  // 100 Mb/s
  double done = -1.0;
  link.StartTransfer(125e6, [&] { done = s.now(); });
  s.Run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(LinkTest, ConcurrentTransfersShareBandwidth) {
  sim::Simulator s;
  Link link(&s, "lan", 10.0);
  double a = -1.0, b = -1.0;
  link.StartTransfer(100.0, [&] { a = s.now(); });
  link.StartTransfer(100.0, [&] { b = s.now(); });
  s.Run();
  // Each gets 5 bytes/s -> both done at t=20.
  EXPECT_NEAR(a, 20.0, 1e-6);
  EXPECT_NEAR(b, 20.0, 1e-6);
}

TEST(LinkTest, CancelReturnsUnsentBytes) {
  sim::Simulator s;
  Link link(&s, "lan", 10.0);
  TransferId id = link.StartTransfer(100.0, nullptr);
  s.RunUntil(4.0);
  auto unsent = link.CancelTransfer(id);
  ASSERT_TRUE(unsent.ok());
  EXPECT_NEAR(*unsent, 60.0, 1e-6);
}

TEST(LinkTest, DownLinkStallsTransfers) {
  sim::Simulator s;
  Link link(&s, "lan", 10.0);
  double done = -1.0;
  link.StartTransfer(100.0, [&] { done = s.now(); });
  link.SetUp(false);
  s.RunUntil(100.0);
  EXPECT_EQ(done, -1.0);
  link.SetUp(true);
  s.Run();
  EXPECT_NEAR(done, 110.0, 1e-6);
}

// The stall-no-loss contract from link.h: a transfer that straddles an
// outage keeps its delivered-byte progress (no loss) and makes none while
// down (no free progress), so it completes after exactly bytes/rate
// seconds of *up* time — and total_bytes_transferred() counts each byte
// once.
TEST(LinkTest, TransferStraddlingOutageKeepsProgressWithoutDoubleCount) {
  sim::Simulator s;
  Link link(&s, "lan", 10.0);
  double done = -1.0;
  TransferId id = link.StartTransfer(100.0, [&] { done = s.now(); });

  // 4 s of service -> 40 bytes delivered, 60 remain.
  s.RunUntil(4.0);
  ASSERT_TRUE(link.RemainingBytes(id).ok());
  EXPECT_NEAR(*link.RemainingBytes(id), 60.0, 1e-6);

  // Outage for 50 s: no progress is made and none is lost.
  link.SetUp(false);
  s.RunUntil(54.0);
  EXPECT_EQ(done, -1.0);
  EXPECT_NEAR(*link.RemainingBytes(id), 60.0, 1e-6);

  // A second outage inside the first must not reset progress either.
  link.SetUp(true);
  s.RunUntil(57.0);  // 3 more up-seconds -> 30 remain
  EXPECT_NEAR(*link.RemainingBytes(id), 30.0, 1e-6);
  link.SetUp(false);
  s.RunUntil(60.0);
  EXPECT_NEAR(*link.RemainingBytes(id), 30.0, 1e-6);
  link.SetUp(true);

  s.Run();
  // 10 s of total up time (4 + 3 + 3) at 10 B/s delivers the 100 bytes;
  // outages add 50 + 3 = 53 stalled seconds.
  EXPECT_NEAR(done, 63.0, 1e-6);
  // Each byte counted exactly once despite two resumes.
  EXPECT_NEAR(link.total_bytes_transferred(), 100.0, 1e-6);
  EXPECT_TRUE(link.RemainingBytes(id).status().IsNotFound());
}

TEST(LinkTest, DegradeScalesRateAndComposesWithOutage) {
  sim::Simulator s;
  Link link(&s, "lan", 10.0);
  double done = -1.0;
  link.StartTransfer(100.0, [&] { done = s.now(); });
  link.SetDegrade(0.5);  // 5 B/s
  s.RunUntil(10.0);      // 50 bytes delivered
  link.SetUp(false);     // outage during the degraded period
  s.RunUntil(20.0);
  link.SetUp(true);      // resumes *degraded*, per the link.h contract
  s.RunUntil(25.0);      // +25 bytes
  link.SetDegrade(1.0);  // full rate for the last 25 bytes
  s.Run();
  EXPECT_NEAR(done, 27.5, 1e-6);
  EXPECT_NEAR(link.total_bytes_transferred(), 100.0, 1e-6);
}

TEST(ClusterTest, AddAndLookupNodes) {
  sim::Simulator s;
  Cluster c(&s);
  NodeSpec spec;
  spec.name = "f1";
  spec.num_cpus = 2;
  ASSERT_TRUE(c.AddNode(spec).ok());
  auto node = c.node("f1");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->name(), "f1");
  EXPECT_EQ((*node)->num_cpus(), 2);
  auto uplink = c.uplink("f1");
  ASSERT_TRUE(uplink.ok());
  EXPECT_EQ((*uplink)->name(), "f1->server");
}

TEST(ClusterTest, DuplicateNodeRejected) {
  sim::Simulator s;
  Cluster c(&s);
  NodeSpec spec;
  spec.name = "f1";
  ASSERT_TRUE(c.AddNode(spec).ok());
  EXPECT_TRUE(c.AddNode(spec).IsAlreadyExists());
}

TEST(ClusterTest, ServerNameReserved) {
  sim::Simulator s;
  Cluster c(&s);
  NodeSpec spec;
  spec.name = "server";
  EXPECT_TRUE(c.AddNode(spec).IsInvalidArgument());
}

TEST(ClusterTest, UnknownNodeNotFound) {
  sim::Simulator s;
  Cluster c(&s);
  EXPECT_TRUE(c.node("ghost").status().IsNotFound());
  EXPECT_TRUE(c.uplink("ghost").status().IsNotFound());
  EXPECT_TRUE(c.SetNodeUp("ghost", false).IsNotFound());
}

TEST(ClusterTest, ServerAlwaysPresent) {
  sim::Simulator s;
  Cluster c(&s, /*server_cpus=*/4, /*server_speed=*/1.5);
  ASSERT_NE(c.server(), nullptr);
  EXPECT_EQ(c.server()->num_cpus(), 4);
  EXPECT_DOUBLE_EQ(c.server()->speed(), 1.5);
}

TEST(ClusterTest, NodeNamesPreserveInsertionOrder) {
  sim::Simulator s;
  Cluster c(&s);
  for (const char* n : {"f3", "f1", "f2"}) {
    NodeSpec spec;
    spec.name = n;
    ASSERT_TRUE(c.AddNode(spec).ok());
  }
  EXPECT_EQ(c.NodeNames(), (std::vector<std::string>{"f3", "f1", "f2"}));
  EXPECT_EQ(c.num_nodes(), 3u);
}

TEST(ClusterTest, SetNodeUpTogglesMachineAndUplink) {
  sim::Simulator s;
  Cluster c(&s);
  NodeSpec spec;
  spec.name = "f1";
  ASSERT_TRUE(c.AddNode(spec).ok());
  ASSERT_TRUE(c.SetNodeUp("f1", false).ok());
  EXPECT_FALSE((*c.node("f1"))->up());
  EXPECT_FALSE((*c.uplink("f1"))->up());
  ASSERT_TRUE(c.SetNodeUp("f1", true).ok());
  EXPECT_TRUE((*c.node("f1"))->up());
}

}  // namespace
}  // namespace cluster
}  // namespace ff
