// Property tests for the virtual-time PsResource kernel: randomized
// interleavings of Add / Remove / SetSpeedFactor / SetCongestionFactor are
// cross-validated against a brute-force O(K) reference model (the
// pre-virtual-time algorithm: per-job `remaining -= rate*dt` sweep and
// min-scan), plus a determinism test asserting identical event counts and
// bit-identical completion traces for identical seeds.

#include "cluster/ps_resource.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace ff {
namespace cluster {
namespace {

enum class OpKind { kAdd, kRemove, kSetSpeed, kSetCongestion };

struct Op {
  double time = 0.0;
  OpKind kind = OpKind::kAdd;
  int key = 0;        // job key for kAdd / kRemove
  double value = 0.0; // work / factor
};

struct Scenario {
  double capacity = 2.0;
  double max_per_job = 1.0;
  std::vector<Op> ops;
};

Scenario MakeScenario(uint64_t seed, int n_ops) {
  util::Rng rng(seed);
  Scenario sc;
  sc.capacity = rng.Uniform(1.0, 8.0);
  sc.max_per_job = rng.Uniform(0.5, sc.capacity);
  int next_key = 0;
  std::vector<int> candidates;  // keys that have been added at some point
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.time = rng.Uniform(0.0, 5000.0);
    double p = rng.Uniform01();
    if (p < 0.55 || candidates.empty()) {
      op.kind = OpKind::kAdd;
      op.key = next_key++;
      op.value = rng.Uniform(0.0, 800.0);
      candidates.push_back(op.key);
    } else if (p < 0.8) {
      op.kind = OpKind::kRemove;
      op.key = candidates[rng.Index(candidates.size())];
    } else if (p < 0.9) {
      op.kind = OpKind::kSetSpeed;
      op.value = rng.Uniform(0.3, 2.0);
    } else {
      op.kind = OpKind::kSetCongestion;
      op.value = rng.Uniform(0.3, 1.0);
    }
    sc.ops.push_back(op);
  }
  std::sort(sc.ops.begin(), sc.ops.end(),
            [](const Op& a, const Op& b) { return a.time < b.time; });
  return sc;
}

struct Trace {
  std::map<int, double> completion;       // key -> completion time
  std::map<int, double> removed_remaining;  // key -> remaining at Remove
  uint64_t events_processed = 0;
};

// Executes the scenario on the real kernel (PsResource on a Simulator).
Trace RunReal(const Scenario& sc) {
  sim::Simulator sim;
  PsResource res(&sim, "prop", sc.capacity, sc.max_per_job);
  Trace tr;
  std::map<int, JobId> live;  // key -> id, while resident
  for (const auto& op : sc.ops) {
    sim.ScheduleAt(op.time, [&, op] {
      switch (op.kind) {
        case OpKind::kAdd:
          live[op.key] = res.Add(op.value, [&, key = op.key] {
            tr.completion[key] = sim.now();
            live.erase(key);
          });
          break;
        case OpKind::kRemove: {
          auto it = live.find(op.key);
          if (it != live.end()) {
            auto remaining = res.Remove(it->second);
            ASSERT_TRUE(remaining.ok());
            tr.removed_remaining[op.key] = *remaining;
            live.erase(it);
          }
          break;
        }
        case OpKind::kSetSpeed:
          res.SetSpeedFactor(op.value);
          break;
        case OpKind::kSetCongestion:
          res.SetCongestionFactor(op.value);
          break;
      }
    });
  }
  sim.Run();
  tr.events_processed = sim.events_processed();
  EXPECT_EQ(res.active_jobs(), 0u);
  return tr;
}

// Brute-force reference: the seed algorithm, advanced op-by-op with
// explicit per-job subtraction and completion scans between ops.
class RefModel {
 public:
  RefModel(double capacity, double max_per_job)
      : capacity_(capacity), max_per_job_(max_per_job) {}

  void AdvanceTo(double t, Trace* tr) {
    while (true) {
      double rate = Rate();
      if (jobs_.empty() || rate <= 0.0) break;
      double min_remaining = std::numeric_limits<double>::infinity();
      for (const auto& [key, rem] : jobs_) {
        min_remaining = std::min(min_remaining, rem);
      }
      double t_done = now_ + std::max(0.0, min_remaining) / rate;
      if (t_done > t) break;
      Sweep(t_done - now_, rate);
      now_ = t_done;
      double threshold = std::max(1e-9, rate * 1e-6);
      for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (it->second <= threshold) {
          tr->completion[it->first] = now_;
          it = jobs_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (t > now_) {
      Sweep(t - now_, Rate());
      now_ = t;
    }
  }

  void Apply(const Op& op, Trace* tr) {
    AdvanceTo(op.time, tr);
    switch (op.kind) {
      case OpKind::kAdd:
        jobs_[op.key] = std::max(0.0, op.value);
        break;
      case OpKind::kRemove: {
        auto it = jobs_.find(op.key);
        // Mirror the real run: Remove only applies while resident.
        if (it != jobs_.end() && !tr->completion.count(op.key)) {
          tr->removed_remaining[op.key] = std::max(0.0, it->second);
          jobs_.erase(it);
        }
        break;
      }
      case OpKind::kSetSpeed:
        speed_ = op.value;
        break;
      case OpKind::kSetCongestion:
        congestion_ = op.value;
        break;
    }
  }

  void Drain(Trace* tr) {
    AdvanceTo(std::numeric_limits<double>::infinity(), tr);
    EXPECT_TRUE(jobs_.empty());
  }

 private:
  double Rate() const {
    if (jobs_.empty() || speed_ <= 0.0 || congestion_ <= 0.0) return 0.0;
    double share = capacity_ / static_cast<double>(jobs_.size());
    return speed_ * congestion_ * std::min(max_per_job_, share);
  }

  void Sweep(double dt, double rate) {
    if (dt <= 0.0 || rate <= 0.0) return;
    for (auto& [key, rem] : jobs_) rem -= rate * dt;
  }

  double capacity_;
  double max_per_job_;
  double speed_ = 1.0;
  double congestion_ = 1.0;
  double now_ = 0.0;
  std::map<int, double> jobs_;  // key -> remaining
};

Trace RunReference(const Scenario& sc) {
  RefModel model(sc.capacity, sc.max_per_job);
  Trace tr;
  for (const auto& op : sc.ops) model.Apply(op, &tr);
  model.Drain(&tr);
  return tr;
}

class PsResourcePropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PsResourcePropertySweep, MatchesBruteForceReference) {
  const uint64_t seed = GetParam();
  Scenario sc = MakeScenario(seed, /*n_ops=*/120);
  Trace real = RunReal(sc);
  Trace ref = RunReference(sc);

  ASSERT_EQ(real.completion.size(), ref.completion.size()) << "seed " << seed;
  for (const auto& [key, t_ref] : ref.completion) {
    ASSERT_TRUE(real.completion.count(key)) << "seed " << seed << " job "
                                            << key;
    EXPECT_NEAR(real.completion.at(key), t_ref, 1e-6 + t_ref * 1e-9)
        << "seed " << seed << " job " << key;
  }
  ASSERT_EQ(real.removed_remaining.size(), ref.removed_remaining.size())
      << "seed " << seed;
  for (const auto& [key, w_ref] : ref.removed_remaining) {
    ASSERT_TRUE(real.removed_remaining.count(key))
        << "seed " << seed << " job " << key;
    EXPECT_NEAR(real.removed_remaining.at(key), w_ref, 1e-6 + w_ref * 1e-9)
        << "seed " << seed << " job " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, PsResourcePropertySweep,
                         ::testing::Range<uint64_t>(1, 21));

// Identical seeds must give identical event counts and bit-identical
// completion traces — the determinism contract the factory layers (and the
// byte-identical figure reproductions) rely on.
TEST(PsResourceDeterminismTest, IdenticalSeedsIdenticalTraces) {
  for (uint64_t seed : {3u, 11u, 17u}) {
    Scenario sc = MakeScenario(seed, 150);
    Trace a = RunReal(sc);
    Trace b = RunReal(sc);
    EXPECT_EQ(a.events_processed, b.events_processed) << "seed " << seed;
    ASSERT_EQ(a.completion.size(), b.completion.size()) << "seed " << seed;
    for (const auto& [key, t] : a.completion) {
      // Bitwise equality, not tolerance: the kernel is deterministic.
      EXPECT_EQ(t, b.completion.at(key)) << "seed " << seed << " job " << key;
    }
    for (const auto& [key, w] : a.removed_remaining) {
      EXPECT_EQ(w, b.removed_remaining.at(key))
          << "seed " << seed << " job " << key;
    }
  }
}

}  // namespace
}  // namespace cluster
}  // namespace ff
