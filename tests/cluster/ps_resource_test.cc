#include "cluster/ps_resource.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.h"

namespace ff {
namespace cluster {
namespace {

TEST(PsResourceTest, SingleJobRunsAtCappedRate) {
  sim::Simulator s;
  PsResource r(&s, "node", /*capacity=*/2.0, /*max_per_job=*/1.0);
  double done_at = -1.0;
  r.Add(100.0, [&] { done_at = s.now(); });
  s.Run();
  // 1 job on 2 CPUs is capped at 1 CPU: 100 s of work takes 100 s.
  EXPECT_NEAR(done_at, 100.0, 1e-6);
}

TEST(PsResourceTest, TwoJobsTwoCpusNoSlowdown) {
  sim::Simulator s;
  PsResource r(&s, "node", 2.0, 1.0);
  std::vector<double> done(2, -1.0);
  r.Add(100.0, [&] { done[0] = s.now(); });
  r.Add(100.0, [&] { done[1] = s.now(); });
  s.Run();
  EXPECT_NEAR(done[0], 100.0, 1e-6);
  EXPECT_NEAR(done[1], 100.0, 1e-6);
}

TEST(PsResourceTest, ThreeJobsTwoCpusGetTwoThirdsEach) {
  // The paper's worked example: three forecasts on a dual-CPU node each
  // receive 2/3 of a CPU.
  sim::Simulator s;
  PsResource r(&s, "node", 2.0, 1.0);
  std::vector<double> done(3, -1.0);
  for (int i = 0; i < 3; ++i) {
    r.Add(100.0, [&, i] { done[i] = s.now(); });
  }
  EXPECT_NEAR(r.CurrentRatePerJob(), 2.0 / 3.0, 1e-12);
  s.Run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(done[i], 150.0, 1e-6);  // 100 / (2/3)
  }
}

TEST(PsResourceTest, DepartureSpeedsUpSurvivors) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  double short_done = -1.0, long_done = -1.0;
  r.Add(50.0, [&] { short_done = s.now(); });
  r.Add(100.0, [&] { long_done = s.now(); });
  s.Run();
  // Both run at 1/2 until the short job finishes at t=100 (50/0.5); the
  // long job then has 50 left at rate 1 -> done at 150.
  EXPECT_NEAR(short_done, 100.0, 1e-6);
  EXPECT_NEAR(long_done, 150.0, 1e-6);
}

TEST(PsResourceTest, LateArrivalSharesFairly) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  double first_done = -1.0;
  r.Add(100.0, [&] { first_done = s.now(); });
  s.ScheduleAt(50.0, [&] { r.Add(1000.0, nullptr); });
  s.Run();
  // First job: 50 done alone, then shares at 1/2 -> 50 more work takes
  // 100 s -> completes at 150.
  EXPECT_NEAR(first_done, 150.0, 1e-6);
}

TEST(PsResourceTest, RemoveReturnsRemainingWork) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  JobId id = r.Add(100.0, nullptr);
  s.RunUntil(30.0);
  auto remaining = r.Remove(id);
  ASSERT_TRUE(remaining.ok());
  EXPECT_NEAR(*remaining, 70.0, 1e-6);
  EXPECT_EQ(r.active_jobs(), 0u);
}

TEST(PsResourceTest, RemoveUnknownJobFails) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  EXPECT_TRUE(r.Remove(12345).status().IsNotFound());
}

TEST(PsResourceTest, RemainingWorkTracksProgress) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  JobId id = r.Add(100.0, nullptr);
  s.RunUntil(25.0);
  EXPECT_NEAR(*r.RemainingWork(id), 75.0, 1e-6);
  s.RunUntil(99.0);
  EXPECT_NEAR(*r.RemainingWork(id), 1.0, 1e-6);
}

TEST(PsResourceTest, SpeedFactorScalesService) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  double done_at = -1.0;
  r.Add(100.0, [&] { done_at = s.now(); });
  r.SetSpeedFactor(0.5);
  s.Run();
  EXPECT_NEAR(done_at, 200.0, 1e-6);
}

TEST(PsResourceTest, ZeroSpeedStallsWithoutLosingWork) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  double done_at = -1.0;
  JobId id = r.Add(100.0, [&] { done_at = s.now(); });
  s.RunUntil(40.0);
  r.SetSpeedFactor(0.0);  // node down
  s.RunUntil(500.0);
  EXPECT_EQ(done_at, -1.0);
  EXPECT_NEAR(*r.RemainingWork(id), 60.0, 1e-6);
  r.SetSpeedFactor(1.0);  // node back up
  s.Run();
  EXPECT_NEAR(done_at, 560.0, 1e-6);
}

TEST(PsResourceTest, CongestionFactorSlowsEveryone) {
  sim::Simulator s;
  PsResource r(&s, "node", 2.0, 1.0);
  double done_at = -1.0;
  r.Add(100.0, [&] { done_at = s.now(); });
  r.SetCongestionFactor(0.5);
  s.Run();
  EXPECT_NEAR(done_at, 200.0, 1e-6);
}

TEST(PsResourceTest, ZeroWorkCompletesImmediatelyViaQueue) {
  sim::Simulator s;
  PsResource r(&s, "node", 1.0, 1.0);
  double done_at = -1.0;
  bool synchronous = true;
  r.Add(0.0, [&] { done_at = s.now(); });
  // Completion must be deferred through the event queue.
  EXPECT_EQ(done_at, -1.0);
  synchronous = false;
  s.Run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
  EXPECT_FALSE(synchronous);
}

TEST(PsResourceTest, TinyResidualWorkDoesNotWedgeTheClock) {
  // Regression: residual work smaller than the per-tick resolution of
  // double virtual time used to re-fire the completion event at an
  // identical timestamp forever.
  sim::Simulator s;
  PsResource r(&s, "link", 12.5e6, 12.5e6);  // fast link
  double done = -1.0;
  r.Add(1.0e9 + 1e-8, [&] { done = s.now(); });
  s.Run();
  EXPECT_NEAR(done, 80.0, 1e-3);
  EXPECT_LT(s.events_processed(), 100u);
}

TEST(PsResourceTest, WorkConservation) {
  // Total delivered work equals total completed work demand.
  sim::Simulator s;
  PsResource r(&s, "node", 2.0, 1.0);
  double total = 0.0;
  for (int i = 1; i <= 10; ++i) {
    double w = i * 13.0;
    total += w;
    s.ScheduleAt(i * 5.0, [&r, w] { r.Add(w, nullptr); });
  }
  s.Run();
  EXPECT_NEAR(r.total_delivered(), total, 1e-3);
}

TEST(PsResourceTest, UtilizationIntegralBounded) {
  sim::Simulator s;
  PsResource r(&s, "node", 2.0, 1.0);
  for (int i = 0; i < 4; ++i) r.Add(100.0, nullptr);
  s.Run();
  // 400 work on 2 CPUs: finishes at t=200, busy integral = 400.
  EXPECT_NEAR(r.busy_capacity_integral(), 400.0, 1e-3);
  EXPECT_NEAR(s.now(), 200.0, 1e-6);
}

// Property sweep: N identical jobs on C CPUs finish simultaneously at
// work * max(1, N/C) (speed 1), the paper's sharing model.
struct ShareCase {
  int jobs;
  int cpus;
};

class PsShareSweep : public ::testing::TestWithParam<ShareCase> {};

TEST_P(PsShareSweep, IdenticalJobsFinishTogetherAtPredictedTime) {
  const auto& p = GetParam();
  sim::Simulator s;
  PsResource r(&s, "node", p.cpus, 1.0);
  std::vector<double> done(static_cast<size_t>(p.jobs), -1.0);
  constexpr double kWork = 120.0;
  for (int i = 0; i < p.jobs; ++i) {
    r.Add(kWork, [&, i] { done[static_cast<size_t>(i)] = s.now(); });
  }
  s.Run();
  double expected =
      kWork * std::max(1.0, static_cast<double>(p.jobs) / p.cpus);
  for (double d : done) EXPECT_NEAR(d, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    JobsByCpus, PsShareSweep,
    ::testing::Values(ShareCase{1, 1}, ShareCase{1, 2}, ShareCase{2, 2},
                      ShareCase{3, 2}, ShareCase{4, 2}, ShareCase{5, 2},
                      ShareCase{8, 2}, ShareCase{3, 4}, ShareCase{7, 4},
                      ShareCase{16, 8}),
    [](const ::testing::TestParamInfo<ShareCase>& info) {
      return std::to_string(info.param.jobs) + "jobs_" +
             std::to_string(info.param.cpus) + "cpus";
    });

}  // namespace
}  // namespace cluster
}  // namespace ff
