#include "core/estimator.h"

#include <gtest/gtest.h>

#include "logdata/loader.h"

namespace ff {
namespace core {
namespace {

workload::ForecastSpec Spec(int64_t timesteps = 5760,
                            int64_t mesh = 20000) {
  workload::ForecastSpec s;
  s.name = "forecast-x";
  s.timesteps = timesteps;
  s.mesh_sides = mesh;
  return s;
}

logdata::LogRecord Rec(int day, double walltime, int64_t timesteps = 5760,
                       int64_t mesh = 20000, const char* node = "f1",
                       logdata::RunStatus status =
                           logdata::RunStatus::kCompleted) {
  logdata::LogRecord r;
  r.forecast = "forecast-x";
  r.day = day;
  r.node = node;
  r.code_version = "v1";
  r.mesh_sides = mesh;
  r.timesteps = timesteps;
  r.walltime = walltime;
  r.status = status;
  return r;
}

TEST(EstimatorTest, FallsBackToCostModelWithoutDb) {
  RunTimeEstimator est(nullptr, workload::CostModel{});
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->from_history);
  EXPECT_GT(e->cpu_seconds, 0.0);
}

TEST(EstimatorTest, FallsBackWhenNoHistoryForForecast) {
  statsdb::Database db;
  ASSERT_TRUE(logdata::LoadRuns(&db, {}).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->from_history);
}

TEST(EstimatorTest, MedianOfRecentRuns) {
  statsdb::Database db;
  std::vector<logdata::LogRecord> records;
  for (int day = 1; day <= 5; ++day) {
    records.push_back(Rec(day, 40000.0 + day * 100.0));
  }
  ASSERT_TRUE(logdata::LoadRuns(&db, records).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->from_history);
  EXPECT_EQ(e->history_samples, 5);
  EXPECT_NEAR(e->cpu_seconds, 40300.0, 1.0);  // median of 40100..40500
}

TEST(EstimatorTest, MedianRobustToContentionHump) {
  // Fig. 8's hump days must not poison the estimate.
  statsdb::Database db;
  std::vector<logdata::LogRecord> records;
  for (int day = 1; day <= 6; ++day) records.push_back(Rec(day, 40000.0));
  records.push_back(Rec(7, 120000.0));  // hump day
  ASSERT_TRUE(logdata::LoadRuns(&db, records).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->cpu_seconds, 40000.0, 1.0);
}

TEST(EstimatorTest, TimestepScalingLaw) {
  // §4.3.2: after a timestep change, query earlier runs and "scale the
  // running time accordingly".
  statsdb::Database db;
  ASSERT_TRUE(
      logdata::LoadRuns(&db, {Rec(1, 40000.0, /*timesteps=*/5760)}).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec(/*timesteps=*/11520));
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->cpu_seconds, 80000.0, 1.0);
}

TEST(EstimatorTest, MeshScalingLaw) {
  statsdb::Database db;
  ASSERT_TRUE(
      logdata::LoadRuns(&db, {Rec(1, 40000.0, 5760, /*mesh=*/20000)}).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec(5760, /*mesh=*/30000));
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->cpu_seconds, 60000.0, 1.0);
}

TEST(EstimatorTest, NodeSpeedNormalization) {
  // Walltime logged on a 2x-speed node represents 2x the reference work.
  statsdb::Database db;
  ASSERT_TRUE(logdata::LoadRuns(
                  &db, {Rec(1, 20000.0, 5760, 20000, "fast")})
                  .ok());
  EstimatorConfig cfg;
  cfg.node_speeds["fast"] = 2.0;
  RunTimeEstimator est(&db, workload::CostModel{}, cfg);
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->cpu_seconds, 40000.0, 1.0);
}

TEST(EstimatorTest, IgnoresIncompleteRuns) {
  statsdb::Database db;
  std::vector<logdata::LogRecord> records{
      Rec(1, 40000.0),
      Rec(2, 0.0, 5760, 20000, "f1", logdata::RunStatus::kRunning)};
  ASSERT_TRUE(logdata::LoadRuns(&db, records).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->history_samples, 1);
  EXPECT_NEAR(e->cpu_seconds, 40000.0, 1.0);
}

TEST(EstimatorTest, HistoryWindowLimitsSamples) {
  statsdb::Database db;
  std::vector<logdata::LogRecord> records;
  // Old slow days, recent fast days.
  for (int day = 1; day <= 10; ++day) records.push_back(Rec(day, 80000.0));
  for (int day = 11; day <= 13; ++day) records.push_back(Rec(day, 40000.0));
  ASSERT_TRUE(logdata::LoadRuns(&db, records).ok());
  EstimatorConfig cfg;
  cfg.history_window = 3;
  RunTimeEstimator est(&db, workload::CostModel{}, cfg);
  auto e = est.EstimateWork(Spec());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->history_samples, 3);
  EXPECT_NEAR(e->cpu_seconds, 40000.0, 1.0);
}

TEST(EstimatorTest, UserAdjustmentAppliedAndCleared) {
  statsdb::Database db;
  ASSERT_TRUE(logdata::LoadRuns(&db, {Rec(1, 40000.0)}).ok());
  RunTimeEstimator est(&db, workload::CostModel{});
  est.SetUserAdjustment("forecast-x", 1.1);
  EXPECT_NEAR(est.EstimateWork(Spec())->cpu_seconds, 44000.0, 1.0);
  est.ClearUserAdjustment("forecast-x");
  EXPECT_NEAR(est.EstimateWork(Spec())->cpu_seconds, 40000.0, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace ff
