#include "core/ondemand.h"

#include <gtest/gtest.h>

namespace ff {
namespace core {
namespace {

std::vector<NodeInfo> TwoNodes() {
  return {NodeInfo{"f1", 2, 1.0}, NodeInfo{"f2", 2, 1.0}};
}

DayPlan StockPlan(double work_per_run, double deadline) {
  Planner planner(TwoNodes(), PlannerConfig{});
  std::vector<RunRequest> reqs;
  for (int i = 0; i < 2; ++i) {
    RunRequest r;
    r.name = "stock" + std::to_string(i);
    r.work = work_per_run;
    r.earliest_start = 3600.0;
    r.deadline = deadline;
    reqs.push_back(r);
  }
  auto plan = planner.Plan(reqs);
  EXPECT_TRUE(plan.ok());
  return *plan;
}

OnDemandRequest Req(const std::string& id, double arrival, double work,
                    double deadline) {
  OnDemandRequest r;
  r.id = id;
  r.arrival = arrival;
  r.cpu_seconds = work;
  r.deadline = deadline;
  return r;
}

TEST(OnDemandTest, AcceptsIntoIdleCapacity) {
  // 2 stock runs of 20 ks on 2 dual-CPU nodes: plenty of idle CPU.
  OnDemandScheduler sched(TwoNodes(), StockPlan(20000.0, 86400.0));
  auto placement = sched.Admit(Req("r1", 7200.0, 10000.0, 40000.0));
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->outcome, AdmissionOutcome::kAccepted);
  EXPECT_FALSE(placement->node.empty());
  EXPECT_LE(placement->predicted_completion, 40000.0);
  EXPECT_EQ(sched.accepted(), 1);
}

TEST(OnDemandTest, RejectsWhenOwnDeadlineImpossible) {
  OnDemandScheduler sched(TwoNodes(), StockPlan(20000.0, 86400.0));
  // 10 ks of work due 1 ks after arrival.
  auto placement = sched.Admit(Req("r1", 7200.0, 10000.0, 8200.0));
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->outcome, AdmissionOutcome::kRejectedOwnDeadline);
  EXPECT_EQ(sched.accepted(), 0);
  EXPECT_EQ(sched.rejected(), 1);
}

std::vector<NodeInfo> TwoSingleCpuNodes() {
  return {NodeInfo{"f1", 1, 1.0}, NodeInfo{"f2", 1, 1.0}};
}

DayPlan SingleCpuStockPlan(double work_per_run, double deadline) {
  Planner planner(TwoSingleCpuNodes(), PlannerConfig{});
  std::vector<RunRequest> reqs;
  for (int i = 0; i < 2; ++i) {
    RunRequest r;
    r.name = "stock" + std::to_string(i);
    r.work = work_per_run;
    r.earliest_start = 3600.0;
    r.deadline = deadline;
    reqs.push_back(r);
  }
  auto plan = planner.Plan(reqs);
  EXPECT_TRUE(plan.ok());
  return *plan;
}

TEST(OnDemandTest, RejectsWhenStockRunWouldMiss) {
  // Single-CPU nodes, each running one stock forecast that finishes with
  // only 2.4 ks of deadline slack: any concurrent request steals cycles
  // and pushes the stock run past its deadline.
  OnDemandScheduler sched(TwoSingleCpuNodes(),
                          SingleCpuStockPlan(40000.0, 46000.0));
  // Servable for ITSELF by end of day on either node, but sharing would
  // delay a stock run beyond its tight deadline.
  auto placement = sched.Admit(Req("r1", 5000.0, 30000.0, 86400.0));
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->outcome, AdmissionOutcome::kRejectedInterference);
}

TEST(OnDemandTest, NewspaperEffectLateRequestsEasier) {
  // The same request arriving after the stock runs finish is accepted;
  // arriving mid-production it is rejected (idle capacity exists later
  // in the day but not when the presses are busy).
  auto plan = SingleCpuStockPlan(40000.0, 46000.0);
  OnDemandScheduler early(TwoSingleCpuNodes(), plan);
  auto during = early.Admit(Req("r", 5000.0, 30000.0, 86400.0));
  ASSERT_TRUE(during.ok());
  EXPECT_NE(during->outcome, AdmissionOutcome::kAccepted);

  OnDemandScheduler late(TwoSingleCpuNodes(), plan);
  auto after = late.Admit(Req("r", 50000.0, 30000.0, 86400.0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->outcome, AdmissionOutcome::kAccepted);
}

TEST(OnDemandTest, AcceptedRequestsOccupyCapacity) {
  OnDemandScheduler sched(TwoNodes(), StockPlan(10000.0, 86400.0));
  // Fill both nodes' spare CPUs with long on-demand jobs (each
  // completes at 3600 + 60000 = 63,600 s, within its 65 ks deadline)...
  for (int i = 0; i < 2; ++i) {
    auto p = sched.Admit(
        Req("big" + std::to_string(i), 3600.0, 60000.0, 65000.0));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->outcome, AdmissionOutcome::kAccepted) << i;
  }
  // ...then a third job: three-way sharing would push an accepted big
  // job past 65 ks on either node, so it must be rejected.
  auto p = sched.Admit(Req("straw", 3600.0, 60000.0, 65000.0));
  ASSERT_TRUE(p.ok());
  EXPECT_NE(p->outcome, AdmissionOutcome::kAccepted);
  EXPECT_EQ(sched.accepted(), 2);
}

TEST(OnDemandTest, PicksFastestFeasibleNode) {
  std::vector<NodeInfo> nodes{{"slow", 2, 0.5}, {"fast", 2, 2.0}};
  Planner planner(nodes, PlannerConfig{});
  auto plan = planner.Plan({});
  ASSERT_TRUE(plan.ok());
  OnDemandScheduler sched(nodes, *plan);
  auto p = sched.Admit(Req("r", 0.0, 10000.0, 86400.0));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->outcome, AdmissionOutcome::kAccepted);
  EXPECT_EQ(p->node, "fast");
  EXPECT_NEAR(p->predicted_completion, 5000.0, 1.0);
}

TEST(OnDemandTest, BaselineMissesNotChargedToRequests) {
  // The stock plan already misses (impossible deadline); requests must
  // still be admissible on the other node.
  PlannerConfig cfg;
  cfg.allow_move = false;
  cfg.allow_delay = false;
  cfg.allow_drop = false;
  Planner planner(TwoNodes(), cfg);
  RunRequest stock;
  stock.name = "doomed";
  stock.work = 90000.0;
  stock.earliest_start = 0.0;
  stock.deadline = 10000.0;  // hopeless
  auto plan = planner.Plan({stock});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->deadline_misses, 1);
  OnDemandScheduler sched(TwoNodes(), *plan);
  auto p = sched.Admit(Req("r", 0.0, 5000.0, 86400.0));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->outcome, AdmissionOutcome::kAccepted);
}

TEST(OnDemandTest, ValidatesInput) {
  OnDemandScheduler sched(TwoNodes(), StockPlan(10000.0, 86400.0));
  EXPECT_FALSE(sched.Admit(Req("bad", 0.0, -5.0, 100.0)).ok());
  ASSERT_TRUE(sched.Admit(Req("a", 5000.0, 10.0, 86400.0)).ok());
  // Out-of-order arrival rejected.
  EXPECT_FALSE(sched.Admit(Req("b", 1000.0, 10.0, 86400.0)).ok());
}

TEST(OnDemandTest, OutcomeNames) {
  EXPECT_STREQ(AdmissionOutcomeName(AdmissionOutcome::kAccepted),
               "accepted");
  EXPECT_STREQ(
      AdmissionOutcomeName(AdmissionOutcome::kRejectedOwnDeadline),
      "rejected-own-deadline");
  EXPECT_STREQ(
      AdmissionOutcomeName(AdmissionOutcome::kRejectedInterference),
      "rejected-interference");
}

}  // namespace
}  // namespace core
}  // namespace ff
