// Focused tests for the ForeMan presentation layers: the Gantt renderer
// (Figure 3's monitoring pane) and the script-generating back end.

#include <gtest/gtest.h>

#include "core/gantt.h"
#include "core/script_gen.h"

namespace ff {
namespace core {
namespace {

DayPlan TwoNodePlan() {
  DayPlan plan;
  PlannedRun a;
  a.name = "forecast-a";
  a.node = "f1";
  a.work = 20000.0;
  a.start_time = 3600.0;
  a.deadline = 86400.0;
  a.predicted_completion = 23600.0;
  PlannedRun b;
  b.name = "forecast-b";
  b.node = "f1";
  b.work = 30000.0;
  b.start_time = 3600.0;
  b.deadline = 86400.0;
  b.predicted_completion = 33600.0;
  PlannedRun c;
  c.name = "forecast-c";
  c.node = "f2";
  c.work = 10000.0;
  c.start_time = 7200.0;
  c.deadline = 86400.0;
  c.predicted_completion = 17200.0;
  plan.runs = {a, b, c};
  plan.makespan = 33600.0;
  return plan;
}

TEST(GanttTest, RendersNodesRunsAndLegend) {
  GanttOptions options;
  std::string out = RenderGantt(TwoNodePlan(), options);
  EXPECT_NE(out.find("f1"), std::string::npos);
  EXPECT_NE(out.find("f2"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("A=forecast-a"), std::string::npos);
  EXPECT_NE(out.find("C=forecast-c"), std::string::npos);
}

TEST(GanttTest, ConcurrentRunsStackIntoSubRows) {
  GanttOptions options;
  std::string out = RenderGantt(TwoNodePlan(), options);
  // forecast-a and forecast-b overlap on f1 -> at least 4 content lines
  // (axis + 2 sub-rows for f1 + 1 for f2).
  int lines = 0;
  for (char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_GE(lines, 5);
  // Both letters appear.
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
}

TEST(GanttTest, NowMarkerShadesThePast) {
  GanttOptions options;
  options.now = 12.0 * 3600.0;
  std::string out = RenderGantt(TwoNodePlan(), options);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);  // completed portions
}

TEST(GanttTest, DroppedRunsOnlyInLegend) {
  DayPlan plan = TwoNodePlan();
  plan.runs[2].dropped = true;
  plan.runs[2].node.clear();
  GanttOptions options;
  std::string out = RenderGantt(plan, options);
  EXPECT_NE(out.find("forecast-c(dropped)"), std::string::npos);
  // No f2 row content (the run was the only one there).
  EXPECT_EQ(out.find("f2"), std::string::npos);
}

TEST(GanttTest, InvalidWindowHandled) {
  GanttOptions options;
  options.t_begin = 100.0;
  options.t_end = 50.0;
  EXPECT_NE(RenderGantt(TwoNodePlan(), options).find("invalid"),
            std::string::npos);
}

TEST(PlanTableTest, FlagsRendered) {
  DayPlan plan = TwoNodePlan();
  plan.runs[0].predicted_completion = plan.runs[0].deadline + 100.0;
  plan.runs[1].delayed = true;
  plan.runs[2].dropped = true;
  std::string out = RenderPlanTable(plan);
  EXPECT_NE(out.find("MISS"), std::string::npos);
  EXPECT_NE(out.find("delayed"), std::string::npos);
  EXPECT_NE(out.find("DROPPED"), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
}

TEST(ScriptGenTest, ShellScriptsGroupByNode) {
  auto scripts = GenerateScripts(TwoNodePlan(), ScriptBackend::kShell);
  ASSERT_EQ(scripts.size(), 2u);
  EXPECT_NE(scripts.at("f1").find("launch    forecast-a"),
            std::string::npos);
  EXPECT_NE(scripts.at("f1").find("launch    forecast-b"),
            std::string::npos);
  EXPECT_NE(scripts.at("f2").find("launch    forecast-c"),
            std::string::npos);
  EXPECT_EQ(scripts.at("f2").find("forecast-a"), std::string::npos);
  // Stage-in/stage-out per run (the paper's script responsibilities).
  EXPECT_NE(scripts.at("f1").find("stage_in"), std::string::npos);
  EXPECT_NE(scripts.at("f1").find("rsync_bg"), std::string::npos);
}

TEST(ScriptGenTest, DroppedRunsOmitted) {
  DayPlan plan = TwoNodePlan();
  plan.runs[2].dropped = true;
  auto scripts = GenerateScripts(plan, ScriptBackend::kShell);
  EXPECT_EQ(scripts.count("f2"), 0u);
}

TEST(ScriptGenTest, DelayedRunsGetStartGuard) {
  DayPlan plan = TwoNodePlan();
  plan.runs[1].delayed = true;
  plan.runs[1].start_time = 4 * 3600.0;
  auto scripts = GenerateScripts(plan, ScriptBackend::kShell);
  EXPECT_NE(scripts.at("f1").find("sleep_until 04:00:00"),
            std::string::npos);
}

TEST(ScriptGenTest, TorqueBackendEmitsPbsDirectives) {
  auto scripts = GenerateScripts(TwoNodePlan(),
                                 ScriptBackend::kTorqueMaui);
  const std::string& f1 = scripts.at("f1");
  EXPECT_NE(f1.find("#PBS -N forecast-a"), std::string::npos);
  EXPECT_NE(f1.find("qsub"), std::string::npos);
  EXPECT_NE(f1.find("walltime="), std::string::npos);
}

TEST(ScriptGenTest, BackendNames) {
  EXPECT_STREQ(ScriptBackendName(ScriptBackend::kShell), "shell");
  EXPECT_STREQ(ScriptBackendName(ScriptBackend::kTorqueMaui),
               "torque-maui");
}

}  // namespace
}  // namespace core
}  // namespace ff
