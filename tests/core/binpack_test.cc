#include "core/binpack.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ff {
namespace core {
namespace {

std::vector<NodeInfo> Nodes(int n, int cpus = 2, double speed = 1.0) {
  std::vector<NodeInfo> out;
  for (int i = 1; i <= n; ++i) {
    out.push_back(NodeInfo{"f" + std::to_string(i), cpus, speed});
  }
  return out;
}

std::vector<PackItem> Items(std::initializer_list<double> works) {
  std::vector<PackItem> out;
  int i = 0;
  for (double w : works) {
    out.push_back(PackItem{"r" + std::to_string(i++), w});
  }
  return out;
}

TEST(BinpackTest, EveryItemAssigned) {
  auto items = Items({10, 20, 30, 40, 50});
  for (PackHeuristic h :
       {PackHeuristic::kFirstFit, PackHeuristic::kFirstFitDecreasing,
        PackHeuristic::kBestFitDecreasing, PackHeuristic::kLpt,
        PackHeuristic::kRoundRobin}) {
    auto result = Pack(items, Nodes(3), h, 100.0);
    ASSERT_TRUE(result.ok()) << PackHeuristicName(h);
    EXPECT_EQ(result->assignment.size(), items.size());
    double total = 0.0;
    for (const auto& [node, load] : result->node_load) total += load;
    EXPECT_NEAR(total, 150.0, 1e-9);
  }
}

TEST(BinpackTest, LptBalancesLoad) {
  // 2 nodes, works {8,7,6,5,4} -> LPT: {8,5,4}=17 hmm vs {7,6}=13... the
  // classic LPT result: makespan 16 vs optimal 15; just assert balance
  // within the LPT bound (4/3 - 1/3m) * OPT.
  auto result =
      Pack(Items({8, 7, 6, 5, 4}), Nodes(2, 1), PackHeuristic::kLpt, 100.0);
  ASSERT_TRUE(result.ok());
  double max_load = 0.0;
  for (const auto& [node, load] : result->node_load) {
    max_load = std::max(max_load, load);
  }
  double opt = 15.0;  // {8,7}/{6,5,4}
  EXPECT_LE(max_load, (4.0 / 3.0 - 1.0 / 6.0) * opt + 1e-9);
}

TEST(BinpackTest, FirstFitRespectsCapacity) {
  auto result = Pack(Items({60, 60, 60}), Nodes(3, 1),
                     PackHeuristic::kFirstFit, 100.0);
  ASSERT_TRUE(result.ok());
  // Each bin capacity 100: first-fit puts one 60 per bin.
  for (const auto& [node, load] : result->node_load) {
    EXPECT_NEAR(load, 60.0, 1e-9);
  }
  EXPECT_NEAR(result->max_relative_load, 0.6, 1e-9);
}

TEST(BinpackTest, OverflowSpillsToLeastLoaded) {
  // Items exceed all capacity; everything must still be placed.
  auto result = Pack(Items({300, 300, 300}), Nodes(2, 1),
                     PackHeuristic::kFirstFitDecreasing, 100.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.size(), 3u);
  EXPECT_GT(result->max_relative_load, 1.0);
}

TEST(BinpackTest, PreviousDayKeepsAssignments) {
  std::map<std::string, std::string> previous{{"r0", "f2"}, {"r1", "f3"}};
  auto result = Pack(Items({10, 20, 30}), Nodes(3),
                     PackHeuristic::kPreviousDay, 86400.0, &previous);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.at("r0"), "f2");
  EXPECT_EQ(result->assignment.at("r1"), "f3");
  // r2 unknown -> least loaded (f1).
  EXPECT_EQ(result->assignment.at("r2"), "f1");
}

TEST(BinpackTest, RoundRobinCycles) {
  auto result = Pack(Items({1, 1, 1, 1}), Nodes(2),
                     PackHeuristic::kRoundRobin, 100.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.at("r0"), "f1");
  EXPECT_EQ(result->assignment.at("r1"), "f2");
  EXPECT_EQ(result->assignment.at("r2"), "f1");
  EXPECT_EQ(result->assignment.at("r3"), "f2");
}

TEST(BinpackTest, RandomNeedsRngAndIsDeterministicWithSeed) {
  auto items = Items({5, 5, 5, 5, 5, 5});
  EXPECT_FALSE(Pack(items, Nodes(2), PackHeuristic::kRandom, 100.0).ok());
  util::Rng r1(3), r2(3);
  auto a = Pack(items, Nodes(2), PackHeuristic::kRandom, 100.0, nullptr,
                &r1);
  auto b = Pack(items, Nodes(2), PackHeuristic::kRandom, 100.0, nullptr,
                &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(BinpackTest, HeterogeneousSpeedNormalization) {
  // LPT should prefer the fast node for more relative balance.
  std::vector<NodeInfo> nodes{{"slow", 2, 0.5}, {"fast", 2, 2.0}};
  auto result =
      Pack(Items({100, 100, 100, 100, 100}), nodes, PackHeuristic::kLpt,
           1000.0);
  ASSERT_TRUE(result.ok());
  // fast node has 4x the capacity of slow; expect ~4:1 load split.
  EXPECT_GT(result->node_load.at("fast"), result->node_load.at("slow"));
}

TEST(BinpackTest, Validation) {
  EXPECT_FALSE(Pack(Items({1}), {}, PackHeuristic::kLpt, 100.0).ok());
  EXPECT_FALSE(Pack(Items({1}), Nodes(1), PackHeuristic::kLpt, 0.0).ok());
  EXPECT_FALSE(Pack({PackItem{"x", -1.0}}, Nodes(1), PackHeuristic::kLpt,
                    100.0)
                   .ok());
}

TEST(BinpackTest, HeuristicNameRoundTrip) {
  for (PackHeuristic h :
       {PackHeuristic::kFirstFit, PackHeuristic::kFirstFitDecreasing,
        PackHeuristic::kBestFitDecreasing, PackHeuristic::kLpt,
        PackHeuristic::kRoundRobin, PackHeuristic::kRandom,
        PackHeuristic::kPreviousDay}) {
    auto parsed = ParsePackHeuristic(PackHeuristicName(h));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, h);
  }
  EXPECT_FALSE(ParsePackHeuristic("quantum").ok());
}

// Property: LPT is a list schedule, so Graham's bound holds with
// checkable quantities: makespan <= total/m + (1 - 1/m) * max_item.
class LptBoundSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LptBoundSweep, GrahamBound) {
  auto [num_items, num_nodes] = GetParam();
  util::Rng rng(static_cast<uint64_t>(num_items * 1000 + num_nodes));
  std::vector<PackItem> items;
  double total = 0.0, max_item = 0.0;
  for (int i = 0; i < num_items; ++i) {
    double w = rng.Uniform(1.0, 100.0);
    items.push_back(PackItem{"r" + std::to_string(i), w});
    total += w;
    max_item = std::max(max_item, w);
  }
  auto result = Pack(items, Nodes(num_nodes, 1), PackHeuristic::kLpt,
                     1e9);
  ASSERT_TRUE(result.ok());
  double makespan = 0.0;
  for (const auto& [node, load] : result->node_load) {
    makespan = std::max(makespan, load);
  }
  double m = num_nodes;
  EXPECT_LE(makespan, total / m + (1.0 - 1.0 / m) * max_item + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LptBoundSweep,
    ::testing::Values(std::make_pair(5, 2), std::make_pair(10, 3),
                      std::make_pair(20, 4), std::make_pair(50, 6),
                      std::make_pair(100, 6), std::make_pair(100, 10),
                      std::make_pair(7, 7), std::make_pair(3, 6)));

}  // namespace
}  // namespace core
}  // namespace ff
