#include "core/share_model.h"

#include <gtest/gtest.h>

namespace ff {
namespace core {
namespace {

std::vector<NodeInfo> OneNode(int cpus = 2, double speed = 1.0) {
  return {NodeInfo{"f1", cpus, speed}};
}

TEST(ShareModelTest, SingleJobTakesItsWork) {
  auto pred = PredictCompletions(OneNode(), {{"a", "f1", 0.0, 100.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("a"), 100.0, 1e-9);
  EXPECT_NEAR(pred->makespan, 100.0, 1e-9);
}

TEST(ShareModelTest, PaperExampleTwoThirdsCpuEach) {
  auto pred = PredictCompletions(OneNode(), {{"a", "f1", 0.0, 100.0},
                                             {"b", "f1", 0.0, 100.0},
                                             {"c", "f1", 0.0, 100.0}});
  ASSERT_TRUE(pred.ok());
  for (const char* id : {"a", "b", "c"}) {
    EXPECT_NEAR(pred->completion.at(id), 150.0, 1e-9) << id;
  }
}

TEST(ShareModelTest, TwoJobsTwoCpusNoInterference) {
  auto pred = PredictCompletions(OneNode(), {{"a", "f1", 0.0, 100.0},
                                             {"b", "f1", 0.0, 50.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("a"), 100.0, 1e-9);
  EXPECT_NEAR(pred->completion.at("b"), 50.0, 1e-9);
}

TEST(ShareModelTest, DepartureAccelerates) {
  auto pred = PredictCompletions(
      OneNode(1), {{"short", "f1", 0.0, 50.0}, {"long", "f1", 0.0, 100.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("short"), 100.0, 1e-9);
  EXPECT_NEAR(pred->completion.at("long"), 150.0, 1e-9);
}

TEST(ShareModelTest, StaggeredStarts) {
  auto pred = PredictCompletions(
      OneNode(1), {{"a", "f1", 0.0, 100.0}, {"b", "f1", 50.0, 1000.0}});
  ASSERT_TRUE(pred.ok());
  // a: 50 alone, then shares -> completes at 150.
  EXPECT_NEAR(pred->completion.at("a"), 150.0, 1e-9);
}

TEST(ShareModelTest, IdleGapBetweenJobs) {
  auto pred = PredictCompletions(
      OneNode(), {{"a", "f1", 0.0, 10.0}, {"b", "f1", 100.0, 10.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("a"), 10.0, 1e-9);
  EXPECT_NEAR(pred->completion.at("b"), 110.0, 1e-9);
}

TEST(ShareModelTest, NodeSpeedScalesCompletion) {
  auto pred = PredictCompletions({NodeInfo{"fast", 2, 2.0}},
                                 {{"a", "fast", 0.0, 100.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("a"), 50.0, 1e-9);
}

TEST(ShareModelTest, MultipleNodesIndependent) {
  std::vector<NodeInfo> nodes{{"f1", 2, 1.0}, {"f2", 2, 1.0}};
  auto pred = PredictCompletions(nodes, {{"a", "f1", 0.0, 100.0},
                                         {"b", "f1", 0.0, 100.0},
                                         {"c", "f1", 0.0, 100.0},
                                         {"d", "f2", 0.0, 100.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("d"), 100.0, 1e-9);
  EXPECT_NEAR(pred->completion.at("a"), 150.0, 1e-9);
  EXPECT_NEAR(pred->node_makespan.at("f1"), 150.0, 1e-9);
  EXPECT_NEAR(pred->node_makespan.at("f2"), 100.0, 1e-9);
  EXPECT_NEAR(pred->makespan, 150.0, 1e-9);
}

TEST(ShareModelTest, ZeroWorkCompletesAtStart) {
  auto pred = PredictCompletions(OneNode(), {{"a", "f1", 42.0, 0.0}});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->completion.at("a"), 42.0, 1e-9);
}

TEST(ShareModelTest, Validation) {
  EXPECT_FALSE(
      PredictCompletions(OneNode(), {{"a", "ghost", 0.0, 10.0}}).ok());
  EXPECT_FALSE(
      PredictCompletions(OneNode(), {{"a", "f1", 0.0, -5.0}}).ok());
  EXPECT_FALSE(PredictCompletions({NodeInfo{"f1", 0, 1.0}}, {}).ok());
  EXPECT_FALSE(PredictCompletions({NodeInfo{"f1", 2, 0.0}}, {}).ok());
  EXPECT_FALSE(PredictCompletions({NodeInfo{"f1", 2, 1.0},
                                   NodeInfo{"f1", 2, 1.0}},
                                  {})
                   .ok());
}

TEST(ShareModelTest, EmptyJobsOk) {
  auto pred = PredictCompletions(OneNode(), {});
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ(pred->makespan, 0.0);
}

// Property sweep: total completion-weighted work is conserved — the sum
// of work equals capacity-delivery integral; additionally every job's
// completion is at least start + work/min(1, cpus)/speed (serial bound).
class ShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShareSweep, SerialLowerBoundHolds) {
  int n = GetParam();
  std::vector<ShareJob> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(ShareJob{"j" + std::to_string(i), "f1", i * 10.0,
                            50.0 + i * 20.0});
  }
  auto pred = PredictCompletions(OneNode(2, 1.0), jobs);
  ASSERT_TRUE(pred.ok());
  for (const auto& j : jobs) {
    double c = pred->completion.at(j.id);
    EXPECT_GE(c + 1e-9, j.start_time + j.work) << j.id;  // <=1 CPU each
  }
  // Makespan lower bound: total work / capacity.
  double total = 0.0;
  for (const auto& j : jobs) total += j.work;
  EXPECT_GE(pred->makespan + 1e-9, total / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Fleet, ShareSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace core
}  // namespace ff
