#include "core/rescheduler.h"

#include <gtest/gtest.h>

namespace ff {
namespace core {
namespace {

class ReschedulerTest : public ::testing::Test {
 protected:
  ReschedulerTest()
      : planner_({NodeInfo{"f1", 2, 1.0}, NodeInfo{"f2", 2, 1.0},
                  NodeInfo{"f3", 2, 1.0}},
                 PlannerConfig{}) {}

  std::vector<RunRequest> MakeRequests() {
    std::vector<RunRequest> reqs;
    for (int i = 0; i < 6; ++i) {
      RunRequest r;
      r.name = "r" + std::to_string(i);
      r.work = 30000.0;
      r.priority = i % 3 + 1;
      r.earliest_start = 3600.0;
      r.deadline = 86400.0;
      reqs.push_back(r);
    }
    return reqs;
  }

  DayPlan MakePlan(const std::vector<RunRequest>& reqs) {
    auto plan = planner_.Plan(reqs);
    EXPECT_TRUE(plan.ok());
    return *plan;
  }

  Planner planner_;
};

TEST_F(ReschedulerTest, MinimalMovesOnlyDisplacedRuns) {
  auto reqs = MakeRequests();
  DayPlan plan = MakePlan(reqs);
  std::string failed = plan.runs[0].node;
  int on_failed = 0;
  for (const auto& r : plan.runs) {
    if (r.node == failed) ++on_failed;
  }
  auto result = RescheduleAfterFailure(planner_, plan, reqs, failed,
                                       /*failure_time=*/7200.0,
                                       ReschedulePolicy::kMinimal);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs_moved, on_failed);
  EXPECT_EQ(result->runs_waiting, 0);
  for (const auto& r : result->plan.runs) {
    EXPECT_NE(r.node, failed) << r.name;
  }
  // Untouched runs keep their nodes.
  for (const auto& r : plan.runs) {
    if (r.node == failed) continue;
    EXPECT_EQ(result->plan.Find(r.name)->node, r.node);
  }
}

TEST_F(ReschedulerTest, NonePolicyLeavesRunsWaiting) {
  auto reqs = MakeRequests();
  DayPlan plan = MakePlan(reqs);
  std::string failed = plan.runs[0].node;
  auto result = RescheduleAfterFailure(planner_, plan, reqs, failed, 7200.0,
                                       ReschedulePolicy::kNone);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs_moved, 0);
  EXPECT_GT(result->runs_waiting, 0);
  // The waiting runs surface as deadline misses.
  EXPECT_GT(result->plan.deadline_misses, 0);
}

TEST_F(ReschedulerTest, FullReplanUsesOnlyHealthyNodes) {
  auto reqs = MakeRequests();
  DayPlan plan = MakePlan(reqs);
  auto result = RescheduleAfterFailure(planner_, plan, reqs, "f2", 7200.0,
                                       ReschedulePolicy::kFullReplan);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->plan.runs) {
    if (!r.dropped) {
      EXPECT_NE(r.node, "f2") << r.name;
    }
  }
}

TEST_F(ReschedulerTest, CascadingNoWorseThanMinimal) {
  auto reqs = MakeRequests();
  DayPlan plan = MakePlan(reqs);
  std::string failed = plan.runs[0].node;
  auto minimal = RescheduleAfterFailure(planner_, plan, reqs, failed,
                                        7200.0, ReschedulePolicy::kMinimal);
  auto cascading = RescheduleAfterFailure(
      planner_, plan, reqs, failed, 7200.0, ReschedulePolicy::kCascading);
  ASSERT_TRUE(minimal.ok());
  ASSERT_TRUE(cascading.ok());
  EXPECT_LE(cascading->plan.deadline_misses,
            minimal->plan.deadline_misses);
  EXPECT_GE(cascading->runs_moved, minimal->runs_moved);
}

TEST_F(ReschedulerTest, UnknownNodeRejected) {
  auto reqs = MakeRequests();
  DayPlan plan = MakePlan(reqs);
  EXPECT_TRUE(RescheduleAfterFailure(planner_, plan, reqs, "ghost", 0.0,
                                     ReschedulePolicy::kMinimal)
                  .status()
                  .IsNotFound());
}

TEST_F(ReschedulerTest, PolicyNames) {
  EXPECT_STREQ(ReschedulePolicyName(ReschedulePolicy::kNone), "none");
  EXPECT_STREQ(ReschedulePolicyName(ReschedulePolicy::kMinimal),
               "minimal");
  EXPECT_STREQ(ReschedulePolicyName(ReschedulePolicy::kCascading),
               "cascading");
  EXPECT_STREQ(ReschedulePolicyName(ReschedulePolicy::kFullReplan),
               "full-replan");
}

TEST(ReschedulerSingleNodeTest, NoHealthyNodesFails) {
  Planner planner({NodeInfo{"f1", 2, 1.0}}, PlannerConfig{});
  RunRequest r;
  r.name = "a";
  r.work = 1000.0;
  auto plan = planner.Plan({r});
  ASSERT_TRUE(plan.ok());
  auto result = RescheduleAfterFailure(planner, *plan, {r}, "f1", 0.0,
                                       ReschedulePolicy::kMinimal);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

}  // namespace
}  // namespace core
}  // namespace ff
