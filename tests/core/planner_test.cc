#include "core/planner.h"

#include <gtest/gtest.h>

namespace ff {
namespace core {
namespace {

std::vector<NodeInfo> SixNodePlant() {
  std::vector<NodeInfo> nodes;
  for (int i = 1; i <= 6; ++i) {
    nodes.push_back(NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  return nodes;
}

RunRequest Req(const std::string& name, double work, int priority = 1,
               double start = 3600.0, double deadline = 86400.0) {
  RunRequest r;
  r.name = name;
  r.work = work;
  r.priority = priority;
  r.earliest_start = start;
  r.deadline = deadline;
  return r;
}

TEST(PlannerTest, PlansFeasibleFleetWithoutMisses) {
  Planner planner(SixNodePlant(), PlannerConfig{});
  std::vector<RunRequest> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(Req("r" + std::to_string(i), 30000.0 + i * 2000.0));
  }
  auto plan = planner.Plan(reqs);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->deadline_misses, 0);
  EXPECT_EQ(plan->dropped, 0);
  EXPECT_EQ(plan->runs.size(), 10u);
  for (const auto& r : plan->runs) {
    EXPECT_FALSE(r.node.empty());
    EXPECT_GT(r.predicted_completion, r.start_time);
    EXPECT_LE(r.predicted_completion, r.deadline);
  }
}

TEST(PlannerTest, PredictionMatchesShareModel) {
  Planner planner({NodeInfo{"f1", 2, 1.0}}, PlannerConfig{});
  auto plan = planner.Plan(
      {Req("a", 10000.0), Req("b", 10000.0), Req("c", 10000.0)});
  ASSERT_TRUE(plan.ok());
  // 3 runs on 2 CPUs at 2/3 each: 15000 s after the 3600 s start.
  for (const auto& r : plan->runs) {
    EXPECT_NEAR(r.predicted_completion, 3600.0 + 15000.0, 1.0);
  }
}

TEST(PlannerTest, MovesLowPriorityOffHotNode) {
  PlannerConfig cfg;
  cfg.heuristic = PackHeuristic::kPreviousDay;  // forces the bad layout
  Planner planner({NodeInfo{"f1", 2, 1.0}, NodeInfo{"f2", 2, 1.0}}, cfg);
  std::map<std::string, std::string> previous{
      {"vip", "f1"}, {"bulk1", "f1"}, {"bulk2", "f1"}, {"bulk3", "f1"}};
  std::vector<RunRequest> reqs{
      Req("vip", 50000.0, /*priority=*/1, 3600.0, 60000.0),
      Req("bulk1", 40000.0, 3), Req("bulk2", 40000.0, 3),
      Req("bulk3", 40000.0, 3)};
  auto plan = planner.Plan(reqs, &previous);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->deadline_misses, 0);
  // At least one bulk run must have been moved off f1.
  int on_f1 = 0;
  for (const auto& r : plan->runs) {
    if (!r.dropped && r.node == "f1") ++on_f1;
  }
  EXPECT_LT(on_f1, 4);
}

TEST(PlannerTest, DropsAsLastResort) {
  PlannerConfig cfg;
  cfg.allow_move = false;
  cfg.allow_delay = false;
  cfg.allow_drop = true;
  Planner planner({NodeInfo{"f1", 1, 1.0}}, cfg);
  // Two runs, both cannot finish by deadline together.
  auto plan = planner.Plan({Req("vip", 40000.0, 1, 0.0, 50000.0),
                            Req("bulk", 40000.0, 5, 0.0, 86400.0)});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->dropped, 1);
  const PlannedRun* bulk = plan->Find("bulk");
  ASSERT_NE(bulk, nullptr);
  EXPECT_TRUE(bulk->dropped);
  const PlannedRun* vip = plan->Find("vip");
  EXPECT_FALSE(vip->dropped);
  EXPECT_LE(vip->predicted_completion, 50000.0);
}

TEST(PlannerTest, DelaysWhenMovingDisabled) {
  PlannerConfig cfg;
  cfg.allow_move = false;
  cfg.allow_delay = true;
  cfg.allow_drop = false;
  Planner planner({NodeInfo{"f1", 1, 1.0}}, cfg);
  auto plan = planner.Plan({Req("vip", 40000.0, 1, 0.0, 50000.0),
                            Req("bulk", 30000.0, 5, 0.0, 86400.0)});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->dropped, 0);
  const PlannedRun* bulk = plan->Find("bulk");
  ASSERT_NE(bulk, nullptr);
  EXPECT_TRUE(bulk->delayed);
  EXPECT_GE(bulk->start_time, 50000.0);
  EXPECT_EQ(plan->deadline_misses, 0);
}

TEST(PlannerTest, ImpossibleDeadlineStillReported) {
  PlannerConfig cfg;
  cfg.allow_move = false;
  cfg.allow_delay = false;
  cfg.allow_drop = false;
  Planner planner({NodeInfo{"f1", 1, 1.0}}, cfg);
  auto plan = planner.Plan({Req("big", 90000.0, 1, 0.0, 50000.0)});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->deadline_misses, 1);
  EXPECT_TRUE(plan->runs[0].MissesDeadline());
}

TEST(PlannerTest, EvaluateRespectsExplicitAssignment) {
  Planner planner(SixNodePlant(), PlannerConfig{});
  std::vector<RunRequest> reqs{Req("a", 10000.0), Req("b", 10000.0)};
  std::map<std::string, std::string> assignment{{"a", "f3"}, {"b", "f3"}};
  auto plan = planner.Evaluate(reqs, assignment);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Find("a")->node, "f3");
  EXPECT_EQ(plan->Find("b")->node, "f3");
}

TEST(PlannerTest, EvaluateValidation) {
  Planner planner(SixNodePlant(), PlannerConfig{});
  std::vector<RunRequest> reqs{Req("a", 10000.0)};
  EXPECT_FALSE(planner.Evaluate(reqs, {}).ok());
  EXPECT_FALSE(planner.Evaluate(reqs, {{"a", "ghost"}}).ok());
}

TEST(PlannerTest, AssignmentViewExcludesDropped) {
  PlannerConfig cfg;
  cfg.allow_move = false;
  cfg.allow_delay = false;
  Planner planner({NodeInfo{"f1", 1, 1.0}}, cfg);
  auto plan = planner.Plan({Req("vip", 40000.0, 1, 0.0, 45000.0),
                            Req("bulk", 40000.0, 5, 0.0, 86400.0)});
  ASSERT_TRUE(plan.ok());
  auto assignment = plan->Assignment();
  EXPECT_EQ(assignment.count("bulk"), 0u);
  EXPECT_EQ(assignment.count("vip"), 1u);
}

// Scale sweep: the paper's expected growth to 50-100 forecasts on more
// nodes — FFD plans must stay feasible when capacity suffices.
class PlannerScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlannerScaleSweep, FleetScalesWithoutMisses) {
  int n_forecasts = GetParam();
  // Provision ~1 node per 3 forecasts of ~30k mean work: inside
  // 2 CPUs x 82,800 usable seconds per node with headroom for skew.
  int n_nodes = std::max(2, n_forecasts / 3);
  std::vector<NodeInfo> nodes;
  for (int i = 0; i < n_nodes; ++i) {
    nodes.push_back(NodeInfo{"n" + std::to_string(i), 2, 1.0});
  }
  Planner planner(nodes, PlannerConfig{});
  util::Rng rng(static_cast<uint64_t>(n_forecasts));
  std::vector<RunRequest> reqs;
  for (int i = 0; i < n_forecasts; ++i) {
    reqs.push_back(Req("r" + std::to_string(i),
                       rng.Uniform(20000.0, 40000.0),
                       static_cast<int>(rng.UniformInt(1, 3))));
  }
  auto plan = planner.Plan(reqs);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->deadline_misses, 0) << "n=" << n_forecasts;
  EXPECT_EQ(plan->dropped, 0);
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, PlannerScaleSweep,
                         ::testing::Values(10, 25, 50, 75, 100));

}  // namespace
}  // namespace core
}  // namespace ff
