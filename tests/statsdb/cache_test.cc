// Two-tier query cache (statsdb/cache.h): table epochs, plan tier,
// result tier, prepared statements, and concurrency.
//
// Every test pins the cache mode explicitly via set_cache_config — the
// FF_STATSDB_CACHE environment variable only seeds the Database
// constructor, and CI runs this binary under several values of it.
// The correctness contract under test: with caching on, every result
// (rows, row order, error text) is byte-identical to cache-off.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/sql.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {
namespace {

CacheConfig FullConfig() {
  CacheConfig cfg;
  cfg.mode = CacheConfig::Mode::kFull;
  return cfg;
}

CacheConfig PlanOnlyConfig() {
  CacheConfig cfg;
  cfg.mode = CacheConfig::Mode::kPlanOnly;
  return cfg;
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Sql("CREATE TABLE runs (forecast TEXT, day INT, wall DOUBLE)")
            .ok());
    ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('till', 1, 10.0), "
                        "('dev', 2, 20.0), ('till', 3, 30.0)")
                    .ok());
    db_.set_cache_config(FullConfig());
  }

  ResultSet Run(const std::string& sql) {
    auto rs = db_.Sql(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? *rs : ResultSet{};
  }

  Table* runs() {
    auto t = db_.table("runs");
    EXPECT_TRUE(t.ok());
    return *t;
  }

  Database db_;
};

// ------------------------------------------------------------- epochs --

TEST_F(CacheTest, EveryWritePathBumpsTheDataEpoch) {
  Table* t = runs();
  uint64_t e = t->epoch();

  ASSERT_TRUE(t->Insert(Row{Value::String("x"), Value::Int64(4),
                            Value::Double(40.0)})
                  .ok());
  EXPECT_GT(t->epoch(), e) << "Insert must bump";
  e = t->epoch();

  ASSERT_TRUE(t->UpdateCell(0, 2, Value::Double(11.0)).ok());
  EXPECT_GT(t->epoch(), e) << "UpdateCell must bump";
  e = t->epoch();

  ASSERT_TRUE(t->DeleteRows({3}).ok());
  EXPECT_GT(t->epoch(), e) << "DeleteRows must bump";
  e = t->epoch();

  // Deleting nothing changes nothing and must not invalidate.
  ASSERT_TRUE(t->DeleteRows({}).ok());
  EXPECT_EQ(t->epoch(), e) << "empty DeleteRows must not bump";

  Table::BulkAppender app(t);
  app.String("y").Int64(5).Double(50.0);
  ASSERT_TRUE(app.EndRow().ok());
  EXPECT_GT(t->epoch(), e) << "BulkAppender::EndRow must bump";
  e = t->epoch();
  ASSERT_TRUE(app.Finish().ok());

  // SQL write statements ride the same paths.
  ASSERT_TRUE(db_.Sql("UPDATE runs SET wall = wall + 1 WHERE day = 5").ok());
  EXPECT_GT(t->epoch(), e);
  e = t->epoch();
  ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day = 5").ok());
  EXPECT_GT(t->epoch(), e);
}

TEST_F(CacheTest, DdlEpochIsSeparateFromDataEpoch) {
  Table* t = runs();
  uint64_t data = t->epoch();
  uint64_t ddl = t->ddl_epoch();
  ASSERT_TRUE(t->CreateIndex("forecast").ok());
  EXPECT_GT(t->ddl_epoch(), ddl) << "CreateIndex must bump the ddl epoch";
  EXPECT_EQ(t->epoch(), data) << "CreateIndex must not bump the data epoch";
}

TEST_F(CacheTest, EpochsAreNeverReusedAcrossDropAndRecreate) {
  Table* t = runs();
  uint64_t old_epoch = t->epoch();
  ASSERT_TRUE(db_.DropTable("runs").ok());
  ASSERT_TRUE(db_.Sql("CREATE TABLE runs (forecast TEXT, day INT, "
                      "wall DOUBLE)")
                  .ok());
  // The global counter guarantees the recreated (empty!) table cannot
  // alias a result cached against the old incarnation.
  EXPECT_GT(runs()->epoch(), old_epoch);
}

// ---------------------------------------------------------- plan tier --

TEST_F(CacheTest, RepeatStatementHitsThePlanCache) {
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  ResultSet first = Run(kSql);
  ResultSet second = Run(kSql);
  EXPECT_EQ(first.ToCsv(), second.ToCsv());
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.plan_entries, 1u);
}

TEST_F(CacheTest, WhitespaceAndCommentsDoNotKeySeparatePlans) {
  Run("SELECT forecast FROM runs WHERE day = 1");
  Run("  SELECT   forecast\n FROM runs  -- same statement\n WHERE day = 1");
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
}

TEST_F(CacheTest, ExplainSharesThePlanEntryWithItsSelect) {
  Run("SELECT forecast FROM runs WHERE day = 1");
  Run("EXPLAIN SELECT forecast FROM runs WHERE day = 1");
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
}

TEST_F(CacheTest, DataWritesDoNotInvalidatePlans) {
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  Run(kSql);
  ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('z', 9, 90.0)").ok());
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.plan_invalidations, 0u);
}

TEST_F(CacheTest, DdlInvalidatesAffectedPlans) {
  const char kSql[] = "SELECT forecast FROM runs WHERE forecast = 'till'";
  Run(kSql);
  // CREATE INDEX changes what OptimizePlan would produce (index probe
  // annotation), so the cached plan must die.
  ASSERT_TRUE(runs()->CreateIndex("forecast").ok());
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_hits, 0u);
  EXPECT_EQ(s.plan_invalidations, 1u);
  EXPECT_EQ(s.plan_misses, 2u);
}

TEST_F(CacheTest, CatalogChangesInvalidateAllPlans) {
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  Run(kSql);
  ASSERT_TRUE(db_.Sql("CREATE TABLE other (a INT)").ok());
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_hits, 0u);
  EXPECT_EQ(s.plan_invalidations, 1u);
}

TEST_F(CacheTest, PlanEntryCapEvicts) {
  CacheConfig cfg = FullConfig();
  cfg.plan_entries = 2;
  db_.set_cache_config(cfg);
  Run("SELECT forecast FROM runs WHERE day = 1");
  Run("SELECT forecast FROM runs WHERE day = 2");
  Run("SELECT forecast FROM runs WHERE day = 3");
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_entries, 2u);
  EXPECT_EQ(s.plan_evictions, 1u);
}

// -------------------------------------------------------- result tier --

TEST_F(CacheTest, RepeatStatementHitsTheResultCache) {
  const char kSql[] = "SELECT forecast, wall FROM runs WHERE day = 1";
  ResultSet first = Run(kSql);
  ResultSet second = Run(kSql);
  EXPECT_EQ(first.ToCsv(), second.ToCsv());
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.result_misses, 1u);
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_entries, 1u);
  EXPECT_GT(s.result_bytes, 0u);
}

TEST_F(CacheTest, AnyWriteToAReferencedTableInvalidatesItsResults) {
  const char kSql[] = "SELECT COUNT(*) AS n FROM runs";
  ResultSet before = Run(kSql);
  EXPECT_EQ(before.rows[0][0].int64_value(), 3);
  ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('new', 7, 70.0)").ok());
  ResultSet after = Run(kSql);
  EXPECT_EQ(after.rows[0][0].int64_value(), 4)
      << "stale cached COUNT served after a write";
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.result_hits, 0u);
  EXPECT_EQ(s.result_invalidations, 1u);
  EXPECT_EQ(s.result_misses, 2u);
}

TEST_F(CacheTest, WritesToUnreferencedTablesDoNotInvalidate) {
  ASSERT_TRUE(db_.Sql("CREATE TABLE other (a INT)").ok());
  const char kSql[] = "SELECT COUNT(*) AS n FROM runs";
  Run(kSql);
  ASSERT_TRUE(db_.Sql("INSERT INTO other VALUES (1)").ok());
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_invalidations, 0u);
}

TEST_F(CacheTest, PlanOnlyModeBypassesTheResultTier) {
  db_.set_cache_config(PlanOnlyConfig());
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  Run(kSql);
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.result_hits, 0u);
  EXPECT_EQ(s.result_entries, 0u);
  EXPECT_EQ(s.result_bypasses, 2u);
}

TEST_F(CacheTest, OffModeBypassesBothTiers) {
  db_.set_cache_config(CacheConfig{});  // mode defaults to kOff
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  ResultSet first = Run(kSql);
  ResultSet second = Run(kSql);
  EXPECT_EQ(first.ToCsv(), second.ToCsv());
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_bypasses, 2u);
  EXPECT_EQ(s.result_bypasses, 2u);
  EXPECT_EQ(s.plan_entries, 0u);
  EXPECT_EQ(s.result_entries, 0u);
}

TEST_F(CacheTest, ErrorsAreNeverCached) {
  const char kBad[] = "SELECT nope FROM runs";
  auto first = db_.Sql(kBad);
  auto second = db_.Sql(kBad);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.result_entries, 0u);
  EXPECT_EQ(s.result_hits, 0u);
}

TEST_F(CacheTest, ByteBudgetEvictsAndNeverStoresOversizedResults) {
  CacheConfig cfg = FullConfig();
  cfg.result_bytes = 2048;
  db_.set_cache_config(cfg);
  // Distinct statements -> distinct result entries; each result is a
  // handful of rows, so several fit but not all.
  for (int day = 0; day < 64; ++day) {
    Run("SELECT forecast, wall FROM runs WHERE day <= " +
        std::to_string(day));
  }
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_GT(s.result_evictions, 0u);
  EXPECT_LE(s.result_bytes, 2048u);

  // A result bigger than the whole budget is skipped, not stored.
  cfg.result_bytes = 1;
  db_.set_cache_config(cfg);
  db_.cache().Clear();
  Run("SELECT forecast FROM runs");
  EXPECT_EQ(db_.cache().Stats().result_entries, 0u);
}

TEST_F(CacheTest, ConfigSwapKeepsEntriesAndClearDropsThem) {
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  Run(kSql);
  db_.set_cache_config(CacheConfig{});  // off...
  db_.set_cache_config(FullConfig());   // ...and back on: still warm
  Run(kSql);
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.result_hits, 1u);
  db_.cache().Clear();
  s = db_.cache().Stats();
  EXPECT_EQ(s.plan_entries, 0u);
  EXPECT_EQ(s.result_entries, 0u);
}

TEST_F(CacheTest, CachedResultsAreByteIdenticalToCacheOff) {
  const std::vector<std::string> kQueries = {
      "SELECT * FROM runs",
      "SELECT forecast, AVG(wall) AS w FROM runs GROUP BY forecast "
      "ORDER BY forecast",
      "SELECT DISTINCT forecast FROM runs ORDER BY forecast DESC",
      "SELECT wall FROM runs WHERE day BETWEEN 1 AND 2 ORDER BY wall",
  };
  // Warm the cache, then compare a hit against a cache-off run.
  for (const auto& q : kQueries) Run(q);
  for (const auto& q : kQueries) {
    ResultSet warm = Run(q);
    db_.set_cache_config(CacheConfig{});
    ResultSet off = Run(q);
    db_.set_cache_config(FullConfig());
    EXPECT_EQ(warm.ToCsv(), off.ToCsv()) << q;
  }
  EXPECT_GT(db_.cache().Stats().result_hits, 0u);
}

// ------------------------------------------------- prepared statements --

TEST_F(CacheTest, PreparedStatementBindsAndReuses)
{
  auto ps = db_.Prepare("SELECT wall FROM runs WHERE day = ? ORDER BY wall");
  ASSERT_TRUE(ps.ok()) << ps.status();
  EXPECT_EQ(ps->num_params(), 1u);

  auto r1 = ps->Execute({Value::Int64(1)});
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_EQ(r1->rows.size(), 1u);
  EXPECT_EQ(r1->rows[0][0].double_value(), 10.0);

  // Rebinding must not serve the previous binding's result.
  auto r2 = ps->Execute({Value::Int64(2)});
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_EQ(r2->rows.size(), 1u);
  EXPECT_EQ(r2->rows[0][0].double_value(), 20.0);

  // Re-executing the first binding hits its own result entry.
  auto r3 = ps->Execute({Value::Int64(1)});
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_EQ(r3->ToCsv(), r1->ToCsv());
  QueryCacheStats s = db_.cache().Stats();
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_misses, 2u);
}

TEST_F(CacheTest, PreparedStatementChecksParameterCount) {
  auto ps = db_.Prepare("SELECT wall FROM runs WHERE day = ?");
  ASSERT_TRUE(ps.ok());
  auto r = ps->Execute({});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("parameter"), std::string::npos);
  EXPECT_FALSE(ps->Execute({Value::Int64(1), Value::Int64(2)}).ok());
}

TEST_F(CacheTest, PreparedStatementInvalidatedByWritesLikeAnyResult) {
  auto ps = db_.Prepare("SELECT COUNT(*) AS n FROM runs WHERE day = ?");
  ASSERT_TRUE(ps.ok());
  auto before = ps->Execute({Value::Int64(7)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows[0][0].int64_value(), 0);
  ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES ('new', 7, 70.0)").ok());
  auto after = ps->Execute({Value::Int64(7)});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].int64_value(), 1);
}

TEST_F(CacheTest, ParameterlessPrepareSharesThePlanTier) {
  const char kSql[] = "SELECT forecast FROM runs WHERE day = 1";
  Run(kSql);
  auto ps = db_.Prepare(kSql);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->num_params(), 0u);
  EXPECT_EQ(db_.cache().Stats().plan_hits, 1u);
  auto r = ps->Execute({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToCsv(), Run(kSql).ToCsv());
}

TEST_F(CacheTest, PlaceholdersOutsidePrepareAreParseErrors) {
  auto rs = db_.Sql("SELECT wall FROM runs WHERE day = ?");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().ToString().find("prepared"), std::string::npos);
  EXPECT_FALSE(db_.Prepare("INSERT INTO runs VALUES ('x', 1, ?)").ok());
}

// ----------------------------------------------------------- FromEnv --

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv("FF_STATSDB_CACHE");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("FF_STATSDB_CACHE", value, 1);
    } else {
      ::unsetenv("FF_STATSDB_CACHE");
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv("FF_STATSDB_CACHE", saved_.c_str(), 1);
    } else {
      ::unsetenv("FF_STATSDB_CACHE");
    }
  }
  std::string saved_;
  bool had_ = false;
};

TEST(CacheConfigTest, FromEnvParsesModesAndBudgets) {
  {
    EnvGuard g(nullptr);
    EXPECT_EQ(CacheConfig::FromEnv().mode, CacheConfig::Mode::kOff);
  }
  {
    EnvGuard g("off");
    EXPECT_EQ(CacheConfig::FromEnv().mode, CacheConfig::Mode::kOff);
  }
  {
    EnvGuard g("plan");
    EXPECT_EQ(CacheConfig::FromEnv().mode, CacheConfig::Mode::kPlanOnly);
  }
  {
    EnvGuard g("full");
    CacheConfig cfg = CacheConfig::FromEnv();
    EXPECT_EQ(cfg.mode, CacheConfig::Mode::kFull);
    EXPECT_EQ(cfg.result_entries, CacheConfig{}.result_entries);
  }
  {
    EnvGuard g("full:16");
    CacheConfig cfg = CacheConfig::FromEnv();
    EXPECT_EQ(cfg.mode, CacheConfig::Mode::kFull);
    EXPECT_EQ(cfg.result_entries, 16u);
  }
  {
    EnvGuard g("full:16:4096");
    CacheConfig cfg = CacheConfig::FromEnv();
    EXPECT_EQ(cfg.result_entries, 16u);
    EXPECT_EQ(cfg.result_bytes, 4096u);
  }
  {
    EnvGuard g("on");
    EXPECT_EQ(CacheConfig::FromEnv().mode, CacheConfig::Mode::kFull);
  }
  {
    EnvGuard g("nonsense");
    EXPECT_EQ(CacheConfig::FromEnv().mode, CacheConfig::Mode::kOff);
  }
}

// -------------------------------------------------------- concurrency --

// Hammers one QueryCache from many threads: concurrent result Get/Put,
// plan Get/Put, Stats, and eviction pressure (small entry caps force
// constant Put-side eviction scans). Run under the CI TSan lane; the
// assertions are secondary to the data-race check. The cache is
// exercised directly rather than through Database::Sql because the
// Database object itself is documented single-threaded.
TEST(CacheConcurrencyTest, ParallelGetPutStatsIsClean) {
  CacheConfig cfg;
  cfg.mode = CacheConfig::Mode::kFull;
  cfg.plan_entries = 8;
  cfg.result_entries = 8;
  QueryCache cache(cfg);

  Database db;
  ASSERT_TRUE(db.Sql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Sql("INSERT INTO t VALUES (1), (2), (3)").ok());
  ResultSet canonical = *db.Sql("SELECT a FROM t ORDER BY a");

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kIters; ++i) {
        // 32 distinct keys against 8 slots: every thread both hits
        // warm entries and forces evictions.
        uint64_t which = static_cast<uint64_t>((i + tid) % 32);
        QueryCache::ResultKey key;
        key.cacheable = true;
        key.key = QueryCache::Key{which + 1, ~which};
        key.epochs = {{"t", 1}};
        auto hit = cache.GetResult(key);
        if (hit) {
          // Concurrent readers may share the stored ResultSet.
          EXPECT_EQ(hit->rows.size(), canonical.rows.size());
        } else {
          cache.PutResult(key, canonical);
        }
        if (i % 16 == 0) (void)cache.Stats();
      }
    });
  }
  for (auto& t : threads) t.join();

  QueryCacheStats s = cache.Stats();
  EXPECT_LE(s.result_entries, 8u);
  EXPECT_GT(s.result_hits + s.result_misses, 0u);
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
