#include "statsdb/table.h"

#include <gtest/gtest.h>

namespace ff {
namespace statsdb {
namespace {

Schema TestSchema() {
  return Schema({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"walltime", DataType::kDouble}});
}

TEST(SchemaTest, CreateRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(Schema::Create({{"a", DataType::kInt64},
                               {"A", DataType::kString}})
                   .ok());
  EXPECT_FALSE(Schema::Create({{"", DataType::kInt64}}).ok());
  EXPECT_TRUE(Schema::Create({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}})
                  .ok());
}

TEST(SchemaTest, IndexOfCaseInsensitive) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.IndexOf("forecast"), 0u);
  EXPECT_EQ(*s.IndexOf("DAY"), 1u);
  EXPECT_EQ(*s.IndexOf("WallTime"), 2u);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
  EXPECT_TRUE(s.Has("day"));
  EXPECT_FALSE(s.Has("nope"));
}

TEST(SchemaTest, ToStringAndEquality) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ToString(),
            "forecast:STRING, day:INT64, walltime:DOUBLE");
  EXPECT_TRUE(s == TestSchema());
  Schema other({{"x", DataType::kInt64}});
  EXPECT_FALSE(s == other);
}

TEST(ValidateRowTest, WidthAndTypes) {
  Schema s = TestSchema();
  EXPECT_TRUE(ValidateRow(s, {Value::String("t"), Value::Int64(1),
                              Value::Double(9.0)})
                  .ok());
  EXPECT_FALSE(ValidateRow(s, {Value::String("t")}).ok());
  EXPECT_FALSE(ValidateRow(s, {Value::Int64(1), Value::Int64(1),
                               Value::Double(9.0)})
                   .ok());
  // NULL allowed anywhere; int64 accepted into double column.
  EXPECT_TRUE(ValidateRow(s, {Value::Null(), Value::Null(), Value::Null()})
                  .ok());
  EXPECT_TRUE(ValidateRow(s, {Value::String("t"), Value::Int64(1),
                              Value::Int64(9)})
                  .ok());
}

TEST(TableTest, InsertAndRead) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.Insert({Value::String("till"), Value::Int64(21),
                        Value::Double(40000.0)})
                  .ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0)[0].string_value(), "till");
}

TEST(TableTest, IntWidenedIntoDoubleColumn) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.Insert({Value::String("till"), Value::Int64(21),
                        Value::Int64(40000)})
                  .ok());
  EXPECT_EQ(t.row(0)[2].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(t.row(0)[2].double_value(), 40000.0);
}

TEST(TableTest, InsertRejectsBadRow) {
  Table t("runs", TestSchema());
  EXPECT_FALSE(t.Insert({Value::Int64(1)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, LookupWithoutIndexScans) {
  Table t("runs", TestSchema());
  for (int d = 1; d <= 5; ++d) {
    ASSERT_TRUE(t.Insert({Value::String(d % 2 ? "a" : "b"),
                          Value::Int64(d), Value::Double(d * 10.0)})
                    .ok());
  }
  auto rows = t.Lookup("forecast", Value::String("a"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{0, 2, 4}));
}

TEST(TableTest, IndexedLookupMatchesScan) {
  Table t("runs", TestSchema());
  for (int d = 1; d <= 20; ++d) {
    ASSERT_TRUE(t.Insert({Value::String(d % 3 ? "a" : "b"),
                          Value::Int64(d % 4), Value::Double(d)})
                    .ok());
  }
  auto scan = t.Lookup("day", Value::Int64(2));
  ASSERT_TRUE(t.CreateIndex("day").ok());
  EXPECT_TRUE(t.HasIndex("day"));
  auto indexed = t.Lookup("day", Value::Int64(2));
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(*scan, *indexed);
}

TEST(TableTest, IndexMaintainedAcrossInserts) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.CreateIndex("forecast").ok());
  for (int d = 0; d < 6; ++d) {
    ASSERT_TRUE(t.Insert({Value::String(d % 2 ? "x" : "y"),
                          Value::Int64(d), Value::Double(d)})
                    .ok());
  }
  auto rows = t.Lookup("forecast", Value::String("x"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{1, 3, 5}));
}

TEST(TableTest, LookupMissingValueEmpty) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.CreateIndex("forecast").ok());
  auto rows = t.Lookup("forecast", Value::String("ghost"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(TableTest, UpdateCellPatchesInFlightRun) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(
      t.Insert({Value::String("till"), Value::Int64(5), Value::Null()})
          .ok());
  ASSERT_TRUE(t.UpdateCell(0, 2, Value::Double(41000.0)).ok());
  EXPECT_DOUBLE_EQ(t.row(0)[2].double_value(), 41000.0);
}

TEST(TableTest, UpdateCellMaintainsIndex) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.CreateIndex("forecast").ok());
  ASSERT_TRUE(t.Insert({Value::String("old"), Value::Int64(1),
                        Value::Double(1.0)})
                  .ok());
  ASSERT_TRUE(t.UpdateCell(0, 0, Value::String("new")).ok());
  EXPECT_TRUE(t.Lookup("forecast", Value::String("old"))->empty());
  EXPECT_EQ(t.Lookup("forecast", Value::String("new"))->size(), 1u);
}

TEST(TableTest, UpdateCellBoundsAndTypes) {
  Table t("runs", TestSchema());
  ASSERT_TRUE(t.Insert({Value::String("a"), Value::Int64(1),
                        Value::Double(1.0)})
                  .ok());
  EXPECT_TRUE(t.UpdateCell(5, 0, Value::Null()).IsOutOfRange());
  EXPECT_TRUE(t.UpdateCell(0, 9, Value::Null()).IsOutOfRange());
  EXPECT_TRUE(t.UpdateCell(0, 1, Value::String("no")).IsInvalidArgument());
  // Int into double column widens.
  EXPECT_TRUE(t.UpdateCell(0, 2, Value::Int64(7)).ok());
  EXPECT_EQ(t.row(0)[2].type(), DataType::kDouble);
}

TEST(TableTest, LookupUnknownColumnFails) {
  Table t("runs", TestSchema());
  EXPECT_TRUE(t.Lookup("ghost", Value::Int64(1)).status().IsNotFound());
  EXPECT_TRUE(t.CreateIndex("ghost").IsNotFound());
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
