// Vectorized-engine tests: every plan also runs through the row-at-a-time
// reference (PlanNode::Execute) and results must match exactly, including
// row order (scans, filters and projections preserve input order; pipeline
// breakers emit first-seen / stable-sort order in both engines).

#include "statsdb/exec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "statsdb/batch.h"
#include "statsdb/column_store.h"
#include "statsdb/database.h"
#include "statsdb/plan.h"
#include "statsdb/planner.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {
namespace {

// Rows that span several column chunks so zone maps, bitmap word
// boundaries and chunk slicing all get exercised.
constexpr size_t kRows = 3 * kChunkRows + 137;

class ColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema runs({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"walltime", DataType::kDouble},
                 {"ok", DataType::kBool}});
    Table* t = *db_.CreateTable("runs", runs);
    Table::BulkAppender app(t);
    app.Reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      // "day" ascends, so chunk zone maps partition its range; forecast
      // cycles through a small dictionary.
      app.String(i % 7 == 0 ? "till" : (i % 7 == 1 ? "dev" : "coos"))
          .Int64(static_cast<int64_t>(i));
      if (i % 11 == 3) {
        app.Null();
      } else {
        app.Double(100.0 + static_cast<double>(i % 97));
      }
      app.Bool(i % 3 == 0);
      ASSERT_TRUE(app.EndRow().ok());
    }
    ASSERT_TRUE(app.Finish().ok());
    ASSERT_TRUE(t->CreateIndex("forecast").ok());
  }

  // Runs `plan` through reference and vectorized engines (the latter both
  // raw and optimized) and requires identical rendered results.
  void ExpectEngineAgreement(const PlanPtr& plan) {
    auto ref = plan->Execute(db_);
    auto vec = ExecuteColumnar(*plan, db_);
    auto opt = ExecutePlan(plan, db_);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    EXPECT_EQ(ref->ToCsv(), vec->ToCsv());
    EXPECT_EQ(ref->ToCsv(), opt->ToCsv());
  }

  Database db_;
};

TEST_F(ColumnarTest, ScanMatchesReference) {
  ExpectEngineAgreement(MakeScan("runs"));
}

TEST_F(ColumnarTest, FilterAcrossChunks) {
  // Selects a band of days crossing a chunk boundary.
  ExpectEngineAgreement(MakeFilter(
      MakeScan("runs"),
      And(Ge(Col("day"), LitInt(static_cast<int64_t>(kChunkRows) - 10)),
          Lt(Col("day"), LitInt(static_cast<int64_t>(kChunkRows) + 10)))));
}

TEST_F(ColumnarTest, ZonePrunedFilterMatchesReference) {
  // day < 5 lives entirely in chunk 0; chunks 1..3 are zone-pruned.
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("runs"), Lt(Col("day"), LitInt(5))), db_);
  EXPECT_NE(plan->ToString().find("prune=[day]"), std::string::npos);
  auto rs = ExecuteColumnar(*plan, db_);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 5u);
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Lt(Col("day"), LitInt(5))));
}

TEST_F(ColumnarTest, ZonePruningNeverPrunesMatches) {
  // Equality probes at chunk edges: first/last row of each chunk.
  for (size_t day : {size_t{0}, kChunkRows - 1, kChunkRows,
                     2 * kChunkRows - 1, kRows - 1}) {
    ExpectEngineAgreement(MakeFilter(
        MakeScan("runs"), Eq(Col("day"), LitInt(static_cast<int64_t>(day)))));
  }
}

TEST_F(ColumnarTest, IndexedEqualityScan) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("runs"), Eq(Col("forecast"), LitString("till"))),
      db_);
  EXPECT_NE(plan->ToString().find("index=forecast"), std::string::npos);
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Eq(Col("forecast"), LitString("till"))));
}

TEST_F(ColumnarTest, IndexWithResidualConjunct) {
  ExpectEngineAgreement(MakeFilter(
      MakeScan("runs"), And(Eq(Col("forecast"), LitString("dev")),
                            Gt(Col("walltime"), LitDouble(150.0)))));
}

TEST_F(ColumnarTest, NullBitmapsAcrossChunks) {
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), IsNull(Col("walltime"))));
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), IsNotNull(Col("walltime"))));
  // NULL predicate rows (walltime NULL) must be dropped, matching WHERE
  // semantics in both engines.
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Gt(Col("walltime"), LitDouble(120.0))));
}

TEST_F(ColumnarTest, StringDictionaryFastPaths) {
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Ne(Col("forecast"), LitString("coos"))));
  // A literal absent from the dictionary matches nothing.
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Eq(Col("forecast"), LitString("ghost"))));
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Like(Col("forecast"), LitString("%o%"))));
}

TEST_F(ColumnarTest, BooleanColumnFilter) {
  ExpectEngineAgreement(MakeFilter(MakeScan("runs"), Col("ok")));
  ExpectEngineAgreement(MakeFilter(MakeScan("runs"), Not(Col("ok"))));
}

TEST_F(ColumnarTest, ProjectComputedAndBareColumns) {
  ExpectEngineAgreement(MakeProject(
      MakeScan("runs"),
      {{Col("forecast"), "f"},
       {Div(Col("walltime"), LitDouble(3600.0)), "hours"},
       {Add(Col("day"), LitInt(1)), "next_day"}}));
}

TEST_F(ColumnarTest, AggregateGlobalAndGrouped) {
  ExpectEngineAgreement(MakeAggregate(
      MakeScan("runs"), {},
      {{AggFunc::kCountStar, nullptr, "n"},
       {AggFunc::kCount, Col("walltime"), "n_done"},
       {AggFunc::kSum, Col("day"), "days"},
       {AggFunc::kAvg, Col("walltime"), "avg_w"},
       {AggFunc::kMin, Col("walltime"), "min_w"},
       {AggFunc::kMax, Col("walltime"), "max_w"}}));
  ExpectEngineAgreement(MakeAggregate(
      MakeScan("runs"), {"forecast"},
      {{AggFunc::kCountStar, nullptr, "n"},
       {AggFunc::kAvg, Col("walltime"), "avg_w"}}));
}

TEST_F(ColumnarTest, AggregateOverEmptyInput) {
  ExpectEngineAgreement(MakeAggregate(
      MakeFilter(MakeScan("runs"), Lt(Col("day"), LitInt(0))), {},
      {{AggFunc::kCountStar, nullptr, "n"},
       {AggFunc::kAvg, Col("walltime"), "a"}}));
}

TEST_F(ColumnarTest, SortFullMatchesReference) {
  ExpectEngineAgreement(MakeSort(
      MakeScan("runs"), {{"forecast", true}, {"walltime", false}}));
}

TEST_F(ColumnarTest, TopKMatchesFullSortThenLimit) {
  // Many ties on walltime: the top-k heap must reproduce the stable
  // sort's tie order exactly.
  PlanPtr plan = MakeLimit(
      MakeSort(MakeScan("runs"), {{"walltime", true}}), 25, 10);
  PlanPtr optimized = OptimizePlan(plan, db_);
  EXPECT_NE(optimized->ToString().find("top=35"), std::string::npos);
  ExpectEngineAgreement(plan);
}

TEST_F(ColumnarTest, TopKLargerThanInput) {
  ExpectEngineAgreement(MakeLimit(
      MakeSort(MakeScan("runs"), {{"day", false}}), kRows + 50, 0));
}

TEST_F(ColumnarTest, LimitOffsetBeyondEnd) {
  ExpectEngineAgreement(MakeLimit(MakeScan("runs"), 10, kRows + 5));
  ExpectEngineAgreement(MakeLimit(MakeScan("runs"), 0, 0));
}

TEST_F(ColumnarTest, DistinctSingleStringColumnFastPath) {
  ExpectEngineAgreement(
      MakeDistinct(MakeProject(MakeScan("runs"), {{Col("forecast"), ""}})));
}

TEST_F(ColumnarTest, DistinctMultiColumn) {
  ExpectEngineAgreement(MakeDistinct(MakeProject(
      MakeScan("runs"), {{Col("forecast"), ""}, {Col("ok"), ""}})));
}

TEST_F(ColumnarTest, HashJoinMatchesReference) {
  Schema nodes({{"forecast", DataType::kString},
                {"prio", DataType::kInt64}});
  Table* n = *db_.CreateTable("prios", nodes);
  ASSERT_TRUE(n->Insert({Value::String("till"), Value::Int64(1)}).ok());
  ASSERT_TRUE(n->Insert({Value::String("dev"), Value::Int64(2)}).ok());
  ExpectEngineAgreement(MakeHashJoin(MakeScan("runs"), MakeScan("prios"),
                                     "forecast", "forecast"));
  // Filter above the join: pushdown splits it across the sides.
  ExpectEngineAgreement(MakeFilter(
      MakeHashJoin(MakeScan("runs"), MakeScan("prios"), "forecast",
                   "forecast"),
      And(Gt(Col("prio"), LitInt(1)), Lt(Col("day"), LitInt(100)))));
}

TEST_F(ColumnarTest, ErrorsMatchReference) {
  // Non-boolean WHERE predicate.
  PlanPtr bad = MakeFilter(MakeScan("runs"), Add(Col("day"), LitInt(1)));
  auto ref = bad->Execute(db_);
  auto vec = ExecuteColumnar(*bad, db_);
  auto opt = ExecutePlan(bad, db_);
  ASSERT_FALSE(ref.ok());
  ASSERT_FALSE(vec.ok());
  ASSERT_FALSE(opt.ok());
  EXPECT_EQ(ref.status().message(), vec.status().message());
  EXPECT_EQ(ref.status().message(), opt.status().message());

  // Unknown table surfaces identically.
  EXPECT_TRUE(ExecutePlan(MakeScan("ghost"), db_).status().IsNotFound());
}

TEST_F(ColumnarTest, DivisionByZeroSurfaces) {
  PlanPtr bad = MakeProject(MakeScan("runs"),
                            {{Div(LitInt(1), Sub(Col("day"), Col("day"))),
                              "boom"}});
  auto ref = bad->Execute(db_);
  auto vec = ExecuteColumnar(*bad, db_);
  ASSERT_FALSE(ref.ok());
  ASSERT_FALSE(vec.ok());
  EXPECT_EQ(ref.status().message(), vec.status().message());
}

TEST_F(ColumnarTest, UpdatedAndDeletedRowsVisible) {
  // Mutations after the bulk load: zone maps go dirty and must be
  // recomputed before the next scan.
  Table* t = *db_.table("runs");
  ASSERT_TRUE(t->UpdateCell(0, 1, Value::Int64(999999)).ok());
  std::vector<size_t> doomed;
  for (size_t i = 1; i < 64; i += 2) doomed.push_back(i);
  ASSERT_TRUE(t->DeleteRows(std::move(doomed)).ok());
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Gt(Col("day"), LitInt(500000))));
  ExpectEngineAgreement(
      MakeFilter(MakeScan("runs"), Lt(Col("day"), LitInt(64))));
}

TEST_F(ColumnarTest, BatchIteratorStreamsAllRows) {
  PlanPtr plan = MakeScan("runs");
  auto it = BuildIterator(*plan, db_);
  ASSERT_TRUE(it.ok());
  size_t total = 0;
  size_t batches = 0;
  while (true) {
    auto b = (*it)->Next();
    ASSERT_TRUE(b.ok());
    if (*b == nullptr) break;
    total += (*b)->ActiveRows();
    ++batches;
  }
  EXPECT_EQ(total, kRows);
  EXPECT_GE(batches, 4u);  // one per chunk
}

TEST(BulkAppenderTest, TypeMismatchFails) {
  Database db;
  Table* t = *db.CreateTable(
      "t", Schema({{"x", DataType::kInt64}, {"s", DataType::kString}}));
  Table::BulkAppender app(t);
  app.Int64(1).String("a");
  EXPECT_TRUE(app.EndRow().ok());
  app.String("oops").String("b");  // wrong type for column 0
  EXPECT_FALSE(app.EndRow().ok());
  EXPECT_FALSE(app.Finish().ok());  // error is sticky
}

TEST(BulkAppenderTest, ShortRowFails) {
  Database db;
  Table* t = *db.CreateTable(
      "t", Schema({{"x", DataType::kInt64}, {"s", DataType::kString}}));
  Table::BulkAppender app(t);
  app.Int64(1);
  EXPECT_FALSE(app.EndRow().ok());
}

TEST(BulkAppenderTest, NullsAndRowViewRoundTrip) {
  Database db;
  Table* t = *db.CreateTable(
      "t", Schema({{"x", DataType::kInt64}, {"s", DataType::kString}}));
  Table::BulkAppender app(t);
  app.Reserve(2);
  app.Null().String("a");
  ASSERT_TRUE(app.EndRow().ok());
  app.Int64(7).Null();
  ASSERT_TRUE(app.EndRow().ok());
  ASSERT_TRUE(app.Finish().ok());
  ASSERT_EQ(t->rows().size(), 2u);
  EXPECT_TRUE(t->row(0)[0].is_null());
  EXPECT_EQ(t->row(0)[1].string_value(), "a");
  EXPECT_EQ(t->row(1)[0].int64_value(), 7);
  EXPECT_TRUE(t->row(1)[1].is_null());
}

TEST(EvalBatchTest, ConstantFoldAndGather) {
  ColumnVector c = ColumnVector::Constant(Value::Int64(42), 5);
  EXPECT_TRUE(c.is_const);
  EXPECT_EQ(c.length, 5u);
  EXPECT_EQ(c.GetValue(3).int64_value(), 42);

  ColumnVector v;
  v.type = DataType::kInt64;
  v.length = 4;
  v.own_i64 = {10, 20, 30, 40};
  v.SetNull(2);
  v.Seal();
  uint32_t sel[] = {1, 2, 3};
  ColumnVector g = ColumnVector::Gather(v, sel, 3);
  EXPECT_EQ(g.length, 3u);
  EXPECT_EQ(g.GetValue(0).int64_value(), 20);
  EXPECT_TRUE(g.IsNull(1));
  EXPECT_EQ(g.GetValue(2).int64_value(), 40);
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
