// Tests for the DML extensions (UPDATE / DELETE) and predicate sugar
// (IN / BETWEEN), motivated by the paper's §4.3.2 database maintenance:
// patching the incomplete statistics of in-flight forecasts.

#include <gtest/gtest.h>

#include "statsdb/database.h"

namespace ff {
namespace statsdb {
namespace {

class SqlDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Sql("CREATE TABLE runs (forecast TEXT, day INT, "
                        "walltime DOUBLE, status TEXT)")
                    .ok());
    ASSERT_TRUE(db_.Sql("INSERT INTO runs VALUES "
                        "('till', 1, 40000.0, 'completed'), "
                        "('till', 2, 41000.0, 'completed'), "
                        "('till', 3, NULL, 'running'), "
                        "('dev', 1, 60000.0, 'completed'), "
                        "('dev', 2, NULL, 'running'), "
                        "('coos', 5, 20000.0, 'completed')")
                    .ok());
  }

  int64_t Count(const std::string& where) {
    auto rs = db_.Sql("SELECT COUNT(*) AS n FROM runs WHERE " + where);
    EXPECT_TRUE(rs.ok()) << rs.status();
    return rs.ok() ? rs->Scalar()->int64_value() : -1;
  }

  Database db_;
};

TEST_F(SqlDmlTest, UpdatePatchesInFlightRun) {
  // The §4.3.2 maintenance path: the run script completes and patches
  // its own row.
  auto rs = db_.Sql(
      "UPDATE runs SET walltime = 42500.0, status = 'completed' "
      "WHERE forecast = 'till' AND day = 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 1);  // rows_updated
  EXPECT_EQ(Count("status = 'running'"), 1);   // only dev day 2 left
  auto check = db_.Sql(
      "SELECT walltime FROM runs WHERE forecast = 'till' AND day = 3");
  ASSERT_TRUE(check.ok());
  EXPECT_DOUBLE_EQ(check->rows[0][0].double_value(), 42500.0);
}

TEST_F(SqlDmlTest, UpdateWithComputedExpression) {
  // Walltimes rescaled in place (e.g. correcting a node-speed error).
  auto rs = db_.Sql(
      "UPDATE runs SET walltime = walltime * 2 WHERE forecast = 'till' "
      "AND walltime IS NOT NULL");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 2);
  auto check = db_.Sql(
      "SELECT SUM(walltime) AS s FROM runs WHERE forecast = 'till'");
  ASSERT_TRUE(check.ok());
  EXPECT_DOUBLE_EQ(check->rows[0][0].double_value(), 162000.0);
}

TEST_F(SqlDmlTest, UpdateWithoutWhereTouchesAllRows) {
  auto rs = db_.Sql("UPDATE runs SET status = 'archived'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 6);
  EXPECT_EQ(Count("status = 'archived'"), 6);
}

TEST_F(SqlDmlTest, UpdateUnknownColumnFails) {
  EXPECT_FALSE(db_.Sql("UPDATE runs SET ghost = 1").ok());
  EXPECT_FALSE(db_.Sql("UPDATE runs SET walltime = 'text'").ok());
}

TEST_F(SqlDmlTest, DeleteWithPredicate) {
  auto rs = db_.Sql("DELETE FROM runs WHERE status = 'running'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 2);  // rows_deleted
  EXPECT_EQ(Count("day > 0"), 4);
}

TEST_F(SqlDmlTest, DeleteAllRows) {
  auto rs = db_.Sql("DELETE FROM runs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 6);
  auto all = db_.Sql("SELECT * FROM runs");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->rows.empty());
}

TEST_F(SqlDmlTest, DeleteMaintainsIndexes) {
  auto table = db_.table("runs");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("forecast").ok());
  ASSERT_TRUE(db_.Sql("DELETE FROM runs WHERE day = 1").ok());
  auto rows = (*table)->Lookup("forecast", Value::String("till"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // days 2 and 3 remain
  for (size_t i : *rows) {
    EXPECT_EQ((*table)->row(i)[0].string_value(), "till");
  }
}

TEST_F(SqlDmlTest, InPredicate) {
  EXPECT_EQ(Count("forecast IN ('till', 'coos')"), 4);
  EXPECT_EQ(Count("day IN (1, 5)"), 3);
  EXPECT_EQ(Count("forecast NOT IN ('till', 'coos')"), 2);
}

TEST_F(SqlDmlTest, BetweenPredicate) {
  EXPECT_EQ(Count("day BETWEEN 1 AND 2"), 4);
  EXPECT_EQ(Count("day NOT BETWEEN 1 AND 2"), 2);
  EXPECT_EQ(Count("walltime BETWEEN 30000 AND 50000"), 2);
}

TEST_F(SqlDmlTest, BetweenBindsTighterThanAnd) {
  // day BETWEEN 1 AND 2 AND forecast = 'till' must parse as
  // (day BETWEEN 1 AND 2) AND (forecast = 'till').
  EXPECT_EQ(Count("day BETWEEN 1 AND 2 AND forecast = 'till'"), 2);
}

TEST_F(SqlDmlTest, InWithExpressionCandidates) {
  EXPECT_EQ(Count("day IN (1 + 1, 10 / 2)"), 3);  // days 2 and 5
}

TEST_F(SqlDmlTest, DeleteWithInAndBetween) {
  auto rs = db_.Sql(
      "DELETE FROM runs WHERE forecast IN ('dev') AND day BETWEEN 1 AND "
      "1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].int64_value(), 1);
  EXPECT_EQ(Count("forecast = 'dev'"), 1);
}

TEST_F(SqlDmlTest, ParseErrors) {
  EXPECT_FALSE(db_.Sql("UPDATE runs").ok());
  EXPECT_FALSE(db_.Sql("UPDATE runs SET").ok());
  EXPECT_FALSE(db_.Sql("DELETE runs").ok());
  EXPECT_FALSE(db_.Sql("SELECT * FROM runs WHERE day NOT 3").ok());
  EXPECT_FALSE(db_.Sql("SELECT * FROM runs WHERE day IN ()").ok());
  EXPECT_FALSE(
      db_.Sql("SELECT * FROM runs WHERE day BETWEEN 1").ok());
}

TEST_F(SqlDmlTest, UpdateUnknownTableNotFound) {
  EXPECT_TRUE(db_.Sql("UPDATE ghost SET x = 1").status().IsNotFound());
  EXPECT_TRUE(db_.Sql("DELETE FROM ghost").status().IsNotFound());
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
