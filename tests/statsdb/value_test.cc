#include "statsdb/value.h"

#include <gtest/gtest.h>

namespace ff {
namespace statsdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int64(-5).int64_value(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_EQ(Value::Int64(1).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("").type(), DataType::kString);
  EXPECT_EQ(Value::Bool(false).type(), DataType::kBool);
}

TEST(ValueTest, AsDoubleWidensNumerics) {
  EXPECT_DOUBLE_EQ(*Value::Int64(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(*Value::Double(7.5).AsDouble(), 7.5);
  EXPECT_FALSE(Value::String("7").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
  EXPECT_FALSE(Value::Bool(true).AsDouble().ok());
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, CompareMixedNumerics) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.5).Compare(Value::Int64(4)), 0);
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < bool < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int64(0)), 0);
  EXPECT_LT(Value::Int64(999).Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, OperatorsDelegateToCompare) {
  EXPECT_TRUE(Value::Int64(3) == Value::Double(3.0));
  EXPECT_TRUE(Value::Int64(3) != Value::Int64(4));
  EXPECT_TRUE(Value::Int64(3) < Value::Int64(4));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, ParseRoundTrip) {
  auto check = [](const Value& v) {
    auto parsed = Value::Parse(v.ToString(), v.type());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->Compare(v), 0) << v.ToString();
  };
  check(Value::Bool(true));
  check(Value::Int64(-17));
  check(Value::Double(3.25));
  check(Value::String("forecast-tillamook"));
}

TEST(ValueTest, ParseEmptyAsNull) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kDouble,
                     DataType::kString}) {
    auto v = Value::Parse("", t);
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->is_null());
  }
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("maybe", DataType::kBool).ok());
  EXPECT_FALSE(Value::Parse("1.5", DataType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("abc", DataType::kDouble).ok());
}

TEST(ValueTest, HashConsistentWithCompare) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
}

TEST(DataTypeTest, ParseAliases) {
  EXPECT_EQ(*ParseDataType("INT"), DataType::kInt64);
  EXPECT_EQ(*ParseDataType("integer"), DataType::kInt64);
  EXPECT_EQ(*ParseDataType("BIGINT"), DataType::kInt64);
  EXPECT_EQ(*ParseDataType("double"), DataType::kDouble);
  EXPECT_EQ(*ParseDataType("REAL"), DataType::kDouble);
  EXPECT_EQ(*ParseDataType("Text"), DataType::kString);
  EXPECT_EQ(*ParseDataType("VARCHAR"), DataType::kString);
  EXPECT_EQ(*ParseDataType("bool"), DataType::kBool);
  EXPECT_FALSE(ParseDataType("BLOB").ok());
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
