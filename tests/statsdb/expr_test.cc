#include "statsdb/expr.h"

#include <gtest/gtest.h>

namespace ff {
namespace statsdb {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Schema schema_{{{"name", DataType::kString},
                  {"day", DataType::kInt64},
                  {"walltime", DataType::kDouble},
                  {"done", DataType::kBool}}};
  Row row_{Value::String("tillamook"), Value::Int64(21),
           Value::Double(40000.0), Value::Bool(true)};

  Value Eval(const ExprPtr& e) {
    auto v = e->Eval(row_, schema_);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() ? *v : Value::Null();
  }
};

TEST_F(ExprTest, LiteralsEvaluateToThemselves) {
  EXPECT_EQ(Eval(LitInt(5)).int64_value(), 5);
  EXPECT_DOUBLE_EQ(Eval(LitDouble(2.5)).double_value(), 2.5);
  EXPECT_EQ(Eval(LitString("x")).string_value(), "x");
  EXPECT_TRUE(Eval(LitBool(true)).bool_value());
  EXPECT_TRUE(Eval(LitNull()).is_null());
}

TEST_F(ExprTest, ColumnRefResolvesByName) {
  EXPECT_EQ(Eval(Col("name")).string_value(), "tillamook");
  EXPECT_EQ(Eval(Col("DAY")).int64_value(), 21);
  auto missing = Col("ghost")->Eval(row_, schema_);
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_TRUE(Eval(Eq(Col("day"), LitInt(21))).bool_value());
  EXPECT_FALSE(Eval(Ne(Col("day"), LitInt(21))).bool_value());
  EXPECT_TRUE(Eval(Lt(Col("day"), LitInt(22))).bool_value());
  EXPECT_TRUE(Eval(Le(Col("day"), LitInt(21))).bool_value());
  EXPECT_TRUE(Eval(Gt(Col("walltime"), LitInt(30000))).bool_value());
  EXPECT_TRUE(Eval(Ge(Col("walltime"), LitDouble(40000.0))).bool_value());
}

TEST_F(ExprTest, MixedNumericComparison) {
  EXPECT_TRUE(Eval(Eq(Col("day"), LitDouble(21.0))).bool_value());
}

TEST_F(ExprTest, IncomparableTypesError) {
  auto v = Eq(Col("name"), LitInt(3))->Eval(row_, schema_);
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(Eq(Col("name"), LitInt(3))->ResultType(schema_).ok());
}

TEST_F(ExprTest, NullComparisonYieldsNull) {
  EXPECT_TRUE(Eval(Eq(Col("day"), LitNull())).is_null());
  EXPECT_TRUE(Eval(Lt(LitNull(), LitNull())).is_null());
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(Col("day"), LitInt(4))).int64_value(), 25);
  EXPECT_EQ(Eval(Sub(LitInt(1), LitInt(5))).int64_value(), -4);
  EXPECT_EQ(Eval(Mul(LitInt(6), LitInt(7))).int64_value(), 42);
  // '/' always yields double.
  EXPECT_DOUBLE_EQ(Eval(Div(LitInt(7), LitInt(2))).double_value(), 3.5);
  EXPECT_DOUBLE_EQ(
      Eval(Mul(Col("walltime"), LitDouble(2.0))).double_value(), 80000.0);
}

TEST_F(ExprTest, DivisionByZeroError) {
  EXPECT_FALSE(Div(LitInt(1), LitInt(0))->Eval(row_, schema_).ok());
  EXPECT_FALSE(
      Binary(BinaryOp::kMod, LitInt(1), LitInt(0))->Eval(row_, schema_)
          .ok());
}

TEST_F(ExprTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(Add(Col("day"), LitNull())).is_null());
}

TEST_F(ExprTest, KleeneLogic) {
  auto T = LitBool(true), F = LitBool(false), N = LitNull();
  EXPECT_FALSE(Eval(And(T, F)).bool_value());
  EXPECT_TRUE(Eval(And(T, T)).bool_value());
  // FALSE AND NULL = FALSE (not NULL).
  EXPECT_FALSE(Eval(And(F, N)).bool_value());
  EXPECT_TRUE(Eval(And(T, N)).is_null());
  // TRUE OR NULL = TRUE.
  EXPECT_TRUE(Eval(Or(T, N)).bool_value());
  EXPECT_TRUE(Eval(Or(F, N)).is_null());
  EXPECT_TRUE(Eval(Not(F)).bool_value());
  EXPECT_TRUE(Eval(Not(N)).is_null());
}

TEST_F(ExprTest, IsNullOperators) {
  EXPECT_FALSE(Eval(IsNull(Col("day"))).bool_value());
  EXPECT_TRUE(Eval(IsNull(LitNull())).bool_value());
  EXPECT_TRUE(Eval(IsNotNull(Col("day"))).bool_value());
}

TEST_F(ExprTest, Negation) {
  EXPECT_EQ(Eval(Unary(UnaryOp::kNeg, Col("day"))).int64_value(), -21);
  EXPECT_DOUBLE_EQ(
      Eval(Unary(UnaryOp::kNeg, LitDouble(2.5))).double_value(), -2.5);
  EXPECT_FALSE(
      Unary(UnaryOp::kNeg, Col("name"))->Eval(row_, schema_).ok());
}

TEST_F(ExprTest, LikeOperator) {
  EXPECT_TRUE(Eval(Like(Col("name"), LitString("till%"))).bool_value());
  EXPECT_TRUE(Eval(Like(Col("name"), LitString("%mook"))).bool_value());
  EXPECT_TRUE(Eval(Like(Col("name"), LitString("till_mook"))).bool_value());
  EXPECT_FALSE(Eval(Like(Col("name"), LitString("dev%"))).bool_value());
}

TEST_F(ExprTest, ResultTypeInference) {
  EXPECT_EQ(*Eq(Col("day"), LitInt(1))->ResultType(schema_),
            DataType::kBool);
  EXPECT_EQ(*Add(Col("day"), LitInt(1))->ResultType(schema_),
            DataType::kInt64);
  EXPECT_EQ(*Add(Col("day"), Col("walltime"))->ResultType(schema_),
            DataType::kDouble);
  EXPECT_EQ(*Div(Col("day"), LitInt(2))->ResultType(schema_),
            DataType::kDouble);
  EXPECT_FALSE(And(Col("day"), LitBool(true))->ResultType(schema_).ok());
}

TEST_F(ExprTest, ToStringRendering) {
  EXPECT_EQ(Eq(Col("day"), LitInt(21))->ToString(), "(day = 21)");
  EXPECT_EQ(Like(Col("name"), LitString("a%"))->ToString(),
            "(name LIKE 'a%')");
  EXPECT_EQ(IsNull(Col("walltime"))->ToString(), "(walltime IS NULL)");
}

// LIKE pattern sweep.
struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeMatchSweep : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchSweep, Matches) {
  const auto& p = GetParam();
  EXPECT_EQ(LikeMatch(p.text, p.pattern), p.match)
      << p.text << " LIKE " << p.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchSweep,
    ::testing::Values(
        LikeCase{"", "", true}, LikeCase{"", "%", true},
        LikeCase{"a", "", false}, LikeCase{"abc", "abc", true},
        LikeCase{"abc", "a%", true}, LikeCase{"abc", "%c", true},
        LikeCase{"abc", "%b%", true}, LikeCase{"abc", "a_c", true},
        LikeCase{"abc", "a_d", false}, LikeCase{"abc", "____", false},
        LikeCase{"abc", "___", true}, LikeCase{"abc", "%%", true},
        LikeCase{"elcirc-5.01", "elcirc%", true},
        LikeCase{"elcirc-5.01", "%5.01", true},
        LikeCase{"aaa", "a%a", true}, LikeCase{"ab", "b%a", false},
        LikeCase{"mississippi", "%iss%ppi", true},
        LikeCase{"mississippi", "%iss%ppx", false}));

}  // namespace
}  // namespace statsdb
}  // namespace ff
