#include "statsdb/csv_io.h"

#include <gtest/gtest.h>

namespace ff {
namespace statsdb {
namespace {

Schema RunsSchema() {
  return Schema({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"walltime", DataType::kDouble}});
}

TEST(CsvIoTest, ExportThenImportRoundTrips) {
  Database db;
  Table* t = *db.CreateTable("runs", RunsSchema());
  ASSERT_TRUE(t->Insert({Value::String("till"), Value::Int64(21),
                         Value::Double(40000.0)})
                  .ok());
  ASSERT_TRUE(t->Insert({Value::String("dev"), Value::Int64(160),
                         Value::Null()})
                  .ok());
  std::string csv = TableToCsv(*t);
  EXPECT_EQ(csv, "forecast,day,walltime\ntill,21,40000\ndev,160,\n");

  Database db2;
  auto t2 = TableFromCsv(&db2, "runs", RunsSchema(), csv);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)->num_rows(), 2u);
  EXPECT_TRUE((*t2)->row(1)[2].is_null());
  EXPECT_EQ((*t2)->row(0)[1].int64_value(), 21);
}

TEST(CsvIoTest, HeaderMismatchRejected) {
  Database db;
  auto t = TableFromCsv(&db, "runs", RunsSchema(),
                        "forecast,dia,walltime\na,1,2\n");
  EXPECT_FALSE(t.ok());
  EXPECT_FALSE(db.HasTable("runs"));  // rollback
}

TEST(CsvIoTest, WidthMismatchRejectedAndRolledBack) {
  Database db;
  auto t = TableFromCsv(&db, "runs", RunsSchema(),
                        "forecast,day,walltime\na,1\n");
  EXPECT_FALSE(t.ok());
  EXPECT_FALSE(db.HasTable("runs"));
}

TEST(CsvIoTest, BadCellValueRejected) {
  Database db;
  auto t = TableFromCsv(&db, "runs", RunsSchema(),
                        "forecast,day,walltime\na,notanint,3\n");
  EXPECT_FALSE(t.ok());
}

TEST(CsvIoTest, AppendCsv) {
  Database db;
  Table* t = *db.CreateTable("runs", RunsSchema());
  ASSERT_TRUE(
      AppendCsv(t, "forecast,day,walltime\na,1,10\nb,2,20\n").ok());
  ASSERT_TRUE(AppendCsv(t, "forecast,day,walltime\nc,3,30\n").ok());
  EXPECT_EQ(t->num_rows(), 3u);
}

TEST(CsvIoTest, QuotedFieldsSurvive) {
  Database db;
  Schema s({{"name", DataType::kString}, {"v", DataType::kInt64}});
  auto t = TableFromCsv(&db, "t", s, "name,v\n\"a,b\",3\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row(0)[0].string_value(), "a,b");
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
