// Plan-rewrite tests: predicate pushdown, index selection and top-k
// annotation. Shapes are checked structurally (PlanKind casts) and via
// ToString(), which must reflect pushed predicates, prunable columns and
// index annotations.

#include "statsdb/planner.h"

#include <gtest/gtest.h>

#include <string>

#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/plan.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema runs({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"node", DataType::kString},
                 {"walltime", DataType::kDouble}});
    Table* t = *db_.CreateTable("runs", runs);
    ASSERT_TRUE(t->Insert({Value::String("till"), Value::Int64(1),
                           Value::String("f1"), Value::Double(10.0)})
                    .ok());
    ASSERT_TRUE(t->CreateIndex("forecast").ok());

    Schema nodes({{"node", DataType::kString},
                  {"speed", DataType::kDouble}});
    Table* n = *db_.CreateTable("nodes", nodes);
    ASSERT_TRUE(n->Insert({Value::String("f1"), Value::Double(1.0)}).ok());
  }

  Database db_;
};

TEST_F(PlannerTest, FilterMergesIntoScan) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("runs"), Gt(Col("day"), LitInt(3))), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kScan);
  const auto& scan = static_cast<const ScanNode&>(*plan);
  EXPECT_NE(scan.predicate, nullptr);
  EXPECT_NE(plan->ToString().find("pred="), std::string::npos);
  EXPECT_NE(plan->ToString().find("prune=[day]"), std::string::npos);
}

TEST_F(PlannerTest, StackedFiltersKeepEvaluationOrder) {
  // Inner (deeper) filter evaluates first in the reference engine, so it
  // must come first in the folded conjunction.
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeFilter(MakeScan("runs"), Gt(Col("day"), LitInt(1))),
                 Lt(Col("day"), LitInt(9))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kScan);
  const auto& scan = static_cast<const ScanNode&>(*plan);
  std::string pred = scan.predicate->ToString();
  EXPECT_LT(pred.find("> 1"), pred.find("< 9")) << pred;
}

TEST_F(PlannerTest, IndexSelectedForEqualityOnIndexedColumn) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("runs"), Eq(Col("forecast"), LitString("till"))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kScan);
  const auto& scan = static_cast<const ScanNode&>(*plan);
  EXPECT_EQ(scan.index_column, "forecast");
  EXPECT_NE(plan->ToString().find("index=forecast"), std::string::npos);
  // The conjunct stays in the predicate as a residual check.
  EXPECT_NE(scan.predicate, nullptr);
}

TEST_F(PlannerTest, NoIndexForNonEqualityOrUnindexedColumn) {
  PlanPtr p1 = OptimizePlan(
      MakeFilter(MakeScan("runs"), Gt(Col("forecast"), LitString("a"))),
      db_);
  EXPECT_TRUE(static_cast<const ScanNode&>(*p1).index_column.empty());
  PlanPtr p2 = OptimizePlan(
      MakeFilter(MakeScan("runs"), Eq(Col("node"), LitString("f1"))), db_);
  EXPECT_TRUE(static_cast<const ScanNode&>(*p2).index_column.empty());
}

TEST_F(PlannerTest, NoIndexForIncomparableLiteral) {
  // forecast = 5 errors on every row, so the filter fails type analysis
  // and is left intact above an unannotated scan — the index path may
  // not skip the erroring rows.
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("runs"), Eq(Col("forecast"), LitInt(5))), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
  const auto& f = static_cast<const FilterNode&>(*plan);
  ASSERT_EQ(f.input->kind(), PlanKind::kScan);
  EXPECT_TRUE(static_cast<const ScanNode&>(*f.input).index_column.empty());
}

TEST_F(PlannerTest, PushesThroughSortAndDistinct) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeDistinct(MakeSort(MakeScan("runs"), {{"day", true}})),
                 Gt(Col("day"), LitInt(0))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kDistinct);
  const auto& d = static_cast<const DistinctNode&>(*plan);
  ASSERT_EQ(d.input->kind(), PlanKind::kSort);
  const auto& s = static_cast<const SortNode&>(*d.input);
  ASSERT_EQ(s.input->kind(), PlanKind::kScan);
  EXPECT_NE(static_cast<const ScanNode&>(*s.input).predicate, nullptr);
}

TEST_F(PlannerTest, PushesThroughPassThroughProject) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeProject(MakeScan("runs"), {{Col("forecast"), "f"},
                                                {Col("day"), "d"}}),
                 Gt(Col("d"), LitInt(2))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kProject);
  const auto& p = static_cast<const ProjectNode&>(*plan);
  ASSERT_EQ(p.input->kind(), PlanKind::kScan);
  // Pushed conjunct is rewritten to the input column name.
  EXPECT_NE(static_cast<const ScanNode&>(*p.input)
                .predicate->ToString()
                .find("day"),
            std::string::npos);
}

TEST_F(PlannerTest, DoesNotPushThroughComputedProjectColumn) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeProject(MakeScan("runs"),
                             {{Div(Col("walltime"), LitDouble(3600.0)),
                               "hours"}}),
                 Gt(Col("hours"), LitDouble(1.0))),
      db_);
  // Filter must stay above the project.
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
  EXPECT_EQ(static_cast<const FilterNode&>(*plan).input->kind(),
            PlanKind::kProject);
}

TEST_F(PlannerTest, PushesGroupKeyPredicateBelowAggregate) {
  PlanPtr agg = MakeAggregate(MakeScan("runs"), {"forecast"},
                              {{AggFunc::kAvg, Col("walltime"), "avg_w"}});
  PlanPtr plan = OptimizePlan(
      MakeFilter(agg, Eq(Col("forecast"), LitString("till"))), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kAggregate);
  const auto& a = static_cast<const AggregateNode&>(*plan);
  ASSERT_EQ(a.input->kind(), PlanKind::kScan);
  EXPECT_EQ(static_cast<const ScanNode&>(*a.input).index_column,
            "forecast");
}

TEST_F(PlannerTest, KeepsAggregateOutputPredicateAbove) {
  PlanPtr agg = MakeAggregate(MakeScan("runs"), {"forecast"},
                              {{AggFunc::kAvg, Col("walltime"), "avg_w"}});
  PlanPtr plan = OptimizePlan(
      MakeFilter(agg, Gt(Col("avg_w"), LitDouble(5.0))), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
}

TEST_F(PlannerTest, SplitsConjunctsAcrossJoinSides) {
  PlanPtr join = MakeHashJoin(MakeScan("runs"), MakeScan("nodes"), "node",
                              "node");
  PlanPtr plan = OptimizePlan(
      MakeFilter(join, And(And(Gt(Col("day"), LitInt(0)),
                               Gt(Col("speed"), LitDouble(0.5))),
                           Eq(Col("node_r"), LitString("f1")))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kHashJoin);
  const auto& j = static_cast<const HashJoinNode&>(*plan);
  ASSERT_EQ(j.left->kind(), PlanKind::kScan);
  ASSERT_EQ(j.right->kind(), PlanKind::kScan);
  const auto& l = static_cast<const ScanNode&>(*j.left);
  const auto& r = static_cast<const ScanNode&>(*j.right);
  EXPECT_NE(l.predicate->ToString().find("day"), std::string::npos);
  // Right-side conjuncts get the "_r" clash rename undone.
  EXPECT_NE(r.predicate->ToString().find("speed"), std::string::npos);
  EXPECT_NE(r.predicate->ToString().find("node"), std::string::npos);
  EXPECT_EQ(r.predicate->ToString().find("node_r"), std::string::npos);
}

TEST_F(PlannerTest, KeepsCrossSideConjunctAboveJoin) {
  PlanPtr join = MakeHashJoin(MakeScan("runs"), MakeScan("nodes"), "node",
                              "node");
  PlanPtr plan = OptimizePlan(
      MakeFilter(join, Gt(Col("walltime"), Col("speed"))), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
  EXPECT_EQ(static_cast<const FilterNode&>(*plan).input->kind(),
            PlanKind::kHashJoin);
}

TEST_F(PlannerTest, NeverPushesThroughLimit) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeLimit(MakeScan("runs"), 5, 0),
                 Gt(Col("day"), LitInt(0))),
      db_);
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
  EXPECT_EQ(static_cast<const FilterNode&>(*plan).input->kind(),
            PlanKind::kLimit);
}

TEST_F(PlannerTest, TopKAnnotation) {
  PlanPtr plan = OptimizePlan(
      MakeLimit(MakeSort(MakeScan("runs"), {{"day", true}}), 7, 3), db_);
  ASSERT_EQ(plan->kind(), PlanKind::kLimit);
  const auto& lim = static_cast<const LimitNode&>(*plan);
  ASSERT_EQ(lim.input->kind(), PlanKind::kSort);
  EXPECT_EQ(static_cast<const SortNode&>(*lim.input).limit_hint, 10u);
  EXPECT_NE(plan->ToString().find("top=10"), std::string::npos);
}

TEST_F(PlannerTest, RowModeTopKMatchesFullSortPrefix) {
  // The reference engine honours the top-k hint with a bounded heap; the
  // result must be exactly the stable_sort prefix — same rows, same
  // order, ties resolved by insertion order.
  Table* t = *db_.table("runs");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(t->Insert({Value::String("f" + std::to_string(i)),
                           Value::Int64(i % 7),  // many duplicate keys
                           Value::String("n"), Value::Double(1.0 * i)})
                    .ok());
  }
  PlanPtr naive =
      MakeLimit(MakeSort(MakeScan("runs"), {{"day", true}}), 6, 2);
  PlanPtr optimized = OptimizePlan(naive, db_);
  ASSERT_EQ(optimized->kind(), PlanKind::kLimit);
  EXPECT_EQ(static_cast<const SortNode&>(
                *static_cast<const LimitNode&>(*optimized).input)
                .limit_hint,
            8u);

  auto want = naive->Execute(db_);   // full sort, hint 0
  auto got = optimized->Execute(db_);  // bounded heap
  auto vec = ExecutePlan(optimized, db_);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(vec.ok());
  ASSERT_EQ(got->rows.size(), want->rows.size());
  ASSERT_EQ(vec->rows.size(), want->rows.size());
  for (size_t r = 0; r < want->rows.size(); ++r) {
    for (size_t c = 0; c < want->rows[r].size(); ++c) {
      EXPECT_EQ(got->rows[r][c].Compare(want->rows[r][c]), 0)
          << "row " << r << " col " << c;
      EXPECT_EQ(vec->rows[r][c].Compare(want->rows[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(PlannerTest, TopKReachesSortThroughProject) {
  PlanPtr plan = OptimizePlan(
      MakeLimit(MakeProject(MakeSort(MakeScan("runs"), {{"day", true}}),
                            {{Col("day"), "d"}}),
                4, 0),
      db_);
  const auto& lim = static_cast<const LimitNode&>(*plan);
  const auto& proj = static_cast<const ProjectNode&>(*lim.input);
  EXPECT_EQ(static_cast<const SortNode&>(*proj.input).limit_hint, 4u);
}

TEST_F(PlannerTest, TopKDoesNotCrossDistinct) {
  // Distinct consumes rows, so truncating the sort below it would be
  // wrong.
  PlanPtr plan = OptimizePlan(
      MakeLimit(MakeDistinct(MakeSort(MakeScan("runs"), {{"day", true}})),
                4, 0),
      db_);
  const auto& lim = static_cast<const LimitNode&>(*plan);
  const auto& d = static_cast<const DistinctNode&>(*lim.input);
  EXPECT_EQ(static_cast<const SortNode&>(*d.input).limit_hint, 0u);
}

TEST_F(PlannerTest, IllTypedFilterLeftIntact) {
  // A non-boolean predicate must not be dismantled: execution has to
  // report the reference error.
  PlanPtr bad = MakeFilter(MakeScan("runs"), Add(Col("day"), LitInt(1)));
  PlanPtr plan = OptimizePlan(bad, db_);
  ASSERT_EQ(plan->kind(), PlanKind::kFilter);
  auto ref = bad->Execute(db_);
  auto opt = ExecutePlan(bad, db_);
  ASSERT_FALSE(ref.ok());
  ASSERT_FALSE(opt.ok());
  EXPECT_EQ(ref.status().message(), opt.status().message());
}

TEST_F(PlannerTest, UnknownTableDegradesGracefully) {
  PlanPtr plan = OptimizePlan(
      MakeFilter(MakeScan("ghost"), Gt(Col("day"), LitInt(0))), db_);
  EXPECT_TRUE(ExecutePlan(plan, db_).status().IsNotFound());
}

TEST_F(PlannerTest, OptimizedPlanStillExecutesOnReferenceEngine) {
  // Annotations (index, top-k) are hints: the reference engine ignores
  // them and must still produce correct results.
  PlanPtr plan = OptimizePlan(
      MakeLimit(
          MakeSort(MakeFilter(MakeScan("runs"),
                              Eq(Col("forecast"), LitString("till"))),
                   {{"day", true}}),
          3, 0),
      db_);
  auto rs = plan->Execute(db_);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
