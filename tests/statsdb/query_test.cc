#include "statsdb/query.h"

#include <gtest/gtest.h>

#include "statsdb/database.h"

namespace ff {
namespace statsdb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema runs({{"forecast", DataType::kString},
                 {"day", DataType::kInt64},
                 {"node", DataType::kString},
                 {"walltime", DataType::kDouble}});
    Table* t = *db_.CreateTable("runs", runs);
    struct R {
      const char* f;
      int d;
      const char* n;
      double w;
    };
    for (const R& r : std::initializer_list<R>{
             {"till", 1, "f1", 40000},
             {"till", 2, "f1", 41000},
             {"till", 3, "f2", 39000},
             {"dev", 1, "f2", 60000},
             {"dev", 2, "f2", 62000},
             {"coos", 1, "f3", 20000},
         }) {
      ASSERT_TRUE(t->Insert({Value::String(r.f), Value::Int64(r.d),
                             Value::String(r.n), Value::Double(r.w)})
                      .ok());
    }
    // In-flight run with NULL walltime.
    ASSERT_TRUE(t->Insert({Value::String("coos"), Value::Int64(2),
                           Value::String("f3"), Value::Null()})
                    .ok());

    Schema nodes({{"node", DataType::kString},
                  {"speed", DataType::kDouble}});
    Table* n = *db_.CreateTable("nodes", nodes);
    ASSERT_TRUE(
        n->Insert({Value::String("f1"), Value::Double(1.0)}).ok());
    ASSERT_TRUE(
        n->Insert({Value::String("f2"), Value::Double(1.2)}).ok());
  }

  Database db_;
};

TEST_F(QueryTest, ScanReturnsAllRows) {
  auto rs = Query(&db_, "runs").Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 7u);
  EXPECT_EQ(rs->schema.num_columns(), 4u);
}

TEST_F(QueryTest, ScanUnknownTableFails) {
  EXPECT_TRUE(Query(&db_, "ghost").Run().status().IsNotFound());
}

TEST_F(QueryTest, FilterByEquality) {
  auto rs = Query(&db_, "runs")
                .Filter(Eq(Col("forecast"), LitString("till")))
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(QueryTest, FilterDropsNullPredicateRows) {
  // walltime > 0 is NULL for the in-flight row; it must be excluded.
  auto rs = Query(&db_, "runs")
                .Filter(Gt(Col("walltime"), LitDouble(0.0)))
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 6u);
}

TEST_F(QueryTest, FilterRequiresBooleanPredicate) {
  auto rs = Query(&db_, "runs").Filter(Add(Col("day"), LitInt(1))).Run();
  EXPECT_FALSE(rs.ok());
}

TEST_F(QueryTest, ProjectComputedColumns) {
  auto rs = Query(&db_, "runs")
                .Project({{Col("forecast"), "f"},
                          {Div(Col("walltime"), LitDouble(3600.0)),
                           "hours"}})
                .Filter(Gt(Col("hours"), LitDouble(12.0)))
                .Run();
  ASSERT_TRUE(rs.ok());
  // dev runs: 60000/3600=16.7 and 62000/3600=17.2.
  EXPECT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->schema.column(1).name, "hours");
}

TEST_F(QueryTest, SelectByName) {
  auto rs = Query(&db_, "runs").Select({"node", "day"}).Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->schema.num_columns(), 2u);
  EXPECT_EQ(rs->schema.column(0).name, "node");
}

TEST_F(QueryTest, GlobalAggregate) {
  auto rs = Query(&db_, "runs")
                .Aggregate({}, {{AggFunc::kCountStar, nullptr, "n"},
                                {AggFunc::kAvg, Col("walltime"), "avg_w"},
                                {AggFunc::kMin, Col("walltime"), "min_w"},
                                {AggFunc::kMax, Col("walltime"), "max_w"},
                                {AggFunc::kSum, Col("day"), "days"}})
                .Run();
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].int64_value(), 7);
  // AVG ignores the NULL walltime: (40+41+39+60+62+20)k/6.
  EXPECT_NEAR(rs->rows[0][1].double_value(), 262000.0 / 6, 1e-9);
  EXPECT_DOUBLE_EQ(rs->rows[0][2].double_value(), 20000.0);
  EXPECT_DOUBLE_EQ(rs->rows[0][3].double_value(), 62000.0);
  EXPECT_EQ(rs->rows[0][4].int64_value(), 12);
}

TEST_F(QueryTest, GroupByAggregate) {
  auto rs = Query(&db_, "runs")
                .Aggregate({"forecast"},
                           {{AggFunc::kCount, Col("walltime"), "n"},
                            {AggFunc::kAvg, Col("walltime"), "avg_w"}})
                .OrderBy({{"forecast", true}})
                .Run();
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "coos");
  EXPECT_EQ(rs->rows[0][1].int64_value(), 1);  // NULL not counted
  EXPECT_EQ(rs->rows[2][0].string_value(), "till");
  EXPECT_NEAR(rs->rows[2][2].double_value(), 40000.0, 1.0);
}

TEST_F(QueryTest, AggregateOverEmptyInputYieldsOneRow) {
  auto rs = Query(&db_, "runs")
                .Filter(Eq(Col("forecast"), LitString("ghost")))
                .Aggregate({}, {{AggFunc::kCountStar, nullptr, "n"},
                                {AggFunc::kAvg, Col("walltime"), "a"}})
                .Run();
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].int64_value(), 0);
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

TEST_F(QueryTest, OrderByMultipleKeys) {
  auto rs = Query(&db_, "runs")
                .OrderBy({{"node", true}, {"walltime", false}})
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][2].string_value(), "f1");
  EXPECT_DOUBLE_EQ(rs->rows[0][3].double_value(), 41000.0);
  EXPECT_DOUBLE_EQ(rs->rows[1][3].double_value(), 40000.0);
}

TEST_F(QueryTest, OrderPutsNullFirstAscending) {
  auto rs = Query(&db_, "runs").OrderBy({{"walltime", true}}).Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows[0][3].is_null());
}

TEST_F(QueryTest, LimitAndOffset) {
  auto rs = Query(&db_, "runs")
                .OrderBy({{"walltime", false}})
                .Limit(2, 1)
                .Run();
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rs->rows[0][3].double_value(), 60000.0);
}

TEST_F(QueryTest, DistinctRemovesDuplicates) {
  auto rs = Query(&db_, "runs").Select({"node"}).Distinct().Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(QueryTest, HashJoin) {
  auto rs = Query(&db_, "runs")
                .Join("nodes", "node", "node")
                .Filter(Eq(Col("forecast"), LitString("dev")))
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
  // Joined schema: runs columns + nodes columns (node clash -> node_r).
  EXPECT_TRUE(rs->schema.Has("speed"));
  EXPECT_TRUE(rs->schema.Has("node_r"));
  auto speeds = rs->ColumnValues("speed");
  ASSERT_TRUE(speeds.ok());
  EXPECT_DOUBLE_EQ((*speeds)[0].double_value(), 1.2);
}

TEST_F(QueryTest, JoinDropsUnmatchedRows) {
  // f3 has no entry in nodes.
  auto rs = Query(&db_, "runs").Join("nodes", "node", "node").Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 5u);
}

TEST_F(QueryTest, ScalarConvenience) {
  auto rs = Query(&db_, "runs")
                .Filter(Eq(Col("forecast"), LitString("till")))
                .Aggregate({}, {{AggFunc::kCountStar, nullptr, "n"}})
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Scalar()->int64_value(), 3);
}

TEST_F(QueryTest, ToCsvAndPretty) {
  auto rs = Query(&db_, "runs")
                .Select({"forecast"})
                .Distinct()
                .OrderBy({{"forecast", true}})
                .Run();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ToCsv(), "forecast\ncoos\ndev\ntill\n");
  std::string pretty = rs->ToPrettyString();
  EXPECT_NE(pretty.find("| coos"), std::string::npos);
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
