// EXPLAIN / EXPLAIN ANALYZE: the SQL surface of the runtime profiler.
//
// The fixture builds a runs table big enough to span six column-store
// chunks, loaded day-ascending so every chunk holds exactly one day and
// zone maps can prune day predicates. Goldens are structural: the bare
// EXPLAIN output must match ExplainPlanLines() of the optimized plan
// exactly, and every EXPLAIN ANALYZE line must extend the corresponding
// EXPLAIN line (same operator labels, same tree shape) — wall-clock
// counter values themselves are nondeterministic by construction and are
// checked for presence/consistency, never for exact value.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runtime_stats.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/planner.h"
#include "statsdb/sql.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {
namespace {

constexpr size_t kDays = 6;  // one chunk (4096 rows) per day

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Sql("CREATE TABLE runs (forecast TEXT, day INT, "
                        "walltime DOUBLE)")
                    .ok());
    auto table = db_.table("runs");
    ASSERT_TRUE(table.ok());
    Table::BulkAppender app(*table);
    app.Reserve(kDays * 4096);
    for (size_t day = 0; day < kDays; ++day) {
      for (size_t r = 0; r < 4096; ++r) {
        app.String(r % 2 == 0 ? "till" : "dev")
            .Int64(static_cast<int64_t>(day))
            .Double(static_cast<double>(day * 4096 + r));
        ASSERT_TRUE(app.EndRow().ok());
      }
    }
    ASSERT_TRUE(app.Finish().ok());
    // Deterministic engine choice per test: serial unless opted in.
    ParallelConfig cfg;
    cfg.enabled = false;
    db_.set_parallel_config(cfg);
    // Likewise pin the cache off (FF_STATSDB_CACHE may say otherwise in
    // CI smoke lanes); cache-specific tests opt in explicitly.
    db_.set_cache_config(CacheConfig{});
  }

  void UseFullCache() {
    CacheConfig cfg;
    cfg.mode = CacheConfig::Mode::kFull;
    db_.set_cache_config(cfg);
  }

  void UseParallel() {
    ParallelConfig cfg;
    cfg.max_threads = 4;
    cfg.morsel_chunks = 1;
    cfg.min_chunks = 2;
    db_.set_parallel_config(cfg);
  }

  ResultSet Run(const std::string& sql) {
    auto rs = db_.Sql(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? *rs : ResultSet{};
  }

  static std::vector<std::string> PlanColumn(const ResultSet& rs) {
    std::vector<std::string> lines;
    for (const auto& row : rs.rows) lines.push_back(row[0].string_value());
    return lines;
  }

  Database db_;
};

// The pushdown + top-k query every EXPLAIN assertion below exercises:
// zone maps prune five of the six chunks (day is chunk-homogeneous).
const char kPrunedTopK[] =
    "SELECT forecast, day, walltime FROM runs WHERE day = 2 "
    "ORDER BY walltime DESC LIMIT 5";

TEST_F(ExplainTest, BareExplainMatchesExplainPlanLines) {
  ResultSet rs = Run(std::string("EXPLAIN ") + kPrunedTopK);
  ASSERT_EQ(rs.schema.num_columns(), 1u);
  EXPECT_EQ(rs.schema.column(0).name, "plan");

  auto plan = PlanSql(kPrunedTopK);
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = OptimizePlan(*plan, db_);
  EXPECT_EQ(PlanColumn(rs), ExplainPlanLines(*optimized));
}

TEST_F(ExplainTest, AnalyzeSerialExtendsThePlanTree) {
  std::vector<std::string> plan_lines =
      PlanColumn(Run(std::string("EXPLAIN ") + kPrunedTopK));
  std::vector<std::string> analyze =
      PlanColumn(Run(std::string("EXPLAIN ANALYZE ") + kPrunedTopK));

  // Header + one line per plan operator, labels in the same positions.
  ASSERT_EQ(analyze.size(), plan_lines.size() + 1);
  EXPECT_EQ(analyze[0].rfind("engine=serial", 0), 0u);
  for (size_t i = 0; i < plan_lines.size(); ++i) {
    // ANALYZE indents the tree one extra level under the header.
    EXPECT_EQ(analyze[i + 1].rfind("  " + plan_lines[i], 0), 0u)
        << "line " << i + 1 << ": " << analyze[i + 1];
  }

  if constexpr (obs::kProfilingCompiledIn) {
    EXPECT_NE(analyze[0].find("total="), std::string::npos);
    // The scan line reports zone-map pruning: 1 chunk survives day = 2.
    const std::string& scan = analyze.back();
    EXPECT_NE(scan.find("Scan(runs"), std::string::npos);
    EXPECT_NE(scan.find("chunks=1 pruned=5"), std::string::npos) << scan;
    EXPECT_NE(scan.find("time="), std::string::npos);
    // Top 5 of the surviving 4096 rows.
    EXPECT_NE(analyze[1].find("rows=5"), std::string::npos) << analyze[1];
  } else {
    EXPECT_NE(analyze[0].find("profiling compiled out"), std::string::npos);
  }
}

TEST_F(ExplainTest, AnalyzeParallelReportsMorselFanOut) {
  UseParallel();
  // Touch all six chunks so the fan-out is eligible (min_chunks = 2).
  std::vector<std::string> analyze = PlanColumn(
      Run("EXPLAIN ANALYZE SELECT forecast, day, walltime FROM runs "
          "ORDER BY walltime DESC LIMIT 5"));
  ASSERT_FALSE(analyze.empty());
  EXPECT_EQ(analyze[0].rfind("engine=parallel", 0), 0u) << analyze[0];

  std::string joined;
  for (const auto& line : analyze) joined += line + "\n";
  EXPECT_NE(joined.find("Parallel[topk]"), std::string::npos) << joined;
  EXPECT_NE(joined.find("Scan(runs"), std::string::npos) << joined;
  if constexpr (obs::kProfilingCompiledIn) {
    EXPECT_NE(joined.find("morsels="), std::string::npos) << joined;
    EXPECT_NE(joined.find("merge="), std::string::npos) << joined;
    EXPECT_NE(joined.find("max_morsel="), std::string::npos) << joined;
  }
}

TEST_F(ExplainTest, AnalyzeParallelPrunedQueryCountsAllChunks) {
  UseParallel();
  std::vector<std::string> analyze =
      PlanColumn(Run(std::string("EXPLAIN ANALYZE ") + kPrunedTopK));
  ASSERT_FALSE(analyze.empty());
  if constexpr (obs::kProfilingCompiledIn) {
    // Whether or not the pruned survivor set stays below min_chunks (and
    // the engine falls back to serial), the scan must account for every
    // chunk: scanned + pruned = 6.
    std::string joined;
    for (const auto& line : analyze) joined += line + "\n";
    EXPECT_NE(joined.find("chunks=1 pruned=5"), std::string::npos) << joined;
  }
}

TEST_F(ExplainTest, ProfiledExecutionIsByteIdenticalToPlain) {
  // All six chunks survive, so the parallel leg genuinely fans out
  // (the pruned query would fall back to serial under min_chunks).
  const char kAllChunks[] =
      "SELECT forecast, day, walltime FROM runs "
      "ORDER BY walltime DESC LIMIT 5";
  for (bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "parallel" : "serial");
    if (parallel) UseParallel();
    ResultSet plain = Run(kAllChunks);
    auto plan = PlanSql(kAllChunks);
    ASSERT_TRUE(plan.ok());
    obs::QueryProfile profile;
    auto profiled = ExecutePlanProfiled(*plan, db_, &profile);
    ASSERT_TRUE(profiled.ok()) << profiled.status();
    EXPECT_EQ(profiled->ToCsv(), plain.ToCsv());
    ASSERT_NE(profile.root, nullptr);
    EXPECT_EQ(profile.engine, parallel ? "parallel" : "serial");
  }
}

TEST_F(ExplainTest, AnalyzeAnnotatesCacheDisposition) {
  // Cache off (fixture default): every run reports a bypass.
  std::vector<std::string> off =
      PlanColumn(Run(std::string("EXPLAIN ANALYZE ") + kPrunedTopK));
  ASSERT_FALSE(off.empty());
  EXPECT_NE(off[0].find("cache=bypass"), std::string::npos) << off[0];

  UseFullCache();
  std::vector<std::string> miss =
      PlanColumn(Run(std::string("EXPLAIN ANALYZE ") + kPrunedTopK));
  ASSERT_FALSE(miss.empty());
  EXPECT_NE(miss[0].find("cache=miss"), std::string::npos) << miss[0];
  EXPECT_EQ(miss.size(), off.size())
      << "a miss executes and renders the full operator tree";

  // The miss above stored the result; the rerun serves it and executes
  // nothing, so the rendered tree collapses to the header line.
  std::vector<std::string> hit =
      PlanColumn(Run(std::string("EXPLAIN ANALYZE ") + kPrunedTopK));
  ASSERT_EQ(hit.size(), 1u) << "a hit must not render operator lines";
  EXPECT_EQ(hit[0].rfind("engine=cache", 0), 0u) << hit[0];
  EXPECT_NE(hit[0].find("cache=hit"), std::string::npos) << hit[0];
}

TEST_F(ExplainTest, CacheHitResultsAreByteIdenticalToTheMiss) {
  UseFullCache();
  ResultSet miss = Run(kPrunedTopK);
  ResultSet hit = Run(kPrunedTopK);
  EXPECT_EQ(miss.ToCsv(), hit.ToCsv());
  EXPECT_GT(db_.cache().Stats().result_hits, 0u);
}

TEST_F(ExplainTest, KeywordsAreCaseInsensitive) {
  ResultSet rs = Run(std::string("explain analyze ") + kPrunedTopK);
  ASSERT_FALSE(rs.rows.empty());
  EXPECT_EQ(rs.rows[0][0].string_value().rfind("engine=", 0), 0u);
}

TEST_F(ExplainTest, OnlySelectCanBeExplained) {
  EXPECT_FALSE(db_.Sql("EXPLAIN").ok());
  EXPECT_FALSE(db_.Sql("EXPLAIN ANALYZE").ok());
  EXPECT_FALSE(
      db_.Sql("EXPLAIN INSERT INTO runs VALUES ('x', 9, 1.0)").ok());
  EXPECT_FALSE(db_.Sql("EXPLAIN ANALYZE DELETE FROM runs WHERE day = 0")
                   .ok());
  EXPECT_FALSE(db_.Sql("EXPLAIN CREATE TABLE t2 (a INT)").ok());
  // ... and EXPLAIN must not have executed anything: the table is intact.
  ResultSet rs = Run("SELECT COUNT(*) AS n FROM runs");
  EXPECT_EQ(rs.rows[0][0].int64_value(),
            static_cast<int64_t>(kDays * 4096));
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
