#include "statsdb/sql.h"

#include <gtest/gtest.h>

#include "statsdb/database.h"

namespace ff {
namespace statsdb {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Sql("CREATE TABLE runs (forecast TEXT, day INT, "
                        "node TEXT, code_version TEXT, walltime DOUBLE)")
                    .ok());
    ASSERT_TRUE(
        db_.Sql("INSERT INTO runs VALUES "
                "('till', 1, 'f1', 'v1', 40000.0), "
                "('till', 2, 'f1', 'v1', 41000.0), "
                "('till', 3, 'f2', 'v2', 80000.0), "
                "('dev', 1, 'f2', 'v2', 60000.0), "
                "('dev', 2, 'f3', 'v2', NULL), "
                "('coos', 1, 'f3', 'v1', 20000.0)")
            .ok());
  }

  ResultSet Run(const std::string& sql) {
    auto rs = db_.Sql(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlTest, SelectStar) {
  auto rs = Run("SELECT * FROM runs");
  EXPECT_EQ(rs.rows.size(), 6u);
  EXPECT_EQ(rs.schema.num_columns(), 5u);
}

TEST_F(SqlTest, PaperQueryFindForecastsByCodeVersion) {
  // §4.3.2: "find all forecasts that use code version X".
  auto rs = Run(
      "SELECT DISTINCT forecast FROM runs WHERE code_version = 'v2' "
      "ORDER BY forecast");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "dev");
  EXPECT_EQ(rs.rows[1][0].string_value(), "till");
}

TEST_F(SqlTest, WhereWithAndOrParens) {
  auto rs = Run(
      "SELECT forecast, day FROM runs WHERE (forecast = 'till' AND day > 1)"
      " OR walltime < 30000");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlTest, ComparisonOperators) {
  EXPECT_EQ(Run("SELECT * FROM runs WHERE day <> 1").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM runs WHERE day != 1").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM runs WHERE day >= 2").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM runs WHERE day <= 1").rows.size(), 3u);
}

TEST_F(SqlTest, ArithmeticInSelectAndWhere) {
  auto rs = Run(
      "SELECT forecast, walltime / 3600.0 AS hours FROM runs "
      "WHERE walltime / 3600.0 > 16 ORDER BY hours DESC");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.schema.column(1).name, "hours");
  EXPECT_NEAR(rs.rows[0][1].double_value(), 80000.0 / 3600.0, 1e-9);
}

TEST_F(SqlTest, LikePattern) {
  auto rs = Run("SELECT * FROM runs WHERE forecast LIKE 't%'");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlTest, IsNullAndIsNotNull) {
  EXPECT_EQ(Run("SELECT * FROM runs WHERE walltime IS NULL").rows.size(),
            1u);
  EXPECT_EQ(
      Run("SELECT * FROM runs WHERE walltime IS NOT NULL").rows.size(),
      5u);
}

TEST_F(SqlTest, AggregatesGlobal) {
  auto rs = Run("SELECT COUNT(*) AS n, AVG(walltime) AS avg_w, "
                "MIN(day) AS lo, MAX(day) AS hi FROM runs");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].int64_value(), 6);
  EXPECT_NEAR(rs.rows[0][1].double_value(), 241000.0 / 5, 1e-9);
  EXPECT_EQ(rs.rows[0][2].int64_value(), 1);
  EXPECT_EQ(rs.rows[0][3].int64_value(), 3);
}

TEST_F(SqlTest, PaperEstimationQuery) {
  // §4.1: average walltime of past runs of a forecast on a node.
  auto rs = Run(
      "SELECT AVG(walltime) AS avg_w FROM runs "
      "WHERE forecast = 'till' AND node = 'f1'");
  EXPECT_NEAR(rs.rows[0][0].double_value(), 40500.0, 1e-9);
}

TEST_F(SqlTest, GroupByWithHaving) {
  auto rs = Run(
      "SELECT forecast, COUNT(*) AS n FROM runs GROUP BY forecast "
      "HAVING n > 1 ORDER BY forecast");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "dev");
  EXPECT_EQ(rs.rows[0][1].int64_value(), 2);
  EXPECT_EQ(rs.rows[1][0].string_value(), "till");
  EXPECT_EQ(rs.rows[1][1].int64_value(), 3);
}

TEST_F(SqlTest, GroupByRequiresAggregatesOrGroupCols) {
  EXPECT_FALSE(db_.Sql("SELECT walltime FROM runs GROUP BY forecast").ok());
  EXPECT_FALSE(db_.Sql("SELECT * FROM runs GROUP BY forecast").ok());
}

TEST_F(SqlTest, HavingWithoutGroupByRejected) {
  EXPECT_FALSE(db_.Sql("SELECT forecast FROM runs HAVING day > 1").ok());
}

TEST_F(SqlTest, OrderByLimitOffset) {
  auto rs = Run("SELECT day FROM runs ORDER BY day DESC, forecast ASC "
                "LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].int64_value(), 2);
}

TEST_F(SqlTest, JoinOn) {
  ASSERT_TRUE(
      db_.Sql("CREATE TABLE nodes (name TEXT, speed DOUBLE)").ok());
  ASSERT_TRUE(db_.Sql("INSERT INTO nodes VALUES ('f1', 1.0), ('f2', 1.2)")
                  .ok());
  auto rs = Run(
      "SELECT forecast, speed FROM runs JOIN nodes ON node = name "
      "WHERE day = 1 ORDER BY forecast");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "dev");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].double_value(), 1.2);
}

TEST_F(SqlTest, InsertReportsRowCount) {
  auto rs = Run("INSERT INTO runs VALUES ('new', 9, 'f1', 'v3', 100.0)");
  EXPECT_EQ(rs.rows[0][0].int64_value(), 1);
  EXPECT_EQ(Run("SELECT * FROM runs").rows.size(), 7u);
}

TEST_F(SqlTest, InsertNegativeNumbers) {
  ASSERT_TRUE(db_.Sql("CREATE TABLE t (x INT, y DOUBLE)").ok());
  ASSERT_TRUE(db_.Sql("INSERT INTO t VALUES (-5, -2.5)").ok());
  auto rs = Run("SELECT x, y FROM t");
  EXPECT_EQ(rs.rows[0][0].int64_value(), -5);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].double_value(), -2.5);
}

TEST_F(SqlTest, StringLiteralEscaping) {
  ASSERT_TRUE(db_.Sql("CREATE TABLE s (v TEXT)").ok());
  ASSERT_TRUE(db_.Sql("INSERT INTO s VALUES ('it''s')").ok());
  auto rs = Run("SELECT v FROM s");
  EXPECT_EQ(rs.rows[0][0].string_value(), "it's");
}

TEST_F(SqlTest, CommentsIgnored) {
  auto rs = Run("SELECT COUNT(*) AS n FROM runs -- trailing comment");
  EXPECT_EQ(rs.rows[0][0].int64_value(), 6);
}

TEST_F(SqlTest, CaseInsensitiveKeywords) {
  auto rs = Run("select forecast from runs where day = 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "till");
}

TEST_F(SqlTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(db_.Sql("").status().IsParseError());
  EXPECT_TRUE(db_.Sql("SELEC * FROM runs").status().IsParseError());
  EXPECT_TRUE(db_.Sql("SELECT FROM runs").status().IsParseError());
  EXPECT_TRUE(db_.Sql("SELECT * FROM runs WHERE").status().IsParseError());
  EXPECT_TRUE(db_.Sql("SELECT * FROM runs extra").status().IsParseError());
  EXPECT_TRUE(db_.Sql("SELECT * FROM runs LIMIT -1").status().IsParseError());
  EXPECT_TRUE(db_.Sql("DROP TABLE runs").status().IsParseError());
  EXPECT_TRUE(
      db_.Sql("SELECT * FROM runs WHERE forecast = 'unterminated")
          .status()
          .IsParseError());
}

TEST_F(SqlTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(db_.Sql("SELECT * FROM ghost").status().IsNotFound());
  EXPECT_FALSE(db_.Sql("SELECT ghost_col FROM runs").ok());
}

TEST_F(SqlTest, CreateDuplicateTableFails) {
  EXPECT_TRUE(
      db_.Sql("CREATE TABLE runs (x INT)").status().IsAlreadyExists());
}

TEST_F(SqlTest, CreateWithBadTypeFails) {
  EXPECT_TRUE(
      db_.Sql("CREATE TABLE t (x BLOB)").status().IsParseError());
}

TEST_F(SqlTest, CountDistinctViaSubsetIdioms) {
  // COUNT of non-null column vs COUNT(*).
  auto rs = Run("SELECT COUNT(walltime) AS n FROM runs");
  EXPECT_EQ(rs.rows[0][0].int64_value(), 5);
}

TEST_F(SqlTest, SumIntStaysInt) {
  auto rs = Run("SELECT SUM(day) AS s FROM runs");
  EXPECT_EQ(rs.rows[0][0].type(), DataType::kInt64);
  EXPECT_EQ(rs.rows[0][0].int64_value(), 10);
}

}  // namespace
}  // namespace statsdb
}  // namespace ff
