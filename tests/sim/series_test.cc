#include "sim/series.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ff {
namespace sim {
namespace {

TEST(SeriesRecorderTest, RecordAndGet) {
  SeriesRecorder rec;
  rec.Record("a", 0.0, 1.0);
  rec.Record("a", 10.0, 2.0);
  rec.Record("b", 5.0, -1.0);
  EXPECT_TRUE(rec.Has("a"));
  EXPECT_FALSE(rec.Has("c"));
  auto a = rec.Get("a");
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->size(), 2u);
  EXPECT_DOUBLE_EQ((*a)[1].time, 10.0);
  EXPECT_DOUBLE_EQ((*a)[1].value, 2.0);
  EXPECT_EQ(rec.SeriesNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(SeriesRecorderTest, GetUnknownFails) {
  SeriesRecorder rec;
  EXPECT_TRUE(rec.Get("nope").status().IsNotFound());
  EXPECT_TRUE(rec.LastValue("nope").status().IsNotFound());
}

TEST(SeriesRecorderTest, LastValue) {
  SeriesRecorder rec;
  rec.Record("x", 1.0, 0.25);
  rec.Record("x", 2.0, 0.75);
  EXPECT_DOUBLE_EQ(*rec.LastValue("x"), 0.75);
}

TEST(SeriesRecorderTest, FirstTimeAtLeastInterpolates) {
  SeriesRecorder rec;
  rec.Record("f", 0.0, 0.0);
  rec.Record("f", 100.0, 0.5);
  rec.Record("f", 200.0, 1.0);
  EXPECT_DOUBLE_EQ(*rec.FirstTimeAtLeast("f", 0.5), 100.0);
  // 0.75 is halfway between samples at t=100 and t=200.
  EXPECT_DOUBLE_EQ(*rec.FirstTimeAtLeast("f", 0.75), 150.0);
  EXPECT_DOUBLE_EQ(*rec.FirstTimeAtLeast("f", 0.0), 0.0);
}

TEST(SeriesRecorderTest, FirstTimeAtLeastNeverReached) {
  SeriesRecorder rec;
  rec.Record("f", 0.0, 0.2);
  EXPECT_TRUE(rec.FirstTimeAtLeast("f", 0.9).status().IsNotFound());
}

TEST(SeriesRecorderTest, WriteCsvLongFormat) {
  SeriesRecorder rec;
  rec.Record("s", 1.5, 0.5);
  std::ostringstream os;
  rec.WriteCsv(&os);
  EXPECT_EQ(os.str(), "series,time,value\ns,1.500,0.5\n");
}

TEST(SeriesRecorderTest, WriteCsvGridStepInterpolation) {
  SeriesRecorder rec;
  rec.Record("a", 0.0, 1.0);
  rec.Record("a", 10.0, 2.0);
  rec.Record("b", 5.0, 7.0);
  std::ostringstream os;
  rec.WriteCsvGrid(&os, 10.0, 5.0);
  // t=0: a=1, b=0 (not yet); t=5: a=1, b=7; t=10: a=2, b=7.
  EXPECT_EQ(os.str(),
            "time,a,b\n0.000,1,0\n5.000,1,7\n10.000,2,7\n");
}

TEST(SeriesRecorderTest, ClearRemovesAll) {
  SeriesRecorder rec;
  rec.Record("a", 0.0, 1.0);
  rec.Clear();
  EXPECT_FALSE(rec.Has("a"));
  EXPECT_TRUE(rec.SeriesNames().empty());
}

TEST(SeriesRecorderDeathTest, MonotonicTimeWithinSeriesEnforced) {
  SeriesRecorder rec;
  rec.Record("a", 10.0, 1.0);
  rec.Record("a", 10.0, 2.0);  // equal time OK
  EXPECT_DEATH(rec.Record("a", 9.0, 3.0), "out of order");
}

}  // namespace
}  // namespace sim
}  // namespace ff
