#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ff {
namespace sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30.0, [&] { order.push_back(3); });
  s.ScheduleAt(10.0, [&] { order.push_back(1); });
  s.ScheduleAt(20.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakByPriorityThenInsertion) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5.0, [&] { order.push_back(1); }, /*priority=*/1);
  s.ScheduleAt(5.0, [&] { order.push_back(2); }, /*priority=*/0);
  s.ScheduleAt(5.0, [&] { order.push_back(3); }, /*priority=*/0);
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  double fired_at = -1.0;
  s.ScheduleAt(100.0, [&] {
    s.ScheduleAfter(50.0, [&] { fired_at = s.now(); });
  });
  s.Run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.ScheduleAt(10.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(s.Cancel(h));
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));  // double-cancel fails
  s.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, HandleNotPendingAfterFiring) {
  Simulator s;
  EventHandle h = s.ScheduleAt(1.0, [] {});
  s.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<double> fired;
  for (double t : {10.0, 20.0, 30.0, 40.0}) {
    s.ScheduleAt(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.RunUntil(25.0);
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(s.now(), 25.0);
  s.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.RunUntil(500.0);
  EXPECT_DOUBLE_EQ(s.now(), 500.0);
}

TEST(SimulatorTest, StopEndsRun) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.ScheduleAt(i, [&] {
      ++count;
      if (count == 3) s.Stop();
    });
  }
  s.Run();
  EXPECT_EQ(count, 3);
  s.Run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, StepProcessesExactlyOne) {
  Simulator s;
  int count = 0;
  s.ScheduleAt(1.0, [&] { ++count; });
  s.ScheduleAt(2.0, [&] { ++count; });
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.Step());
}

TEST(SimulatorTest, EventsScheduledDuringRunAreProcessed) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.ScheduleAfter(1.0, chain);
  };
  s.ScheduleAt(0.0, chain);
  s.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(s.now(), 99.0);
}

TEST(SimulatorTest, ZeroDelayEventFiresAtSameTime) {
  Simulator s;
  double t = -1.0;
  s.ScheduleAt(5.0, [&] { s.ScheduleAfter(0.0, [&] { t = s.now(); }); });
  s.Run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(SimulatorTest, DeterministicEventCount) {
  auto run_once = [] {
    Simulator s;
    uint64_t sum = 0;
    for (int i = 0; i < 50; ++i) {
      s.ScheduleAt(i * 2.0, [&sum, &s, i] {
        sum += static_cast<uint64_t>(s.now()) * i;
        if (i % 3 == 0) s.ScheduleAfter(1.0, [&sum] { sum += 1; });
      });
    }
    s.Run();
    return std::make_pair(sum, s.events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sim
}  // namespace ff
