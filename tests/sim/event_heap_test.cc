// Tests for the owned event heap: tombstone handling under heavy
// cancellation (PsResource cancels one event per reschedule), compaction
// correctness, and ordering invariants the kernel guarantees.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace ff {
namespace sim {
namespace {

TEST(EventHeapTest, HeavyCancellationPreservesOrder) {
  Simulator s;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  // 10,000 events; cancel 9 of every 10. Survivors must fire in time
  // order regardless of compaction passes in between.
  for (int i = 0; i < 10000; ++i) {
    handles.push_back(
        s.ScheduleAt(static_cast<Time>(i), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 10000; ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(s.Cancel(handles[static_cast<size_t>(i)]));
    }
  }
  s.Run();
  ASSERT_EQ(fired.size(), 1000u);
  for (size_t k = 0; k < fired.size(); ++k) {
    EXPECT_EQ(fired[k], static_cast<int>(k) * 10);
  }
}

TEST(EventHeapTest, CompactionDropsTombstonesFromQueueSize) {
  Simulator s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(s.ScheduleAt(static_cast<Time>(i + 1), [] {}));
  }
  EXPECT_EQ(s.queue_size(), 1000u);
  // Cancelling more than half triggers an O(n) compaction, so the queue
  // physically shrinks instead of carrying tombstones to dispatch.
  for (int i = 0; i < 600; ++i) EXPECT_TRUE(s.Cancel(handles[static_cast<size_t>(i)]));
  EXPECT_LT(s.queue_size(), 600u);
  s.Run();
  EXPECT_EQ(s.events_processed(), 400u);
}

TEST(EventHeapTest, CancelDuringDispatchStillSkips) {
  Simulator s;
  bool victim_fired = false;
  EventHandle victim = s.ScheduleAt(5.0, [&] { victim_fired = true; });
  // An earlier event cancels a later one mid-run.
  s.ScheduleAt(1.0, [&] { EXPECT_TRUE(s.Cancel(victim)); });
  s.Run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(EventHeapTest, RunUntilSkipsLeadingTombstones) {
  Simulator s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(s.ScheduleAt(static_cast<Time>(i), [] {}));
  }
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.Cancel(handles[static_cast<size_t>(i)]));
  s.RunUntil(200.0);
  EXPECT_EQ(s.events_processed(), 50u);
  EXPECT_DOUBLE_EQ(s.now(), 200.0);
}

TEST(EventHeapTest, InterleavedScheduleCancelFuzz) {
  // Randomized schedule/cancel interleaving must fire exactly the
  // never-cancelled events, in nondecreasing time order, twice over with
  // identical results (determinism).
  auto run_once = [] {
    Simulator s;
    util::Rng rng(0xfeedULL);
    std::vector<EventHandle> handles;
    std::vector<double> fired_times;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 40; ++i) {
        double t = s.now() + rng.Uniform(0.0, 100.0);
        handles.push_back(s.ScheduleAt(
            t, [&fired_times, &s] { fired_times.push_back(s.now()); }));
      }
      for (int i = 0; i < 25; ++i) {
        (void)s.Cancel(handles[rng.Index(handles.size())]);
      }
      s.RunUntil(s.now() + rng.Uniform(0.0, 50.0));
    }
    s.Run();
    return std::make_pair(fired_times, s.events_processed());
  };
  auto [times_a, count_a] = run_once();
  auto [times_b, count_b] = run_once();
  EXPECT_EQ(count_a, count_b);
  ASSERT_EQ(times_a.size(), times_b.size());
  for (size_t i = 0; i < times_a.size(); ++i) {
    EXPECT_EQ(times_a[i], times_b[i]);  // bitwise determinism
    if (i > 0) {
      EXPECT_GE(times_a[i], times_a[i - 1]);
    }
  }
}

TEST(EventHeapTest, MoveOnlyDispatchKeepsPayloadAlive) {
  // The dispatch path moves the event payload out of the heap before
  // running it; a callback that reschedules itself (mutating the heap
  // mid-dispatch) must therefore stay valid.
  Simulator s;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 64) {
      // Schedule enough extra events to force heap reallocation while the
      // current callback is still executing.
      for (int i = 0; i < 8; ++i) s.ScheduleAfter(2.0, [] {});
      s.ScheduleAfter(1.0, hop);
    }
  };
  s.ScheduleAt(0.0, hop);
  s.Run();
  EXPECT_EQ(hops, 64);
}

}  // namespace
}  // namespace sim
}  // namespace ff
