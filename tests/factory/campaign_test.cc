#include "factory/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "logdata/log_store.h"
#include "workload/fleet.h"

namespace ff {
namespace factory {
namespace {

workload::ForecastSpec SmallSpec(const std::string& name,
                                 int64_t mesh = 10000) {
  workload::ForecastSpec s = workload::MakeTillamookForecast();
  s.name = name;
  s.mesh_sides = mesh;  // ~16k CPU-s simulation
  return s;
}

TEST(CampaignTest, CompletedRunsHaveStableWalltime) {
  CampaignConfig cfg;
  cfg.num_days = 5;
  cfg.noise_sigma = 0.0;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  const auto& samples = result->walltimes.at("a");
  ASSERT_EQ(samples.size(), 5u);
  workload::CostModel model;
  double expected = model.TotalCpuSeconds(SmallSpec("a"));
  for (const auto& s : samples) {
    EXPECT_NEAR(s.walltime, expected, 1.0) << "day " << s.day;
  }
}

TEST(CampaignTest, TwoForecastsOnDualCpuNodeDontInterfere) {
  CampaignConfig cfg;
  cfg.num_days = 3;
  cfg.noise_sigma = 0.0;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1", 2).ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("b"), "f1").ok());
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  workload::CostModel model;
  double expected = model.TotalCpuSeconds(SmallSpec("a"));
  EXPECT_NEAR(result->walltimes.at("a")[0].walltime, expected, 1.0);
  EXPECT_NEAR(result->walltimes.at("b")[0].walltime, expected, 1.0);
}

TEST(CampaignTest, ThirdForecastCausesSharing) {
  CampaignConfig cfg;
  cfg.num_days = 1;
  cfg.noise_sigma = 0.0;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1", 2).ok());
  for (const char* n : {"a", "b", "c"}) {
    ASSERT_TRUE(c.AddForecast(SmallSpec(n), "f1").ok());
  }
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  workload::CostModel model;
  double solo = model.TotalCpuSeconds(SmallSpec("a"));
  // 3 identical runs, 2 CPUs -> each takes 1.5x its solo time.
  EXPECT_NEAR(result->walltimes.at("a")[0].walltime, 1.5 * solo,
              solo * 0.01);
}

TEST(CampaignTest, TimestepEventChangesWalltime) {
  CampaignConfig cfg;
  cfg.num_days = 4;
  cfg.noise_sigma = 0.0;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent ev;
  ev.day = 2;
  ev.kind = ChangeEvent::Kind::kSetTimesteps;
  ev.forecast = "a";
  ev.int_value = SmallSpec("a").timesteps * 2;
  c.AddEvent(ev);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  const auto& ws = result->walltimes.at("a");
  ASSERT_EQ(ws.size(), 4u);
  // Products don't double, so the ratio is a bit under 2.
  EXPECT_GT(ws[2].walltime / ws[0].walltime, 1.8);
  EXPECT_NEAR(ws[3].walltime, ws[2].walltime, 1.0);
}

TEST(CampaignTest, CodeVersionEventAppearsInLogs) {
  CampaignConfig cfg;
  cfg.num_days = 3;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent ev;
  ev.day = 1;
  ev.kind = ChangeEvent::Kind::kSetCodeVersion;
  ev.forecast = "a";
  ev.str_value = "v2";
  ev.factor = 0.5;
  c.AddEvent(ev);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  int v2_count = 0;
  for (const auto& rec : result->records) {
    if (rec.code_version == "v2") ++v2_count;
  }
  EXPECT_EQ(v2_count, 2);
  // Faster code halves the simulation part.
  const auto& ws = result->walltimes.at("a");
  EXPECT_LT(ws[1].walltime, ws[0].walltime * 0.7);
}

TEST(CampaignTest, AddAndRemoveForecastEvents) {
  CampaignConfig cfg;
  cfg.num_days = 6;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddNode("f2").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent add;
  add.day = 2;
  add.kind = ChangeEvent::Kind::kAddForecast;
  add.new_forecast = SmallSpec("b");
  add.str_value = "f2";
  c.AddEvent(add);
  ChangeEvent remove;
  remove.day = 4;
  remove.kind = ChangeEvent::Kind::kRemoveForecast;
  remove.forecast = "a";
  c.AddEvent(remove);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->walltimes.at("a").size(), 4u);  // days 0-3
  EXPECT_EQ(result->walltimes.at("b").size(), 4u);  // days 2-5
}

TEST(CampaignTest, WipCarryoverCascades) {
  // A run longer than a day forces overlap with its successor, inflating
  // successive walltimes — the Fig. 8 mechanism.
  CampaignConfig cfg;
  cfg.num_days = 4;
  cfg.noise_sigma = 0.0;
  workload::ForecastSpec big = SmallSpec("big", 60000);  // ~96k CPU-s > day
  auto result = [&] {
    Campaign camp(cfg);
    camp.AddNode("f1", 1).ok();
    camp.AddForecast(big, "f1").ok();
    return camp.Run();
  }();
  ASSERT_TRUE(result.ok());
  const auto& ws = result->walltimes.at("big");
  ASSERT_GE(ws.size(), 3u);
  EXPECT_GT(ws[1].walltime, ws[0].walltime);
  EXPECT_GT(ws[2].walltime, ws[1].walltime);
}

TEST(CampaignTest, ForemanRebalanceBreaksCascade) {
  auto run_campaign = [](bool rebalance) {
    CampaignConfig cfg;
    cfg.num_days = 14;
    cfg.noise_sigma = 0.0;
    cfg.foreman_rebalance = rebalance;
    cfg.rebalance_patience = 2;
    Campaign c(cfg);
    c.AddNode("f1").ok();
    c.AddNode("f2").ok();
    // Three sizable forecasts pinned to f1; f2 idle.
    for (const char* n : {"a", "b", "c"}) {
      c.AddForecast(SmallSpec(n, 35000), "f1").ok();
    }
    auto result = c.Run();
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  auto with = run_campaign(true);
  auto without = run_campaign(false);
  double with_last = with.walltimes.at("a").back().walltime;
  double without_last = without.walltimes.at("a").back().walltime;
  EXPECT_LT(with_last, without_last);
  EXPECT_GT(with.foreman_moves, 0);
  EXPECT_EQ(without.foreman_moves, 0);
}

TEST(CampaignTest, NodeFailureMigratesWithMinimalPolicy) {
  CampaignConfig cfg;
  cfg.num_days = 4;
  cfg.failure_policy = core::ReschedulePolicy::kMinimal;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddNode("f2").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent down;
  down.day = 1;
  down.kind = ChangeEvent::Kind::kNodeDown;
  down.str_value = "f1";
  c.AddEvent(down);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  // All four days complete despite the failure.
  EXPECT_EQ(result->walltimes.at("a").size(), 4u);
  // Days 1+ run on f2.
  for (const auto& rec : result->records) {
    if (rec.day >= cfg.first_day + 1) {
      EXPECT_EQ(rec.node, "f2");
    }
  }
}

TEST(CampaignTest, NodeFailureWithNonePolicyStallsRuns) {
  CampaignConfig cfg;
  cfg.num_days = 3;
  cfg.failure_policy = core::ReschedulePolicy::kNone;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddNode("f2").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent down;
  down.day = 1;
  down.kind = ChangeEvent::Kind::kNodeDown;
  down.str_value = "f1";
  c.AddEvent(down);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  // Day 0 completed; later runs stalled on the dead node and are
  // reported as running.
  int running = 0;
  for (const auto& rec : result->records) {
    if (rec.status == logdata::RunStatus::kRunning) ++running;
  }
  EXPECT_GT(running, 0);
}

TEST(CampaignTest, GuestLoadInflatesOneDay) {
  CampaignConfig cfg;
  cfg.num_days = 3;
  cfg.noise_sigma = 0.0;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1", 1).ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent guest;
  guest.day = 1;
  guest.kind = ChangeEvent::Kind::kGuestLoad;
  guest.str_value = "f1";
  guest.factor = 10000.0;
  c.AddEvent(guest);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  const auto& ws = result->walltimes.at("a");
  EXPECT_GT(ws[1].walltime, ws[0].walltime + 5000.0);
  EXPECT_NEAR(ws[2].walltime, ws[0].walltime, 100.0);
}

TEST(CampaignTest, WritesLogDirectoryTree) {
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "ff_campaign_logs_test";
  fs::remove_all(root);
  CampaignConfig cfg;
  cfg.num_days = 2;
  cfg.log_dir = root.string();
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  logdata::Crawler crawler(root.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  fs::remove_all(root);
}

TEST(CampaignTest, LiveDbTracksRunningThenCompleted) {
  // §4.3.2: run scripts update the database directly — a row exists with
  // status 'running' while the run executes and is patched on completion.
  statsdb::Database db;
  CampaignConfig cfg;
  cfg.num_days = 3;
  cfg.live_db = &db;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  // After the campaign every row is completed, one per day, with
  // walltimes patched in.
  auto rs = db.Sql(
      "SELECT COUNT(*) AS n FROM runs WHERE status = 'completed' AND "
      "walltime IS NOT NULL");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Scalar()->int64_value(), 3);
  auto running = db.Sql(
      "SELECT COUNT(*) AS n FROM runs WHERE status = 'running'");
  ASSERT_TRUE(running.ok());
  EXPECT_EQ(running->Scalar()->int64_value(), 0);
}

TEST(CampaignTest, LiveDbKeepsStalledRunAsRunning) {
  statsdb::Database db;
  CampaignConfig cfg;
  cfg.num_days = 2;
  cfg.live_db = &db;
  cfg.failure_policy = core::ReschedulePolicy::kNone;
  Campaign c(cfg);
  ASSERT_TRUE(c.AddNode("f1").ok());
  ASSERT_TRUE(c.AddForecast(SmallSpec("a"), "f1").ok());
  ChangeEvent down;
  down.day = 1;
  down.kind = ChangeEvent::Kind::kNodeDown;
  down.str_value = "f1";
  c.AddEvent(down);
  auto result = c.Run();
  ASSERT_TRUE(result.ok());
  auto running = db.Sql(
      "SELECT day FROM runs WHERE status = 'running'");
  ASSERT_TRUE(running.ok());
  ASSERT_EQ(running->rows.size(), 1u);
  EXPECT_EQ(running->rows[0][0].int64_value(), 2);  // the stalled day
}

TEST(CampaignTest, DeterministicGivenSeed) {
  auto run_once = [] {
    CampaignConfig cfg;
    cfg.num_days = 5;
    cfg.seed = 77;
    Campaign c(cfg);
    c.AddNode("f1").ok();
    c.AddForecast(SmallSpec("a"), "f1").ok();
    auto result = c.Run();
    EXPECT_TRUE(result.ok());
    std::vector<double> ws;
    for (const auto& s : result->walltimes.at("a")) {
      ws.push_back(s.walltime);
    }
    return ws;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CampaignTest, Validation) {
  CampaignConfig cfg;
  Campaign c(cfg);
  EXPECT_TRUE(c.Run().status().IsFailedPrecondition());  // no nodes
  Campaign c2(cfg);
  ASSERT_TRUE(c2.AddNode("f1").ok());
  EXPECT_TRUE(c2.AddNode("f1").IsAlreadyExists());
  EXPECT_TRUE(
      c2.AddForecast(SmallSpec("a"), "ghost").IsNotFound());
  ASSERT_TRUE(c2.AddForecast(SmallSpec("a"), "f1").ok());
  EXPECT_TRUE(c2.AddForecast(SmallSpec("a"), "f1").IsAlreadyExists());
}

}  // namespace
}  // namespace factory
}  // namespace ff
