// Campaign + observability integration: span accounting matches the
// campaign's own result records, exports are byte-stable under a fixed
// seed, and the SPC monitor->replan loop closes on live telemetry.

#include <gtest/gtest.h>

#include <string>

#include "factory/campaign.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/fleet.h"

namespace ff {
namespace factory {
namespace {

CampaignConfig BaseConfig(int days) {
  CampaignConfig cfg;
  cfg.num_days = days;
  cfg.seed = 2006;
  return cfg;
}

util::StatusOr<CampaignResult> RunSmallCampaign(const CampaignConfig& cfg,
                                                int num_forecasts = 4) {
  Campaign campaign(cfg);
  for (const char* n : {"f1", "f2"}) {
    auto s = campaign.AddNode(n);
    if (!s.ok()) return s;
  }
  util::Rng rng(7);
  auto fleet = workload::MakeCorieFleet(num_forecasts, &rng);
  for (size_t i = 0; i < fleet.size(); ++i) {
    auto s = campaign.AddForecast(fleet[i], i % 2 == 0 ? "f1" : "f2");
    if (!s.ok()) return s;
  }
  return campaign.Run();
}

TEST(CampaignObsTest, SpanCountsMatchResultRecords) {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::ScopedObservability scope(&trace, &metrics);
  auto result = RunSmallCampaign(BaseConfig(5));
  ASSERT_TRUE(result.ok()) << result.status();

  // Every launched run opened a kRun span (4 forecasts x 5 days) and every
  // run that completed closed it.
  size_t completed = 0;
  for (const auto& rec : result->records) {
    if (rec.status == logdata::RunStatus::kCompleted) ++completed;
  }
  EXPECT_EQ(trace.CountSpans(obs::SpanCategory::kRun), 20u);
  EXPECT_EQ(trace.OpenSpans(),
            (trace.CountSpans(obs::SpanCategory::kRun) - completed) +
                (trace.CountSpans(obs::SpanCategory::kTask) - completed));
  // Each run ran as exactly one machine task.
  EXPECT_EQ(trace.CountSpans(obs::SpanCategory::kTask), 20u);
  // Task spans are parented under their run span.
  size_t parented = 0;
  for (const auto& s : trace.spans()) {
    if (s.category == obs::SpanCategory::kTask && s.parent != 0) ++parented;
  }
  EXPECT_EQ(parented, 20u);

  ASSERT_NE(metrics.FindCounter("campaign.runs_completed"), nullptr);
  EXPECT_EQ(metrics.FindCounter("campaign.runs_completed")->value(),
            completed);
  // The per-day metrics ticker sampled node gauges into the series.
  EXPECT_FALSE(metrics.SeriesSamples("node.util.f1").empty());
}

TEST(CampaignObsTest, ChromeExportIsByteStableUnderFixedSeed) {
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    obs::ScopedObservability scope(&trace, &metrics);
    auto result = RunSmallCampaign(BaseConfig(3));
    ASSERT_TRUE(result.ok()) << result.status();
    json[i] = obs::ChromeTraceJson(trace, &metrics);
  }
  EXPECT_GT(json[0].size(), 1000u);
  EXPECT_EQ(json[0], json[1]);
}

TEST(CampaignObsTest, ObservabilityDoesNotChangeSimulatedOutcomes) {
  auto base = RunSmallCampaign(BaseConfig(4));
  ASSERT_TRUE(base.ok());
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::ScopedObservability scope(&trace, &metrics);
  auto traced = RunSmallCampaign(BaseConfig(4));
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(base->records.size(), traced->records.size());
  for (size_t i = 0; i < base->records.size(); ++i) {
    EXPECT_EQ(base->records[i].forecast, traced->records[i].forecast);
    EXPECT_DOUBLE_EQ(base->records[i].walltime, traced->records[i].walltime);
  }
}

TEST(CampaignObsTest, SpcMonitorSignalsAndReplansUnderGuestLoad) {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::ScopedObservability scope(&trace, &metrics);
  CampaignConfig cfg = BaseConfig(20);
  cfg.spc_replan = true;
  cfg.spc_baseline_days = 6;
  Campaign campaign(cfg);
  ASSERT_TRUE(campaign.AddNode("f1").ok());
  ASSERT_TRUE(campaign.AddNode("f2").ok());
  util::Rng rng(7);
  auto fleet = workload::MakeCorieFleet(2, &rng);
  ASSERT_TRUE(campaign.AddForecast(fleet[0], "f1").ok());
  ASSERT_TRUE(campaign.AddForecast(fleet[1], "f2").ok());
  for (int day = 8; day < 20; ++day) {
    ChangeEvent guest;
    guest.day = day;
    guest.kind = ChangeEvent::Kind::kGuestLoad;
    guest.str_value = "f1";
    guest.factor = 2.5e5;
    campaign.AddEvent(guest);
  }
  auto result = campaign.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->spc_signals, 0);
  EXPECT_GT(result->spc_replans, 0);
  // The monitor leaves an audit trail in the trace and the registry.
  EXPECT_GT(trace.CountSpans(obs::SpanCategory::kSpc) +
                trace.instants().size(),
            0u);
  ASSERT_NE(metrics.FindCounter("campaign.spc_signals"), nullptr);
  EXPECT_EQ(metrics.FindCounter("campaign.spc_signals")->value(),
            static_cast<uint64_t>(result->spc_signals));
  // The walltime telemetry the chart ran on is queryable after the fact.
  EXPECT_FALSE(
      metrics.SeriesValues("campaign.walltime." + fleet[0].name).empty());
}

TEST(CampaignObsTest, NoRecorderMeansNoSpansAndNoSamples) {
  // Sanity for the zero-cost claim's correctness half: without installed
  // observability the campaign runs identically and records nothing.
  auto result = RunSmallCampaign(BaseConfig(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(obs::ActiveTrace(), nullptr);
  EXPECT_EQ(obs::ActiveMetrics(), nullptr);
}

}  // namespace
}  // namespace factory
}  // namespace ff
