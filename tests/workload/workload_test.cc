#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/cost_model.h"
#include "workload/fleet.h"

namespace ff {
namespace workload {
namespace {

TEST(CostModelTest, LinearInTimesteps) {
  CostModel m;
  ForecastSpec a = MakeTillamookForecast();
  ForecastSpec b = a;
  b.timesteps = a.timesteps * 2;
  EXPECT_NEAR(m.SimulationCpuSeconds(b),
              2.0 * m.SimulationCpuSeconds(a), 1e-9);
}

TEST(CostModelTest, LinearInMeshSides) {
  CostModel m;
  ForecastSpec a = MakeTillamookForecast();
  ForecastSpec b = a;
  b.mesh_sides = a.mesh_sides * 3;
  EXPECT_NEAR(m.SimulationCpuSeconds(b),
              3.0 * m.SimulationCpuSeconds(a), 1e-9);
}

TEST(CostModelTest, CodeFactorScales) {
  CostModel m;
  ForecastSpec a = MakeTillamookForecast();
  ForecastSpec b = a;
  b.code_factor = 1.5;
  EXPECT_NEAR(m.SimulationCpuSeconds(b),
              1.5 * m.SimulationCpuSeconds(a), 1e-9);
}

TEST(CostModelTest, TillamookCalibration) {
  // Fig. 8 pre-change level: ~40,000 s at 5760 timesteps.
  CostModel m;
  ForecastSpec till = MakeTillamookForecast();
  EXPECT_NEAR(m.SimulationCpuSeconds(till), 40000.0, 2000.0);
}

TEST(CostModelTest, TotalIncludesProducts) {
  CostModel m;
  ForecastSpec till = MakeTillamookForecast();
  EXPECT_GT(m.TotalCpuSeconds(till), m.SimulationCpuSeconds(till));
  EXPECT_NEAR(m.TotalCpuSeconds(till) - m.SimulationCpuSeconds(till),
              till.TotalProductCpuSeconds(), 1e-9);
}

TEST(ForecastSpecTest, ByteAccounting) {
  ForecastSpec f = MakeElcircEstuaryForecast();
  EXPECT_NEAR(f.TotalModelBytes(), 1700e6, 1e3);
  double products = f.TotalProductBytes();
  // §4.2: "data products account for as much as 20% of all data".
  double fraction = products / (products + f.TotalModelBytes());
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.25);
}

TEST(ForecastSpecTest, ElcircHasPaperSeries) {
  ForecastSpec f = MakeElcircEstuaryForecast();
  std::vector<std::string> file_names;
  for (const auto& file : f.output_files) file_names.push_back(file.name);
  EXPECT_NE(std::find(file_names.begin(), file_names.end(), "1_salt.63"),
            file_names.end());
  EXPECT_NE(std::find(file_names.begin(), file_names.end(), "2_salt.63"),
            file_names.end());
  std::vector<std::string> product_names;
  for (const auto& p : f.products) product_names.push_back(p.name);
  for (const char* expected :
       {"isosal_far_surface", "isosal_near_surface", "process"}) {
    EXPECT_NE(std::find(product_names.begin(), product_names.end(),
                        expected),
              product_names.end())
        << expected;
  }
}

TEST(ForecastSpecTest, Day2FilesGrowInSecondHalf) {
  ForecastSpec f = MakeElcircEstuaryForecast();
  for (const auto& file : f.output_files) {
    if (file.name[0] == '1') {
      EXPECT_DOUBLE_EQ(file.start_progress, 0.0);
      EXPECT_DOUBLE_EQ(file.end_progress, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(file.start_progress, 0.5);
      EXPECT_DOUBLE_EQ(file.end_progress, 1.0);
    }
  }
}

TEST(ForecastSpecTest, ProductInputIndicesValid) {
  for (const ForecastSpec& f :
       {MakeElcircEstuaryForecast(), MakeTillamookForecast(),
        MakeDevForecast()}) {
    for (const auto& p : f.products) {
      EXPECT_FALSE(p.input_files.empty()) << p.name;
      for (int idx : p.input_files) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, static_cast<int>(f.output_files.size()));
      }
    }
  }
}

TEST(ProductClassTest, AllFigure2ClassesRepresented) {
  auto products = MakeStandardProducts();
  std::set<ProductClass> classes;
  for (const auto& p : products) classes.insert(p.product_class);
  EXPECT_EQ(classes.size(), 5u);  // isolines, transects, cross, anim, plots
  EXPECT_STREQ(ProductClassName(ProductClass::kIsolines), "isolines");
  EXPECT_STREQ(ProductClassName(ProductClass::kAnimations), "animations");
}

TEST(FleetTest, DeterministicGivenSeed) {
  util::Rng r1(5), r2(5);
  auto a = MakeCorieFleet(10, &r1);
  auto b = MakeCorieFleet(10, &r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].timesteps, b[i].timesteps);
    EXPECT_EQ(a[i].mesh_sides, b[i].mesh_sides);
    EXPECT_EQ(a[i].priority, b[i].priority);
  }
}

TEST(FleetTest, UniqueNamesAtScale) {
  // The paper expects 50-100 forecasts; names must stay unique.
  util::Rng rng(5);
  auto fleet = MakeCorieFleet(100, &rng);
  std::set<std::string> names;
  for (const auto& f : fleet) names.insert(f.name);
  EXPECT_EQ(names.size(), 100u);
}

TEST(FleetTest, ParametersWithinDocumentedRanges) {
  util::Rng rng(11);
  auto fleet = MakeCorieFleet(50, &rng);
  for (const auto& f : fleet) {
    EXPECT_TRUE(f.timesteps == 5760 || f.timesteps == 2880) << f.name;
    EXPECT_GE(f.mesh_sides, 5000);
    EXPECT_LE(f.mesh_sides, 30000);
    EXPECT_GE(f.priority, 1);
    EXPECT_LE(f.priority, 3);
    EXPECT_GE(f.deadline, f.earliest_start);
    EXPECT_FALSE(f.products.empty());
    EXPECT_FALSE(f.output_files.empty());
  }
}

}  // namespace
}  // namespace workload
}  // namespace ff
