// End-to-end pipeline test: run a multi-day campaign that writes real
// run.log directories, crawl them back, load the statistics database,
// answer the paper's queries, detect the documented anomalies, and feed
// the history into ForeMan to plan (and re-plan around a failure) —
// the complete §4 loop of the paper in one test.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/foreman.h"
#include "factory/campaign.h"
#include "logdata/loader.h"
#include "logdata/log_store.h"
#include "logdata/timeseries.h"
#include "workload/fleet.h"

namespace ff {
namespace {

namespace fs = std::filesystem;

class FactoryPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("ff_integration_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             "_" + std::to_string(::getpid()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

TEST_F(FactoryPipelineTest, CampaignLogsCrawlDbForemanLoop) {
  // --- 1. Run a 30-day campaign with a timestep change at day 15. ---
  factory::CampaignConfig cfg;
  cfg.num_days = 30;
  cfg.log_dir = root_.string();
  cfg.noise_sigma = 0.01;
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(campaign.AddNode("f" + std::to_string(i)).ok());
  }
  auto till = workload::MakeTillamookForecast();
  till.mesh_sides = 23400;
  ASSERT_TRUE(campaign.AddForecast(till, "f1").ok());
  util::Rng rng(3);
  auto fleet = workload::MakeCorieFleet(4, &rng);
  for (auto& f : fleet) f.name += "-b";  // avoid tillamook name collision
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        campaign.AddForecast(fleet[i], "f" + std::to_string(i % 3 + 1))
            .ok());
  }
  factory::ChangeEvent ev;
  ev.day = 15;
  ev.kind = factory::ChangeEvent::Kind::kSetTimesteps;
  ev.forecast = till.name;
  ev.int_value = till.timesteps * 2;
  campaign.AddEvent(ev);
  auto result = campaign.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->walltimes.at(till.name).size(), 30u);

  // --- 2. Crawl the real directories the campaign wrote. ---
  logdata::Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), result->records.size());
  EXPECT_EQ(crawler.files_skipped(), 0u);

  // --- 3. Load the statistics database; ask the paper's queries. ---
  statsdb::Database db;
  ASSERT_TRUE(logdata::LoadRuns(&db, *records).ok());
  auto rs = db.Sql(
      "SELECT COUNT(*) AS n FROM runs WHERE forecast = '" + till.name +
      "' AND timesteps = 11520");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Scalar()->int64_value(), 15);

  auto versions = db.Sql(
      "SELECT DISTINCT forecast FROM runs WHERE code_version = "
      "'elcirc-5.01' ORDER BY forecast");
  ASSERT_TRUE(versions.ok());
  EXPECT_GE(versions->rows.size(), 1u);

  // --- 4. Time-series analysis finds the documented level shift. ---
  std::vector<double> walltimes;
  for (const auto& s : result->walltimes.at(till.name)) {
    walltimes.push_back(s.walltime);
  }
  auto cps = logdata::DetectChangePoints(walltimes, 5, 10000.0);
  ASSERT_TRUE(cps.ok());
  ASSERT_EQ(cps->size(), 1u);
  EXPECT_NEAR(static_cast<double>((*cps)[0].index), 15.0, 2.0);
  EXPECT_NEAR((*cps)[0].level_after / (*cps)[0].level_before, 2.0, 0.3);

  // --- 5. ForeMan plans tomorrow from the harvested history. ---
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 3; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  statsdb::Database db2;
  ASSERT_TRUE(logdata::LoadRuns(&db2, *records).ok());
  core::ForeMan foreman(nodes, &db2);
  std::vector<workload::ForecastSpec> tomorrow = fleet;
  auto till_now = till;
  till_now.timesteps = 11520;  // current configuration
  tomorrow.push_back(till_now);
  auto plan = foreman.PlanDay(tomorrow);
  ASSERT_TRUE(plan.ok());
  // Estimates for tillamook must reflect the doubled timesteps (~80 ks),
  // not the pre-change 40 ks.
  const core::PlannedRun* till_run = plan->Find(till.name);
  ASSERT_NE(till_run, nullptr);
  EXPECT_GT(till_run->work, 70000.0);
  EXPECT_LT(till_run->work, 95000.0);

  // --- 6. A node fails; ForeMan reschedules everything off it. ---
  auto failover = foreman.HandleNodeFailure(
      *plan, till_run->node, 7200.0, core::ReschedulePolicy::kCascading);
  ASSERT_TRUE(failover.ok());
  for (const auto& r : failover->plan.runs) {
    if (!r.dropped) {
      EXPECT_NE(r.node, till_run->node);
    }
  }

  // --- 7. Accept: scripts reference every placed run. ---
  auto scripts = foreman.Accept(failover->plan);
  size_t mentions = 0;
  for (const auto& [node, text] : scripts) {
    for (const auto& r : failover->plan.runs) {
      if (!r.dropped && text.find(r.name) != std::string::npos) {
        ++mentions;
      }
    }
  }
  EXPECT_GE(mentions, tomorrow.size());
}

TEST_F(FactoryPipelineTest, IncrementalDbRefreshMatchesFullCrawl) {
  // The paper contrasts periodic crawling with run-script-driven updates;
  // both must agree.
  factory::CampaignConfig cfg;
  cfg.num_days = 10;
  cfg.log_dir = root_.string();
  factory::Campaign campaign(cfg);
  ASSERT_TRUE(campaign.AddNode("f1").ok());
  auto spec = workload::MakeTillamookForecast();
  spec.mesh_sides = 9000;
  ASSERT_TRUE(campaign.AddForecast(spec, "f1").ok());
  auto result = campaign.Run();
  ASSERT_TRUE(result.ok());

  // Full crawl path.
  logdata::Crawler crawler(root_.string());
  auto records = crawler.CrawlAll();
  ASSERT_TRUE(records.ok());
  statsdb::Database crawled;
  ASSERT_TRUE(logdata::LoadRuns(&crawled, *records).ok());

  // Incremental path: append records one at a time.
  statsdb::Database incremental;
  auto table = logdata::LoadRuns(&incremental, {});
  ASSERT_TRUE(table.ok());
  for (const auto& rec : result->records) {
    ASSERT_TRUE(logdata::AppendRun(*table, rec).ok());
  }

  auto q = "SELECT COUNT(*) AS n, AVG(walltime) AS w FROM runs";
  auto a = crawled.Sql(q);
  auto b = incremental.Sql(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows[0][0].int64_value(), b->rows[0][0].int64_value());
  EXPECT_NEAR(a->rows[0][1].double_value(), b->rows[0][1].double_value(),
              0.01);
}

}  // namespace
}  // namespace ff
