# Empty compiler generated dependencies file for t3_share_model.
# This may be replaced when dependencies are built.
