file(REMOVE_RECURSE
  "CMakeFiles/t3_share_model.dir/t3_share_model.cc.o"
  "CMakeFiles/t3_share_model.dir/t3_share_model.cc.o.d"
  "t3_share_model"
  "t3_share_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3_share_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
