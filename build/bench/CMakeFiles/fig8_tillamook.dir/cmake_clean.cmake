file(REMOVE_RECURSE
  "CMakeFiles/fig8_tillamook.dir/fig8_tillamook.cc.o"
  "CMakeFiles/fig8_tillamook.dir/fig8_tillamook.cc.o.d"
  "fig8_tillamook"
  "fig8_tillamook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tillamook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
