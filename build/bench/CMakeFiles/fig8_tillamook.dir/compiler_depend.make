# Empty compiler generated dependencies file for fig8_tillamook.
# This may be replaced when dependencies are built.
