
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/t6_statsdb.cc" "bench/CMakeFiles/t6_statsdb.dir/t6_statsdb.cc.o" "gcc" "bench/CMakeFiles/t6_statsdb.dir/t6_statsdb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logdata/CMakeFiles/ff_logdata.dir/DependInfo.cmake"
  "/root/repo/build/src/statsdb/CMakeFiles/ff_statsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
