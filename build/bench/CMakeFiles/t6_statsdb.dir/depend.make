# Empty dependencies file for t6_statsdb.
# This may be replaced when dependencies are built.
