file(REMOVE_RECURSE
  "CMakeFiles/t6_statsdb.dir/t6_statsdb.cc.o"
  "CMakeFiles/t6_statsdb.dir/t6_statsdb.cc.o.d"
  "t6_statsdb"
  "t6_statsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t6_statsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
