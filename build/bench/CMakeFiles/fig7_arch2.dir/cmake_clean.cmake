file(REMOVE_RECURSE
  "CMakeFiles/fig7_arch2.dir/fig7_arch2.cc.o"
  "CMakeFiles/fig7_arch2.dir/fig7_arch2.cc.o.d"
  "fig7_arch2"
  "fig7_arch2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_arch2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
