# Empty compiler generated dependencies file for fig7_arch2.
# This may be replaced when dependencies are built.
