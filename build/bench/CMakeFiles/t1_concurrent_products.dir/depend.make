# Empty dependencies file for t1_concurrent_products.
# This may be replaced when dependencies are built.
