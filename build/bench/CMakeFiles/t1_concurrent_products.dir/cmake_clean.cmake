file(REMOVE_RECURSE
  "CMakeFiles/t1_concurrent_products.dir/t1_concurrent_products.cc.o"
  "CMakeFiles/t1_concurrent_products.dir/t1_concurrent_products.cc.o.d"
  "t1_concurrent_products"
  "t1_concurrent_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1_concurrent_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
