# Empty dependencies file for t2_bandwidth.
# This may be replaced when dependencies are built.
