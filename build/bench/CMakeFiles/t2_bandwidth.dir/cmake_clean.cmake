file(REMOVE_RECURSE
  "CMakeFiles/t2_bandwidth.dir/t2_bandwidth.cc.o"
  "CMakeFiles/t2_bandwidth.dir/t2_bandwidth.cc.o.d"
  "t2_bandwidth"
  "t2_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
