
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/a3_ondemand.cc" "bench/CMakeFiles/a3_ondemand.dir/a3_ondemand.cc.o" "gcc" "bench/CMakeFiles/a3_ondemand.dir/a3_ondemand.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/factory/CMakeFiles/ff_factory.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/ff_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/logdata/CMakeFiles/ff_logdata.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ff_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/statsdb/CMakeFiles/ff_statsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
