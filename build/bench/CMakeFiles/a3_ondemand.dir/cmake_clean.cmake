file(REMOVE_RECURSE
  "CMakeFiles/a3_ondemand.dir/a3_ondemand.cc.o"
  "CMakeFiles/a3_ondemand.dir/a3_ondemand.cc.o.d"
  "a3_ondemand"
  "a3_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
