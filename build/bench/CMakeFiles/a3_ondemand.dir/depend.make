# Empty dependencies file for a3_ondemand.
# This may be replaced when dependencies are built.
