# Empty dependencies file for a1_rsync_sweep.
# This may be replaced when dependencies are built.
