file(REMOVE_RECURSE
  "CMakeFiles/a1_rsync_sweep.dir/a1_rsync_sweep.cc.o"
  "CMakeFiles/a1_rsync_sweep.dir/a1_rsync_sweep.cc.o.d"
  "a1_rsync_sweep"
  "a1_rsync_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_rsync_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
