file(REMOVE_RECURSE
  "CMakeFiles/fig9_dev.dir/fig9_dev.cc.o"
  "CMakeFiles/fig9_dev.dir/fig9_dev.cc.o.d"
  "fig9_dev"
  "fig9_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
