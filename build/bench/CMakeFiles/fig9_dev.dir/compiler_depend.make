# Empty compiler generated dependencies file for fig9_dev.
# This may be replaced when dependencies are built.
