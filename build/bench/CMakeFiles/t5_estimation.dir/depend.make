# Empty dependencies file for t5_estimation.
# This may be replaced when dependencies are built.
