file(REMOVE_RECURSE
  "CMakeFiles/t5_estimation.dir/t5_estimation.cc.o"
  "CMakeFiles/t5_estimation.dir/t5_estimation.cc.o.d"
  "t5_estimation"
  "t5_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t5_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
