# Empty dependencies file for a4_partitioned.
# This may be replaced when dependencies are built.
