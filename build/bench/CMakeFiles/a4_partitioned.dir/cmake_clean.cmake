file(REMOVE_RECURSE
  "CMakeFiles/a4_partitioned.dir/a4_partitioned.cc.o"
  "CMakeFiles/a4_partitioned.dir/a4_partitioned.cc.o.d"
  "a4_partitioned"
  "a4_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
