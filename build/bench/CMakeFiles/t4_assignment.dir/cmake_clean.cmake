file(REMOVE_RECURSE
  "CMakeFiles/t4_assignment.dir/t4_assignment.cc.o"
  "CMakeFiles/t4_assignment.dir/t4_assignment.cc.o.d"
  "t4_assignment"
  "t4_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t4_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
