# Empty compiler generated dependencies file for t4_assignment.
# This may be replaced when dependencies are built.
