file(REMOVE_RECURSE
  "CMakeFiles/fig6_arch1.dir/fig6_arch1.cc.o"
  "CMakeFiles/fig6_arch1.dir/fig6_arch1.cc.o.d"
  "fig6_arch1"
  "fig6_arch1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_arch1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
