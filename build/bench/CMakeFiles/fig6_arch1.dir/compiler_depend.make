# Empty compiler generated dependencies file for fig6_arch1.
# This may be replaced when dependencies are built.
