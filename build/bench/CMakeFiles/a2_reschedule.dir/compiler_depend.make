# Empty compiler generated dependencies file for a2_reschedule.
# This may be replaced when dependencies are built.
