file(REMOVE_RECURSE
  "CMakeFiles/a2_reschedule.dir/a2_reschedule.cc.o"
  "CMakeFiles/a2_reschedule.dir/a2_reschedule.cc.o.d"
  "a2_reschedule"
  "a2_reschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_reschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
