# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/statsdb_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/logdata_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/factory_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
