# Empty dependencies file for statsdb_test.
# This may be replaced when dependencies are built.
