file(REMOVE_RECURSE
  "CMakeFiles/statsdb_test.dir/statsdb/csv_io_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/csv_io_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/expr_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/expr_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/query_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/query_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/sql_dml_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/sql_dml_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/sql_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/sql_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/table_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/table_test.cc.o.d"
  "CMakeFiles/statsdb_test.dir/statsdb/value_test.cc.o"
  "CMakeFiles/statsdb_test.dir/statsdb/value_test.cc.o.d"
  "statsdb_test"
  "statsdb_test.pdb"
  "statsdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
