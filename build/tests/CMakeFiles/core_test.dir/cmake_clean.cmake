file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/binpack_test.cc.o"
  "CMakeFiles/core_test.dir/core/binpack_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/foreman_test.cc.o"
  "CMakeFiles/core_test.dir/core/foreman_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gantt_script_test.cc.o"
  "CMakeFiles/core_test.dir/core/gantt_script_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/ondemand_test.cc.o"
  "CMakeFiles/core_test.dir/core/ondemand_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/planner_test.cc.o"
  "CMakeFiles/core_test.dir/core/planner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rescheduler_test.cc.o"
  "CMakeFiles/core_test.dir/core/rescheduler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/share_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/share_model_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
