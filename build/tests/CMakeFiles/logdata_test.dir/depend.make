# Empty dependencies file for logdata_test.
# This may be replaced when dependencies are built.
