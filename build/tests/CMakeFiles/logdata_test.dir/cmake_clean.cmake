file(REMOVE_RECURSE
  "CMakeFiles/logdata_test.dir/logdata/loader_test.cc.o"
  "CMakeFiles/logdata_test.dir/logdata/loader_test.cc.o.d"
  "CMakeFiles/logdata_test.dir/logdata/log_store_test.cc.o"
  "CMakeFiles/logdata_test.dir/logdata/log_store_test.cc.o.d"
  "CMakeFiles/logdata_test.dir/logdata/spc_test.cc.o"
  "CMakeFiles/logdata_test.dir/logdata/spc_test.cc.o.d"
  "CMakeFiles/logdata_test.dir/logdata/timeseries_test.cc.o"
  "CMakeFiles/logdata_test.dir/logdata/timeseries_test.cc.o.d"
  "logdata_test"
  "logdata_test.pdb"
  "logdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
