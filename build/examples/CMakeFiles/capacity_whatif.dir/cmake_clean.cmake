file(REMOVE_RECURSE
  "CMakeFiles/capacity_whatif.dir/capacity_whatif.cpp.o"
  "CMakeFiles/capacity_whatif.dir/capacity_whatif.cpp.o.d"
  "capacity_whatif"
  "capacity_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
