# Empty compiler generated dependencies file for capacity_whatif.
# This may be replaced when dependencies are built.
