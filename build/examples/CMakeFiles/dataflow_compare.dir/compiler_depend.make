# Empty compiler generated dependencies file for dataflow_compare.
# This may be replaced when dependencies are built.
