file(REMOVE_RECURSE
  "CMakeFiles/dataflow_compare.dir/dataflow_compare.cpp.o"
  "CMakeFiles/dataflow_compare.dir/dataflow_compare.cpp.o.d"
  "dataflow_compare"
  "dataflow_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
