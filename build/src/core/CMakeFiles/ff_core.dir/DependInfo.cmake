
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binpack.cc" "src/core/CMakeFiles/ff_core.dir/binpack.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/binpack.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/ff_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/foreman.cc" "src/core/CMakeFiles/ff_core.dir/foreman.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/foreman.cc.o.d"
  "/root/repo/src/core/gantt.cc" "src/core/CMakeFiles/ff_core.dir/gantt.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/gantt.cc.o.d"
  "/root/repo/src/core/ondemand.cc" "src/core/CMakeFiles/ff_core.dir/ondemand.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/ondemand.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/ff_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/planner.cc.o.d"
  "/root/repo/src/core/rescheduler.cc" "src/core/CMakeFiles/ff_core.dir/rescheduler.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/rescheduler.cc.o.d"
  "/root/repo/src/core/script_gen.cc" "src/core/CMakeFiles/ff_core.dir/script_gen.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/script_gen.cc.o.d"
  "/root/repo/src/core/share_model.cc" "src/core/CMakeFiles/ff_core.dir/share_model.cc.o" "gcc" "src/core/CMakeFiles/ff_core.dir/share_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/statsdb/CMakeFiles/ff_statsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ff_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
