file(REMOVE_RECURSE
  "CMakeFiles/ff_core.dir/binpack.cc.o"
  "CMakeFiles/ff_core.dir/binpack.cc.o.d"
  "CMakeFiles/ff_core.dir/estimator.cc.o"
  "CMakeFiles/ff_core.dir/estimator.cc.o.d"
  "CMakeFiles/ff_core.dir/foreman.cc.o"
  "CMakeFiles/ff_core.dir/foreman.cc.o.d"
  "CMakeFiles/ff_core.dir/gantt.cc.o"
  "CMakeFiles/ff_core.dir/gantt.cc.o.d"
  "CMakeFiles/ff_core.dir/ondemand.cc.o"
  "CMakeFiles/ff_core.dir/ondemand.cc.o.d"
  "CMakeFiles/ff_core.dir/planner.cc.o"
  "CMakeFiles/ff_core.dir/planner.cc.o.d"
  "CMakeFiles/ff_core.dir/rescheduler.cc.o"
  "CMakeFiles/ff_core.dir/rescheduler.cc.o.d"
  "CMakeFiles/ff_core.dir/script_gen.cc.o"
  "CMakeFiles/ff_core.dir/script_gen.cc.o.d"
  "CMakeFiles/ff_core.dir/share_model.cc.o"
  "CMakeFiles/ff_core.dir/share_model.cc.o.d"
  "libff_core.a"
  "libff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
