file(REMOVE_RECURSE
  "CMakeFiles/ff_util.dir/csv.cc.o"
  "CMakeFiles/ff_util.dir/csv.cc.o.d"
  "CMakeFiles/ff_util.dir/logging.cc.o"
  "CMakeFiles/ff_util.dir/logging.cc.o.d"
  "CMakeFiles/ff_util.dir/rng.cc.o"
  "CMakeFiles/ff_util.dir/rng.cc.o.d"
  "CMakeFiles/ff_util.dir/status.cc.o"
  "CMakeFiles/ff_util.dir/status.cc.o.d"
  "CMakeFiles/ff_util.dir/strings.cc.o"
  "CMakeFiles/ff_util.dir/strings.cc.o.d"
  "CMakeFiles/ff_util.dir/summary_stats.cc.o"
  "CMakeFiles/ff_util.dir/summary_stats.cc.o.d"
  "CMakeFiles/ff_util.dir/time_util.cc.o"
  "CMakeFiles/ff_util.dir/time_util.cc.o.d"
  "libff_util.a"
  "libff_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
