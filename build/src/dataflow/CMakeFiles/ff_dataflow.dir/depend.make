# Empty dependencies file for ff_dataflow.
# This may be replaced when dependencies are built.
