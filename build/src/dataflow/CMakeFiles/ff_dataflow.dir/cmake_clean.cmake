file(REMOVE_RECURSE
  "CMakeFiles/ff_dataflow.dir/forecast_run.cc.o"
  "CMakeFiles/ff_dataflow.dir/forecast_run.cc.o.d"
  "CMakeFiles/ff_dataflow.dir/partitioned_run.cc.o"
  "CMakeFiles/ff_dataflow.dir/partitioned_run.cc.o.d"
  "libff_dataflow.a"
  "libff_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
