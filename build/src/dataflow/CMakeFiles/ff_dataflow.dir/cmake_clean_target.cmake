file(REMOVE_RECURSE
  "libff_dataflow.a"
)
