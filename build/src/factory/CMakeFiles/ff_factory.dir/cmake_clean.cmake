file(REMOVE_RECURSE
  "CMakeFiles/ff_factory.dir/campaign.cc.o"
  "CMakeFiles/ff_factory.dir/campaign.cc.o.d"
  "libff_factory.a"
  "libff_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
