file(REMOVE_RECURSE
  "libff_factory.a"
)
