# Empty dependencies file for ff_factory.
# This may be replaced when dependencies are built.
