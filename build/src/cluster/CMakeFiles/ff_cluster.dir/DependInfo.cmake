
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/ff_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/link.cc" "src/cluster/CMakeFiles/ff_cluster.dir/link.cc.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/link.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/cluster/CMakeFiles/ff_cluster.dir/machine.cc.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/machine.cc.o.d"
  "/root/repo/src/cluster/ps_resource.cc" "src/cluster/CMakeFiles/ff_cluster.dir/ps_resource.cc.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/ps_resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
