file(REMOVE_RECURSE
  "libff_cluster.a"
)
