# Empty dependencies file for ff_cluster.
# This may be replaced when dependencies are built.
