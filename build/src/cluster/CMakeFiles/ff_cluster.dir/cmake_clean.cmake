file(REMOVE_RECURSE
  "CMakeFiles/ff_cluster.dir/cluster.cc.o"
  "CMakeFiles/ff_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/ff_cluster.dir/link.cc.o"
  "CMakeFiles/ff_cluster.dir/link.cc.o.d"
  "CMakeFiles/ff_cluster.dir/machine.cc.o"
  "CMakeFiles/ff_cluster.dir/machine.cc.o.d"
  "CMakeFiles/ff_cluster.dir/ps_resource.cc.o"
  "CMakeFiles/ff_cluster.dir/ps_resource.cc.o.d"
  "libff_cluster.a"
  "libff_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
