file(REMOVE_RECURSE
  "libff_logdata.a"
)
