
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logdata/loader.cc" "src/logdata/CMakeFiles/ff_logdata.dir/loader.cc.o" "gcc" "src/logdata/CMakeFiles/ff_logdata.dir/loader.cc.o.d"
  "/root/repo/src/logdata/log_store.cc" "src/logdata/CMakeFiles/ff_logdata.dir/log_store.cc.o" "gcc" "src/logdata/CMakeFiles/ff_logdata.dir/log_store.cc.o.d"
  "/root/repo/src/logdata/spc.cc" "src/logdata/CMakeFiles/ff_logdata.dir/spc.cc.o" "gcc" "src/logdata/CMakeFiles/ff_logdata.dir/spc.cc.o.d"
  "/root/repo/src/logdata/timeseries.cc" "src/logdata/CMakeFiles/ff_logdata.dir/timeseries.cc.o" "gcc" "src/logdata/CMakeFiles/ff_logdata.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/statsdb/CMakeFiles/ff_statsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
