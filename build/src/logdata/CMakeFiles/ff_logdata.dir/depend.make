# Empty dependencies file for ff_logdata.
# This may be replaced when dependencies are built.
