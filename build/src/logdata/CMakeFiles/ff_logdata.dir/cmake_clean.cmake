file(REMOVE_RECURSE
  "CMakeFiles/ff_logdata.dir/loader.cc.o"
  "CMakeFiles/ff_logdata.dir/loader.cc.o.d"
  "CMakeFiles/ff_logdata.dir/log_store.cc.o"
  "CMakeFiles/ff_logdata.dir/log_store.cc.o.d"
  "CMakeFiles/ff_logdata.dir/spc.cc.o"
  "CMakeFiles/ff_logdata.dir/spc.cc.o.d"
  "CMakeFiles/ff_logdata.dir/timeseries.cc.o"
  "CMakeFiles/ff_logdata.dir/timeseries.cc.o.d"
  "libff_logdata.a"
  "libff_logdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_logdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
