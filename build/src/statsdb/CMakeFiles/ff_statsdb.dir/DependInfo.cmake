
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statsdb/csv_io.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/csv_io.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/csv_io.cc.o.d"
  "/root/repo/src/statsdb/database.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/database.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/database.cc.o.d"
  "/root/repo/src/statsdb/expr.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/expr.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/expr.cc.o.d"
  "/root/repo/src/statsdb/query.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/query.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/query.cc.o.d"
  "/root/repo/src/statsdb/schema.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/schema.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/schema.cc.o.d"
  "/root/repo/src/statsdb/sql.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/sql.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/sql.cc.o.d"
  "/root/repo/src/statsdb/table.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/table.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/table.cc.o.d"
  "/root/repo/src/statsdb/value.cc" "src/statsdb/CMakeFiles/ff_statsdb.dir/value.cc.o" "gcc" "src/statsdb/CMakeFiles/ff_statsdb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
