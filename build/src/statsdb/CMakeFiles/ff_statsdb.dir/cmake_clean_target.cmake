file(REMOVE_RECURSE
  "libff_statsdb.a"
)
