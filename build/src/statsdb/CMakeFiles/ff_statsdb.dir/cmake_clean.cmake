file(REMOVE_RECURSE
  "CMakeFiles/ff_statsdb.dir/csv_io.cc.o"
  "CMakeFiles/ff_statsdb.dir/csv_io.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/database.cc.o"
  "CMakeFiles/ff_statsdb.dir/database.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/expr.cc.o"
  "CMakeFiles/ff_statsdb.dir/expr.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/query.cc.o"
  "CMakeFiles/ff_statsdb.dir/query.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/schema.cc.o"
  "CMakeFiles/ff_statsdb.dir/schema.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/sql.cc.o"
  "CMakeFiles/ff_statsdb.dir/sql.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/table.cc.o"
  "CMakeFiles/ff_statsdb.dir/table.cc.o.d"
  "CMakeFiles/ff_statsdb.dir/value.cc.o"
  "CMakeFiles/ff_statsdb.dir/value.cc.o.d"
  "libff_statsdb.a"
  "libff_statsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_statsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
