# Empty dependencies file for ff_statsdb.
# This may be replaced when dependencies are built.
