file(REMOVE_RECURSE
  "CMakeFiles/ff_workload.dir/cost_model.cc.o"
  "CMakeFiles/ff_workload.dir/cost_model.cc.o.d"
  "CMakeFiles/ff_workload.dir/fleet.cc.o"
  "CMakeFiles/ff_workload.dir/fleet.cc.o.d"
  "CMakeFiles/ff_workload.dir/forecast_spec.cc.o"
  "CMakeFiles/ff_workload.dir/forecast_spec.cc.o.d"
  "libff_workload.a"
  "libff_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
