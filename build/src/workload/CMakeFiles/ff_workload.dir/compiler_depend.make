# Empty compiler generated dependencies file for ff_workload.
# This may be replaced when dependencies are built.
