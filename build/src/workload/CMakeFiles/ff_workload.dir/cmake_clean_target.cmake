file(REMOVE_RECURSE
  "libff_workload.a"
)
