// T1 — §4.2 scalability claim: "We have evaluated the performance of
// Architecture 2 generating four sets of data products concurrently at a
// server and found that running these four sets of tasks concurrently
// increases the completion time by only a small amount (about 3000
// seconds)."
//
// Four compute nodes each run the §4.2 forecast simultaneously under
// Architecture 2; all four product sets generate at the one public
// server.

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace ff;

namespace {

double RunConcurrent(int n_forecasts) {
  sim::Simulator sim;
  cluster::Cluster plant(&sim, 2, 2.6 / 2.8, 1.0e9);
  sim::SeriesRecorder recorder;
  std::vector<std::unique_ptr<dataflow::ForecastRun>> runs;
  for (int i = 0; i < n_forecasts; ++i) {
    cluster::NodeSpec node;
    node.name = "client" + std::to_string(i);
    node.num_cpus = 2;
    node.ram_bytes = 1.0e9;
    if (!plant.AddNode(node).ok()) std::abort();
    auto spec = workload::MakeElcircEstuaryForecast();
    spec.name += "-" + std::to_string(i);
    dataflow::RunConfig cfg;
    cfg.arch = dataflow::Architecture::kProductsAtServer;
    cfg.series_prefix = spec.name + "/";
    runs.push_back(std::make_unique<dataflow::ForecastRun>(
        &sim, *plant.node(node.name), *plant.uplink(node.name),
        plant.server(), &recorder, spec, cfg));
  }
  for (auto& run : runs) run->Start();
  sim.Run();
  double last = 0.0;
  for (auto& run : runs) {
    if (!run->done()) return -1.0;
    last = std::max(last, run->finish_time());
  }
  return last;
}

}  // namespace

int main() {
  bench::PrintHeader("T1",
                     "Architecture 2 with concurrent product sets at one "
                     "server (§4.2 scalability)");

  std::printf("\nconcurrent_forecasts,completion_s,delta_vs_single_s\n");
  double base = 0.0;
  double four = 0.0;
  for (int n : {1, 2, 3, 4, 6}) {
    double t = RunConcurrent(n);
    if (n == 1) base = t;
    if (n == 4) four = t;
    std::printf("%d,%.0f,%.0f\n", n, t, t - base);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "4 concurrent product sets add", "~3,000 s",
      util::StrFormat("+%.0f s", four - base));
  return 0;
}
