// A3 — the paper's §5 future work, implemented: made-to-order products
// admitted alongside the made-to-stock forecasts. Measures acceptance
// rate by arrival hour and by request size on the production plant —
// quantifying the §1 newspaper constraint ("having idle capacity at
// mid-morning doesn't mean the newspaper can necessarily add another
// edition and have it be timely").

#include <vector>

#include "bench/bench_common.h"
#include "core/foreman.h"
#include "core/ondemand.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("A3",
                     "made-to-order product admission (paper §5 future "
                     "work)");

  // The production plant and plan: 10 forecasts on 6 dual-CPU nodes.
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 6; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  util::Rng rng(2006);
  auto fleet = workload::MakeCorieFleet(10, &rng);
  core::ForeMan foreman(nodes, nullptr);
  auto plan = foreman.PlanDay(fleet);
  if (!plan.ok()) {
    std::printf("ERROR: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // --- Acceptance rate by arrival hour (fixed 2-hour turnaround). ---
  std::printf("\n-- acceptance by arrival hour (3,600 s jobs, due in 2 h) "
              "--\narrival_hour,offered,accepted,acceptance_pct\n");
  for (int hour = 0; hour <= 22; hour += 2) {
    core::OnDemandScheduler sched(nodes, *plan);
    int offered = 0, accepted = 0;
    util::Rng req_rng(static_cast<uint64_t>(hour) + 1);
    for (int k = 0; k < 20; ++k) {
      core::OnDemandRequest req;
      req.id = util::StrFormat("h%d-%d", hour, k);
      req.arrival = hour * 3600.0 + k * 60.0;
      req.cpu_seconds = req_rng.Uniform(2400.0, 4800.0);
      req.deadline = req.arrival + 7200.0;
      auto p = sched.Admit(req);
      if (!p.ok()) continue;
      ++offered;
      if (p->outcome == core::AdmissionOutcome::kAccepted) ++accepted;
    }
    std::printf("%02d,%d,%d,%.0f\n", hour, offered, accepted,
                100.0 * accepted / std::max(1, offered));
  }

  // --- Acceptance by request size (arrival at 10:00, due end of day). --
  std::printf("\n-- acceptance by request size (arrive 10:00, due 24:00) "
              "--\ncpu_seconds,offered,accepted,acceptance_pct\n");
  for (double size : {1800.0, 3600.0, 7200.0, 14400.0, 28800.0}) {
    core::OnDemandScheduler sched(nodes, *plan);
    int offered = 0, accepted = 0;
    for (int k = 0; k < 20; ++k) {
      core::OnDemandRequest req;
      req.id = util::StrFormat("s%.0f-%d", size, k);
      req.arrival = 10 * 3600.0 + k * 120.0;
      req.cpu_seconds = size;
      req.deadline = 86400.0;
      auto p = sched.Admit(req);
      if (!p.ok()) continue;
      ++offered;
      if (p->outcome == core::AdmissionOutcome::kAccepted) ++accepted;
    }
    std::printf("%.0f,%d,%d,%.0f\n", size, offered, accepted,
                100.0 * accepted / std::max(1, offered));
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "made-to-order alongside made-to-stock", "future work (§5)",
      "implemented: admission via the CPU-share predictor");
  bench::PrintPaperVsMeasured(
      "idle capacity != spare capacity", "newspaper analogy (§1)",
      "acceptance dips while the stock runs hold the CPUs");
  return 0;
}
