// Parallel sweep throughput — wall time for a fleet of independent
// campaign replicas on the work-stealing SweepRunner, serial vs 2/4/8
// workers, plus the byte-determinism gate on every merged artifact.
//
// Workload: each replica is a complete factory campaign (4 nodes, a
// 10-forecast CORIE fleet, 20 noisy days) with full tracing + metrics
// recording — the "run the factory N times tonight" what-if study. The
// sweep fans the replicas across workers; after the barrier the traces,
// metric series and log records are merged deterministically
// (obs/merge.h) and the records bulk-loaded into a statsdb table.
//
// Determinism gate: for every worker count, the merged Chrome-trace
// JSON, the merged metric-samples CSV and the result of a statsdb query
// over the sweep_runs table must be byte-identical to the serial run's.
// A scheduling leak anywhere (completion-order merge, shared RNG,
// worker-dependent seeding) fails the bench, not just a unit test.
//
// Speedup floors (>=3x at 4 workers, >=5x at 8) are enforced only when
// the host actually has that many cores — hardware_concurrency is
// recorded in the JSON so the acceptance evidence names its hardware —
// and never in --smoke mode (CI liveness).
//
// Timing: min over kReps reps, reps interleaved round-robin across the
// worker counts (bench_common.h). Usage: perf_sweep [--smoke] [json_path]

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "factory/campaign.h"
#include "obs/chrome_trace.h"
#include "obs/profiler.h"
#include "parallel/sweep.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/sql.h"
#include "util/rng.h"
#include "workload/fleet.h"

namespace ff {
namespace {

constexpr int kNumDays = 20;
constexpr int kFleetSize = 20;
// 4h telemetry ticks: the per-replica compute scales with the fleet
// while the merged sample volume scales with the tick rate, so this
// pins the serial merge at a few percent of the sweep (Amdahl).
constexpr double kSamplePeriod = 4.0 * 3600.0;

// One replica = one full campaign, seeded from the replica's private
// stream (worker-count independent by construction).
void RunReplica(parallel::ReplicaContext& ctx) {
  factory::CampaignConfig cfg;
  cfg.num_days = kNumDays;
  cfg.metrics_sample_period = kSamplePeriod;
  cfg.seed = ctx.rng.Next();
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 4; ++i) {
    if (!campaign.AddNode("f" + std::to_string(i)).ok()) std::abort();
  }
  util::Rng fleet_rng(ctx.rng.Next());
  auto fleet = workload::MakeCorieFleet(kFleetSize, &fleet_rng);
  for (int i = 0; i < kFleetSize; ++i) {
    if (!campaign
             .AddForecast(fleet[static_cast<size_t>(i)],
                          "f" + std::to_string(i % 4 + 1))
             .ok()) {
      std::abort();
    }
  }
  auto result = campaign.Run();
  if (!result.ok()) std::abort();
  *ctx.records = std::move(result->records);
}

// The three merged artifacts whose bytes must not depend on the worker
// count: Chrome trace JSON, metric samples CSV, and a statsdb query over
// the bulk-loaded sweep_runs table.
struct Artifacts {
  std::string chrome_json;
  std::string metrics_csv;
  std::string query_csv;
};

Artifacts MakeArtifacts(const parallel::SweepOutputs& outputs) {
  Artifacts a;
  a.chrome_json = obs::ChromeTraceJson(*outputs.merged_trace,
                                       outputs.merged_metrics.get());
  std::ostringstream csv;
  obs::WriteMetricSamplesCsv(*outputs.merged_metrics, &csv);
  a.metrics_csv = csv.str();

  statsdb::Database db;
  auto table = parallel::LoadSweepRuns(&db, outputs);
  if (!table.ok()) std::abort();
  auto plan = statsdb::PlanSql(
      "SELECT replica, node, COUNT(*) AS n, AVG(walltime) AS avg_w "
      "FROM sweep_runs WHERE status = 'completed' "
      "GROUP BY replica, node ORDER BY replica, node");
  if (!plan.ok()) std::abort();
  auto rs = statsdb::ExecutePlan(*plan, db);
  if (!rs.ok()) std::abort();
  a.query_csv = rs->ToCsv();
  return a;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const size_t kReplicas = smoke ? 8 : 32;
  const int kReps = smoke ? 2 : 5;
  const std::vector<size_t> kWorkers = {1, 2, 4, 8};
  // Acceptance floors, applied only when the host has >= that many cores.
  const double kFloor4 = 3.0, kFloor8 = 5.0;
  const size_t hw = std::thread::hardware_concurrency();

  // One sweep per worker count per rep; the last rep's outputs feed the
  // determinism gate, so the gate checks exactly what was timed.
  std::vector<Artifacts> artifacts(kWorkers.size());
  std::vector<uint64_t> steals(kWorkers.size(), 0);
  std::vector<obs::SweepRuntimeProfile> runtimes(kWorkers.size());
  std::vector<std::function<double()>> variants;
  for (size_t w = 0; w < kWorkers.size(); ++w) {
    variants.push_back([&, w] {
      parallel::SweepOptions opt;
      opt.num_workers = kWorkers[w];
      opt.base_seed = 4242;
      parallel::SweepRunner runner(opt);
      parallel::SweepOutputs outputs;
      double ms = bench::WallMs(
          [&] { outputs = runner.Run(kReplicas, RunReplica); });
      steals[w] = outputs.steals;
      // Last rep wins, matching the artifacts the determinism gate sees.
      // The runtime profile is intentionally NOT part of that gate — it
      // is wall-clock and differs every run by construction.
      runtimes[w] = outputs.runtime;
      artifacts[w] = MakeArtifacts(outputs);
      return ms;
    });
  }
  auto timings = bench::MeasureInterleaved(variants, kReps);

  double serial_ms = timings[0].wall_ms;
  bool ok = true;
  std::printf("workers,wall_ms,wall_ms_max,speedup_vs_serial,steals,"
              "deterministic\n");
  std::string json_rows;
  for (size_t w = 0; w < kWorkers.size(); ++w) {
    double speedup =
        timings[w].wall_ms > 0.0 ? serial_ms / timings[w].wall_ms : 0.0;
    bool deterministic =
        artifacts[w].chrome_json == artifacts[0].chrome_json &&
        artifacts[w].metrics_csv == artifacts[0].metrics_csv &&
        artifacts[w].query_csv == artifacts[0].query_csv;
    if (!deterministic) {
      std::fprintf(stderr,
                   "workers=%zu: merged outputs differ from serial "
                   "(trace %s, metrics %s, query %s)\n",
                   kWorkers[w],
                   artifacts[w].chrome_json == artifacts[0].chrome_json
                       ? "ok" : "DIFF",
                   artifacts[w].metrics_csv == artifacts[0].metrics_csv
                       ? "ok" : "DIFF",
                   artifacts[w].query_csv == artifacts[0].query_csv
                       ? "ok" : "DIFF");
      ok = false;
    }
    bool floor_checked = false;
    double floor = 0.0;
    if (!smoke && hw >= kWorkers[w]) {
      if (kWorkers[w] == 4) floor = kFloor4, floor_checked = true;
      if (kWorkers[w] == 8) floor = kFloor8, floor_checked = true;
    }
    if (floor_checked && speedup < floor) {
      std::fprintf(stderr, "workers=%zu: speedup %.2fx below %.1fx floor\n",
                   kWorkers[w], speedup, floor);
      ok = false;
    }
    std::printf("%zu,%.3f,%.3f,%.2f,%llu,%s\n", kWorkers[w],
                timings[w].wall_ms, timings[w].wall_ms_max, speedup,
                static_cast<unsigned long long>(steals[w]),
                deterministic ? "yes" : "NO");
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workers\": %zu, \"wall_ms\": %.3f, \"wall_ms_max\": %.3f, "
        "\"speedup_vs_serial\": %.2f, \"steals\": %llu, "
        "\"deterministic\": %s, \"floor\": %.1f, \"floor_checked\": %s, "
        "\"runtime\": ",
        kWorkers[w], timings[w].wall_ms, timings[w].wall_ms_max, speedup,
        static_cast<unsigned long long>(steals[w]),
        deterministic ? "true" : "false", floor,
        floor_checked ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += buf;
    json_rows += bench::RuntimePoolJson(&runtimes[w].pool);
    json_rows += "}";
  }

  // Plain-text runtime summary artifact (wall-clock lane of the self-
  // observing bench): one section per worker count, also routed through
  // util logging's sink hook so embedders can capture it.
  {
    const std::string runtime_path = bench::RuntimeSummaryPath(json_path);
    std::FILE* rf = std::fopen(runtime_path.c_str(), "w");
    if (rf != nullptr) {
      for (size_t w = 0; w < kWorkers.size(); ++w) {
        std::string summary = obs::SweepRuntimeSummary(runtimes[w]);
        std::fprintf(rf, "== workers=%zu ==\n%s", kWorkers[w],
                     summary.c_str());
        obs::LogRuntimeSummary("perf_sweep", summary);
      }
      std::fclose(rf);
      std::printf("# wrote %s\n", runtime_path.c_str());
    }
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"perf_sweep\",\n"
               "  \"smoke\": %s,\n"
               "  \"replicas\": %zu,\n"
               "  \"days_per_replica\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"results\": [\n%s\n  ]\n}\n",
               smoke ? "true" : "false", kReplicas, kNumDays, kReps, hw,
               json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s (%zu replicas, hw=%zu%s)\n", json_path, kReplicas,
              hw, smoke ? ", smoke" : "");
  return ok ? 0 : 1;
}
