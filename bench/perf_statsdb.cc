// Columnar statsdb execution vs the row-at-a-time reference engine.
//
// The PR's claim: rebuilding execution around column-chunk batches
// (vectorized expressions, zone-map pruning, dictionary-coded strings,
// predicate pushdown, top-k sorts) turns fleet-scale analytics over the
// runs table — 1,000 forecasts x 365 days = 365,000 run-day tuples, two
// orders beyond the paper's 100-forecast deployment — from tens of
// milliseconds per query into fractions of a millisecond. Each case runs
// the SAME logical plan through both engines:
//
//   reference  — PlanNode::Execute, the retained row-at-a-time engine
//                (materializes whole intermediates, Value-by-Value).
//   columnar   — ExecutePlan: planner pass (pushdown, index selection,
//                top-k) + the vectorized batch executor.
//
// Cases:
//   filter_agg    — selective filter + grouped aggregate over the runs
//                   table (day band + timesteps predicate).
//   string_scan   — string-equality scan served by dictionary compare +
//                   zone-map chunk pruning (rows loaded day-outer, so
//                   code_version is chunk-homogeneous).
//   distinct      — DISTINCT over a low-cardinality string column.
//   topk          — ORDER BY walltime DESC LIMIT 20 (bounded heap vs
//                   full sort).
//   indexed_point — hash-index equality scan + residual conjuncts.
//
// Method: reps are interleaved engine-by-engine (ref, vec, ref, vec, ...)
// so machine-load drift hits both engines equally; each point reports the
// min over kReps reps (the classic "fastest rep is the least-disturbed
// rep" estimator, as in perf_kernel/perf_trace). Both engines' results
// are rendered to CSV and must match before anything is timed.
//
// Usage: perf_statsdb [--smoke] [json_path]
//   --smoke: 20 forecasts, 2 reps, no speedup floor — a CI liveness run.
// Output: labelled CSV on stdout, BENCH_statsdb.json (default path).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "logdata/loader.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/plan.h"
#include "statsdb/planner.h"
#include "statsdb/sql.h"
#include "util/rng.h"

namespace ff {
namespace {

using bench::WallMs;

// Fleet-scale runs table, loaded day-outer: all forecasts for day 1, then
// day 2, ... Chunks therefore hold a narrow day range and a single
// code_version (= f(day)), which is exactly how an append-only log of
// daily production runs accretes — and what zone maps reward.
std::vector<logdata::LogRecord> MakeRecords(int n_forecasts, int n_days) {
  util::Rng rng(7);
  std::vector<logdata::LogRecord> out;
  out.reserve(static_cast<size_t>(n_forecasts) * n_days);
  for (int d = 1; d <= n_days; ++d) {
    for (int f = 0; f < n_forecasts; ++f) {
      logdata::LogRecord r;
      r.forecast = "forecast-" + std::to_string(f);
      r.region = "region-" + std::to_string(f % 20);
      r.day = d;
      r.node = "f" + std::to_string(f % 6 + 1);
      r.code_version = "v" + std::to_string(d / 60);
      r.mesh_sides = 5000 + (f % 26) * 1000;
      r.timesteps = f % 2 ? 5760 : 2880;
      r.start_time = d * 86400.0 + 3600.0;
      r.walltime = rng.Uniform(20000.0, 80000.0);
      r.end_time = r.start_time + r.walltime;
      r.status = logdata::RunStatus::kCompleted;
      out.push_back(std::move(r));
    }
  }
  return out;
}

struct Case {
  const char* name;
  const char* sql;
};

struct Point {
  std::string name;
  size_t result_rows = 0;
  double ref_ms = 1e300;  // min over reps, row-at-a-time reference
  double vec_ms = 1e300;  // min over reps, planner + vectorized executor
  double speedup() const { return vec_ms > 0.0 ? ref_ms / vec_ms : 0.0; }
};

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_statsdb.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const int kForecasts = smoke ? 20 : 1000;
  const int kDays = 365;
  const int kReps = smoke ? 2 : 5;
  const double kFloor = 5.0;  // required min speedup (checked cases only)

  statsdb::Database db;
  {
    auto records = MakeRecords(kForecasts, kDays);
    auto table = logdata::LoadRuns(&db, records);
    if (!table.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
  }

  const std::vector<Case> cases = {
      // (a) selective filter + aggregate: the day band lives in a few
      // chunks (day-outer load), the rest are zone-pruned; the residual
      // timesteps conjunct and the aggregation run vectorized.
      {"filter_agg",
       "SELECT node, COUNT(*) AS n, AVG(walltime) AS avg_w "
       "FROM runs WHERE day BETWEEN 100 AND 107 AND timesteps = 5760 "
       "GROUP BY node"},
      // (b) string equality served by dictionary compare + zone pruning.
      {"string_scan",
       "SELECT COUNT(*) AS n, AVG(walltime) AS avg_w "
       "FROM runs WHERE code_version = 'v2'"},
      // (c) DISTINCT on a low-cardinality column (dictionary-code dedupe
      // vs hashing materialized rows).
      {"distinct", "SELECT DISTINCT region FROM runs"},
      // Top-k: bounded heap vs full stable sort.
      {"topk",
       "SELECT forecast, day, walltime FROM runs "
       "ORDER BY walltime DESC LIMIT 20"},
      // Hash-index point lookup with residual conjuncts.
      {"indexed_point",
       "SELECT AVG(walltime) AS w FROM runs WHERE forecast = "
       "'forecast-17' AND node = 'f6' AND timesteps = 5760"},
  };
  // Cases the acceptance floor applies to (the PR's headline claims).
  const std::vector<std::string> checked = {"filter_agg", "string_scan",
                                            "distinct"};

  std::printf("case,rows,ref_ms,vec_ms,speedup\n");
  std::vector<Point> points;
  std::string json_rows;
  bool ok = true;
  for (const auto& c : cases) {
    auto plan = statsdb::PlanSql(c.sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s: parse failed: %s\n", c.name,
                   plan.status().ToString().c_str());
      return 1;
    }
    // Correctness gate: both engines must agree before timing means
    // anything.
    auto ref_rs = (*plan)->Execute(db);
    auto vec_rs = statsdb::ExecutePlan(*plan, db);
    if (!ref_rs.ok() || !vec_rs.ok() ||
        ref_rs->ToCsv() != vec_rs->ToCsv()) {
      std::fprintf(stderr, "%s: engines disagree\n", c.name);
      return 1;
    }

    Point pt;
    pt.name = c.name;
    pt.result_rows = ref_rs->rows.size();
    auto timings = bench::MeasureInterleaved(
        {[&] {
           return WallMs([&] {
             auto rs = (*plan)->Execute(db);
             if (!rs.ok()) std::abort();
           });
         },
         [&] {
           return WallMs([&] {
             auto rs = statsdb::ExecutePlan(*plan, db);
             if (!rs.ok()) std::abort();
           });
         }},
        kReps);
    pt.ref_ms = timings[0].wall_ms;
    pt.vec_ms = timings[1].wall_ms;
    std::printf("%s,%zu,%.3f,%.3f,%.1f\n", pt.name.c_str(),
                pt.result_rows, pt.ref_ms, pt.vec_ms, pt.speedup());
    bool is_checked = std::find(checked.begin(), checked.end(), pt.name) !=
                      checked.end();
    if (!smoke && is_checked && pt.speedup() < kFloor) {
      std::fprintf(stderr, "%s: speedup %.1fx below the %.0fx floor\n",
                   pt.name.c_str(), pt.speedup(), kFloor);
      ok = false;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"case\": \"%s\", \"rows\": %zu, \"ref_ms\": %.3f, "
                  "\"vec_ms\": %.3f, \"speedup\": %.2f, \"checked\": %s}",
                  pt.name.c_str(), pt.result_rows, pt.ref_ms, pt.vec_ms,
                  pt.speedup(), is_checked ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += buf;
    points.push_back(pt);
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"perf_statsdb\",\n"
               "  \"smoke\": %s,\n"
               "  \"n_forecasts\": %d,\n  \"n_days\": %d,\n"
               "  \"table_rows\": %d,\n  \"reps\": %d,\n"
               "  \"speedup_floor\": %.0f,\n"
               "  \"results\": [\n%s\n  ]\n}\n",
               smoke ? "true" : "false", kForecasts, kDays,
               kForecasts * kDays, kReps, kFloor, json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s (%d forecasts x %d days%s)\n", json_path,
              kForecasts, kDays, smoke ? ", smoke" : "");
  return ok ? 0 : 2;
}
