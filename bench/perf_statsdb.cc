// Columnar statsdb execution vs the row-at-a-time reference engine.
//
// The PR's claim: rebuilding execution around column-chunk batches
// (vectorized expressions, zone-map pruning, dictionary-coded strings,
// predicate pushdown, top-k sorts) turns fleet-scale analytics over the
// runs table — 1,000 forecasts x 365 days = 365,000 run-day tuples, two
// orders beyond the paper's 100-forecast deployment — from tens of
// milliseconds per query into fractions of a millisecond. Each case runs
// the SAME logical plan through both engines:
//
//   reference  — PlanNode::Execute, the retained row-at-a-time engine
//                (materializes whole intermediates, Value-by-Value).
//   columnar   — ExecutePlan: planner pass (pushdown, index selection,
//                top-k) + the vectorized batch executor.
//
// Cases:
//   filter_agg    — selective filter + grouped aggregate over the runs
//                   table (day band + timesteps predicate).
//   string_scan   — string-equality scan served by dictionary compare +
//                   zone-map chunk pruning (rows loaded day-outer, so
//                   code_version is chunk-homogeneous).
//   distinct      — DISTINCT over a low-cardinality string column.
//   topk          — ORDER BY walltime DESC LIMIT 20 (bounded heap vs
//                   full sort).
//   indexed_point — hash-index equality scan + residual conjuncts.
//
// A second section measures the morsel-parallel executor
// (statsdb/parallel_exec.h) on scan-heavy cases: serial vectorized vs
// 4 and 8 worker threads, with three gates —
//   determinism — parallel CSV output must be BYTE-identical to the
//                 serial vectorized engine at 1, 4 and 16 threads;
//   scaling     — >= 3x at 4 threads and >= 5x at 8, armed only on
//                 hosts that actually have that many cores (otherwise
//                 the measurement is recorded and the floor disarmed,
//                 with the host's hardware_concurrency in the JSON);
//   composition — 8 SweepRunner replicas issue parallel queries from
//                 inside pool tasks on ONE shared pool (nested
//                 TaskGroups, no oversubscription) and every replica
//                 must reproduce the expected bytes.
//
// Method: reps are interleaved engine-by-engine (ref, vec, ref, vec, ...)
// so machine-load drift hits both engines equally; each point reports the
// min over kReps reps (the classic "fastest rep is the least-disturbed
// rep" estimator, as in perf_kernel/perf_trace). Both engines' results
// are rendered to CSV and must match before anything is timed.
//
// Usage: perf_statsdb [--smoke] [json_path]
//   --smoke: 20 forecasts, 2 reps, no speedup floor — a CI liveness run.
// Output: labelled CSV on stdout, BENCH_statsdb.json (default path).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "logdata/loader.h"
#include "obs/profiler.h"
#include "parallel/sweep.h"
#include "parallel/thread_pool.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/plan.h"
#include "statsdb/planner.h"
#include "statsdb/sql.h"
#include "util/rng.h"

namespace ff {
namespace {

using bench::WallMs;

// Fleet-scale runs table, loaded day-outer: all forecasts for day 1, then
// day 2, ... Chunks therefore hold a narrow day range and a single
// code_version (= f(day)), which is exactly how an append-only log of
// daily production runs accretes — and what zone maps reward.
std::vector<logdata::LogRecord> MakeRecords(int n_forecasts, int n_days) {
  util::Rng rng(7);
  std::vector<logdata::LogRecord> out;
  out.reserve(static_cast<size_t>(n_forecasts) * n_days);
  for (int d = 1; d <= n_days; ++d) {
    for (int f = 0; f < n_forecasts; ++f) {
      logdata::LogRecord r;
      r.forecast = "forecast-" + std::to_string(f);
      r.region = "region-" + std::to_string(f % 20);
      r.day = d;
      r.node = "f" + std::to_string(f % 6 + 1);
      r.code_version = "v" + std::to_string(d / 60);
      r.mesh_sides = 5000 + (f % 26) * 1000;
      r.timesteps = f % 2 ? 5760 : 2880;
      r.start_time = d * 86400.0 + 3600.0;
      r.walltime = rng.Uniform(20000.0, 80000.0);
      r.end_time = r.start_time + r.walltime;
      r.status = logdata::RunStatus::kCompleted;
      out.push_back(std::move(r));
    }
  }
  return out;
}

struct Case {
  const char* name;
  const char* sql;
};

struct Point {
  std::string name;
  size_t result_rows = 0;
  double ref_ms = 1e300;  // min over reps, row-at-a-time reference
  double vec_ms = 1e300;  // min over reps, planner + vectorized executor
  double speedup() const { return vec_ms > 0.0 ? ref_ms / vec_ms : 0.0; }
};

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_statsdb.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const int kForecasts = smoke ? 20 : 1000;
  const int kDays = 365;
  const int kReps = smoke ? 2 : 5;
  const double kFloor = 5.0;  // required min speedup (checked cases only)

  statsdb::Database db;
  {
    auto records = MakeRecords(kForecasts, kDays);
    auto table = logdata::LoadRuns(&db, records);
    if (!table.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
  }

  const std::vector<Case> cases = {
      // (a) selective filter + aggregate: the day band lives in a few
      // chunks (day-outer load), the rest are zone-pruned; the residual
      // timesteps conjunct and the aggregation run vectorized.
      {"filter_agg",
       "SELECT node, COUNT(*) AS n, AVG(walltime) AS avg_w "
       "FROM runs WHERE day BETWEEN 100 AND 107 AND timesteps = 5760 "
       "GROUP BY node"},
      // (b) string equality served by dictionary compare + zone pruning.
      {"string_scan",
       "SELECT COUNT(*) AS n, AVG(walltime) AS avg_w "
       "FROM runs WHERE code_version = 'v2'"},
      // (c) DISTINCT on a low-cardinality column (dictionary-code dedupe
      // vs hashing materialized rows).
      {"distinct", "SELECT DISTINCT region FROM runs"},
      // Top-k: bounded heap vs full stable sort.
      {"topk",
       "SELECT forecast, day, walltime FROM runs "
       "ORDER BY walltime DESC LIMIT 20"},
      // Hash-index point lookup with residual conjuncts.
      {"indexed_point",
       "SELECT AVG(walltime) AS w FROM runs WHERE forecast = "
       "'forecast-17' AND node = 'f6' AND timesteps = 5760"},
  };
  // Cases the acceptance floor applies to (the PR's headline claims).
  // topk and indexed_point graduated from unchecked when their engines
  // gained result checks against the reference and stable >5x margins.
  const std::vector<std::string> checked = {
      "filter_agg", "string_scan", "distinct", "topk", "indexed_point"};

  std::printf("case,rows,ref_ms,vec_ms,speedup\n");
  std::vector<Point> points;
  std::string json_rows;
  bool ok = true;
  for (const auto& c : cases) {
    auto plan = statsdb::PlanSql(c.sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s: parse failed: %s\n", c.name,
                   plan.status().ToString().c_str());
      return 1;
    }
    // Correctness gate: both engines must agree before timing means
    // anything.
    auto ref_rs = (*plan)->Execute(db);
    auto vec_rs = statsdb::ExecutePlan(*plan, db);
    if (!ref_rs.ok() || !vec_rs.ok() ||
        ref_rs->ToCsv() != vec_rs->ToCsv()) {
      std::fprintf(stderr, "%s: engines disagree\n", c.name);
      return 1;
    }

    Point pt;
    pt.name = c.name;
    pt.result_rows = ref_rs->rows.size();
    auto timings = bench::MeasureInterleaved(
        {[&] {
           return WallMs([&] {
             auto rs = (*plan)->Execute(db);
             if (!rs.ok()) std::abort();
           });
         },
         [&] {
           return WallMs([&] {
             auto rs = statsdb::ExecutePlan(*plan, db);
             if (!rs.ok()) std::abort();
           });
         }},
        kReps);
    pt.ref_ms = timings[0].wall_ms;
    pt.vec_ms = timings[1].wall_ms;
    std::printf("%s,%zu,%.3f,%.3f,%.1f\n", pt.name.c_str(),
                pt.result_rows, pt.ref_ms, pt.vec_ms, pt.speedup());
    bool is_checked = std::find(checked.begin(), checked.end(), pt.name) !=
                      checked.end();
    if (!smoke && is_checked && pt.speedup() < kFloor) {
      std::fprintf(stderr, "%s: speedup %.1fx below the %.0fx floor\n",
                   pt.name.c_str(), pt.speedup(), kFloor);
      ok = false;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"case\": \"%s\", \"rows\": %zu, \"ref_ms\": %.3f, "
                  "\"vec_ms\": %.3f, \"speedup\": %.2f, \"checked\": %s}",
                  pt.name.c_str(), pt.result_rows, pt.ref_ms, pt.vec_ms,
                  pt.speedup(), is_checked ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += buf;
    points.push_back(pt);
  }

  // ----- Morsel-parallel executor: scaling, determinism, composition.
  const size_t hw = parallel::ThreadPool::DefaultThreads();
  const double kFloor4 = 3.0;  // min speedup vs serial vectorized at T=4
  const double kFloor8 = 5.0;  // and at T=8 (scan/agg cases only)
  parallel::ThreadPool pool4(4);
  parallel::ThreadPool pool8(8);
  parallel::ThreadPool pool16(16);
  auto par_config = [&](size_t threads,
                        parallel::ThreadPool* pool) {
    statsdb::ParallelConfig cfg;
    cfg.max_threads = threads;
    cfg.pool = pool;
    cfg.morsel_chunks = 1;
    cfg.min_chunks = 2;  // smoke tables are only 2 chunks
    return cfg;
  };

  // Scan/agg/top-k shapes that touch every chunk — where fan-out has
  // something to scale. (filter_agg prunes to ~8 chunks; too little
  // work per thread to make a scaling claim.)
  const std::vector<Case> par_cases = {
      {"par_group_agg",
       "SELECT node, COUNT(*) AS n, AVG(walltime) AS avg_w, "
       "MIN(walltime) AS lo, MAX(walltime) AS hi "
       "FROM runs GROUP BY node"},
      {"par_filter_sum",
       "SELECT COUNT(*) AS n, SUM(walltime) AS s "
       "FROM runs WHERE timesteps = 5760"},
      {"par_topk",
       "SELECT forecast, day, walltime FROM runs "
       "ORDER BY walltime DESC LIMIT 20"},
  };

  std::printf("case,rows,serial_ms,par4_ms,par8_ms,speedup4,speedup8\n");
  std::string par_json_rows;
  std::vector<std::pair<statsdb::PlanPtr, std::string>> compose_expected;
  for (const auto& c : par_cases) {
    auto plan = statsdb::PlanSql(c.sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s: parse failed: %s\n", c.name,
                   plan.status().ToString().c_str());
      return 1;
    }
    statsdb::PlanPtr optimized = statsdb::OptimizePlan(*plan, db);
    auto serial_rs = statsdb::ExecuteColumnar(*optimized, db);
    if (!serial_rs.ok()) {
      std::fprintf(stderr, "%s: serial execution failed: %s\n", c.name,
                   serial_rs.status().ToString().c_str());
      return 1;
    }
    const std::string expected = serial_rs->ToCsv();

    // Determinism gate: byte-identical output at 1, 4 and 16 threads.
    struct Variant {
      size_t threads;
      parallel::ThreadPool* pool;
    };
    for (const Variant& v :
         {Variant{1, nullptr}, Variant{4, &pool4}, Variant{16, &pool16}}) {
      auto rs =
          statsdb::ExecuteParallel(optimized, db, par_config(v.threads,
                                                             v.pool));
      if (!rs.ok() || rs->ToCsv() != expected) {
        std::fprintf(stderr,
                     "%s: parallel output at %zu threads diverges from "
                     "the serial vectorized engine\n",
                     c.name, v.threads);
        return 1;
      }
    }

    auto timings = bench::MeasureInterleaved(
        {[&] {
           return WallMs([&] {
             auto rs = statsdb::ExecuteColumnar(*optimized, db);
             if (!rs.ok()) std::abort();
           });
         },
         [&] {
           return WallMs([&] {
             auto rs = statsdb::ExecuteParallel(optimized, db,
                                                par_config(4, &pool4));
             if (!rs.ok()) std::abort();
           });
         },
         [&] {
           return WallMs([&] {
             auto rs = statsdb::ExecuteParallel(optimized, db,
                                                par_config(8, &pool8));
             if (!rs.ok()) std::abort();
           });
         }},
        kReps);
    double serial_ms = timings[0].wall_ms;
    double par4_ms = timings[1].wall_ms;
    double par8_ms = timings[2].wall_ms;
    double speedup4 = par4_ms > 0.0 ? serial_ms / par4_ms : 0.0;
    double speedup8 = par8_ms > 0.0 ? serial_ms / par8_ms : 0.0;
    std::printf("%s,%zu,%.3f,%.3f,%.3f,%.2f,%.2f\n", c.name,
                serial_rs->rows.size(), serial_ms, par4_ms, par8_ms,
                speedup4, speedup8);
    // The scaling floor only means something on a host with the cores
    // to scale onto; otherwise record the measurement, disarm the gate
    // and leave "hw" in the JSON to say why.
    bool floor4_armed = !smoke && hw >= 4;
    bool floor8_armed = !smoke && hw >= 8;
    if (floor4_armed && speedup4 < kFloor4) {
      std::fprintf(stderr, "%s: %.2fx at 4 threads below the %.0fx floor\n",
                   c.name, speedup4, kFloor4);
      ok = false;
    }
    if (floor8_armed && speedup8 < kFloor8) {
      std::fprintf(stderr, "%s: %.2fx at 8 threads below the %.0fx floor\n",
                   c.name, speedup8, kFloor8);
      ok = false;
    }
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"case\": \"%s\", \"rows\": %zu, \"serial_ms\": %.3f, "
        "\"par4_ms\": %.3f, \"par8_ms\": %.3f, \"speedup4\": %.2f, "
        "\"speedup8\": %.2f, \"floor4_armed\": %s, \"floor8_armed\": %s, "
        "\"deterministic\": true}",
        c.name, serial_rs->rows.size(), serial_ms, par4_ms, par8_ms,
        speedup4, speedup8, floor4_armed ? "true" : "false",
        floor8_armed ? "true" : "false");
    if (!par_json_rows.empty()) par_json_rows += ",\n";
    par_json_rows += buf;
    compose_expected.emplace_back(optimized, expected);
  }

  // Composition gate: replicas of a SweepRunner on a SHARED pool each
  // issue every parallel case from inside a pool task. The query's
  // morsel TaskGroups nest on the same workers (no second pool, no
  // oversubscription) and every replica must see the expected bytes.
  // The db is read-only here and store() was warmed above, so the
  // concurrent queries are data-race-free by construction.
  bool compose_ok = true;
  {
    const size_t kComposeReplicas = 8;
    parallel::ThreadPool shared(4);
    parallel::SweepOptions sopt;
    sopt.pool = &shared;
    sopt.record_traces = false;
    sopt.record_metrics = false;
    parallel::SweepRunner runner(sopt);
    std::atomic<int> mismatches{0};
    runner.Run(kComposeReplicas, [&](parallel::ReplicaContext&) {
      for (const auto& [plan, expected] : compose_expected) {
        auto rs =
            statsdb::ExecuteParallel(plan, db, par_config(4, &shared));
        if (!rs.ok() || rs->ToCsv() != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    compose_ok = mismatches.load() == 0;
    if (!compose_ok) {
      std::fprintf(stderr,
                   "sweep composition: %d replica queries diverged\n",
                   mismatches.load());
      ok = false;
    }
    std::printf("# sweep composition (%zu replicas, shared 4-thread "
                "pool): %s\n",
                kComposeReplicas, compose_ok ? "ok" : "FAILED");
  }

  // ----- Self-observation: EXPLAIN ANALYZE smoke + pool runtime lane.
  //
  // The profiled run must return byte-identical rows to the unprofiled
  // one (the profiled iterators are pass-through observers); the
  // annotated tree and the pool's occupancy summary go to stdout and the
  // *_runtime.txt artifact. Wall-clock numbers differ run to run — they
  // never feed a determinism gate.
  const obs::PoolRuntimeProfile pool8_profile = pool8.RuntimeProfile();
  {
    const auto& [topk_plan, topk_expected] = compose_expected.back();
    obs::QueryProfile serial_profile;
    statsdb::ParallelConfig serial_cfg;
    serial_cfg.enabled = false;
    auto serial_rs = statsdb::ExecutePlanProfiled(topk_plan, db, serial_cfg,
                                                  &serial_profile);
    obs::QueryProfile par_profile;
    auto par_rs = statsdb::ExecutePlanProfiled(topk_plan, db,
                                               par_config(4, &pool4),
                                               &par_profile);
    if (!serial_rs.ok() || serial_rs->ToCsv() != topk_expected ||
        !par_rs.ok() || par_rs->ToCsv() != topk_expected) {
      std::fprintf(stderr,
                   "EXPLAIN ANALYZE: profiled results diverge from the "
                   "unprofiled run\n");
      ok = false;
    }
    std::printf("# EXPLAIN ANALYZE par_topk (serial engine):\n");
    for (const auto& line : serial_profile.RenderLines()) {
      std::printf("#   %s\n", line.c_str());
    }
    std::printf("# EXPLAIN ANALYZE par_topk (parallel engine):\n");
    for (const auto& line : par_profile.RenderLines()) {
      std::printf("#   %s\n", line.c_str());
    }
    const std::string pool_summary = obs::PoolRuntimeSummary(pool8_profile);
    obs::LogRuntimeSummary("perf_statsdb", pool_summary);
    const std::string runtime_path = bench::RuntimeSummaryPath(json_path);
    std::FILE* rf = std::fopen(runtime_path.c_str(), "w");
    if (rf != nullptr) {
      std::fprintf(rf, "== EXPLAIN ANALYZE par_topk (serial) ==\n%s",
                   serial_profile.Render().c_str());
      std::fprintf(rf, "== EXPLAIN ANALYZE par_topk (parallel, 4 threads) "
                       "==\n%s",
                   par_profile.Render().c_str());
      std::fprintf(rf, "== pool8 lifetime ==\n%s", pool_summary.c_str());
      std::fclose(rf);
      std::printf("# wrote %s\n", runtime_path.c_str());
    }
  }

  // ----- Dashboard repeat-path: the two-tier query cache (cache.h).
  //
  // A dashboard reissues the same statistics queries continuously; this
  // section measures that loop through Database::Sql with
  // FF_STATSDB_CACHE-style full caching pinned on:
  //   cold        — empty cache: parse + plan + execute + store.
  //   warm        — repeat statement: served from the result cache.
  //   invalidated — a write touched the table (walltime = walltime, so
  //                 the bytes cannot change): epoch mismatch forces a
  //                 re-execute + re-store.
  // Gates: every cold/warm/invalidated result must be byte-identical to
  // a cache-off run, and warm must beat cold by >= kWarmFloor (armed
  // only outside --smoke; a result-map lookup against a 365k-row scan
  // should not be a photo finish).
  std::string dash_json_rows;
  const double kWarmFloor = 50.0;
  std::string cache_json = "{}";
  {
    statsdb::ParallelConfig dash_serial;
    dash_serial.enabled = false;
    db.set_parallel_config(dash_serial);
    statsdb::CacheConfig cache_off;  // mode kOff
    statsdb::CacheConfig cache_full;
    cache_full.mode = statsdb::CacheConfig::Mode::kFull;

    // The floor is armed on scan-shaped cases, where cold cost scales
    // with the table; dash_indexed_point is recorded disarmed — its
    // cold path is already an O(matches) index probe, so a fixed
    // multiplier over it measures the probe, not the cache.
    struct DashCase {
      const char* name;
      const char* sql;
      bool floor;
    };
    const std::vector<DashCase> dash_cases = {
        {"dash_filter_agg", cases[0].sql, true},
        {"dash_string_scan", cases[1].sql, true},
        {"dash_topk", cases[3].sql, true},
        {"dash_indexed_point", cases[4].sql, false},
    };
    std::printf("case,rows,cold_ms,warm_ms,invalidated_ms,warm_speedup\n");
    for (const auto& c : dash_cases) {
      db.set_cache_config(cache_off);
      auto off_rs = db.Sql(c.sql);
      if (!off_rs.ok()) {
        std::fprintf(stderr, "%s: cache-off run failed: %s\n", c.name,
                     off_rs.status().ToString().c_str());
        return 1;
      }
      const std::string expected = off_rs->ToCsv();

      db.set_cache_config(cache_full);
      double cold_ms = 1e300, warm_ms = 1e300, inv_ms = 1e300;
      bool identical = true;
      for (int r = 0; r < kReps; ++r) {
        db.cache().Clear();
        std::string got;
        cold_ms = std::min(cold_ms, WallMs([&] {
                             auto rs = db.Sql(c.sql);
                             if (!rs.ok()) std::abort();
                             got = rs->ToCsv();
                           }));
        identical = identical && got == expected;
        for (int w = 0; w < kReps; ++w) {
          warm_ms = std::min(warm_ms, WallMs([&] {
                               auto rs = db.Sql(c.sql);
                               if (!rs.ok()) std::abort();
                               got = rs->ToCsv();
                             }));
          identical = identical && got == expected;
        }
        // Self-assignment write: bumps the table epoch, changes no byte.
        if (!db.Sql("UPDATE runs SET walltime = walltime WHERE day = 1")
                 .ok()) {
          std::abort();
        }
        inv_ms = std::min(inv_ms, WallMs([&] {
                            auto rs = db.Sql(c.sql);
                            if (!rs.ok()) std::abort();
                            got = rs->ToCsv();
                          }));
        identical = identical && got == expected;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "%s: cached results diverge from the cache-off run\n",
                     c.name);
        ok = false;
      }
      double warm_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 1e9;
      std::printf("%s,%zu,%.4f,%.4f,%.4f,%.1f\n", c.name,
                  off_rs->rows.size(), cold_ms, warm_ms, inv_ms,
                  warm_speedup);
      bool warm_floor_armed = !smoke && c.floor;
      if (warm_floor_armed && warm_speedup < kWarmFloor) {
        std::fprintf(stderr,
                     "%s: warm hit only %.1fx over cold, below the %.0fx "
                     "floor\n",
                     c.name, warm_speedup, kWarmFloor);
        ok = false;
      }
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"case\": \"%s\", \"rows\": %zu, \"cold_ms\": %.4f, "
          "\"warm_ms\": %.4f, \"invalidated_ms\": %.4f, "
          "\"warm_speedup\": %.1f, \"warm_floor_armed\": %s, "
          "\"identical\": %s}",
          c.name, off_rs->rows.size(), cold_ms, warm_ms, inv_ms,
          warm_speedup, warm_floor_armed ? "true" : "false",
          identical ? "true" : "false");
      if (!dash_json_rows.empty()) dash_json_rows += ",\n";
      dash_json_rows += buf;
    }

    // Counter snapshot for the JSON artifact, via the same exporter an
    // embedder would use (runtime_cache rides the db itself).
    statsdb::QueryCacheStats cs = db.cache().Stats();
    if (!obs::LoadRuntimeCache(cs, &db).ok()) {
      std::fprintf(stderr, "runtime_cache exporter failed\n");
      ok = false;
    }
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"plan_hits\": %llu, \"plan_misses\": %llu, "
        "\"result_hits\": %llu, \"result_misses\": %llu, "
        "\"result_invalidations\": %llu, \"result_bytes\": %llu}",
        static_cast<unsigned long long>(cs.plan_hits),
        static_cast<unsigned long long>(cs.plan_misses),
        static_cast<unsigned long long>(cs.result_hits),
        static_cast<unsigned long long>(cs.result_misses),
        static_cast<unsigned long long>(cs.result_invalidations),
        static_cast<unsigned long long>(cs.result_bytes));
    cache_json = buf;
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"perf_statsdb\",\n"
               "  \"smoke\": %s,\n"
               "  \"n_forecasts\": %d,\n  \"n_days\": %d,\n"
               "  \"table_rows\": %d,\n  \"reps\": %d,\n"
               "  \"speedup_floor\": %.0f,\n"
               "  \"hw\": %zu,\n"
               "  \"parallel_floor4\": %.0f,\n"
               "  \"parallel_floor8\": %.0f,\n"
               "  \"compose_ok\": %s,\n"
               "  \"runtime\": %s,\n"
               "  \"cache\": %s,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"parallel_results\": [\n%s\n  ],\n"
               "  \"dashboard_results\": [\n%s\n  ]\n}\n",
               smoke ? "true" : "false", kForecasts, kDays,
               kForecasts * kDays, kReps, kFloor, hw, kFloor4, kFloor8,
               compose_ok ? "true" : "false",
               bench::RuntimePoolJson(&pool8_profile).c_str(),
               cache_json.c_str(), json_rows.c_str(),
               par_json_rows.c_str(), dash_json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s (%d forecasts x %d days%s)\n", json_path,
              kForecasts, kDays, smoke ? ", smoke" : "");
  return ok ? 0 : 2;
}
