// Shared plumbing for the figure/table reproduction harnesses: a standard
// plant matching the paper's §4.2 testbed and small output helpers.

#ifndef FF_BENCH_BENCH_COMMON_H_
#define FF_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "dataflow/forecast_run.h"
#include "sim/series.h"
#include "workload/fleet.h"

namespace ff {
namespace bench {

/// The §4.2 testbed: one dual-CPU client (2.8 GHz, 1 GB) and the public
/// server (2.6 GHz, 1 GB) on a 100 Mb/s LAN.
struct Testbed {
  sim::Simulator sim;
  cluster::Cluster plant{&sim, /*server_cpus=*/2,
                         /*server_speed=*/2.6 / 2.8,
                         /*server_ram_bytes=*/1.0e9};
  sim::SeriesRecorder recorder;

  Testbed() {
    cluster::NodeSpec spec;
    spec.name = "client";
    spec.num_cpus = 2;
    spec.speed = 1.0;
    spec.ram_bytes = 1.0e9;
    spec.uplink_bps = 12.5e6;
    if (!plant.AddNode(spec).ok()) std::abort();
  }
};

/// Runs the §4.2 forecast under one architecture; returns the run.
inline std::unique_ptr<dataflow::ForecastRun> RunDataflow(
    Testbed* tb, dataflow::Architecture arch,
    const workload::ForecastSpec& spec) {
  dataflow::RunConfig cfg;
  cfg.arch = arch;
  auto run = std::make_unique<dataflow::ForecastRun>(
      &tb->sim, *tb->plant.node("client"), *tb->plant.uplink("client"),
      tb->plant.server(), &tb->recorder, spec, cfg);
  run->Start();
  tb->sim.Run();
  return run;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintPaperVsMeasured(const std::string& what,
                                 const std::string& paper,
                                 const std::string& measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace bench
}  // namespace ff

#endif  // FF_BENCH_BENCH_COMMON_H_
