// Shared plumbing for the figure/table reproduction harnesses: a standard
// plant matching the paper's §4.2 testbed and small output helpers.

#ifndef FF_BENCH_BENCH_COMMON_H_
#define FF_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dataflow/forecast_run.h"
#include "obs/runtime_stats.h"
#include "sim/series.h"
#include "workload/fleet.h"

namespace ff {
namespace bench {

/// The §4.2 testbed: one dual-CPU client (2.8 GHz, 1 GB) and the public
/// server (2.6 GHz, 1 GB) on a 100 Mb/s LAN.
struct Testbed {
  sim::Simulator sim;
  cluster::Cluster plant{&sim, /*server_cpus=*/2,
                         /*server_speed=*/2.6 / 2.8,
                         /*server_ram_bytes=*/1.0e9};
  sim::SeriesRecorder recorder;

  Testbed() {
    cluster::NodeSpec spec;
    spec.name = "client";
    spec.num_cpus = 2;
    spec.speed = 1.0;
    spec.ram_bytes = 1.0e9;
    spec.uplink_bps = 12.5e6;
    if (!plant.AddNode(spec).ok()) std::abort();
  }
};

/// Runs the §4.2 forecast under one architecture; returns the run.
inline std::unique_ptr<dataflow::ForecastRun> RunDataflow(
    Testbed* tb, dataflow::Architecture arch,
    const workload::ForecastSpec& spec) {
  dataflow::RunConfig cfg;
  cfg.arch = arch;
  auto run = std::make_unique<dataflow::ForecastRun>(
      &tb->sim, *tb->plant.node("client"), *tb->plant.uplink("client"),
      tb->plant.server(), &tb->recorder, spec, cfg);
  run->Start();
  tb->sim.Run();
  return run;
}

/// Wall-clock milliseconds of one call.
inline double WallMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// One variant's wall time over interleaved reps.
struct RepTiming {
  double wall_ms = 1e300;    // min over reps: the least-disturbed rep
  double wall_ms_max = 0.0;  // max over reps: spread diagnostic
  /// Run-to-run spread as a percentage of the best rep — the noise floor
  /// any cross-variant comparison must beat to be meaningful.
  double noise_pct() const {
    return wall_ms > 0.0 && wall_ms < 1e300
               ? 100.0 * (wall_ms_max - wall_ms) / wall_ms
               : 0.0;
  }
};

/// The perf benches' shared timing harness: every variant is timed once
/// per round, rounds repeated `reps` times (v0, v1, ..., v0, v1, ...), so
/// slow drift in machine load hits every variant equally instead of
/// whichever happened to run last. Each variant reports the min and max
/// over its reps. A variant measures itself and returns wall ms — usually
/// `return WallMs([...]);` — which lets it exclude setup it does not want
/// timed (recorder reservation, table construction).
inline std::vector<RepTiming> MeasureInterleaved(
    const std::vector<std::function<double()>>& variants, int reps) {
  std::vector<RepTiming> out(variants.size());
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t v = 0; v < variants.size(); ++v) {
      double ms = variants[v]();
      out[v].wall_ms = std::min(out[v].wall_ms, ms);
      out[v].wall_ms_max = std::max(out[v].wall_ms_max, ms);
    }
  }
  return out;
}

/// Exact percentile over a sample: sort, take rank ceil(q*n) (1-based).
/// No interpolation — the reported latency is one that actually
/// happened, which matters for tail percentiles over small samples.
/// Same convention as the chaos harness's P95 SLO scoring, so a
/// latency measured here and an SLO checked there agree on rank.
inline double ExactPercentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

/// The tail-latency summary every serving bench reports: exact
/// P50/P95/P99 plus min/max/mean over one shared sort.
struct LatencyQuantiles {
  size_t count = 0;
  double min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

inline LatencyQuantiles SummarizeLatencies(std::vector<double> values) {
  LatencyQuantiles out;
  out.count = values.size();
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  auto rank = [&](double q) {
    size_t r = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (r == 0) r = 1;
    return values[r - 1];
  };
  out.p50 = rank(0.50);
  out.p95 = rank(0.95);
  out.p99 = rank(0.99);
  return out;
}

/// JSON object summarizing the wall-clock profiler's view of a thread
/// pool (obs/runtime_stats.h) for a bench's BENCH_*.json blob: thread
/// count, occupancy, steal/idle split and task-latency quantiles over
/// the profiled window. `profile` may be null — benches with no pool
/// (perf_kernel, perf_trace) still record whether profiling was
/// compiled in, so downstream tooling can tell "no pool" from "hooks
/// compiled out".
inline std::string RuntimePoolJson(const obs::PoolRuntimeProfile* profile) {
  char buf[512];
  if (!obs::kProfilingCompiledIn || profile == nullptr ||
      profile->num_threads == 0) {
    std::snprintf(buf, sizeof(buf), "{\"profiling_compiled_in\": %s}",
                  obs::kProfilingCompiledIn ? "true" : "false");
    return buf;
  }
  const obs::RuntimeHistogram::Snapshot tasks = profile->MergedTaskNs();
  std::snprintf(
      buf, sizeof(buf),
      "{\"profiling_compiled_in\": true, \"threads\": %zu, "
      "\"occupancy\": %.4f, \"tasks\": %llu, \"run_ms\": %.3f, "
      "\"idle_ms\": %.3f, \"steals\": %llu, \"steal_fails\": %llu, "
      "\"global_queue_peak\": %llu, \"task_p50_us\": %.1f, "
      "\"task_p95_us\": %.1f}",
      profile->num_threads, profile->Occupancy(),
      static_cast<unsigned long long>(profile->TotalTasks()),
      static_cast<double>(profile->TotalRunNs()) / 1e6,
      static_cast<double>(profile->TotalIdleNs()) / 1e6,
      static_cast<unsigned long long>(profile->TotalSteals()),
      static_cast<unsigned long long>(profile->TotalStealFails()),
      static_cast<unsigned long long>(profile->global_queue_peak),
      tasks.QuantileNs(0.5) / 1e3, tasks.QuantileNs(0.95) / 1e3);
  return buf;
}

/// Path for a bench's plain-text runtime summary artifact, derived from
/// its JSON path: "BENCH_sweep.json" -> "BENCH_sweep_runtime.txt".
inline std::string RuntimeSummaryPath(const std::string& json_path) {
  std::string base = json_path;
  const std::string suffix = ".json";
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base.resize(base.size() - suffix.size());
  }
  return base + "_runtime.txt";
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintPaperVsMeasured(const std::string& what,
                                 const std::string& paper,
                                 const std::string& measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace bench
}  // namespace ff

#endif  // FF_BENCH_BENCH_COMMON_H_
