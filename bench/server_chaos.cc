// Chaos-hardened serving: the served statsdb under injected socket
// faults and overload, with exit-code gates instead of numbers to
// admire.
//
// Phase 1 — CHAOS. 8 concurrent RetryingClients drive point and top-k
// reads through ChaosTransports injecting ALL fault kinds: partial
// reads/writes, delays, single-byte corruption, connection resets
// (net/chaos_transport.h). Gates:
//
//   * zero crashes (the CI lane runs this under ASan);
//   * every request terminates — in a result or a typed error, never a
//     hang (connect/read deadlines turn wedged streams into
//     kDeadlineMissed, which the retry ladder absorbs);
//   * 100% eventual completion: no request exhausts the retry ladder
//     (gave_up == 0). A request "completes" when it returns rows OR a
//     SERVER-reported error — a corrupted byte can land in the SQL
//     text, and the server's parse error for the garbled statement is
//     a correct, complete answer to what actually arrived.
//
// Phase 2 — DETERMINISM. Phase 1 runs twice with the same seeds; the
// per-client fault-injection counter lines must be byte-identical.
// Chaos events are scheduled by stream byte offset from Rng::Split
// substreams, so kernel chunking and thread timing cannot perturb
// them — same seed, same chaos timeline (the PR 6 discipline on real
// sockets).
//
// Phase 3 — OVERLOAD. A fresh server with a small admission budget
// (max_pending_frames) takes ~4x its budget in pipelined aggressor
// traffic while synchronous probe clients measure per-request latency.
// Gates:
//
//   * shedding engages (shed > 0) and every probe request is answered;
//   * accepted-probe P99 stays under a recorded bound (the budget caps
//     the queue, so accepted work is never behind an unbounded line);
//   * shed-probe P99 stays under the same bound — kUnavailable is a
//     FAST no, that is the point of admission control;
//   * the server's own overload ledger (runtime_server table) read
//     back over the wire agrees that frames were shed.
//
// Usage: server_chaos [--smoke] [json_path]
// Output: labelled text on stdout, BENCH_server_chaos.json; exit 0 iff
// every gate passed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "logdata/loader.h"
#include "net/chaos_transport.h"
#include "net/client.h"
#include "net/retrying_client.h"
#include "net/server.h"
#include "util/rng.h"

namespace ff {
namespace {

using bench::LatencyQuantiles;
using util::Status;

std::atomic<int> g_gate_failures{0};

void Gate(bool ok, const char* what) {
  std::printf("  gate %-44s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) g_gate_failures.fetch_add(1, std::memory_order_relaxed);
}

std::vector<logdata::LogRecord> MakeRecords(int n_forecasts, int n_days) {
  util::Rng rng(7);
  std::vector<logdata::LogRecord> out;
  out.reserve(static_cast<size_t>(n_forecasts) * n_days);
  for (int d = 1; d <= n_days; ++d) {
    for (int f = 0; f < n_forecasts; ++f) {
      logdata::LogRecord r;
      r.forecast = "forecast-" + std::to_string(f);
      r.region = "region-" + std::to_string(f % 5);
      r.day = d;
      r.node = "f" + std::to_string(f % 6 + 1);
      r.code_version = "v1";
      r.mesh_sides = 5000 + (f % 26) * 1000;
      r.timesteps = f % 2 ? 5760 : 2880;
      r.start_time = d * 86400.0 + 3600.0;
      r.walltime = rng.Uniform(20000.0, 80000.0);
      r.end_time = r.start_time + r.walltime;
      r.status = logdata::RunStatus::kCompleted;
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::string PointSql(size_t i) {
  return "SELECT walltime FROM runs WHERE forecast = 'forecast-" +
         std::to_string(i % 8) + "' AND day = " + std::to_string(i % 28 + 1);
}

std::string TopkSql(size_t i) {
  return "SELECT day, walltime FROM runs WHERE forecast = 'forecast-" +
         std::to_string(i % 8) + "' ORDER BY walltime DESC LIMIT 10";
}

// ---------------------------------------------------------------------
// Phase 1/2: chaos workload
// ---------------------------------------------------------------------

struct ChaosClientResult {
  size_t requests = 0;
  size_t ok = 0;
  size_t server_error = 0;     // typed kError answers (complete!)
  size_t transport_error = 0;  // exhausted ladder / refused retry
  net::RetryingClient::Stats stats;
  std::string counters;  // ChaosCounters::ToString()
};

struct ChaosRunResult {
  std::vector<ChaosClientResult> clients;
  double wall_ms = 0.0;

  size_t Total(size_t ChaosClientResult::* field) const {
    size_t sum = 0;
    for (const auto& c : clients) sum += c.*field;
    return sum;
  }
  uint64_t TotalStat(uint64_t net::RetryingClient::Stats::* field) const {
    uint64_t sum = 0;
    for (const auto& c : clients) sum += c.stats.*field;
    return sum;
  }
  /// One line per client — the determinism gate diffs this across runs.
  std::string CounterDump() const {
    std::string out;
    for (size_t i = 0; i < clients.size(); ++i) {
      out += "client" + std::to_string(i) + ": " + clients[i].counters + "\n";
    }
    return out;
  }
};

ChaosRunResult RunChaosWorkload(uint16_t port, size_t n_clients,
                                size_t requests_per_client,
                                uint64_t seed_base) {
  net::ChaosProfile profile;
  profile.split_gap_bytes = 48;     // constant partial-I/O pressure
  profile.delay_gap_bytes = 512;    // frequent but tiny stalls
  profile.delay_min_ms = 0.05;
  profile.delay_max_ms = 0.5;
  profile.corrupt_gap_bytes = 4096; // occasional flipped byte
  profile.reset_gap_bytes = 8192;   // a few mid-stream teardowns

  ChaosRunResult run;
  run.clients.resize(n_clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      ChaosClientResult& out = run.clients[c];
      net::ChaosProfile my_profile = profile;
      my_profile.seed = seed_base + c;  // distinct timeline per client
      auto counters = std::make_shared<net::ChaosCounters>();
      auto conn_index = std::make_shared<std::atomic<uint64_t>>(0);

      net::RetryingClientOptions opts;
      // Deadlines turn a wedged stream (e.g. a corrupted length header
      // promising megabytes that never come) into kDeadlineMissed.
      opts.client.connect_timeout_ms = 2000;
      opts.client.io_timeout_ms = 750;
      opts.client.wrap_transport =
          [my_profile, counters,
           conn_index](std::unique_ptr<net::Transport> base)
          -> std::unique_ptr<net::Transport> {
        return std::make_unique<net::ChaosTransport>(
            std::move(base), my_profile,
            conn_index->fetch_add(1, std::memory_order_relaxed),
            counters.get());
      };
      // A deeper-than-default ladder: the gate is 100% eventual
      // completion, so the client keeps going through repeated resets.
      opts.policy.max_attempts = 12;
      opts.policy.base_backoff = 0.001;
      opts.policy.max_backoff = 0.05;
      opts.seed = 0x9e3779b97f4a7c15ULL ^ (seed_base + c);

      net::RetryingClient client("127.0.0.1", static_cast<uint16_t>(port),
                                 std::move(opts));
      for (size_t i = 0; i < requests_per_client; ++i) {
        const std::string sql = (i % 4 == 3) ? TopkSql(c + i) : PointSql(c + i);
        auto rs = client.Query(sql);
        ++out.requests;
        if (rs.ok()) {
          ++out.ok;
        } else if (client.raw().last_error_was_server_reported()) {
          ++out.server_error;
        } else {
          ++out.transport_error;
        }
      }
      out.stats = client.stats();
      out.counters = counters->ToString();
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return run;
}

// ---------------------------------------------------------------------
// Phase 3: overload
// ---------------------------------------------------------------------

struct OverloadResult {
  size_t probe_requests = 0;
  size_t probe_ok = 0;
  size_t probe_shed = 0;
  size_t probe_other_error = 0;
  size_t aggressor_responses = 0;
  size_t aggressor_shed = 0;
  LatencyQuantiles accepted;  // probe latency when answered with rows
  LatencyQuantiles shed;      // probe latency when answered kUnavailable
  int64_t wire_shed_frames = -1;  // server's own ledger, read over the wire
};

OverloadResult RunOverload(uint16_t port, size_t n_aggressors,
                           size_t n_probes, size_t window, size_t rounds,
                           size_t probe_requests) {
  OverloadResult out;
  std::vector<std::vector<double>> accepted_lat(n_probes);
  std::vector<std::vector<double>> shed_lat(n_probes);
  std::vector<size_t> probe_ok(n_probes, 0), probe_shed(n_probes, 0),
      probe_other(n_probes, 0);
  std::atomic<size_t> agg_responses{0}, agg_shed{0};
  std::atomic<bool> aggressors_on{true};

  std::vector<std::thread> threads;
  // Aggressors: fire a window of kQuery frames back-to-back, then
  // collect the window's responses; the un-drained window is what keeps
  // the server's admission level pinned above budget.
  for (size_t a = 0; a < n_aggressors; ++a) {
    threads.emplace_back([&, a] {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      for (size_t r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < window; ++i) {
          net::WireWriter w;
          w.U8(0);
          const std::string sql = PointSql(a * 131 + r * window + i);
          w.Raw(sql.data(), sql.size());
          if (!client->SendRaw(net::EncodeFrame(net::Opcode::kQuery,
                                                w.buffer()))
                   .ok()) {
            return;
          }
        }
        for (size_t i = 0; i < window; ++i) {
          auto frame = client->ReadFrame();
          if (!frame.ok()) return;
          agg_responses.fetch_add(1, std::memory_order_relaxed);
          if (frame->first == net::Opcode::kError &&
              frame->second.size() >= 1 &&
              static_cast<uint8_t>(frame->second[0]) ==
                  static_cast<uint8_t>(util::StatusCode::kUnavailable)) {
            agg_shed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      aggressors_on.store(false, std::memory_order_relaxed);
    });
  }
  // Probes: synchronous request/response, one latency sample each.
  for (size_t p = 0; p < n_probes; ++p) {
    threads.emplace_back([&, p] {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      for (size_t i = 0; i < probe_requests; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto rs = client->Query(PointSql(p * 977 + i));
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rs.ok()) {
          ++probe_ok[p];
          accepted_lat[p].push_back(ms);
        } else if (rs.status().IsUnavailable()) {
          ++probe_shed[p];
          shed_lat[p].push_back(ms);
        } else {
          ++probe_other[p];
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<double> acc, sh;
  for (size_t p = 0; p < n_probes; ++p) {
    out.probe_requests += probe_ok[p] + probe_shed[p] + probe_other[p];
    out.probe_ok += probe_ok[p];
    out.probe_shed += probe_shed[p];
    out.probe_other_error += probe_other[p];
    acc.insert(acc.end(), accepted_lat[p].begin(), accepted_lat[p].end());
    sh.insert(sh.end(), shed_lat[p].begin(), shed_lat[p].end());
  }
  out.accepted = bench::SummarizeLatencies(std::move(acc));
  out.shed = bench::SummarizeLatencies(std::move(sh));
  out.aggressor_responses = agg_responses.load();
  out.aggressor_shed = agg_shed.load();

  // Read the server's own overload ledger back over the wire.
  auto client = net::Client::Connect("127.0.0.1", port);
  if (client.ok() && client->RefreshServerStats().ok()) {
    auto rs = client->Query(
        "SELECT value FROM runtime_server WHERE counter = 'shed_frames'");
    if (rs.ok()) {
      auto scalar = rs->Scalar();
      if (scalar.ok() && scalar->type() == statsdb::DataType::kInt64) {
        out.wire_shed_frames = scalar->int64_value();
      }
    }
  }
  return out;
}

std::string QuantilesJson(const LatencyQuantiles& q) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %zu, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
                "\"p95_ms\": %.4f, \"p99_ms\": %.4f, \"max_ms\": %.4f}",
                q.count, q.mean, q.p50, q.p95, q.p99, q.max);
  return buf;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_server_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  // The crash/termination gates are only meaningful at real
  // concurrency, so --smoke keeps all 8 clients and trims request
  // counts instead.
  const size_t kChaosClients = 8;
  const size_t kChaosRequests = smoke ? 40 : 250;  // per client
  const uint64_t kSeedBase = 0xc4a05ULL;

  bench::PrintHeader("server_chaos",
                     "served statsdb under socket faults and overload");

  // ------------------------------------------------------------------
  // Phases 1+2: chaos, twice, against one fault-free server.
  // ------------------------------------------------------------------
  ChaosRunResult runs[2];
  {
    net::ServerConfig scfg;
    scfg.pool_threads = 4;
    // Generous hygiene limits: they should NOT fire here (the chaos is
    // client-side), but a bug that wedges a session now fails loudly
    // instead of hanging the bench.
    scfg.idle_timeout_ms = 30000;
    scfg.drain_deadline_ms = 5000;
    net::Server server(scfg);
    {
      auto records = MakeRecords(smoke ? 10 : 20, smoke ? 30 : 60);
      auto table = logdata::LoadRuns(&server.db(), records);
      if (!table.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     table.status().ToString().c_str());
        return 1;
      }
    }
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    for (int r = 0; r < 2; ++r) {
      runs[r] = RunChaosWorkload(server.port(), kChaosClients,
                                 kChaosRequests, kSeedBase);
    }
    server.Stop();
  }

  const ChaosRunResult& chaos = runs[0];
  std::printf("\nchaos phase (%zu clients x %zu requests, all fault kinds)\n",
              kChaosClients, kChaosRequests);
  std::printf("  wall_ms=%.0f ok=%zu server_error=%zu transport_error=%zu\n",
              chaos.wall_ms, chaos.Total(&ChaosClientResult::ok),
              chaos.Total(&ChaosClientResult::server_error),
              chaos.Total(&ChaosClientResult::transport_error));
  std::printf(
      "  retries=%llu reconnects=%llu gave_up=%llu not_retried=%llu\n",
      static_cast<unsigned long long>(
          chaos.TotalStat(&net::RetryingClient::Stats::retries)),
      static_cast<unsigned long long>(
          chaos.TotalStat(&net::RetryingClient::Stats::connects)),
      static_cast<unsigned long long>(
          chaos.TotalStat(&net::RetryingClient::Stats::gave_up)),
      static_cast<unsigned long long>(
          chaos.TotalStat(&net::RetryingClient::Stats::not_retried)));
  std::printf("%s", chaos.CounterDump().c_str());

  const size_t total_requests = chaos.Total(&ChaosClientResult::requests);
  const size_t completed = chaos.Total(&ChaosClientResult::ok) +
                           chaos.Total(&ChaosClientResult::server_error);
  Gate(total_requests == kChaosClients * kChaosRequests,
       "every chaos request terminated");
  Gate(chaos.TotalStat(&net::RetryingClient::Stats::gave_up) == 0 &&
           completed == total_requests,
       "100% eventual completion (no request gave up)");
  Gate(chaos.TotalStat(&net::RetryingClient::Stats::retries) > 0,
       "chaos actually forced retries");
  // Each fault kind must have fired somewhere, or the phase proved
  // nothing. Counters are seeded, so this is a deterministic check.
  {
    bool all_kinds = true;
    for (const char* kind :
         {"splits=0 ", "delays=0 ", "corruptions=0 ", "resets=0"}) {
      size_t firing = 0;
      for (const auto& c : chaos.clients) {
        if (c.counters.find(kind) == std::string::npos) ++firing;
      }
      all_kinds = all_kinds && firing > 0;
    }
    Gate(all_kinds, "every fault kind injected at least once");
  }
  Gate(runs[0].CounterDump() == runs[1].CounterDump(),
       "same seed => byte-identical injection counters");

  // ------------------------------------------------------------------
  // Phase 3: overload against a budgeted server.
  // ------------------------------------------------------------------
  const size_t kBudget = 24;
  const size_t kAggressors = 6;
  const size_t kWindow = 16;  // 6 x 16 = 96 in flight = 4x budget
  const size_t kRounds = smoke ? 8 : 40;
  const size_t kProbes = 2;
  const size_t kProbeReqs = smoke ? 80 : 400;

  OverloadResult baseline, overload;
  {
    net::ServerConfig scfg;
    scfg.pool_threads = 4;
    scfg.max_pending_frames = kBudget;
    scfg.drain_deadline_ms = 5000;
    net::Server server(scfg);
    {
      auto records = MakeRecords(smoke ? 10 : 20, smoke ? 30 : 60);
      auto table = logdata::LoadRuns(&server.db(), records);
      if (!table.ok()) return 1;
    }
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    // Baseline: probes alone, well under budget.
    baseline = RunOverload(server.port(), /*n_aggressors=*/0, kProbes,
                           kWindow, /*rounds=*/0, kProbeReqs);
    // Overload: ~4x the admission budget in pipelined traffic.
    overload = RunOverload(server.port(), kAggressors, kProbes, kWindow,
                           kRounds, kProbeReqs);
    server.Stop();
  }

  std::printf("\noverload phase (budget=%zu frames, %zux%zu pipelined)\n",
              kBudget, kAggressors, kWindow);
  std::printf("  baseline accepted: %s\n",
              QuantilesJson(baseline.accepted).c_str());
  std::printf("  overload accepted: %s\n",
              QuantilesJson(overload.accepted).c_str());
  std::printf("  overload shed:     %s\n", QuantilesJson(overload.shed).c_str());
  std::printf("  probe ok=%zu shed=%zu other=%zu | aggressor shed=%zu/%zu | "
              "wire shed_frames=%lld\n",
              overload.probe_ok, overload.probe_shed,
              overload.probe_other_error, overload.aggressor_shed,
              overload.aggressor_responses,
              static_cast<long long>(overload.wire_shed_frames));

  // A generous recorded bound: overload tails may be well above the
  // unloaded baseline, but admission control must keep them BOUNDED —
  // the failure mode without it is a queue that grows without limit.
  const double bound_ms =
      std::max(50.0, 25.0 * std::max(baseline.accepted.p99, 0.2));
  std::printf("  accepted-P99 bound: %.1f ms\n", bound_ms);

  Gate(baseline.probe_ok == baseline.probe_requests &&
           baseline.probe_requests == kProbes * kProbeReqs,
       "baseline probes all accepted");
  Gate(overload.probe_requests == kProbes * kProbeReqs &&
           overload.probe_other_error == 0,
       "every overload probe answered (rows or typed kUnavailable)");
  Gate(overload.aggressor_shed + overload.probe_shed > 0,
       "shedding engaged under 4x overload");
  Gate(overload.wire_shed_frames > 0,
       "server overload ledger readable over the wire");
  Gate(overload.accepted.count > 0 && overload.accepted.p99 <= bound_ms,
       "accepted-probe P99 under recorded bound");
  Gate(overload.shed.count == 0 || overload.shed.p99 <= bound_ms,
       "shed probes fail fast");

  // ------------------------------------------------------------------
  // Artifact
  // ------------------------------------------------------------------
  const bool ok = g_gate_failures.load() == 0;
  FILE* jf = std::fopen(json_path, "w");
  if (jf != nullptr) {
    std::fprintf(jf, "{\n  \"bench\": \"server_chaos\",\n");
    std::fprintf(jf, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(jf, "  \"chaos\": {\n");
    std::fprintf(jf, "    \"clients\": %zu,\n    \"requests\": %zu,\n",
                 kChaosClients, total_requests);
    std::fprintf(jf,
                 "    \"ok\": %zu,\n    \"server_error\": %zu,\n"
                 "    \"transport_error\": %zu,\n",
                 chaos.Total(&ChaosClientResult::ok),
                 chaos.Total(&ChaosClientResult::server_error),
                 chaos.Total(&ChaosClientResult::transport_error));
    std::fprintf(
        jf,
        "    \"retries\": %llu,\n    \"connects\": %llu,\n"
        "    \"gave_up\": %llu,\n    \"wall_ms\": %.1f,\n",
        static_cast<unsigned long long>(
            chaos.TotalStat(&net::RetryingClient::Stats::retries)),
        static_cast<unsigned long long>(
            chaos.TotalStat(&net::RetryingClient::Stats::connects)),
        static_cast<unsigned long long>(
            chaos.TotalStat(&net::RetryingClient::Stats::gave_up)),
        chaos.wall_ms);
    std::fprintf(jf, "    \"counters\": [\n");
    for (size_t i = 0; i < chaos.clients.size(); ++i) {
      std::fprintf(jf, "      \"%s\"%s\n", chaos.clients[i].counters.c_str(),
                   i + 1 < chaos.clients.size() ? "," : "");
    }
    std::fprintf(jf, "    ],\n");
    std::fprintf(jf, "    \"deterministic\": %s\n  },\n",
                 runs[0].CounterDump() == runs[1].CounterDump() ? "true"
                                                                : "false");
    std::fprintf(jf, "  \"overload\": {\n");
    std::fprintf(jf, "    \"budget_frames\": %zu,\n", kBudget);
    std::fprintf(jf, "    \"baseline_accepted\": %s,\n",
                 QuantilesJson(baseline.accepted).c_str());
    std::fprintf(jf, "    \"accepted\": %s,\n",
                 QuantilesJson(overload.accepted).c_str());
    std::fprintf(jf, "    \"shed\": %s,\n", QuantilesJson(overload.shed).c_str());
    std::fprintf(jf,
                 "    \"probe_ok\": %zu,\n    \"probe_shed\": %zu,\n"
                 "    \"aggressor_shed\": %zu,\n"
                 "    \"wire_shed_frames\": %lld,\n"
                 "    \"p99_bound_ms\": %.1f\n  },\n",
                 overload.probe_ok, overload.probe_shed,
                 overload.aggressor_shed,
                 static_cast<long long>(overload.wire_shed_frames), bound_ms);
    std::fprintf(jf, "  \"gates_failed\": %d,\n  \"ok\": %s\n}\n",
                 g_gate_failures.load(), ok ? "true" : "false");
    std::fclose(jf);
  }

  std::printf("\n%s (%d gate failure%s) -> %s\n", ok ? "PASS" : "FAIL",
              g_gate_failures.load(), g_gate_failures.load() == 1 ? "" : "s",
              json_path);
  return ok ? 0 : 2;
}
