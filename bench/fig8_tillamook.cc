// Figure 8 — "Effects of timestep changes and addition of new runs on
// the Tillamook forecast" (walltime vs day of year, days 1-76 of 2005).
//
// Documented history, re-enacted by the campaign driver:
//   * days 1-20: ~40,000 s per day;
//   * day 21: timesteps doubled 5760 -> 11520, walltime doubles to
//     ~80,000 s;
//   * around day 50: several new forecasts added, two landing on
//     Tillamook's node — cascading work-in-progress ("hump" rising past
//     100,000 s, since a >86,400 s day means tomorrow's run competes with
//     today's);
//   * after a couple of days, operators move forecasts off the node and
//     the walltime recovers (here: ForeMan's rebalance with 4-day
//     patience).

#include "bench/bench_common.h"
#include "factory/campaign.h"
#include "logdata/spc.h"
#include "logdata/timeseries.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("Figure 8",
                     "Tillamook forecast walltime, days 1-76 of 2005");

  factory::CampaignConfig cfg;
  cfg.num_days = 76;
  cfg.first_day = 1;
  cfg.noise_sigma = 0.015;
  cfg.seed = 42;
  cfg.foreman_rebalance = true;
  cfg.rebalance_patience = 4;
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 6; ++i) {
    if (!campaign.AddNode("f" + std::to_string(i)).ok()) return 1;
  }

  auto till = workload::MakeTillamookForecast();
  till.mesh_sides = 23400;  // calibrated: ~40,000 s total with products
  if (!campaign.AddForecast(till, "f1").ok()) return 1;

  // The rest of the production fleet (one shares f1, matching the
  // dual-CPU node's second processor).
  util::Rng rng(7);
  auto fleet = workload::MakeCorieFleet(6, &rng);
  for (auto& f : fleet) f.name += "-prod";  // distinct from tillamook
  if (!campaign.AddForecast(fleet[0], "f1").ok()) return 1;
  for (int i = 1; i < 6; ++i) {
    if (!campaign
             .AddForecast(fleet[i], "f" + std::to_string(1 + i % 5 + 1))
             .ok()) {
      return 1;
    }
  }

  // Day 21 (index 20): timestep doubling.
  factory::ChangeEvent doubling;
  doubling.day = 20;
  doubling.kind = factory::ChangeEvent::Kind::kSetTimesteps;
  doubling.forecast = till.name;
  doubling.int_value = 11520;
  campaign.AddEvent(doubling);

  // Day 50 (index 49): two new forecasts land on Tillamook's node.
  util::Rng rng2(99);
  auto newcomers = workload::MakeCorieFleet(8, &rng2);
  for (int g = 6; g < 8; ++g) {
    factory::ChangeEvent add;
    add.day = 49;
    add.kind = factory::ChangeEvent::Kind::kAddForecast;
    add.new_forecast = newcomers[g];
    add.new_forecast.name += "-new";
    add.new_forecast.priority = 3;  // newcomers yield to production runs
    add.new_forecast.mesh_sides = 16000;
    add.new_forecast.timesteps = 5760;
    add.str_value = "f1";
    campaign.AddEvent(add);
  }

  auto result = campaign.Run();
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nday_of_year,walltime_s\n");
  std::vector<double> walltimes;
  for (const auto& s : result->walltimes.at(till.name)) {
    std::printf("%d,%.0f\n", s.day, s.walltime);
    walltimes.push_back(s.walltime);
  }

  auto level = [&](int lo, int hi) {
    double sum = 0.0;
    int n = 0;
    for (const auto& s : result->walltimes.at(till.name)) {
      if (s.day >= lo && s.day <= hi) {
        sum += s.walltime;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  double peak = 0.0;
  for (const auto& s : result->walltimes.at(till.name)) {
    if (s.day >= 50 && s.day <= 60) peak = std::max(peak, s.walltime);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured("level before day 21", "~40,000 s",
                              util::StrFormat("%.0f s", level(1, 20)));
  bench::PrintPaperVsMeasured("level days 21-49 (doubled timesteps)",
                              "~80,000 s",
                              util::StrFormat("%.0f s", level(22, 49)));
  bench::PrintPaperVsMeasured("hump peak days 50-60", "~120,000 s",
                              util::StrFormat("%.0f s", peak));
  bench::PrintPaperVsMeasured("level after recovery (days 61-76)",
                              "~80,000 s",
                              util::StrFormat("%.0f s", level(61, 76)));
  bench::PrintPaperVsMeasured("ForeMan moves during recovery",
                              "(manual in paper)",
                              util::StrFormat("%d", result->foreman_moves));

  std::printf("\nLog-analysis view (§4.3):\n%s",
              logdata::AnalyzeSeries(walltimes, /*first_day=*/1,
                                     /*window=*/5, /*min_shift=*/15000.0,
                                     /*z_threshold=*/6.0)
                  .c_str());
  // SPC view (§1): the chart is fitted on the stable doubled-timestep
  // regime (days 25-45) and flags the day-50 cascade as out of control —
  // the early-warning signal that should trigger a re-plan.
  std::vector<double> post_change(walltimes.begin() + 24, walltimes.end());
  auto spc = logdata::SpcReport(post_change, /*baseline_n=*/21,
                                /*first_day=*/25);
  if (spc.ok()) {
    std::printf("\nSPC view (§1):\n%s", spc->c_str());
  }
  return 0;
}
