// Figure 7 — "Time until all data appears at server for Architecture 2".
//
// Same workload and tracked entities as Figure 6, but the simulation runs
// alone on the compute node; model outputs rsync to the server where the
// master process generates the products. Paper end-to-end: ~11,000 s,
// with the final products appearing slightly after the final model
// outputs (the extra time to generate the last product increments at the
// server).

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("Figure 7",
                     "percent of data at server vs time, Architecture 2 "
                     "(products generated at server)");

  bench::Testbed tb;
  auto spec = workload::MakeElcircEstuaryForecast();
  auto run = bench::RunDataflow(
      &tb, dataflow::Architecture::kProductsAtServer, spec);
  if (!run->done()) {
    std::printf("ERROR: run did not complete\n");
    return 1;
  }

  static const char* kTracked[] = {"1_salt.63", "2_salt.63",
                                   "isosal_far_surface",
                                   "isosal_near_surface", "process"};

  std::printf("\ntime_s");
  for (const char* name : kTracked) std::printf(",%s", name);
  std::printf("\n");
  for (double t = 0.0; t <= run->finish_time() + 500.0; t += 500.0) {
    std::printf("%.0f", t);
    for (const char* name : kTracked) {
      auto pts = tb.recorder.Get(name);
      double v = 0.0;
      if (pts.ok()) {
        for (const auto& p : *pts) {
          if (p.time <= t) v = p.value;
          else break;
        }
      }
      std::printf(",%.3f", v);
    }
    std::printf("\n");
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "end-to-end time (all data at server)", "~11,000 s",
      util::StrFormat("%.0f s", run->finish_time()));

  double last_model = 0.0, last_product = 0.0;
  for (const char* name : {"1_salt.63", "2_salt.63"}) {
    auto t = tb.recorder.FirstTimeAtLeast(name, 0.999);
    if (t.ok()) last_model = std::max(last_model, *t);
  }
  for (const char* name :
       {"isosal_far_surface", "isosal_near_surface", "process"}) {
    auto t = tb.recorder.FirstTimeAtLeast(name, 0.999);
    if (t.ok()) last_product = std::max(last_product, *t);
  }
  bench::PrintPaperVsMeasured(
      "final products lag behind final model outputs", "slightly later",
      util::StrFormat("+%.0f s", last_product - last_model));
  bench::PrintPaperVsMeasured(
      "speedup vs Architecture 1", "18,000 -> 11,000 s (~1.6x)",
      "(run fig6_arch1 for the companion number)");
  return 0;
}
