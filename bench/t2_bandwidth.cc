// T2 — §4.2 bandwidth claim: "For many forecasts, data products account
// for as much as 20% of all data generated in a run. Thus, this
// architecture could significantly reduce bandwidth consumption."
//
// Byte accounting of the two architectures on the §4.2 forecast.

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("T2", "bytes transferred per architecture (§4.2)");

  double transferred[2];
  double model_bytes = 0.0, product_bytes = 0.0;
  int i = 0;
  for (auto arch : {dataflow::Architecture::kProductsAtNode,
                    dataflow::Architecture::kProductsAtServer}) {
    bench::Testbed tb;
    auto spec = workload::MakeElcircEstuaryForecast();
    auto run = bench::RunDataflow(&tb, arch, spec);
    if (!run->done()) {
      std::printf("ERROR: run did not complete\n");
      return 1;
    }
    transferred[i++] = run->bytes_transferred();
    model_bytes = run->model_bytes_generated();
    product_bytes = run->product_bytes_generated();
  }

  std::printf("\narchitecture,bytes_transferred,MB\n");
  std::printf("arch1-products-at-node,%.0f,%.1f\n", transferred[0],
              transferred[0] / 1e6);
  std::printf("arch2-products-at-server,%.0f,%.1f\n", transferred[1],
              transferred[1] / 1e6);

  double product_fraction =
      product_bytes / (product_bytes + model_bytes);
  double savings = 1.0 - transferred[1] / transferred[0];

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "products as fraction of all bytes", "up to ~20%",
      util::StrFormat("%.1f%%", 100.0 * product_fraction));
  bench::PrintPaperVsMeasured(
      "bandwidth saved by Architecture 2", "significant (~20%)",
      util::StrFormat("%.1f%%", 100.0 * savings));
  return 0;
}
