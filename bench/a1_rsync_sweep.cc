// A1 — ablation: sensitivity of the §4.2 architecture comparison to the
// staging period and LAN bandwidth. The paper fixes rsync's behaviour and
// a single LAN; this sweep shows where Architecture 2's advantage comes
// from (CPU/memory interference, not the network) and when the network
// starts to matter.

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace ff;

namespace {

double RunOne(dataflow::Architecture arch, double rsync_interval,
              double uplink_bps) {
  sim::Simulator sim;
  cluster::Cluster plant(&sim, 2, 2.6 / 2.8, 1.0e9);
  cluster::NodeSpec node;
  node.name = "client";
  node.num_cpus = 2;
  node.ram_bytes = 1.0e9;
  node.uplink_bps = uplink_bps;
  if (!plant.AddNode(node).ok()) std::abort();
  sim::SeriesRecorder recorder;
  dataflow::RunConfig cfg;
  cfg.arch = arch;
  cfg.rsync_interval = rsync_interval;
  auto spec = workload::MakeElcircEstuaryForecast();
  dataflow::ForecastRun run(&sim, *plant.node("client"),
                            *plant.uplink("client"), plant.server(),
                            &recorder, spec, cfg);
  run.Start();
  sim.Run();
  return run.done() ? run.finish_time() : -1.0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "A1", "rsync period and bandwidth sensitivity of Arch 1 vs Arch 2");

  std::printf("\n-- staging period sweep (100 Mb/s LAN) --\n");
  std::printf("rsync_interval_s,arch1_s,arch2_s,arch2_speedup\n");
  for (double interval : {60.0, 150.0, 300.0, 600.0, 1200.0, 2400.0}) {
    double a1 = RunOne(dataflow::Architecture::kProductsAtNode, interval,
                       12.5e6);
    double a2 = RunOne(dataflow::Architecture::kProductsAtServer, interval,
                       12.5e6);
    std::printf("%.0f,%.0f,%.0f,%.2f\n", interval, a1, a2, a1 / a2);
  }

  std::printf("\n-- bandwidth sweep (300 s staging period) --\n");
  std::printf("uplink_mbps,arch1_s,arch2_s,arch2_speedup\n");
  for (double mbps : {1.0, 5.0, 10.0, 100.0, 1000.0}) {
    double bps = mbps * 1e6 / 8.0;
    double a1 =
        RunOne(dataflow::Architecture::kProductsAtNode, 300.0, bps);
    double a2 =
        RunOne(dataflow::Architecture::kProductsAtServer, 300.0, bps);
    std::printf("%.0f,%.0f,%.0f,%.2f\n", mbps, a1, a2, a1 / a2);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "Arch 2 wins at the paper's operating point", "~1.6x",
      "holds across staging periods");
  bench::PrintPaperVsMeasured(
      "very slow LANs erode Arch 2's lead", "(not evaluated)",
      "transfer-bound below ~5 Mb/s");
  return 0;
}
