// T3 — §4.1 validation of ForeMan's CPU-sharing completion model:
// "if three forecasts run concurrently on a node with two CPUs, ForeMan
// will compute the expected completion time of each assuming each
// forecast gets 2/3 of the available CPU cycles. We have validated this
// assumption empirically using data from past forecast runs."
//
// Here the "empirical" side is the discrete-event execution; the model
// side is core::PredictCompletions. The table reports prediction error
// across fleet sizes, with and without run-time noise.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/machine.h"
#include "core/share_model.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace ff;

namespace {

struct Sample {
  double predicted;
  double actual;
};

std::vector<Sample> RunCase(int n_runs, double noise_sigma,
                            uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> works;
  for (int i = 0; i < n_runs; ++i) {
    works.push_back(rng.Uniform(20000.0, 60000.0));
  }
  std::vector<double> starts;
  for (int i = 0; i < n_runs; ++i) {
    starts.push_back(3600.0 * static_cast<double>(rng.UniformInt(0, 3)));
  }

  // Model prediction.
  std::vector<core::ShareJob> jobs;
  for (int i = 0; i < n_runs; ++i) {
    jobs.push_back(core::ShareJob{"r" + std::to_string(i), "f1",
                                  starts[i], works[i]});
  }
  auto pred =
      core::PredictCompletions({core::NodeInfo{"f1", 2, 1.0}}, jobs);
  if (!pred.ok()) std::abort();

  // Discrete-event execution with optional multiplicative noise.
  sim::Simulator sim;
  cluster::Machine node(&sim, "f1", 2, 1.0);
  std::vector<double> actual(static_cast<size_t>(n_runs), 0.0);
  for (int i = 0; i < n_runs; ++i) {
    double w = noise_sigma > 0.0
                   ? rng.LogNormalMedian(works[static_cast<size_t>(i)],
                                         noise_sigma)
                   : works[static_cast<size_t>(i)];
    sim.ScheduleAt(starts[static_cast<size_t>(i)], [&, i, w] {
      node.StartTask(w, [&, i] {
        actual[static_cast<size_t>(i)] = sim.now();
      });
    });
  }
  sim.Run();

  std::vector<Sample> out;
  for (int i = 0; i < n_runs; ++i) {
    out.push_back(Sample{
        pred->completion.at("r" + std::to_string(i)),
        actual[static_cast<size_t>(i)]});
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("T3",
                     "ForeMan CPU-share completion model vs discrete-event "
                     "execution (§4.1)");

  std::printf(
      "\nruns_on_node,noise_sigma,mean_abs_err_s,max_abs_err_s,"
      "mean_rel_err_pct\n");
  for (int n : {1, 2, 3, 4, 6, 8, 12}) {
    for (double sigma : {0.0, 0.02, 0.05}) {
      double sum_abs = 0.0, max_abs = 0.0, sum_rel = 0.0;
      int count = 0;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        for (const auto& s : RunCase(n, sigma, seed)) {
          double err = std::fabs(s.predicted - s.actual);
          sum_abs += err;
          max_abs = std::max(max_abs, err);
          sum_rel += err / s.actual;
          ++count;
        }
      }
      std::printf("%d,%.2f,%.1f,%.1f,%.2f\n", n, sigma, sum_abs / count,
                  max_abs, 100.0 * sum_rel / count);
    }
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "model accuracy without disturbances", "validated empirically",
      "exact (errors ~0 at sigma=0)");
  bench::PrintPaperVsMeasured(
      "3 runs / 2 CPUs each get", "2/3 of CPU cycles",
      "reproduced (see cluster tests: PaperExampleThreeForecastsTwoCpus)");
  return 0;
}
