// A4 — "Architecture 3" ablation: partitioning data products across
// multiple secondary nodes (the paper's §2.2 revisit item). Compares
// Architectures 1 and 2 against partitioned generation with 1-3
// secondaries, on the normal LAN and on a fast interconnect — showing
// when the paper's "high data transfer overhead" objection holds and
// when extra nodes win.
//
// To make the partitioning question interesting, the product load is
// scaled up 10x (the paper's motivation was "parallel code versions or
// increased node capacity", i.e. heavier product pipelines than 2005's).

#include <memory>

#include "bench/bench_common.h"
#include "dataflow/partitioned_run.h"
#include "util/strings.h"

using namespace ff;

namespace {

workload::ForecastSpec HeavyProductSpec() {
  auto spec = workload::MakeElcircEstuaryForecast();
  for (auto& p : spec.products) p.cpu_per_increment *= 10.0;
  return spec;
}

double RunArch(dataflow::Architecture arch) {
  bench::Testbed tb;
  auto run = bench::RunDataflow(&tb, arch, HeavyProductSpec());
  return run->done() ? run->finish_time() : -1.0;
}

struct PartResult {
  double finish;
  double gb_transferred;
};

PartResult RunPartitioned(int secondaries, double bps) {
  sim::Simulator sim;
  cluster::Machine primary(&sim, "primary", 2, 1.0, 1.0e9);
  cluster::Link primary_uplink(&sim, "primary->server", bps);
  std::vector<std::unique_ptr<cluster::Machine>> machines;
  std::vector<std::unique_ptr<cluster::Link>> links;
  std::vector<dataflow::SecondaryHost> hosts;
  for (int i = 0; i < secondaries; ++i) {
    machines.push_back(std::make_unique<cluster::Machine>(
        &sim, "sec" + std::to_string(i), 2, 1.0, 1.0e9));
    links.push_back(std::make_unique<cluster::Link>(
        &sim, "down" + std::to_string(i), bps));
    links.push_back(std::make_unique<cluster::Link>(
        &sim, "up" + std::to_string(i), bps));
    dataflow::SecondaryHost h;
    h.machine = machines.back().get();
    h.downlink = links[links.size() - 2].get();
    h.uplink = links.back().get();
    hosts.push_back(h);
  }
  auto spec = HeavyProductSpec();
  std::vector<int> partition;
  for (size_t i = 0; i < spec.products.size(); ++i) {
    partition.push_back(static_cast<int>(i) % secondaries);
  }
  sim::SeriesRecorder recorder;
  dataflow::PartitionedRun run(&sim, &primary, &primary_uplink,
                               std::move(hosts), partition, &recorder,
                               spec, dataflow::PartitionedConfig{});
  run.Start();
  sim.Run();
  return PartResult{run.done() ? run.finish_time() : -1.0,
                    run.bytes_transferred() / 1e9};
}

}  // namespace

int main() {
  bench::PrintHeader("A4",
                     "partitioned product generation (Architecture 3, "
                     "§2.2 future option) — 10x product load");

  double a1 = RunArch(dataflow::Architecture::kProductsAtNode);
  double a2 = RunArch(dataflow::Architecture::kProductsAtServer);
  std::printf("\narchitecture,end_to_end_s,bytes_GB\n");
  std::printf("arch1-products-at-node,%.0f,-\n", a1);
  std::printf("arch2-products-at-server,%.0f,-\n", a2);
  for (int k : {1, 2, 3}) {
    auto r = RunPartitioned(k, 12.5e6);
    std::printf("arch3-partitioned-%d-secondaries,%.0f,%.2f\n", k,
                r.finish, r.gb_transferred);
  }
  std::printf("\n-- fast interconnect (1 Gb/s) --\n");
  for (int k : {1, 2, 3}) {
    auto r = RunPartitioned(k, 125e6);
    std::printf("arch3-partitioned-%d-secondaries-1gbe,%.0f,%.2f\n", k,
                r.finish, r.gb_transferred);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "partitioning on the 2005 LAN", "high transfer overhead (§2.2)",
      "extra replication bytes; wins only with heavy product loads");
  bench::PrintPaperVsMeasured(
      "partitioning with more/faster hardware", "may become attractive",
      "multiple secondaries beat a saturated server");
  return 0;
}
