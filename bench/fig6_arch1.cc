// Figure 6 — "Time until all data appears at server for Architecture 1".
//
// Reproduces the paper's curves: percentage of data resident at the
// public server over time for the tracked model outputs (1_salt.63,
// 2_salt.63) and product directories (isosal_far_surface,
// isosal_near_surface, process), with simulation AND product generation
// colocated on the compute node. Paper end-to-end: ~18,000 s, with final
// model outputs and products arriving at about the same time.

#include <cmath>

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("Figure 6",
                     "percent of data at server vs time, Architecture 1 "
                     "(model + products at compute node)");

  bench::Testbed tb;
  auto spec = workload::MakeElcircEstuaryForecast();
  auto run = bench::RunDataflow(&tb, dataflow::Architecture::kProductsAtNode,
                                spec);
  if (!run->done()) {
    std::printf("ERROR: run did not complete\n");
    return 1;
  }

  static const char* kTracked[] = {"1_salt.63", "2_salt.63",
                                   "isosal_far_surface",
                                   "isosal_near_surface", "process"};

  // The paper plots fraction-at-server curves; print a fixed grid.
  std::printf("\ntime_s");
  for (const char* name : kTracked) std::printf(",%s", name);
  std::printf("\n");
  for (double t = 0.0; t <= run->finish_time() + 500.0; t += 500.0) {
    std::printf("%.0f", t);
    for (const char* name : kTracked) {
      // Step-interpolate each series at t.
      auto pts = tb.recorder.Get(name);
      double v = 0.0;
      if (pts.ok()) {
        for (const auto& p : *pts) {
          if (p.time <= t) v = p.value;
          else break;
        }
      }
      std::printf(",%.3f", v);
    }
    std::printf("\n");
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "end-to-end time (all data at server)", "~18,000 s",
      util::StrFormat("%.0f s", run->finish_time()));

  // "the final model outputs and data products arrive at the server at
  // around the same time".
  double last_model = 0.0, last_product = 0.0;
  for (const char* name : {"1_salt.63", "2_salt.63"}) {
    auto t = tb.recorder.FirstTimeAtLeast(name, 0.999);
    if (t.ok()) last_model = std::max(last_model, *t);
  }
  for (const char* name :
       {"isosal_far_surface", "isosal_near_surface", "process"}) {
    auto t = tb.recorder.FirstTimeAtLeast(name, 0.999);
    if (t.ok()) last_product = std::max(last_product, *t);
  }
  bench::PrintPaperVsMeasured(
      "final model outputs vs final products gap", "~same time",
      util::StrFormat("%.0f s apart", std::fabs(last_product - last_model)));
  bench::PrintPaperVsMeasured(
      "simulation finished at", "(not reported)",
      util::StrFormat("%.0f s", run->sim_finish_time()));
  return 0;
}
