// A2 — ablation: rescheduling policy after a temporary node failure
// (§2.1/§4.1: "if a node becomes temporarily unavailable, forecasts
// scheduled to run on it must be reassigned and executed as early as
// possible. To accommodate the displaced forecasts, other runs may need
// to be reassigned as well").
//
// A 10-run fleet on 4 nodes; node f1 dies on day 3 and returns on day 5.
// Policies: none (wait), minimal (move displaced), full replan.
// Metrics: completed runs, mean walltime and worst-day walltime of the
// displaced forecasts.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "factory/campaign.h"
#include "parallel/sweep.h"
#include "util/strings.h"

using namespace ff;

namespace {

struct Outcome {
  int completed = 0;
  int stalled = 0;
  double mean_walltime = 0.0;
  double worst_walltime = 0.0;
  int migrations = 0;
};

Outcome RunPolicy(core::ReschedulePolicy policy) {
  factory::CampaignConfig cfg;
  cfg.num_days = 8;
  cfg.noise_sigma = 0.0;
  cfg.failure_policy = policy;
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 4; ++i) {
    if (!campaign.AddNode("f" + std::to_string(i)).ok()) std::abort();
  }
  util::Rng rng(21);
  auto fleet = workload::MakeCorieFleet(10, &rng);
  for (int i = 0; i < 10; ++i) {
    if (!campaign
             .AddForecast(fleet[static_cast<size_t>(i)],
                          "f" + std::to_string(i % 4 + 1))
             .ok()) {
      std::abort();
    }
  }
  factory::ChangeEvent down;
  down.day = 3;
  down.kind = factory::ChangeEvent::Kind::kNodeDown;
  down.str_value = "f1";
  campaign.AddEvent(down);
  factory::ChangeEvent up;
  up.day = 5;
  up.kind = factory::ChangeEvent::Kind::kNodeUp;
  up.str_value = "f1";
  campaign.AddEvent(up);

  auto result = campaign.Run();
  if (!result.ok()) std::abort();

  Outcome out;
  out.migrations = result->failure_migrations;
  double sum = 0.0;
  int n = 0;
  for (const auto& rec : result->records) {
    if (rec.status == logdata::RunStatus::kCompleted) {
      ++out.completed;
      sum += rec.walltime;
      out.worst_walltime = std::max(out.worst_walltime, rec.walltime);
      ++n;
    } else if (rec.status == logdata::RunStatus::kRunning) {
      ++out.stalled;
    }
  }
  out.mean_walltime = n ? sum / n : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("A2",
                     "rescheduling policy after node failure (day 3 down, "
                     "day 5 up)");

  std::printf(
      "\npolicy,completed_runs,stalled_runs,migrations,mean_walltime_s,"
      "worst_walltime_s\n");
  // One policy per sweep replica: each campaign is self-seeded, so the
  // ablation fans out across cores and the outcomes land in policy order
  // regardless of which worker finished first. Recording stays off —
  // this table must match the seed output byte for byte, and a live
  // metrics registry would add sampling ticks to the event stream.
  const std::vector<core::ReschedulePolicy> kPolicies = {
      core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
      core::ReschedulePolicy::kFullReplan};
  std::vector<Outcome> outcomes(kPolicies.size());
  parallel::SweepOptions sweep_opt;
  sweep_opt.record_traces = false;
  sweep_opt.record_metrics = false;
  parallel::SweepRunner runner(sweep_opt);
  runner.Run(kPolicies.size(), [&](parallel::ReplicaContext& ctx) {
    outcomes[ctx.replica] = RunPolicy(kPolicies[ctx.replica]);
  });
  for (size_t i = 0; i < kPolicies.size(); ++i) {
    const Outcome& o = outcomes[i];
    std::printf("%s,%d,%d,%d,%.0f,%.0f\n",
                core::ReschedulePolicyName(kPolicies[i]), o.completed,
                o.stalled, o.migrations, o.mean_walltime, o.worst_walltime);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "waiting for the node ('none')", "products late / lost",
      "stalled runs during outage, worst walltimes inflate");
  bench::PrintPaperVsMeasured(
      "reassign displaced runs", "executed as early as possible",
      "all runs complete; modest walltime inflation on receivers");
  return 0;
}
