// T6 — §4.3.2 statistics database microbenchmarks (google-benchmark).
//
// The paper replaced flat log files with a relational database so that
// queries like "find all forecasts that use code version X" and
// estimation aggregates become cheap. These benchmarks measure the
// engine at two scales: the paper's deployment (one tuple per run-day:
// 100 forecasts x 1 year ~= 36,500 rows) and a fleet-scale table (1,000
// forecasts x 365 days = 365,000 rows) plus an obs-spans-shaped
// telemetry table, the sizes the columnar engine is built for. See
// bench/perf_statsdb.cc for the engine-vs-engine comparison; these track
// absolute end-to-end latencies through the production SQL path.

#include <benchmark/benchmark.h>

#include "logdata/loader.h"
#include "obs/statsdb_bridge.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "statsdb/csv_io.h"
#include "statsdb/database.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/planner.h"
#include "statsdb/sql.h"
#include "util/rng.h"

namespace {

using namespace ff;

std::vector<logdata::LogRecord> MakeRecords(int n_forecasts, int n_days) {
  util::Rng rng(7);
  std::vector<logdata::LogRecord> out;
  out.reserve(static_cast<size_t>(n_forecasts) * n_days);
  for (int f = 0; f < n_forecasts; ++f) {
    for (int d = 1; d <= n_days; ++d) {
      logdata::LogRecord r;
      r.forecast = "forecast-" + std::to_string(f);
      r.region = "region-" + std::to_string(f % 20);
      r.day = d;
      r.node = "f" + std::to_string(f % 6 + 1);
      r.code_version = "v" + std::to_string(d / 60);
      r.mesh_sides = 5000 + (f % 26) * 1000;
      r.timesteps = f % 2 ? 5760 : 2880;
      r.start_time = d * 86400.0 + 3600.0;
      r.walltime = rng.Uniform(20000.0, 80000.0);
      r.end_time = r.start_time + r.walltime;
      r.status = logdata::RunStatus::kCompleted;
      out.push_back(std::move(r));
    }
  }
  return out;
}

statsdb::Database* SharedDb() {
  static statsdb::Database* db = [] {
    auto* d = new statsdb::Database();
    auto table = logdata::LoadRuns(d, MakeRecords(100, 365));
    if (!table.ok()) std::abort();
    return d;
  }();
  return db;
}

// Fleet scale: 1,000 forecasts x 365 days.
statsdb::Database* FleetDb() {
  static statsdb::Database* db = [] {
    auto* d = new statsdb::Database();
    auto table = logdata::LoadRuns(d, MakeRecords(1000, 365));
    if (!table.ok()) std::abort();
    return d;
  }();
  return db;
}

// An obs-spans-shaped telemetry table (statsdb_bridge schema), the other
// fleet-scale producer: one task span per machine slot per tick.
statsdb::Database* SpansDb() {
  static statsdb::Database* db = [] {
    auto* d = new statsdb::Database();
    obs::TraceRecorder trace;
    util::Rng rng(11);
    for (int i = 0; i < 200000; ++i) {
      double t0 = i * 0.5;
      auto id = trace.BeginSpan(
          t0, i % 8 == 0 ? obs::SpanCategory::kRun : obs::SpanCategory::kTask,
          "task-" + std::to_string(i % 40),
          "machine-" + std::to_string(i % 64), 0);
      trace.EndSpan(id, t0 + rng.Uniform(0.1, 600.0));
    }
    auto table = obs::LoadSpans(trace, d);
    if (!table.ok()) std::abort();
    return d;
  }();
  return db;
}

// Bulk columnar ingest (Table::BulkAppender): cells land directly in the
// typed column vectors. Arg = forecasts; 1000 is the fleet-scale point
// (365k records per iteration).
void BM_LoadRuns(benchmark::State& state) {
  auto records = MakeRecords(static_cast<int>(state.range(0)), 365);
  for (auto _ : state) {
    statsdb::Database db;
    auto table = logdata::LoadRuns(&db, records);
    benchmark::DoNotOptimize(table.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_LoadRuns)->Arg(10)->Arg(50)->Arg(100)->Arg(1000);

// Row-at-a-time ingest of the same records through Table::Insert, the
// path LoadRuns used before the bulk appender; the gap is the ingest
// speedup bulk columnar append buys.
void BM_LoadRunsRowAtATime(benchmark::State& state) {
  auto records = MakeRecords(static_cast<int>(state.range(0)), 365);
  for (auto _ : state) {
    statsdb::Database db;
    auto table = logdata::LoadRuns(&db, {});
    if (!table.ok()) std::abort();
    for (const auto& r : records) {
      if (!logdata::AppendRun(*table, r).ok()) std::abort();
    }
    benchmark::DoNotOptimize((*table)->rows().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_LoadRunsRowAtATime)->Arg(10)->Arg(100);

void BM_PaperQuery_CodeVersion(benchmark::State& state) {
  auto* db = SharedDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT DISTINCT forecast FROM runs WHERE code_version = 'v2'");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_PaperQuery_CodeVersion);

void BM_PaperQuery_EstimationAverage(benchmark::State& state) {
  auto* db = SharedDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT AVG(walltime) AS w FROM runs WHERE forecast = "
        "'forecast-17' AND node = 'f6' AND timesteps = 5760");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_PaperQuery_EstimationAverage);

void BM_GroupByForecast(benchmark::State& state) {
  auto* db = SharedDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT forecast, COUNT(*) AS n, AVG(walltime) AS w FROM runs "
        "GROUP BY forecast");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_GroupByForecast);

void BM_IndexedLookup(benchmark::State& state) {
  auto* db = SharedDb();
  auto table = db->table("runs");
  if (!table.ok()) std::abort();
  for (auto _ : state) {
    auto rows = (*table)->Lookup(
        "forecast", statsdb::Value::String("forecast-42"));
    if (!rows.ok()) std::abort();
    benchmark::DoNotOptimize(rows->size());
  }
}
BENCHMARK(BM_IndexedLookup);

void BM_OrderByLimit(benchmark::State& state) {
  auto* db = SharedDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT day, walltime FROM runs WHERE forecast = 'forecast-3' "
        "ORDER BY day DESC LIMIT 7");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_OrderByLimit);

void BM_InsertRow(benchmark::State& state) {
  statsdb::Database db;
  auto table = logdata::LoadRuns(&db, {});
  if (!table.ok()) std::abort();
  logdata::LogRecord r = MakeRecords(1, 1)[0];
  int64_t day = 0;
  for (auto _ : state) {
    r.day = ++day;
    if (!logdata::AppendRun(*table, r).ok()) std::abort();
  }
}
BENCHMARK(BM_InsertRow);

void BM_CsvExport(benchmark::State& state) {
  statsdb::Database db;
  auto table = logdata::LoadRuns(&db, MakeRecords(10, 365));
  if (!table.ok()) std::abort();
  for (auto _ : state) {
    std::string csv = statsdb::TableToCsv(**table);
    benchmark::DoNotOptimize(csv.size());
  }
}
BENCHMARK(BM_CsvExport);

// ---------------------------------------------------------- fleet scale

void BM_Fleet_CodeVersionScan(benchmark::State& state) {
  auto* db = FleetDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT DISTINCT forecast FROM runs WHERE code_version = 'v2'");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Fleet_CodeVersionScan);

void BM_Fleet_GroupByNode(benchmark::State& state) {
  auto* db = FleetDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT node, COUNT(*) AS n, AVG(walltime) AS w FROM runs "
        "WHERE day BETWEEN 180 AND 210 GROUP BY node");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Fleet_GroupByNode);

void BM_Fleet_TopKWalltime(benchmark::State& state) {
  auto* db = FleetDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT forecast, day, walltime FROM runs "
        "ORDER BY walltime DESC LIMIT 20");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Fleet_TopKWalltime);

void BM_Spans_P95PerTrack(benchmark::State& state) {
  auto* db = SpansDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT track, COUNT(*) AS n, P95(duration_s) AS p95_s "
        "FROM spans WHERE category = 'task' GROUP BY track");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Spans_P95PerTrack);

// ------------------------------------------- morsel-parallel executor
// Arg = worker threads; the 1-thread point is the serial fallback, so
// the curve shows fan-out cost and scaling on one chart. Outputs are
// byte-identical to serial at every point (the executor's contract;
// enforced in tests/property and perf_statsdb, not re-checked here).

void BM_Fleet_GroupByNodeParallel(benchmark::State& state) {
  auto* db = FleetDb();
  size_t threads = static_cast<size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  statsdb::ParallelConfig cfg;
  cfg.max_threads = threads;
  cfg.pool = threads > 1 ? &pool : nullptr;
  cfg.min_chunks = 2;
  auto plan = statsdb::PlanSql(
      "SELECT node, COUNT(*) AS n, AVG(walltime) AS w FROM runs "
      "GROUP BY node");
  if (!plan.ok()) std::abort();
  statsdb::PlanPtr optimized = statsdb::OptimizePlan(*plan, *db);
  for (auto _ : state) {
    auto rs = statsdb::ExecuteParallel(optimized, *db, cfg);
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Fleet_GroupByNodeParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Fleet_TopKWalltimeParallel(benchmark::State& state) {
  auto* db = FleetDb();
  size_t threads = static_cast<size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  statsdb::ParallelConfig cfg;
  cfg.max_threads = threads;
  cfg.pool = threads > 1 ? &pool : nullptr;
  cfg.min_chunks = 2;
  auto plan = statsdb::PlanSql(
      "SELECT forecast, day, walltime FROM runs "
      "ORDER BY walltime DESC LIMIT 20");
  if (!plan.ok()) std::abort();
  statsdb::PlanPtr optimized = statsdb::OptimizePlan(*plan, *db);
  for (auto _ : state) {
    auto rs = statsdb::ExecuteParallel(optimized, *db, cfg);
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Fleet_TopKWalltimeParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Parallel bulk ingest: record-to-row conversion fans out over slices,
// the BulkAppender drains them in order (loader.h). 365k records.
void BM_LoadRunsParallel(benchmark::State& state) {
  auto records = MakeRecords(1000, 365);
  size_t threads = static_cast<size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    statsdb::Database db;
    auto table =
        logdata::LoadRuns(&db, records, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(table.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_LoadRunsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Spans_SlowTasks(benchmark::State& state) {
  auto* db = SpansDb();
  for (auto _ : state) {
    auto rs = db->Sql(
        "SELECT name, track, duration_s FROM spans "
        "WHERE category = 'task' AND duration_s > 590.0 "
        "ORDER BY duration_s DESC LIMIT 50");
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_Spans_SlowTasks);

}  // namespace

BENCHMARK_MAIN();
