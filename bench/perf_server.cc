// Served statsdb throughput and tail latency over the loopback wire.
//
// The PR's claim: serving the statistics database over the binary wire
// protocol (net/wire.h) keeps the dashboard repeat path fast END TO END
// — not just inside the engine. The bench stands up a real Server on
// 127.0.0.1 (4-worker session pool, query cache defaulted full) and
// drives it with concurrent client threads, each owning one connection,
// through three dashboard shapes:
//
//   point — SELECT walltime FROM runs WHERE forecast = ? AND day = ?
//           (hash-index probe; one row)
//   agg   — per-node COUNT/AVG for one forecast, grouped and ordered
//   topk  — a forecast's 10 slowest days (bounded-heap ORDER BY LIMIT)
//
// Each shape is measured two ways, interleaved client-for-client:
//
//   naive     — query cache OFF, statement text re-sent and re-planned
//               per request, result framed one row per frame with one
//               send() per row (kFlagRowAtATime): the wire equivalent
//               of the row-at-a-time reference engine.
//   optimized — cache full, statement Prepared once per client and
//               executed by id with bound params, result shipped as one
//               columnar kResultSet frame in one send().
//
// plus a PIPELINED throughput mode: the optimized path with a window of
// 32 requests in flight per connection (the session's frame queue
// executes strictly in order, so responses stream back while later
// requests are still in the socket) — the loopback round trip stops
// being the bottleneck and the server's actual per-request cost shows.
//
// Every synchronous request's wall time is recorded and summarized with
// EXACT percentiles (bench_common.h ExactPercentile: sort + rank, no
// interpolation) — P50/P95/P99 are latencies that actually happened.
// Acceptance floor: pipelined prepared+cached point-lookup throughput
// must be >= 5x naive (armed outside --smoke; the PR's headline claim).
// Correctness gates (always armed): for each shape, the batched
// columnar result, the row-at-a-time result and the prepared-execute
// result must render byte-identical CSV.
//
// Self-observation: the server's per-stage histograms (queue-wait /
// exec / serialize / send, PR 8 runtime primitives) and its pool
// profile go into the JSON + the *_runtime.txt artifact, and the bench
// reads runtime_cache / runtime_sessions back OVER THE WIRE after a
// kRefreshStats — the served-dashboard story observing itself.
//
// Usage: perf_server [--smoke] [json_path]
// Output: labelled CSV on stdout, BENCH_server.json (default path).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "logdata/loader.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/profiler.h"
#include "util/rng.h"

namespace ff {
namespace {

using bench::LatencyQuantiles;
using statsdb::Value;

// Same fleet-scale shape as perf_statsdb's runs table (day-outer load).
std::vector<logdata::LogRecord> MakeRecords(int n_forecasts, int n_days) {
  util::Rng rng(7);
  std::vector<logdata::LogRecord> out;
  out.reserve(static_cast<size_t>(n_forecasts) * n_days);
  for (int d = 1; d <= n_days; ++d) {
    for (int f = 0; f < n_forecasts; ++f) {
      logdata::LogRecord r;
      r.forecast = "forecast-" + std::to_string(f);
      r.region = "region-" + std::to_string(f % 20);
      r.day = d;
      r.node = "f" + std::to_string(f % 6 + 1);
      r.code_version = "v" + std::to_string(d / 60);
      r.mesh_sides = 5000 + (f % 26) * 1000;
      r.timesteps = f % 2 ? 5760 : 2880;
      r.start_time = d * 86400.0 + 3600.0;
      r.walltime = rng.Uniform(20000.0, 80000.0);
      r.end_time = r.start_time + r.walltime;
      r.status = logdata::RunStatus::kCompleted;
      out.push_back(std::move(r));
    }
  }
  return out;
}

struct Shape {
  const char* name;
  const char* prepared_sql;  // with ? placeholders
  // Bound params for request i (cycling a small hot set, as a dashboard
  // polling a handful of forecasts does).
  std::function<std::vector<Value>(size_t)> params;
  // The same statement as literal text (the naive client re-sends text).
  std::function<std::string(size_t)> text;
};

std::string ForecastName(size_t i) {
  return "forecast-" + std::to_string(i % 8);
}
int64_t DayOf(size_t i) { return static_cast<int64_t>(i % 28) + 1; }

std::vector<Shape> MakeShapes() {
  return {
      {"point",
       "SELECT walltime FROM runs WHERE forecast = ? AND day = ?",
       [](size_t i) {
         return std::vector<Value>{Value::String(ForecastName(i)),
                                   Value::Int64(DayOf(i))};
       },
       [](size_t i) {
         return "SELECT walltime FROM runs WHERE forecast = '" +
                ForecastName(i) + "' AND day = " + std::to_string(DayOf(i));
       }},
      {"agg",
       "SELECT node, COUNT(*) AS n, AVG(walltime) AS avg_w FROM runs "
       "WHERE forecast = ? GROUP BY node ORDER BY node",
       [](size_t i) {
         return std::vector<Value>{Value::String(ForecastName(i))};
       },
       [](size_t i) {
         return "SELECT node, COUNT(*) AS n, AVG(walltime) AS avg_w "
                "FROM runs WHERE forecast = '" +
                ForecastName(i) + "' GROUP BY node ORDER BY node";
       }},
      {"topk",
       "SELECT day, walltime FROM runs WHERE forecast = ? "
       "ORDER BY walltime DESC LIMIT 10",
       [](size_t i) {
         return std::vector<Value>{Value::String(ForecastName(i))};
       },
       [](size_t i) {
         return "SELECT day, walltime FROM runs WHERE forecast = '" +
                ForecastName(i) +
                "' ORDER BY walltime DESC LIMIT 10";
       }},
  };
}

struct PhaseResult {
  size_t requests = 0;
  double wall_ms = 0.0;
  LatencyQuantiles lat;  // per-request ms
  double qps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(requests) / wall_ms
                         : 0.0;
  }
};

/// Runs `clients` threads, each connecting its own session and calling
/// `run(client_index, &latencies_ms)`; returns merged latencies + wall.
PhaseResult RunPhase(
    size_t clients,
    const std::function<void(size_t, std::vector<double>*)>& run) {
  std::vector<std::vector<double>> lats(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] { run(c, &lats[c]); });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  PhaseResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<double> merged;
  for (auto& l : lats) {
    out.requests += l.size();
    merged.insert(merged.end(), l.begin(), l.end());
  }
  out.lat = bench::SummarizeLatencies(std::move(merged));
  return out;
}

double TimedMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::atomic<int> g_errors{0};

void Fail(const char* where, const util::Status& st) {
  std::fprintf(stderr, "%s: %s\n", where, st.ToString().c_str());
  g_errors.fetch_add(1, std::memory_order_relaxed);
}

std::string QuantilesJson(const PhaseResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"requests\": %zu, \"qps\": %.0f, \"mean_ms\": %.4f, "
                "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
                "\"max_ms\": %.4f}",
                r.requests, r.qps(), r.lat.mean, r.lat.p50, r.lat.p95,
                r.lat.p99, r.lat.max);
  return buf;
}

std::string StageJson(const obs::RuntimeHistogram& h) {
  const obs::RuntimeHistogram::Snapshot s = h.Snap();
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean_us\": %.1f, \"p50_us\": %.1f, "
                "\"p95_us\": %.1f}",
                static_cast<unsigned long long>(s.count), s.MeanNs() / 1e3,
                s.QuantileNs(0.5) / 1e3, s.QuantileNs(0.95) / 1e3);
  return buf;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const int kForecasts = smoke ? 20 : 100;
  const int kDays = smoke ? 60 : 365;
  const size_t kClients = smoke ? 2 : 4;
  const size_t kPointReqs = smoke ? 100 : 2000;  // per client
  const size_t kHeavyReqs = smoke ? 30 : 400;    // agg/topk per client
  const size_t kWarmup = 64;  // optimized-phase per-client warmup
  const double kFloor = 5.0;  // optimized point qps over naive

  net::ServerConfig scfg;
  scfg.pool_threads = 4;
  net::Server server(scfg);
  {
    auto records = MakeRecords(kForecasts, kDays);
    auto table = logdata::LoadRuns(&server.db(), records);
    if (!table.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
  }
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  const auto shapes = MakeShapes();

  // Correctness gates: batched == row-at-a-time == prepared, per shape,
  // across a cycle of the param set. Armed in smoke too — these are
  // cheap and non-negotiable.
  bool identical = true;
  {
    auto client = net::Client::Connect("127.0.0.1", port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    for (const auto& shape : shapes) {
      auto prep = client->Prepare(shape.prepared_sql);
      if (!prep.ok()) {
        Fail(shape.name, prep.status());
        break;
      }
      for (size_t i = 0; i < 8; ++i) {
        auto batch = client->Query(shape.text(i));
        auto rows = client->QueryRows(shape.text(i));
        auto prepped = client->ExecutePrepared(*prep, shape.params(i));
        if (!batch.ok() || !rows.ok() || !prepped.ok()) {
          Fail(shape.name, !batch.ok() ? batch.status()
                           : !rows.ok() ? rows.status()
                                        : prepped.status());
          identical = false;
          break;
        }
        const std::string want = batch->ToCsv();
        if (rows->ToCsv() != want || prepped->ToCsv() != want) {
          std::fprintf(stderr,
                       "%s: row-framed / prepared results diverge from the "
                       "batched frame\n",
                       shape.name);
          identical = false;
        }
      }
      if (auto st = client->ClosePrepared(*prep); !st.ok()) {
        Fail(shape.name, st);
      }
    }
  }

  struct ShapeResult {
    std::string name;
    PhaseResult naive, optimized, pipelined;
  };
  std::vector<ShapeResult> results;

  statsdb::CacheConfig cache_off;  // mode kOff
  statsdb::CacheConfig cache_full;
  cache_full.mode = statsdb::CacheConfig::Mode::kFull;

  for (const auto& shape : shapes) {
    const size_t reqs =
        std::string(shape.name) == "point" ? kPointReqs : kHeavyReqs;
    ShapeResult sr;
    sr.name = shape.name;

    // Naive: cache off, text per request, one frame (and send) per row.
    auto st = server.SubmitWrite([&] {
      server.db().set_cache_config(cache_off);
      server.db().cache().Clear();
      return util::Status::OK();
    });
    if (!st.ok()) Fail("cache off", st);
    sr.naive = RunPhase(kClients, [&](size_t c, std::vector<double>* lat) {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) return Fail("connect", client.status());
      for (size_t i = 0; i < reqs; ++i) {
        const std::string sql = shape.text(c + i);
        double ms = TimedMs([&] {
          auto rs = client->QueryRows(sql);
          if (!rs.ok()) Fail("naive query", rs.status());
        });
        lat->push_back(ms);
      }
    });

    // Optimized: cache full, prepared once, batched columnar frames.
    st = server.SubmitWrite([&] {
      server.db().set_cache_config(cache_full);
      return util::Status::OK();
    });
    if (!st.ok()) Fail("cache full", st);
    sr.optimized =
        RunPhase(kClients, [&](size_t c, std::vector<double>* lat) {
          auto client = net::Client::Connect("127.0.0.1", port);
          if (!client.ok()) return Fail("connect", client.status());
          auto prep = client->Prepare(shape.prepared_sql);
          if (!prep.ok()) return Fail("prepare", prep.status());
          for (size_t i = 0; i < kWarmup; ++i) {
            auto rs = client->ExecutePrepared(*prep, shape.params(c + i));
            if (!rs.ok()) return Fail("warmup", rs.status());
          }
          for (size_t i = 0; i < reqs; ++i) {
            const auto params = shape.params(c + i);
            double ms = TimedMs([&] {
              auto rs = client->ExecutePrepared(*prep, params);
              if (!rs.ok()) Fail("prepared query", rs.status());
            });
            lat->push_back(ms);
          }
        });

    // Pipelined: same prepared+cached path, but a window of requests in
    // flight per connection — the session's frame queue executes them
    // in order, so responses stream back while later requests are still
    // in the socket. This is the throughput mode (per-request latency
    // is not well-defined here; the percentiles above come from the
    // synchronous phase).
    const size_t kWindow = 32;
    sr.pipelined =
        RunPhase(kClients, [&](size_t c, std::vector<double>* lat) {
          auto client = net::Client::Connect("127.0.0.1", port);
          if (!client.ok()) return Fail("connect", client.status());
          auto prep = client->Prepare(shape.prepared_sql);
          if (!prep.ok()) return Fail("prepare", prep.status());
          size_t sent = 0, received = 0;
          while (received < reqs) {
            while (sent < reqs && sent - received < kWindow) {
              if (auto st = client->SendExecute(*prep, shape.params(c + sent));
                  !st.ok()) {
                return Fail("pipelined send", st);
              }
              ++sent;
            }
            auto rs = client->ReadResult();
            if (!rs.ok()) return Fail("pipelined read", rs.status());
            lat->push_back(0.0);  // counted; latency comes from sync phase
            ++received;
          }
        });
    results.push_back(std::move(sr));
  }

  // Read the server's own runtime tables back over the wire.
  std::string cache_csv, sessions_summary;
  size_t sessions_seen = 0;
  {
    auto client = net::Client::Connect("127.0.0.1", port);
    if (!client.ok()) {
      Fail("connect", client.status());
    } else {
      if (auto st = client->RefreshServerStats(); !st.ok()) {
        Fail("refresh stats", st);
      }
      auto cache_rs = client->Query(
          "SELECT tier, hits, misses, entries FROM runtime_cache "
          "ORDER BY tier");
      if (cache_rs.ok()) cache_csv = cache_rs->ToCsv();
      else Fail("runtime_cache", cache_rs.status());
      auto sess_rs = client->Query(
          "SELECT COUNT(*) AS sessions, SUM(queries) AS queries, "
          "SUM(errors) AS errors, SUM(rows_out) AS rows_out "
          "FROM runtime_sessions");
      if (sess_rs.ok()) {
        sessions_summary = sess_rs->ToCsv();
        if (!sess_rs->rows.empty()) {
          sessions_seen =
              static_cast<size_t>(sess_rs->rows[0][0].int64_value());
        }
      } else {
        Fail("runtime_sessions", sess_rs.status());
      }
    }
  }
  // Every phase opened kClients sessions; all must be in the registry.
  const size_t min_sessions = 2 + shapes.size() * 3 * kClients;
  bool sessions_ok = sessions_seen >= min_sessions;
  if (!sessions_ok) {
    std::fprintf(stderr,
                 "runtime_sessions reports %zu sessions, expected >= %zu\n",
                 sessions_seen, min_sessions);
  }

  const obs::PoolRuntimeProfile pool_profile = server.pool().RuntimeProfile();
  const net::RequestBreakdown& bd = server.breakdown();

  std::printf("shape,mode,requests,qps,mean_ms,p50_ms,p95_ms,p99_ms,max_ms\n");
  bool ok = identical && sessions_ok && g_errors.load() == 0;
  std::string json_rows;
  for (const auto& r : results) {
    for (const auto* mode : {"naive", "optimized"}) {
      const PhaseResult& p =
          std::strcmp(mode, "naive") == 0 ? r.naive : r.optimized;
      std::printf("%s,%s,%zu,%.0f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                  r.name.c_str(), mode, p.requests, p.qps(), p.lat.mean,
                  p.lat.p50, p.lat.p95, p.lat.p99, p.lat.max);
    }
    std::printf("%s,pipelined,%zu,%.0f,,,,,\n", r.name.c_str(),
                r.pipelined.requests, r.pipelined.qps());
    const double sync_speedup =
        r.naive.qps() > 0.0 ? r.optimized.qps() / r.naive.qps() : 0.0;
    const double speedup =
        r.naive.qps() > 0.0 ? r.pipelined.qps() / r.naive.qps() : 0.0;
    const bool floor_armed = !smoke && r.name == "point";
    if (floor_armed && speedup < kFloor) {
      std::fprintf(stderr,
                   "%s: pipelined throughput only %.1fx naive, below the "
                   "%.0fx floor\n",
                   r.name.c_str(), speedup, kFloor);
      ok = false;
    }
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "    {\"shape\": \"%s\", \"naive\": %s, "
                  "\"optimized\": %s, "
                  "\"pipelined\": {\"requests\": %zu, \"qps\": %.0f}, "
                  "\"sync_speedup\": %.2f, \"qps_speedup\": %.2f, "
                  "\"floor_armed\": %s}",
                  r.name.c_str(), QuantilesJson(r.naive).c_str(),
                  QuantilesJson(r.optimized).c_str(), r.pipelined.requests,
                  r.pipelined.qps(), sync_speedup, speedup,
                  floor_armed ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += buf;
  }
  std::printf("# results identical across framings: %s\n",
              identical ? "yes" : "NO");
  std::printf("# runtime_cache over the wire:\n%s", cache_csv.c_str());
  std::printf("# runtime_sessions over the wire (%zu sessions):\n%s",
              sessions_seen, sessions_summary.c_str());

  // Per-stage breakdown + pool summary -> stdout and *_runtime.txt.
  const std::string pool_summary = obs::PoolRuntimeSummary(pool_profile);
  obs::LogRuntimeSummary("perf_server", pool_summary);
  {
    const std::string runtime_path = bench::RuntimeSummaryPath(json_path);
    std::FILE* rf = std::fopen(runtime_path.c_str(), "w");
    if (rf != nullptr) {
      std::fprintf(rf, "== request stage breakdown ==\n");
      struct StageRow {
        const char* name;
        const obs::RuntimeHistogram* h;
      };
      for (const StageRow& srow :
           {StageRow{"queue_wait", &bd.queue_wait_ns},
            StageRow{"exec", &bd.exec_ns},
            StageRow{"serialize", &bd.serialize_ns},
            StageRow{"send", &bd.send_ns}}) {
        const auto s = srow.h->Snap();
        std::fprintf(rf,
                     "%-10s count=%llu mean=%s p50=%s p95=%s\n", srow.name,
                     static_cast<unsigned long long>(s.count),
                     obs::FormatNsAsMs(static_cast<uint64_t>(s.MeanNs()))
                         .c_str(),
                     obs::FormatNsAsMs(
                         static_cast<uint64_t>(s.QuantileNs(0.5)))
                         .c_str(),
                     obs::FormatNsAsMs(
                         static_cast<uint64_t>(s.QuantileNs(0.95)))
                         .c_str());
      }
      std::fprintf(rf, "== session pool lifetime ==\n%s",
                   pool_summary.c_str());
      std::fprintf(rf, "== runtime_cache (served) ==\n%s",
                   cache_csv.c_str());
      std::fprintf(rf, "== runtime_sessions (served) ==\n%s",
                   sessions_summary.c_str());
      std::fclose(rf);
      std::printf("# wrote %s\n", runtime_path.c_str());
    }
  }

  server.Stop();

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"perf_server\",\n"
      "  \"smoke\": %s,\n"
      "  \"table_rows\": %d,\n"
      "  \"clients\": %zu,\n  \"pool_threads\": %zu,\n"
      "  \"qps_floor\": %.0f,\n"
      "  \"identical\": %s,\n  \"sessions_seen\": %zu,\n"
      "  \"breakdown\": {\"queue_wait\": %s, \"exec\": %s, "
      "\"serialize\": %s, \"send\": %s},\n"
      "  \"runtime\": %s,\n"
      "  \"shapes\": [\n%s\n  ]\n}\n",
      smoke ? "true" : "false", kForecasts * kDays, kClients,
      scfg.pool_threads, kFloor, identical ? "true" : "false",
      sessions_seen, StageJson(bd.queue_wait_ns).c_str(),
      StageJson(bd.exec_ns).c_str(), StageJson(bd.serialize_ns).c_str(),
      StageJson(bd.send_ns).c_str(),
      bench::RuntimePoolJson(&pool_profile).c_str(), json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s%s\n", json_path, smoke ? " (smoke)" : "");
  return ok ? 0 : 2;
}
