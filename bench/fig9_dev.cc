// Figure 9 — "Effects of code changes and mesh changes on the dev
// forecast" (walltime vs day of year, days 140-270 of 2005).
//
// Documented history, re-enacted by the campaign driver:
//   * around day 150: mesh + code version change, walltime drops
//     ~5,000 s (~1.5 h);
//   * around day 160: major simulation-code version change, walltime
//     rises by over 26,000 s (7+ h);
//   * around day 180: another code change, ~7,000 s (~2 h) faster;
//   * days 172 and 192: transient spikes from CPU contention with other
//     forecasts sharing the node.

#include "bench/bench_common.h"
#include "factory/campaign.h"
#include "logdata/timeseries.h"
#include "util/strings.h"

using namespace ff;

int main() {
  bench::PrintHeader("Figure 9",
                     "dev forecast walltime, days 140-270 of 2005");

  factory::CampaignConfig cfg;
  cfg.num_days = 131;  // days 140..270
  cfg.first_day = 140;
  cfg.noise_sigma = 0.015;
  cfg.seed = 4242;
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 6; ++i) {
    if (!campaign.AddNode("f" + std::to_string(i)).ok()) return 1;
  }

  auto dev = workload::MakeDevForecast();
  dev.mesh_sides = 24000;  // pre-change level ~60,000 s
  if (!campaign.AddForecast(dev, "f2").ok()) return 1;
  // A companion production forecast occupies f2's second CPU; guests on
  // spike days then force three-way sharing.
  util::Rng rng(11);
  auto fleet = workload::MakeCorieFleet(4, &rng);
  fleet[0].name = "forecast-companion";
  if (!campaign.AddForecast(fleet[0], "f2").ok()) return 1;

  auto at = [&](int day_of_year) { return day_of_year - cfg.first_day; };

  // ~Day 150: mesh change + code version change, ~5,000 s faster.
  factory::ChangeEvent mesh;
  mesh.day = at(150);
  mesh.kind = factory::ChangeEvent::Kind::kSetMeshSides;
  mesh.forecast = dev.name;
  mesh.int_value = 23000;
  campaign.AddEvent(mesh);
  factory::ChangeEvent code1;
  code1.day = at(150);
  code1.kind = factory::ChangeEvent::Kind::kSetCodeVersion;
  code1.forecast = dev.name;
  code1.str_value = "dev-1.1";
  code1.factor = 0.96;
  campaign.AddEvent(code1);

  // ~Day 160: major version change, +26,000 s.
  factory::ChangeEvent code2;
  code2.day = at(160);
  code2.kind = factory::ChangeEvent::Kind::kSetCodeVersion;
  code2.forecast = dev.name;
  code2.str_value = "dev-2.0";
  code2.factor = 1.431;
  campaign.AddEvent(code2);

  // ~Day 180: code change, ~7,000 s faster.
  factory::ChangeEvent code3;
  code3.day = at(180);
  code3.kind = factory::ChangeEvent::Kind::kSetCodeVersion;
  code3.forecast = dev.name;
  code3.str_value = "dev-2.1";
  code3.factor = 1.304;
  campaign.AddEvent(code3);

  // Days 172 and 192: contention spikes — two guest runs each land on
  // dev's node for one day.
  for (int spike_day : {172, 192}) {
    for (int g = 0; g < 2; ++g) {
      factory::ChangeEvent guest;
      guest.day = at(spike_day);
      guest.kind = factory::ChangeEvent::Kind::kGuestLoad;
      guest.str_value = "f2";
      guest.factor = 22000.0;
      campaign.AddEvent(guest);
    }
  }

  auto result = campaign.Run();
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nday_of_year,walltime_s\n");
  std::vector<double> walltimes;
  for (const auto& s : result->walltimes.at(dev.name)) {
    std::printf("%d,%.0f\n", s.day, s.walltime);
    walltimes.push_back(s.walltime);
  }

  auto level = [&](int lo, int hi) {
    double sum = 0.0;
    int n = 0;
    for (const auto& s : result->walltimes.at(dev.name)) {
      if (s.day >= lo && s.day <= hi && s.day != 172 && s.day != 173 &&
          s.day != 192 && s.day != 193) {
        sum += s.walltime;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  auto day_value = [&](int day) {
    for (const auto& s : result->walltimes.at(dev.name)) {
      if (s.day == day) return s.walltime;
    }
    return 0.0;
  };

  double l0 = level(140, 149), l1 = level(151, 159), l2 = level(161, 179),
         l3 = level(181, 270);

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured("level days 140-149", "~60,000 s",
                              util::StrFormat("%.0f s", l0));
  bench::PrintPaperVsMeasured("shift at ~day 150 (mesh+code)", "-5,000 s",
                              util::StrFormat("%+.0f s", l1 - l0));
  bench::PrintPaperVsMeasured("shift at ~day 160 (major version)",
                              "+26,000 s",
                              util::StrFormat("%+.0f s", l2 - l1));
  bench::PrintPaperVsMeasured("shift at ~day 180 (code change)",
                              "-7,000 s",
                              util::StrFormat("%+.0f s", l3 - l2));
  bench::PrintPaperVsMeasured(
      "spike day 172 (contention)", "transient spike",
      util::StrFormat("%.0f s (level %.0f s)", day_value(172), l2));
  bench::PrintPaperVsMeasured(
      "spike day 192 (contention)", "transient spike",
      util::StrFormat("%.0f s (level %.0f s)", day_value(192), l3));

  std::printf("\nLog-analysis view (§4.3):\n%s",
              logdata::AnalyzeSeries(walltimes, cfg.first_day,
                                     /*window=*/5, /*min_shift=*/4000.0,
                                     /*z_threshold=*/6.0)
                  .c_str());
  return 0;
}
