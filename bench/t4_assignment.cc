// T4 — §4.1 node assignment: ForeMan "can approximate an optimal
// assignment of workflows to available nodes, using bin-packing
// heuristics and periodic scheduling techniques", replacing the manual
// process where "this process may be repeated for several days until a
// good mapping is found".
//
// Compares assignment heuristics (and the manual-style baselines) on the
// production fleet at the paper's current scale (10 runs, 6 dual-CPU
// nodes) and at the projected 50-100 run scale, by predicted makespan and
// deadline misses. Also reports the priority policy (delay/drop) under
// an induced capacity crunch.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/planner.h"
#include "parallel/sweep.h"
#include "util/strings.h"

using namespace ff;

namespace {

std::vector<core::NodeInfo> Plant(int n) {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= n; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  return nodes;
}

std::vector<core::RunRequest> Fleet(int n, uint64_t seed) {
  util::Rng rng(seed);
  auto specs = workload::MakeCorieFleet(n, &rng);
  workload::CostModel model;
  std::vector<core::RunRequest> reqs;
  for (const auto& s : specs) {
    core::RunRequest r;
    r.name = s.name;
    r.work = model.TotalCpuSeconds(s);
    r.priority = s.priority;
    r.earliest_start = s.earliest_start;
    r.deadline = s.deadline;
    reqs.push_back(r);
  }
  return reqs;
}

// A "previous day" layout concentrated on few nodes (the manual regime:
// "each programmer typically has exclusive use of a subset of the
// nodes").
std::map<std::string, std::string> ManualLayout(
    const std::vector<core::RunRequest>& reqs, int n_nodes) {
  std::map<std::string, std::string> out;
  int half = std::max(1, n_nodes / 2);
  int i = 0;
  for (const auto& r : reqs) {
    out[r.name] = "f" + std::to_string(i % half + 1);
    ++i;
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("T4",
                     "run->node assignment heuristics vs manual baselines "
                     "(§4.1)");

  std::printf(
      "\nfleet,nodes,heuristic,makespan_s,deadline_misses,dropped,"
      "max_rel_load\n");
  // The 21-cell grid (3 scales x 7 heuristics) fans out one cell per
  // sweep replica: every cell rebuilds its fleet from its own fixed seed,
  // so the rows come back in grid order whatever the worker schedule.
  // Recording is off — this table is byte-compared against the seed.
  struct GridCase {
    int n_runs;
    int n_nodes;
    core::PackHeuristic h;
  };
  struct GridResult {
    bool ok = false;
    std::string error;
    double makespan = 0.0;
    int misses = 0;
    int dropped = 0;
    double max_rel_load = 0.0;
  };
  std::vector<GridCase> cases;
  for (auto [n_runs, n_nodes] :
       {std::pair<int, int>{10, 6}, {50, 15}, {100, 30}}) {
    for (core::PackHeuristic h :
         {core::PackHeuristic::kPreviousDay, core::PackHeuristic::kRandom,
          core::PackHeuristic::kRoundRobin, core::PackHeuristic::kFirstFit,
          core::PackHeuristic::kFirstFitDecreasing,
          core::PackHeuristic::kBestFitDecreasing,
          core::PackHeuristic::kLpt}) {
      cases.push_back(GridCase{n_runs, n_nodes, h});
    }
  }
  std::vector<GridResult> results(cases.size());
  parallel::SweepOptions sweep_opt;
  sweep_opt.record_traces = false;
  sweep_opt.record_metrics = false;
  parallel::SweepRunner runner(sweep_opt);
  runner.Run(cases.size(), [&](parallel::ReplicaContext& ctx) {
    const GridCase& c = cases[ctx.replica];
    auto reqs = Fleet(c.n_runs, static_cast<uint64_t>(c.n_runs));
    auto manual = ManualLayout(reqs, c.n_nodes);
    core::PlannerConfig cfg;
    cfg.heuristic = c.h;
    // The baselines report the raw packing without ForeMan's repair
    // loop, matching the manual world they stand in for.
    bool baseline = c.h == core::PackHeuristic::kPreviousDay ||
                    c.h == core::PackHeuristic::kRandom ||
                    c.h == core::PackHeuristic::kRoundRobin;
    if (baseline) {
      cfg.allow_move = false;
      cfg.allow_delay = false;
      cfg.allow_drop = false;
    }
    core::Planner planner(Plant(c.n_nodes), cfg);
    util::Rng rng(17);
    auto plan = planner.Plan(
        reqs, c.h == core::PackHeuristic::kPreviousDay ? &manual : nullptr,
        &rng);
    GridResult& r = results[ctx.replica];
    if (!plan.ok()) {
      r.error = plan.status().ToString();
      return;
    }
    r.ok = true;
    r.makespan = plan->makespan;
    r.misses = plan->deadline_misses;
    r.dropped = plan->dropped;
    r.max_rel_load = plan->max_relative_load;
  });
  for (size_t i = 0; i < cases.size(); ++i) {
    if (!results[i].ok) {
      std::printf("ERROR: %s\n", results[i].error.c_str());
      return 1;
    }
    std::printf("%d,%d,%s,%.0f,%d,%d,%.2f\n", cases[i].n_runs,
                cases[i].n_nodes, core::PackHeuristicName(cases[i].h),
                results[i].makespan, results[i].misses, results[i].dropped,
                results[i].max_rel_load);
  }

  // Priority policy under a capacity crunch: 12 runs on 2 nodes, one
  // escalation mode per replica.
  std::printf("\npriority policy under capacity crunch (12 runs, 2 nodes):\n");
  std::printf("policy,makespan_s,misses,dropped,delayed\n");
  struct CrunchResult {
    bool ok = false;
    double makespan = 0.0;
    int misses = 0;
    int dropped = 0;
    int delayed = 0;
  };
  std::vector<CrunchResult> crunch_results(3);
  runner.Run(crunch_results.size(), [&](parallel::ReplicaContext& ctx) {
    int mode = static_cast<int>(ctx.replica);
    core::PlannerConfig cfg;
    cfg.allow_move = true;
    cfg.allow_delay = mode >= 1;
    cfg.allow_drop = mode >= 2;
    core::Planner planner(Plant(2), cfg);
    auto plan = planner.Plan(Fleet(12, 5));
    if (!plan.ok()) return;
    crunch_results[ctx.replica] =
        CrunchResult{true, plan->makespan, plan->deadline_misses,
                     plan->dropped, plan->delayed};
  });
  for (int mode = 0; mode < 3; ++mode) {
    const CrunchResult& r = crunch_results[static_cast<size_t>(mode)];
    if (!r.ok) return 1;
    std::printf("%s,%.0f,%d,%d,%d\n",
                mode == 0 ? "move-only"
                          : (mode == 1 ? "move+delay" : "move+delay+drop"),
                r.makespan, r.misses, r.dropped, r.delayed);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "bin-packing vs manual placement", "fewer missed finish times",
      "see table: FFD/BFD/LPT rows dominate baselines");
  bench::PrintPaperVsMeasured(
      "priority forecasts", "may delay or drop lower priority",
      "drop/delay counts above");
  return 0;
}
