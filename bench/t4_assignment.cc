// T4 — §4.1 node assignment: ForeMan "can approximate an optimal
// assignment of workflows to available nodes, using bin-packing
// heuristics and periodic scheduling techniques", replacing the manual
// process where "this process may be repeated for several days until a
// good mapping is found".
//
// Compares assignment heuristics (and the manual-style baselines) on the
// production fleet at the paper's current scale (10 runs, 6 dual-CPU
// nodes) and at the projected 50-100 run scale, by predicted makespan and
// deadline misses. Also reports the priority policy (delay/drop) under
// an induced capacity crunch.

#include <vector>

#include "bench/bench_common.h"
#include "core/planner.h"
#include "util/strings.h"

using namespace ff;

namespace {

std::vector<core::NodeInfo> Plant(int n) {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= n; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  return nodes;
}

std::vector<core::RunRequest> Fleet(int n, uint64_t seed) {
  util::Rng rng(seed);
  auto specs = workload::MakeCorieFleet(n, &rng);
  workload::CostModel model;
  std::vector<core::RunRequest> reqs;
  for (const auto& s : specs) {
    core::RunRequest r;
    r.name = s.name;
    r.work = model.TotalCpuSeconds(s);
    r.priority = s.priority;
    r.earliest_start = s.earliest_start;
    r.deadline = s.deadline;
    reqs.push_back(r);
  }
  return reqs;
}

// A "previous day" layout concentrated on few nodes (the manual regime:
// "each programmer typically has exclusive use of a subset of the
// nodes").
std::map<std::string, std::string> ManualLayout(
    const std::vector<core::RunRequest>& reqs, int n_nodes) {
  std::map<std::string, std::string> out;
  int half = std::max(1, n_nodes / 2);
  int i = 0;
  for (const auto& r : reqs) {
    out[r.name] = "f" + std::to_string(i % half + 1);
    ++i;
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("T4",
                     "run->node assignment heuristics vs manual baselines "
                     "(§4.1)");

  std::printf(
      "\nfleet,nodes,heuristic,makespan_s,deadline_misses,dropped,"
      "max_rel_load\n");
  for (auto [n_runs, n_nodes] :
       {std::pair<int, int>{10, 6}, {50, 15}, {100, 30}}) {
    auto reqs = Fleet(n_runs, static_cast<uint64_t>(n_runs));
    auto manual = ManualLayout(reqs, n_nodes);
    for (core::PackHeuristic h :
         {core::PackHeuristic::kPreviousDay, core::PackHeuristic::kRandom,
          core::PackHeuristic::kRoundRobin, core::PackHeuristic::kFirstFit,
          core::PackHeuristic::kFirstFitDecreasing,
          core::PackHeuristic::kBestFitDecreasing,
          core::PackHeuristic::kLpt}) {
      core::PlannerConfig cfg;
      cfg.heuristic = h;
      // The baselines report the raw packing without ForeMan's repair
      // loop, matching the manual world they stand in for.
      bool baseline = h == core::PackHeuristic::kPreviousDay ||
                      h == core::PackHeuristic::kRandom ||
                      h == core::PackHeuristic::kRoundRobin;
      if (baseline) {
        cfg.allow_move = false;
        cfg.allow_delay = false;
        cfg.allow_drop = false;
      }
      core::Planner planner(Plant(n_nodes), cfg);
      util::Rng rng(17);
      auto plan = planner.Plan(
          reqs, h == core::PackHeuristic::kPreviousDay ? &manual : nullptr,
          &rng);
      if (!plan.ok()) {
        std::printf("ERROR: %s\n", plan.status().ToString().c_str());
        return 1;
      }
      std::printf("%d,%d,%s,%.0f,%d,%d,%.2f\n", n_runs, n_nodes,
                  core::PackHeuristicName(h), plan->makespan,
                  plan->deadline_misses, plan->dropped,
                  plan->max_relative_load);
    }
  }

  // Priority policy under a capacity crunch: 12 runs on 2 nodes.
  std::printf("\npriority policy under capacity crunch (12 runs, 2 nodes):\n");
  std::printf("policy,makespan_s,misses,dropped,delayed\n");
  auto crunch = Fleet(12, 5);
  for (int mode = 0; mode < 3; ++mode) {
    core::PlannerConfig cfg;
    cfg.allow_move = true;
    cfg.allow_delay = mode >= 1;
    cfg.allow_drop = mode >= 2;
    core::Planner planner(Plant(2), cfg);
    auto plan = planner.Plan(crunch);
    if (!plan.ok()) return 1;
    std::printf("%s,%.0f,%d,%d,%d\n",
                mode == 0 ? "move-only"
                          : (mode == 1 ? "move+delay" : "move+delay+drop"),
                plan->makespan, plan->deadline_misses, plan->dropped,
                plan->delayed);
  }

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "bin-packing vs manual placement", "fewer missed finish times",
      "see table: FFD/BFD/LPT rows dominate baselines");
  bench::PrintPaperVsMeasured(
      "priority forecasts", "may delay or drop lower priority",
      "drop/delay counts above");
  return 0;
}
