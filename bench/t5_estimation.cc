// T5 — §4.3.2 estimation laws: "forecast running times appear linearly
// proportional to the number of timesteps" and "a near-linear
// relationship of run time with the number of sides in a mesh"; plus the
// estimator's accuracy when predicting tomorrow from logged history.
//
// Sweeps timesteps and mesh sides through the campaign executor, fits
// the scaling laws, then scores RunTimeEstimator's one-day-ahead
// predictions on a noisy 30-day history.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "core/estimator.h"
#include "factory/campaign.h"
#include "logdata/loader.h"
#include "util/summary_stats.h"
#include "util/strings.h"

using namespace ff;

namespace {

// Runs one forecast for one day alone on a node; returns walltime.
double MeasureWalltime(const workload::ForecastSpec& spec) {
  factory::CampaignConfig cfg;
  cfg.num_days = 1;
  cfg.noise_sigma = 0.0;
  factory::Campaign campaign(cfg);
  if (!campaign.AddNode("f1").ok()) std::abort();
  if (!campaign.AddForecast(spec, "f1").ok()) std::abort();
  auto result = campaign.Run();
  if (!result.ok()) std::abort();
  return result->walltimes.at(spec.name)[0].walltime;
}

}  // namespace

int main() {
  bench::PrintHeader("T5", "run-time estimation laws and accuracy (§4.3.2)");

  // ---- Timestep sweep (mesh fixed). ----
  std::printf("\ntimesteps,walltime_s\n");
  std::vector<double> ts_x, ts_y;
  for (int64_t steps : {1440, 2880, 5760, 8640, 11520, 17280}) {
    auto spec = workload::MakeTillamookForecast();
    spec.timesteps = steps;
    double w = MeasureWalltime(spec);
    std::printf("%lld,%.0f\n", static_cast<long long>(steps), w);
    ts_x.push_back(static_cast<double>(steps));
    ts_y.push_back(w);
  }
  auto ts_fit = util::FitLinear(ts_x, ts_y);

  // ---- Mesh sweep (timesteps fixed). ----
  std::printf("\nmesh_sides,walltime_s\n");
  std::vector<double> mesh_x, mesh_y;
  for (int64_t sides : {5000, 10000, 15000, 20000, 25000, 30000}) {
    auto spec = workload::MakeTillamookForecast();
    spec.mesh_sides = sides;
    double w = MeasureWalltime(spec);
    std::printf("%lld,%.0f\n", static_cast<long long>(sides), w);
    mesh_x.push_back(static_cast<double>(sides));
    mesh_y.push_back(w);
  }
  auto mesh_fit = util::FitLinear(mesh_x, mesh_y);

  // ---- Estimator accuracy from noisy history. ----
  factory::CampaignConfig cfg;
  cfg.num_days = 30;
  cfg.noise_sigma = 0.03;
  factory::Campaign campaign(cfg);
  if (!campaign.AddNode("f1").ok()) return 1;
  auto spec = workload::MakeTillamookForecast();
  spec.mesh_sides = 23400;
  if (!campaign.AddForecast(spec, "f1").ok()) return 1;
  auto history = campaign.Run();
  if (!history.ok()) return 1;

  statsdb::Database db;
  if (!logdata::LoadRuns(&db, history->records).ok()) return 1;
  core::RunTimeEstimator estimator(&db, workload::CostModel{});
  auto estimate = estimator.EstimateWork(spec);
  if (!estimate.ok()) return 1;
  util::SummaryStats actuals;
  for (const auto& s : history->walltimes.at(spec.name)) {
    actuals.Add(s.walltime);
  }
  double rel_err =
      std::fabs(estimate->cpu_seconds - actuals.mean()) / actuals.mean();

  // Scaled prediction after a timestep change, per the paper's recipe.
  auto doubled = spec;
  doubled.timesteps *= 2;
  auto scaled = estimator.EstimateWork(doubled);
  double actual_doubled = MeasureWalltime(doubled);
  double scale_err = std::fabs(scaled->cpu_seconds - actual_doubled) /
                     actual_doubled;

  std::printf("\nSummary:\n");
  bench::PrintPaperVsMeasured(
      "walltime vs timesteps", "linear",
      util::StrFormat("linear, R^2 = %.4f", ts_fit->r_squared));
  bench::PrintPaperVsMeasured(
      "walltime vs mesh sides", "near-linear",
      util::StrFormat("linear, R^2 = %.4f", mesh_fit->r_squared));
  bench::PrintPaperVsMeasured(
      "history-median estimate vs 30-day mean", "good approximation",
      util::StrFormat("%.1f%% error (%d samples)", 100.0 * rel_err,
                      estimate->history_samples));
  bench::PrintPaperVsMeasured(
      "scaled estimate after timestep doubling", "an approximation",
      util::StrFormat("%.1f%% error", 100.0 * scale_err));
  return 0;
}
