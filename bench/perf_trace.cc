// Tracing overhead — what the observability layer costs the DES hot path.
//
// The obs design claims (1) with no recorder installed the hooks are one
// global load + branch per event (and literally dead code when compiled
// out with FF_TRACING=OFF), and (2) with a recorder + registry installed,
// full span/counter capture stays within a few percent of the PR 1 kernel
// numbers. This bench measures both claims on the perf_kernel workloads:
//
//   replenish — N resident jobs, each completion admits a replacement;
//               steady-state completion events.
//   churn     — N resident jobs, interleaved Add/Remove/SetSpeedFactor/
//               SetCongestionFactor management ops.
//
// Modes: off      — no recorder/registry installed (the default state);
//        metrics  — MetricsRegistry only (kernel counters + queue gauge);
//        full     — TraceRecorder + registry (per-job spans as well).
//
// Each (workload, mode, n) point is the min of kReps runs; run-to-run
// noise is estimated from the spread of the "off" reps, so "within noise"
// is a statement the JSON itself supports. Output: labelled CSV on stdout
// and BENCH_trace.json (path = argv[1] or ./BENCH_trace.json).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/ps_resource.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ff {
namespace {

constexpr int kReps = 5;

using bench::WallMs;

struct Point {
  std::string workload;
  std::string mode;
  int n_jobs = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;      // min over reps
  double wall_ms_max = 0.0;  // max over reps (spread diagnostic)
  double overhead_pct = 0.0; // vs the same workload's "off" point
  double events_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(events) / wall_ms
                         : 0.0;
  }
};

enum class Mode { kOff, kMetrics, kFull };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kMetrics:
      return "metrics";
    case Mode::kFull:
      return "full";
  }
  return "?";
}

// One replenish run; returns (events, wall_ms).
std::pair<uint64_t, double> ReplenishOnce(int n, int completions) {
  sim::Simulator sim;
  cluster::PsResource res(&sim, "bench", n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xb0b0 + static_cast<uint64_t>(n));
  int remaining = completions;
  std::function<void()> refill = [&] {
    if (remaining-- > 0) res.Add(rng.Uniform(50.0, 150.0), refill);
  };
  double ms = WallMs([&] {
    for (int i = 0; i < n; ++i) res.Add(rng.Uniform(50.0, 150.0), refill);
    sim.Run();
  });
  return {sim.events_processed(), ms};
}

std::pair<uint64_t, double> ChurnOnce(int n, int ops) {
  sim::Simulator sim;
  cluster::PsResource res(&sim, "bench", n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xc0de + static_cast<uint64_t>(n));
  std::vector<cluster::JobId> live;
  live.reserve(static_cast<size_t>(n) + 8);
  uint64_t applied = 0;
  double ms = WallMs([&] {
    for (int i = 0; i < n; ++i) {
      live.push_back(res.Add(rng.Uniform(1e5, 2e5), nullptr));
    }
    for (int i = 0; i < ops; ++i) {
      double p = rng.Uniform01();
      if (p < 0.4) {
        live.push_back(res.Add(rng.Uniform(1e5, 2e5), nullptr));
      } else if (p < 0.8 && !live.empty()) {
        size_t idx = rng.Index(live.size());
        std::swap(live[idx], live.back());
        (void)res.Remove(live.back());
        live.pop_back();
      } else if (p < 0.9) {
        res.SetSpeedFactor(rng.Uniform(0.5, 2.0));
      } else {
        res.SetCongestionFactor(rng.Uniform(0.3, 1.0));
      }
      ++applied;
    }
    sim.Run();
  });
  return {applied + sim.events_processed(), ms};
}

// One timed rep of (workload, mode); returns (events, wall_ms).
std::pair<uint64_t, double> MeasureRep(const std::string& workload,
                                       Mode mode, int n, int budget) {
  // Fresh recorder/registry per rep so span storage does not accumulate
  // across reps and every rep pays the same resolution cost. Provision
  // the recorder for the known recording length, as a long campaign
  // would — otherwise vector regrowth page faults dominate the measured
  // per-span cost.
  obs::TraceRecorder trace;
  trace.ReserveSpans(static_cast<size_t>(n) + budget + 64);
  obs::MetricsRegistry metrics;
  obs::ScopedObservability scope(mode == Mode::kFull ? &trace : nullptr,
                                 mode == Mode::kOff ? nullptr : &metrics);
  return workload == "replenish" ? ReplenishOnce(n, budget)
                                 : ChurnOnce(n, budget);
}

// Measures all three modes through the shared interleaved-reps harness
// (bench_common.h), so slow drift in machine load hits every mode
// equally instead of whichever mode happened to run last. Returns points
// in {off, metrics, full} order with min/max over reps filled in.
std::vector<Point> MeasureAllModes(const std::string& workload, int n,
                                   int budget) {
  const Mode kModes[] = {Mode::kOff, Mode::kMetrics, Mode::kFull};
  std::vector<Point> pts;
  std::vector<std::function<double()>> variants;
  for (size_t m = 0; m < 3; ++m) {
    Point pt;
    pt.workload = workload;
    pt.mode = ModeName(kModes[m]);
    pt.n_jobs = n;
    pts.push_back(pt);
    variants.push_back([&pts, &kModes, workload, n, budget, m] {
      auto [events, ms] = MeasureRep(workload, kModes[m], n, budget);
      pts[m].events = events;
      return ms;
    });
  }
  std::vector<bench::RepTiming> timings =
      bench::MeasureInterleaved(variants, kReps);
  for (size_t m = 0; m < 3; ++m) {
    pts[m].wall_ms = timings[m].wall_ms;
    pts[m].wall_ms_max = timings[m].wall_ms_max;
  }
  return pts;
}

void AppendJson(std::string* out, const Point& p) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"workload\": \"%s\", \"mode\": \"%s\", \"n_jobs\": %d, "
      "\"events\": %llu, \"wall_ms\": %.3f, \"wall_ms_max\": %.3f, "
      "\"events_per_sec\": %.0f, \"overhead_pct\": %.2f}",
      p.workload.c_str(), p.mode.c_str(), p.n_jobs,
      static_cast<unsigned long long>(p.events), p.wall_ms, p.wall_ms_max,
      p.events_per_sec(), p.overhead_pct);
  if (!out->empty()) *out += ",\n";
  *out += buf;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_trace.json";
  const std::vector<int> kScales = {100, 1000};
  const int kCompletions = 100000;
  const int kOps = 100000;

  std::printf("workload,mode,n_jobs,events,wall_ms,wall_ms_max,"
              "events_per_sec,overhead_pct\n");
  std::string json_rows;
  double max_overhead_full = 0.0;
  double noise_pct = 0.0;
  for (int n : kScales) {
    for (const std::string& wl : {std::string("replenish"),
                                  std::string("churn")}) {
      int budget = wl == "replenish" ? kCompletions : kOps;
      // Warm-up so allocator state does not favour any mode.
      MeasureRep(wl, Mode::kOff, n, budget / 10);

      std::vector<Point> pts = MeasureAllModes(wl, n, budget);
      const Point& off = pts[0];
      // Run-to-run spread of the baseline = the noise floor overhead
      // numbers must beat to be meaningful.
      if (off.wall_ms > 0.0) {
        noise_pct = std::max(
            noise_pct, 100.0 * (off.wall_ms_max - off.wall_ms) / off.wall_ms);
      }
      for (auto& p : pts) {
        p.overhead_pct =
            off.wall_ms > 0.0
                ? 100.0 * (p.wall_ms - off.wall_ms) / off.wall_ms
                : 0.0;
        if (p.mode == "full") {
          max_overhead_full = std::max(max_overhead_full, p.overhead_pct);
        }
        std::printf("%s,%s,%d,%llu,%.3f,%.3f,%.0f,%.2f\n",
                    p.workload.c_str(), p.mode.c_str(), p.n_jobs,
                    static_cast<unsigned long long>(p.events), p.wall_ms,
                    p.wall_ms_max, p.events_per_sec(), p.overhead_pct);
        AppendJson(&json_rows, p);
      }
    }
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"perf_trace\",\n"
               "  \"tracing_compiled_in\": %s,\n"
               "  \"reps\": %d,\n"
               "  \"baseline_noise_pct\": %.2f,\n"
               "  \"max_overhead_pct_full\": %.2f,\n"
               "  \"runtime\": %s,\n"
               "  \"results\": [\n%s\n  ]\n}\n",
               obs::kTracingCompiledIn ? "true" : "false", kReps, noise_pct,
               max_overhead_full, bench::RuntimePoolJson(nullptr).c_str(),
               json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s (max full-tracing overhead %.2f%%, "
              "baseline noise %.2f%%)\n",
              json_path, max_overhead_full, noise_pct);
  return 0;
}
