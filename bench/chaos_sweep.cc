// Chaos sweep — delivery SLO vs fault intensity, per retry policy.
//
// Fans a fault-intensity x policy grid through fault::RunChaosSweep: each
// cell runs R independent replicas of a 2-node plant staging the §4.2
// forecast to the public server while a generated FaultPlan crashes
// nodes, cuts and degrades uplinks, kills tasks and corrupts transfers.
// Cells are scored with the delivery-SLO metrics (on-time fraction, exact
// P95 time-until-data-at-server, wasted CPU-hours, retries per run) and
// written to BENCH_chaos.json — the on-time-vs-intensity curve per
// policy is the payoff chart.
//
// Determinism gate: the whole grid is run at 1, 4 and 16 workers; the
// per-cell scores, the chaos_runs statsdb query, the merged Chrome trace
// and the merged metrics CSV must be byte-identical across worker counts
// (same discipline as perf_sweep, now under fault injection).
//
// Usage: chaos_sweep [--smoke] [json_path]

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/chaos.h"
#include "obs/chrome_trace.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/sql.h"
#include "util/strings.h"
#include "workload/fleet.h"

namespace ff {
namespace {

fault::ChaosSweepConfig MakeConfig(bool smoke) {
  fault::ChaosSweepConfig cfg;
  cfg.spec = workload::MakeElcircEstuaryForecast();
  cfg.num_nodes = 2;
  cfg.arch = dataflow::Architecture::kProductsAtNode;
  cfg.horizon = 86400.0;
  cfg.slo_seconds = 6.0 * 3600.0;
  cfg.base_seed = 20060406;  // ICDE'06 vintage
  cfg.replicas_per_cell = smoke ? 2 : 4;
  cfg.intensities = smoke ? std::vector<double>{0.0, 1.0}
                          : std::vector<double>{0.0, 0.5, 1.0, 2.0};

  // Fault pressure at intensity 1.0 (events per target per day).
  cfg.faults.node_crash_rate = 0.5;
  cfg.faults.node_repair_median = 1800.0;
  cfg.faults.link_outage_rate = 2.0;
  cfg.faults.link_outage_median = 600.0;
  cfg.faults.link_degrade_rate = 2.0;
  cfg.faults.link_degrade_median = 1800.0;
  cfg.faults.task_transient_rate = 4.0;
  cfg.faults.task_kill_probability = 0.5;
  cfg.faults.transfer_corrupt_rate = 2.0;

  fault::ChaosPolicy none;
  none.retry.max_attempts = 1;
  none.retry.transfer_timeout = 0.0;
  fault::ChaosPolicy retry;
  retry.retry.max_attempts = 6;
  retry.retry.base_backoff = 120.0;
  retry.retry.backoff_multiplier = 2.0;
  retry.retry.max_backoff = 1800.0;
  retry.retry.jitter = 0.25;
  retry.retry.transfer_timeout = 1800.0;
  cfg.policies = {none, retry};
  return cfg;
}

struct Artifacts {
  std::string cells_csv;
  std::string query_csv;
  std::string chrome_json;
  std::string metrics_csv;
};

std::string CellsCsv(const fault::ChaosSweepResult& result) {
  std::string out =
      "intensity,policy,runs,delivered,abandoned,on_time_fraction,"
      "p95_delivery_s,wasted_cpu_h,retries_per_run,faults\n";
  for (const auto& c : result.cells) {
    out += util::StrFormat(
        "%.2f,%s,%lld,%lld,%lld,%.4f,%.1f,%.3f,%.3f,%lld\n", c.intensity,
        c.policy.c_str(), static_cast<long long>(c.runs),
        static_cast<long long>(c.delivered),
        static_cast<long long>(c.abandoned), c.on_time_fraction,
        c.p95_delivery_seconds, c.wasted_cpu_hours, c.retries_per_run,
        static_cast<long long>(c.faults_injected));
  }
  return out;
}

Artifacts MakeArtifacts(const fault::ChaosSweepResult& result) {
  Artifacts a;
  a.cells_csv = CellsCsv(result);

  statsdb::Database db;
  auto table = fault::LoadChaosRuns(&db, result);
  if (!table.ok()) std::abort();
  auto plan = statsdb::PlanSql(
      "SELECT policy, intensity, COUNT(*) AS n, SUM(delivered) AS ok, "
      "SUM(retries) AS retries FROM chaos_runs "
      "GROUP BY policy, intensity ORDER BY policy, intensity");
  if (!plan.ok()) std::abort();
  auto rs = statsdb::ExecutePlan(*plan, db);
  if (!rs.ok()) std::abort();
  a.query_csv = rs->ToCsv();

  a.chrome_json = obs::ChromeTraceJson(*result.outputs.merged_trace,
                                       result.outputs.merged_metrics.get());
  std::ostringstream csv;
  obs::WriteMetricSamplesCsv(*result.outputs.merged_metrics, &csv);
  a.metrics_csv = csv.str();
  return a;
}

/// Re-derives every cell's P95 from the chaos_runs table with the
/// shared exact-percentile helper (bench_common.h) and compares it to
/// the score the sweep reported. Ties the SLO scorer and the serving
/// bench's latency math to one rank convention: if either drifts to an
/// interpolating percentile, this gate fails.
bool CrossCheckSloPercentiles(const fault::ChaosSweepResult& result) {
  statsdb::Database db;
  if (!fault::LoadChaosRuns(&db, result).ok()) std::abort();
  bool ok = true;
  for (const auto& c : result.cells) {
    auto rs = db.Sql(util::StrFormat(
        "SELECT delivery_seconds FROM chaos_runs "
        "WHERE policy = '%s' AND intensity = %.2f",
        c.policy.c_str(), c.intensity));
    if (!rs.ok()) std::abort();
    std::vector<double> delivery;
    for (const auto& row : rs->rows) {
      delivery.push_back(row[0].double_value());
    }
    const double p95 = bench::ExactPercentile(std::move(delivery), 0.95);
    if (p95 != c.p95_delivery_seconds) {
      std::fprintf(stderr,
                   "cell (%s, %.2f): SQL-derived P95 %.6f != scored %.6f\n",
                   c.policy.c_str(), c.intensity, p95,
                   c.p95_delivery_seconds);
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  bool smoke = false;
  const char* json_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::vector<size_t> kWorkers = {1, 4, 16};
  std::vector<Artifacts> artifacts;
  fault::ChaosSweepResult scored;  // the 1-worker run feeds the JSON
  for (size_t w : kWorkers) {
    fault::ChaosSweepConfig cfg = MakeConfig(smoke);
    cfg.num_workers = w;
    fault::ChaosSweepResult result = fault::RunChaosSweep(cfg);
    artifacts.push_back(MakeArtifacts(result));
    if (w == 1) scored = std::move(result);
  }

  bool deterministic = true;
  for (size_t w = 1; w < kWorkers.size(); ++w) {
    bool same = artifacts[w].cells_csv == artifacts[0].cells_csv &&
                artifacts[w].query_csv == artifacts[0].query_csv &&
                artifacts[w].chrome_json == artifacts[0].chrome_json &&
                artifacts[w].metrics_csv == artifacts[0].metrics_csv;
    if (!same) {
      std::fprintf(
          stderr,
          "workers=%zu: chaos artifacts differ from serial "
          "(cells %s, query %s, trace %s, metrics %s)\n",
          kWorkers[w],
          artifacts[w].cells_csv == artifacts[0].cells_csv ? "ok" : "DIFF",
          artifacts[w].query_csv == artifacts[0].query_csv ? "ok" : "DIFF",
          artifacts[w].chrome_json == artifacts[0].chrome_json ? "ok"
                                                               : "DIFF",
          artifacts[w].metrics_csv == artifacts[0].metrics_csv ? "ok"
                                                               : "DIFF");
      deterministic = false;
    }
  }

  std::printf("%s", artifacts[0].cells_csv.c_str());
  std::printf("# determinism across workers {1,4,16}: %s\n",
              deterministic ? "yes" : "NO");

  const bool slo_percentiles_agree = CrossCheckSloPercentiles(scored);
  std::printf("# SQL-derived exact P95 matches scored cells: %s\n",
              slo_percentiles_agree ? "yes" : "NO");

  // The no-fault control must deliver everything on time under every
  // policy, and retries must help (never hurt) delivery at the highest
  // intensity.
  bool ok = deterministic && slo_percentiles_agree;
  double best_on_time_no_retry = -1.0, best_on_time_retry = -1.0;
  for (const auto& c : scored.cells) {
    if (c.intensity == 0.0 && c.on_time_fraction < 1.0) {
      std::fprintf(stderr, "control cell (%s) missed the SLO\n",
                   c.policy.c_str());
      ok = false;
    }
    if (c.intensity == scored.cells.back().intensity) {
      if (c.policy == "no-retry") best_on_time_no_retry = c.on_time_fraction;
      else best_on_time_retry = c.on_time_fraction;
    }
  }
  if (best_on_time_retry >= 0.0 && best_on_time_no_retry >= 0.0 &&
      best_on_time_retry + 1e-9 < best_on_time_no_retry) {
    std::fprintf(stderr,
                 "retry policy underperforms no-retry at max intensity "
                 "(%.3f < %.3f)\n",
                 best_on_time_retry, best_on_time_no_retry);
    ok = false;
  }

  std::string json_rows;
  for (const auto& c : scored.cells) {
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += util::StrFormat(
        "    {\"intensity\": %.2f, \"policy\": \"%s\", \"runs\": %lld, "
        "\"delivered\": %lld, \"abandoned\": %lld, "
        "\"on_time_fraction\": %.4f, \"p95_delivery_s\": %.1f, "
        "\"wasted_cpu_h\": %.3f, \"retries_per_run\": %.3f, "
        "\"faults\": %lld}",
        c.intensity, c.policy.c_str(), static_cast<long long>(c.runs),
        static_cast<long long>(c.delivered),
        static_cast<long long>(c.abandoned), c.on_time_fraction,
        c.p95_delivery_seconds, c.wasted_cpu_hours, c.retries_per_run,
        static_cast<long long>(c.faults_injected));
  }
  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"chaos_sweep\",\n"
               "  \"smoke\": %s,\n"
               "  \"slo_seconds\": 21600,\n"
               "  \"deterministic_workers_1_4_16\": %s,\n"
               "  \"cells\": [\n%s\n  ]\n}\n",
               smoke ? "true" : "false", deterministic ? "true" : "false",
               json_rows.c_str());
  std::fclose(f);
  std::printf("# wrote %s%s\n", json_path, smoke ? " (smoke)" : "");
  return ok ? 0 : 1;
}
