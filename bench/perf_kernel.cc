// Kernel scale sweep — events/sec and wall time for the DES hot paths.
//
// Motivation: the paper's factory runs ~10 concurrent forecasts, but §5
// targets 50–100 and the ROADMAP wants thousands. Every layer sits on
// sim::Simulator + cluster::PsResource, so their per-event cost bounds the
// whole factory. This bench measures both on two workloads:
//
//   replenish — N resident jobs; every completion admits a fresh job, for
//               a fixed number of completions. Steady-state service.
//   churn     — N resident jobs; a driver interleaves Add / Remove /
//               SetSpeedFactor / SetCongestionFactor ops. Every op used to
//               pay an O(N) sweep, so fleets went quadratic.
//
// Each workload also runs against `NaiveKernel`, a faithful replica of the
// pre-virtual-time seed algorithm (per-job `remaining -= rate*dt` sweep +
// O(N) min-scan, std::priority_queue with copied std::function payloads),
// so the speedup is measured in-process and stays meaningful on any host.
//
// Each (workload, kernel, n) point is the min over kReps reps, reps
// interleaved round-robin across the four variants (bench_common.h's
// MeasureInterleaved), so load drift cannot systematically favour either
// kernel.
//
// Output: labelled CSV on stdout and BENCH_kernel.json (path = argv[1] or
// ./BENCH_kernel.json) recording events/sec, wall ms and speedup per point.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/ps_resource.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ff {
namespace {

// ---------------------------------------------------------------------------
// NaiveKernel: the seed algorithm, kept verbatim as the comparison baseline.
// Simulator with std::priority_queue (top() copies the event payload) and a
// processor-sharing resource that sweeps all K jobs on every Advance and
// min-scans them on every Reschedule.
class NaiveKernel {
 public:
  using Clock = double;

  NaiveKernel(double capacity, double max_per_job)
      : capacity_(capacity), max_per_job_(max_per_job) {}

  uint64_t Add(double work, std::function<void()> on_done) {
    Advance();
    uint64_t id = next_id_++;
    jobs_.emplace(id, Job{std::max(work, 0.0), std::move(on_done)});
    Reschedule();
    return id;
  }

  bool Remove(uint64_t id) {
    Advance();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    jobs_.erase(it);
    Reschedule();
    return true;
  }

  void SetSpeedFactor(double f) {
    Advance();
    speed_ = f;
    Reschedule();
  }

  void SetCongestionFactor(double f) {
    Advance();
    congestion_ = f;
    Reschedule();
  }

  void Run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();  // the copy the seed kernel paid per event
      queue_.pop();
      if (ev.seq != live_completion_seq_) continue;  // cancelled
      now_ = ev.time;
      ++events_;
      OnCompletion();
    }
  }

  uint64_t events() const { return events_; }
  double now() const { return now_; }
  size_t active_jobs() const { return jobs_.size(); }

 private:
  struct Job {
    double remaining;
    std::function<void()> on_done;
  };
  struct Event {
    double time;
    uint64_t seq;
    // Payload mimicking the seed QueuedEvent footprint.
    std::function<void()> fn;
  };
  struct LaterEv {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double RatePerJob() const {
    if (jobs_.empty() || speed_ <= 0.0 || congestion_ <= 0.0) return 0.0;
    double share = capacity_ / static_cast<double>(jobs_.size());
    return speed_ * congestion_ * std::min(max_per_job_, share);
  }

  void Advance() {
    double dt = now_ - last_update_;
    if (dt > 0.0) {
      double rate = RatePerJob();
      if (rate > 0.0) {
        for (auto& [id, job] : jobs_) job.remaining -= rate * dt;
      }
    }
    last_update_ = now_;
  }

  void Reschedule() {
    live_completion_seq_ = next_seq_++;
    double rate = RatePerJob();
    if (jobs_.empty() || rate <= 0.0) return;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& [id, job] : jobs_) {
      min_remaining = std::min(min_remaining, job.remaining);
    }
    queue_.push(Event{now_ + std::max(0.0, min_remaining) / rate,
                      live_completion_seq_, [] {}});
  }

  void OnCompletion() {
    Advance();
    double threshold = std::max(1e-9, RatePerJob() * 1e-6);
    std::vector<std::function<void()>> done;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= threshold) {
        done.push_back(std::move(it->second.on_done));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    Reschedule();
    for (auto& fn : done) {
      if (fn) fn();
    }
  }

  double capacity_;
  double max_per_job_;
  double speed_ = 1.0;
  double congestion_ = 1.0;
  std::map<uint64_t, Job> jobs_;
  std::priority_queue<Event, std::vector<Event>, LaterEv> queue_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t live_completion_seq_ = 0;
  double now_ = 0.0;
  double last_update_ = 0.0;
  uint64_t events_ = 0;
};

// ---------------------------------------------------------------------------

using bench::WallMs;

struct Result {
  std::string workload;
  std::string kernel;
  int n_jobs = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(events) / wall_ms
                         : 0.0;
  }
};

// Steady-state: N resident jobs, every completion admits a replacement
// until `completions` jobs have finished.
Result RunReplenishCurrent(int n, int completions) {
  sim::Simulator sim;
  cluster::PsResource res(&sim, "bench", n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xb0b0 + static_cast<uint64_t>(n));
  int remaining = completions;
  std::function<void()> refill = [&] {
    if (remaining-- > 0) res.Add(rng.Uniform(50.0, 150.0), refill);
  };
  Result r{"replenish", "virtual_time", n, 0, 0.0};
  r.wall_ms = WallMs([&] {
    for (int i = 0; i < n; ++i) res.Add(rng.Uniform(50.0, 150.0), refill);
    sim.Run();
  });
  r.events = sim.events_processed();
  return r;
}

Result RunReplenishNaive(int n, int completions) {
  NaiveKernel k(n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xb0b0 + static_cast<uint64_t>(n));
  int remaining = completions;
  std::function<void()> refill = [&] {
    if (remaining-- > 0) k.Add(rng.Uniform(50.0, 150.0), refill);
  };
  Result r{"replenish", "naive", n, 0, 0.0};
  r.wall_ms = WallMs([&] {
    for (int i = 0; i < n; ++i) k.Add(rng.Uniform(50.0, 150.0), refill);
    k.Run();
  });
  r.events = k.events();
  return r;
}

// Churn: N resident jobs; `ops` interleaved Add/Remove/SetSpeedFactor/
// SetCongestionFactor calls, the management pattern of a large fleet
// (arrivals, cancellations, failure injection, thrash updates).
template <typename AddFn, typename RemoveFn, typename SpeedFn, typename CongFn>
uint64_t DriveChurn(int n, int ops, util::Rng* rng, AddFn add, RemoveFn remove,
                    SpeedFn set_speed, CongFn set_congestion) {
  std::vector<uint64_t> live;
  live.reserve(static_cast<size_t>(n) + 8);
  for (int i = 0; i < n; ++i) {
    live.push_back(add(rng->Uniform(1e5, 2e5)));
  }
  uint64_t applied = 0;
  for (int i = 0; i < ops; ++i) {
    double p = rng->Uniform01();
    if (p < 0.4) {
      live.push_back(add(rng->Uniform(1e5, 2e5)));
    } else if (p < 0.8 && !live.empty()) {
      size_t idx = rng->Index(live.size());
      std::swap(live[idx], live.back());
      remove(live.back());
      live.pop_back();
    } else if (p < 0.9) {
      set_speed(rng->Uniform(0.5, 2.0));
    } else {
      set_congestion(rng->Uniform(0.3, 1.0));
    }
    ++applied;
  }
  return applied;
}

Result RunChurnCurrent(int n, int ops) {
  sim::Simulator sim;
  cluster::PsResource res(&sim, "bench", n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xc0de + static_cast<uint64_t>(n));
  Result r{"churn", "virtual_time", n, 0, 0.0};
  uint64_t applied = 0;
  r.wall_ms = WallMs([&] {
    applied = DriveChurn(
        n, ops, &rng,
        [&](double w) { return res.Add(w, nullptr); },
        [&](uint64_t id) { (void)res.Remove(id); },
        [&](double f) { res.SetSpeedFactor(f); },
        [&](double f) { res.SetCongestionFactor(f); });
    sim.Run();
  });
  r.events = applied + sim.events_processed();
  return r;
}

Result RunChurnNaive(int n, int ops) {
  NaiveKernel k(n / 2.0 + 1.0, 1.0);
  util::Rng rng(0xc0de + static_cast<uint64_t>(n));
  Result r{"churn", "naive", n, 0, 0.0};
  uint64_t applied = 0;
  r.wall_ms = WallMs([&] {
    applied = DriveChurn(
        n, ops, &rng, [&](double w) { return k.Add(w, nullptr); },
        [&](uint64_t id) { k.Remove(id); },
        [&](double f) { k.SetSpeedFactor(f); },
        [&](double f) { k.SetCongestionFactor(f); });
    k.Run();
  });
  r.events = applied + k.events();
  return r;
}

void AppendJson(std::string* out, const Result& r, double speedup) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"workload\": \"%s\", \"kernel\": \"%s\", "
                "\"n_jobs\": %d, \"events\": %llu, \"wall_ms\": %.3f, "
                "\"events_per_sec\": %.0f, \"speedup_vs_naive\": %.2f}",
                r.workload.c_str(), r.kernel.c_str(), r.n_jobs,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec(), speedup);
  if (!out->empty()) *out += ",\n";
  *out += buf;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_kernel.json";
  const std::vector<int> kScales = {10, 100, 1000, 5000};
  const int kCompletions = 20000;  // replenish: fixed completions per point
  const int kOps = 20000;          // churn: fixed management ops per point
  const int kReps = 3;  // the naive kernel dominates cost; 3 reps ~ 20 s

  std::printf("workload,kernel,n_jobs,events,wall_ms,events_per_sec,"
              "speedup_vs_naive\n");
  std::string json_rows;
  double churn_1000_speedup = 0.0;
  for (int n : kScales) {
    // Warm-up pass so allocator state does not favour either kernel.
    RunReplenishCurrent(n, 1000);

    Result naive_r, cur_r, naive_c, cur_c;
    auto timings = bench::MeasureInterleaved(
        {[&] { naive_r = RunReplenishNaive(n, kCompletions);
               return naive_r.wall_ms; },
         [&] { cur_r = RunReplenishCurrent(n, kCompletions);
               return cur_r.wall_ms; },
         [&] { naive_c = RunChurnNaive(n, kOps); return naive_c.wall_ms; },
         [&] { cur_c = RunChurnCurrent(n, kOps); return cur_c.wall_ms; }},
        kReps);
    naive_r.wall_ms = timings[0].wall_ms;
    cur_r.wall_ms = timings[1].wall_ms;
    naive_c.wall_ms = timings[2].wall_ms;
    cur_c.wall_ms = timings[3].wall_ms;
    double sp_r = cur_r.wall_ms > 0.0 ? naive_r.wall_ms / cur_r.wall_ms : 0.0;
    double sp_c = cur_c.wall_ms > 0.0 ? naive_c.wall_ms / cur_c.wall_ms : 0.0;
    if (n == 1000) churn_1000_speedup = sp_c;

    for (const auto& [r, sp] :
         std::vector<std::pair<Result, double>>{{naive_r, 1.0},
                                                {cur_r, sp_r},
                                                {naive_c, 1.0},
                                                {cur_c, sp_c}}) {
      std::printf("%s,%s,%d,%llu,%.3f,%.0f,%.2f\n", r.workload.c_str(),
                  r.kernel.c_str(), r.n_jobs,
                  static_cast<unsigned long long>(r.events), r.wall_ms,
                  r.events_per_sec(), sp);
      AppendJson(&json_rows, r, sp);
    }
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"perf_kernel\",\n"
               "  \"naive\": \"seed O(K)-sweep kernel (in-process replica)\","
               "\n  \"runtime\": %s,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"churn_1000_speedup_vs_naive\": %.2f\n}\n",
               bench::RuntimePoolJson(nullptr).c_str(), json_rows.c_str(),
               churn_1000_speedup);
  std::fclose(f);
  std::printf("# wrote %s (churn@1000 speedup %.1fx)\n", json_path,
              churn_1000_speedup);
  return 0;
}
