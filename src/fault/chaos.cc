#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "cluster/cluster.h"
#include "fault/injector.h"
#include "util/logging.h"

namespace ff {
namespace fault {

namespace {

// Substream index for the replica's fault timeline; run j draws from
// Split(j), and num_nodes stays far below this, so the two families never
// collide and fault generation never perturbs run-level draws.
constexpr uint64_t kFaultStreamIndex = 1u << 30;

struct ReplicaOutcome {
  std::vector<ChaosRunRecord> runs;
};

// `pair_rng` is a pure function of (base_seed, intensity index, replica-
// within-cell) — NOT of the policy — so every policy at a given intensity
// faces byte-identical fault timelines and kill draws (common random
// numbers: policy curves differ only by the policy).
void RunReplica(const ChaosSweepConfig& cfg, size_t cell_index,
                double intensity, const ChaosPolicy& policy,
                util::Rng pair_rng, parallel::ReplicaContext& ctx,
                ReplicaOutcome* out) {
  sim::Simulator sim;
  cluster::Cluster plant(&sim, /*server_cpus=*/2,
                         /*server_speed=*/2.6 / 2.8,
                         /*server_ram_bytes=*/1.0e9);
  std::vector<std::string> machine_names;
  std::vector<std::string> link_names;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    cluster::NodeSpec spec;
    spec.name = "n" + std::to_string(n + 1);
    FF_CHECK(plant.AddNode(spec).ok());
    machine_names.push_back(spec.name);
    link_names.push_back(spec.name + "->server");
  }
  // The server hosts Architecture-2 product tasks, so it is a transient-
  // fault target too.
  machine_names.push_back(plant.server()->name());

  ChaosConfig fault_cfg = cfg.faults;
  fault_cfg.intensity = intensity;
  fault_cfg.horizon = cfg.horizon;
  util::Rng fault_rng = pair_rng.Split(kFaultStreamIndex);
  FaultInjector injector(
      &sim, FaultPlan::Generate(fault_cfg, machine_names, link_names,
                                fault_rng));
  for (const auto& name : machine_names) {
    if (name == plant.server()->name()) {
      injector.RegisterMachine(plant.server());
    } else {
      injector.RegisterMachine(*plant.node(name));
    }
  }
  for (const auto& name : machine_names) {
    if (name == plant.server()->name()) continue;
    injector.RegisterLink(*plant.uplink(name));
  }

  std::vector<util::Rng> run_rngs;
  run_rngs.reserve(static_cast<size_t>(cfg.num_nodes));
  std::vector<std::unique_ptr<dataflow::ForecastRun>> runs;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    run_rngs.push_back(pair_rng.Split(static_cast<uint64_t>(n)));
  }
  for (int n = 0; n < cfg.num_nodes; ++n) {
    const std::string& node = machine_names[static_cast<size_t>(n)];
    workload::ForecastSpec spec = cfg.spec;
    spec.name = spec.name + "@" + node;
    dataflow::RunConfig rc;
    rc.arch = cfg.arch;
    rc.record_series = false;
    rc.retry = policy.retry;
    rc.rng = &run_rngs[static_cast<size_t>(n)];
    rc.injector = &injector;
    runs.push_back(std::make_unique<dataflow::ForecastRun>(
        &sim, *plant.node(node), *plant.uplink(node), plant.server(),
        /*recorder=*/nullptr, spec, rc));
  }

  if (ctx.trace != nullptr) {
    ctx.trace->SetClock([&sim] { return sim.now(); });
  }
  injector.Arm();
  for (auto& run : runs) run->Start();
  sim.RunUntil(cfg.horizon);
  if (ctx.metrics != nullptr) ctx.metrics->SampleAll(sim.now());
  if (ctx.trace != nullptr) ctx.trace->SetClock(nullptr);

  out->runs.reserve(runs.size());
  for (size_t j = 0; j < runs.size(); ++j) {
    const auto& run = *runs[j];
    ChaosRunRecord rec;
    rec.replica = static_cast<int64_t>(ctx.replica);
    rec.cell = static_cast<int64_t>(cell_index);
    rec.intensity = intensity;
    rec.policy = policy.name;
    rec.forecast = run.spec().name;
    rec.node = machine_names[j];
    rec.delivered = run.done();
    rec.abandoned = run.failed();
    rec.delivery_seconds =
        run.done() ? run.finish_time() - run.start_time() : cfg.horizon;
    rec.retries = run.retries();
    rec.wasted_cpu_seconds = run.wasted_cpu_seconds();
    rec.faults_injected =
        static_cast<int64_t>(injector.faults_injected());
    out->runs.push_back(std::move(rec));
  }
}

double ExactP95(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

}  // namespace

ChaosSweepResult RunChaosSweep(const ChaosSweepConfig& cfg) {
  FF_CHECK(!cfg.intensities.empty()) << "chaos sweep needs intensities";
  FF_CHECK(!cfg.policies.empty()) << "chaos sweep needs policies";
  FF_CHECK(cfg.replicas_per_cell > 0);
  FF_CHECK(cfg.num_nodes > 0);

  std::vector<ChaosPolicy> policies = cfg.policies;
  for (auto& p : policies) {
    if (p.name.empty()) p.name = RetryPolicyLabel(p.retry);
  }

  const size_t num_cells = cfg.intensities.size() * policies.size();
  const size_t total_replicas = num_cells * cfg.replicas_per_cell;

  parallel::SweepOptions opt;
  opt.num_workers = cfg.num_workers;
  opt.base_seed = cfg.base_seed;
  opt.record_traces = cfg.record;
  opt.record_metrics = cfg.record;

  std::vector<ReplicaOutcome> outcomes(total_replicas);
  parallel::SweepRunner runner(opt);
  ChaosSweepResult result;
  result.outputs = runner.Run(
      total_replicas, [&](parallel::ReplicaContext& ctx) {
        size_t cell = ctx.replica / cfg.replicas_per_cell;
        size_t ii = cell / policies.size();
        size_t pi = cell % policies.size();
        size_t in_cell = ctx.replica % cfg.replicas_per_cell;
        util::Rng pair_rng = util::Rng(cfg.base_seed)
                                 .Split(ii * cfg.replicas_per_cell + in_cell);
        RunReplica(cfg, cell, cfg.intensities[ii], policies[pi], pair_rng,
                   ctx, &outcomes[ctx.replica]);
      });

  // Fold per-replica outcomes in replica order (deterministic regardless
  // of which worker ran what), then score each cell.
  for (auto& o : outcomes) {
    for (auto& r : o.runs) result.runs.push_back(std::move(r));
  }
  result.cells.reserve(num_cells);
  for (size_t cell = 0; cell < num_cells; ++cell) {
    size_t ii = cell / policies.size();
    size_t pi = cell % policies.size();
    ChaosCellScore score;
    score.intensity = cfg.intensities[ii];
    score.policy = policies[pi].name;
    std::vector<double> delivery;
    double wasted = 0.0;
    int64_t retries = 0;
    for (size_t r = cell * cfg.replicas_per_cell;
         r < (cell + 1) * cfg.replicas_per_cell; ++r) {
      const ReplicaOutcome& o = outcomes[r];
      if (!o.runs.empty()) {
        // faults_injected is replica-wide; count it once per replica.
        score.faults_injected += o.runs.front().faults_injected;
      }
      for (const ChaosRunRecord& rec : o.runs) {
        ++score.runs;
        if (rec.delivered) ++score.delivered;
        if (rec.abandoned) ++score.abandoned;
        if (rec.delivered && rec.delivery_seconds <= cfg.slo_seconds) {
          score.on_time_fraction += 1.0;
        }
        delivery.push_back(rec.delivery_seconds);
        wasted += rec.wasted_cpu_seconds;
        retries += rec.retries;
      }
    }
    if (score.runs > 0) {
      score.on_time_fraction /= static_cast<double>(score.runs);
      score.retries_per_run =
          static_cast<double>(retries) / static_cast<double>(score.runs);
    }
    score.p95_delivery_seconds = ExactP95(std::move(delivery));
    score.wasted_cpu_hours = wasted / 3600.0;
    result.cells.push_back(std::move(score));
  }
  return result;
}

util::StatusOr<statsdb::Table*> LoadChaosRuns(
    statsdb::Database* db, const ChaosSweepResult& result) {
  using statsdb::DataType;
  using statsdb::Schema;
  using statsdb::Table;

  if (db->HasTable(kChaosRunsTable)) {
    FF_RETURN_IF_ERROR(db->DropTable(kChaosRunsTable));
  }
  Schema schema({
      {"replica", DataType::kInt64},
      {"cell", DataType::kInt64},
      {"intensity", DataType::kDouble},
      {"policy", DataType::kString},
      {"forecast", DataType::kString},
      {"node", DataType::kString},
      {"delivered", DataType::kInt64},
      {"abandoned", DataType::kInt64},
      {"delivery_seconds", DataType::kDouble},
      {"retries", DataType::kInt64},
      {"wasted_cpu_seconds", DataType::kDouble},
      {"faults_injected", DataType::kInt64},
  });
  FF_ASSIGN_OR_RETURN(Table * table,
                      db->CreateTable(kChaosRunsTable, schema));
  {
    Table::BulkAppender app(table);
    app.Reserve(result.runs.size());
    for (const ChaosRunRecord& r : result.runs) {
      app.Int64(r.replica)
          .Int64(r.cell)
          .Double(r.intensity)
          .String(r.policy)
          .String(r.forecast)
          .String(r.node)
          .Int64(r.delivered ? 1 : 0)
          .Int64(r.abandoned ? 1 : 0)
          .Double(r.delivery_seconds)
          .Int64(r.retries)
          .Double(r.wasted_cpu_seconds)
          .Int64(r.faults_injected);
      FF_RETURN_IF_ERROR(app.EndRow());
    }
    FF_RETURN_IF_ERROR(app.Finish());
  }
  FF_RETURN_IF_ERROR(table->CreateIndex("cell"));
  FF_RETURN_IF_ERROR(table->CreateIndex("policy"));
  return table;
}

}  // namespace fault
}  // namespace ff
