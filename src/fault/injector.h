// FaultInjector: binds a FaultPlan to a running simulation. It owns the
// mechanical half of every fault — flipping machines and links down and
// scheduling their repairs, stacking concurrent outages and bandwidth
// degradations — and broadcasts every injection and repair edge to
// listeners, which own the semantic half (killing and retrying their own
// tasks, re-sending corrupted transfer bytes, invoking reschedule
// policies). Splitting it this way keeps the injector generic: it never
// needs to know what a ForecastRun or a Campaign is.
//
// Observability: every injection and repair emits a kPlan instant on the
// "faults" track ("fault.node_crash:f1", "repair.node_crash:f1") and
// advances a per-kind counter ("fault.node_crash", ...), so chaos traces
// show fault edges aligned with the stalls they cause.
//
// Determinism: Arm() schedules plan events at a caller-chosen priority
// (default -1, i.e. before same-instant default-priority events such as
// campaign day launches); all ordering is inherited from the plan's total
// order plus the kernel's (time, priority, seq) order. The injector draws
// no randomness at all — stochastic choices live in the plan (timeline)
// and in the listeners (reactions, on the owner's stream).

#ifndef FF_FAULT_INJECTOR_H_
#define FF_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "cluster/machine.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"

namespace ff {
namespace fault {

/// What listeners receive: the plan event plus which edge this is.
struct FaultNotice {
  const FaultEvent* event = nullptr;
  bool repair = false;  // false = injection edge, true = repair edge
};

/// Schedules and applies a FaultPlan against registered targets.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator* sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers targets (before Arm). Machine faults address machines by
  /// Machine::name(), link faults address links by Link::name().
  void RegisterMachine(cluster::Machine* machine);
  void RegisterLink(cluster::Link* link);

  /// Registers a listener invoked on every injection and repair edge,
  /// after the injector applied the mechanical state change. Listeners
  /// fire in registration order.
  void AddListener(std::function<void(const FaultNotice&)> listener);

  /// Schedules every plan event on the simulator. Call exactly once,
  /// before the simulation runs. Every event's target must be registered
  /// (checked). kNodeCrash/kLinkOutage also schedule their repair edge at
  /// time + duration. Overlapping down windows nest: a target comes back
  /// up only when its last overlapping window ends. Overlapping degrades
  /// multiply.
  void Arm(int priority = -1);

  /// Total injection edges fired so far (repairs not counted).
  uint64_t faults_injected() const { return total_injected_; }

  /// Injection edges fired so far, by kind.
  const std::array<uint64_t, kNumFaultKinds>& injected_by_kind() const {
    return injected_by_kind_;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  void Inject(const FaultEvent& event);
  void Repair(const FaultEvent& event);
  void Notify(const FaultEvent& event, bool repair);
  void Observe(const FaultEvent& event, bool repair);
  void ApplyLinkDegrade(const std::string& target);

  sim::Simulator* sim_;
  FaultPlan plan_;
  std::map<std::string, cluster::Machine*> machines_;
  std::map<std::string, cluster::Link*> links_;
  std::vector<std::function<void(const FaultNotice&)>> listeners_;
  std::map<std::string, int> machine_down_depth_;
  std::map<std::string, int> link_down_depth_;
  // Active degrade factors per link, in injection order.
  std::map<std::string, std::vector<const FaultEvent*>> active_degrades_;
  std::array<uint64_t, kNumFaultKinds> injected_by_kind_{};
  uint64_t total_injected_ = 0;
  bool armed_ = false;
};

}  // namespace fault
}  // namespace ff

#endif  // FF_FAULT_INJECTOR_H_
