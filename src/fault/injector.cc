#include "fault/injector.h"

#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace ff {
namespace fault {

FaultInjector::FaultInjector(sim::Simulator* sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {
  FF_CHECK(sim_ != nullptr);
}

void FaultInjector::RegisterMachine(cluster::Machine* machine) {
  FF_CHECK(machine != nullptr);
  FF_CHECK(!armed_) << "register targets before Arm()";
  auto [it, inserted] = machines_.emplace(machine->name(), machine);
  FF_CHECK(inserted) << "duplicate machine " << machine->name();
}

void FaultInjector::RegisterLink(cluster::Link* link) {
  FF_CHECK(link != nullptr);
  FF_CHECK(!armed_) << "register targets before Arm()";
  auto [it, inserted] = links_.emplace(link->name(), link);
  FF_CHECK(inserted) << "duplicate link " << link->name();
}

void FaultInjector::AddListener(
    std::function<void(const FaultNotice&)> listener) {
  FF_CHECK(listener != nullptr);
  listeners_.push_back(std::move(listener));
}

void FaultInjector::Arm(int priority) {
  FF_CHECK(!armed_) << "Arm() called twice";
  armed_ = true;
  for (const FaultEvent& ev : plan_.events()) {
    switch (ev.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kTaskTransient:
        FF_CHECK(machines_.count(ev.target))
            << FaultKindName(ev.kind) << " targets unregistered machine "
            << ev.target;
        break;
      case FaultKind::kLinkOutage:
      case FaultKind::kLinkDegrade:
      case FaultKind::kTransferCorruption:
        FF_CHECK(links_.count(ev.target))
            << FaultKindName(ev.kind) << " targets unregistered link "
            << ev.target;
        break;
    }
    FF_CHECK(ev.time >= sim_->now())
        << "fault at t=" << ev.time << " is in the past";
    sim_->ScheduleAt(ev.time, [this, &ev] { Inject(ev); }, priority);
    if ((ev.kind == FaultKind::kNodeCrash ||
         ev.kind == FaultKind::kLinkOutage ||
         ev.kind == FaultKind::kLinkDegrade) &&
        ev.duration > 0.0) {
      sim_->ScheduleAt(ev.time + ev.duration, [this, &ev] { Repair(ev); },
                       priority);
    }
  }
}

void FaultInjector::Inject(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      if (++machine_down_depth_[event.target] == 1) {
        machines_.at(event.target)->SetUp(false);
      }
      break;
    case FaultKind::kLinkOutage:
      if (++link_down_depth_[event.target] == 1) {
        links_.at(event.target)->SetUp(false);
      }
      break;
    case FaultKind::kLinkDegrade:
      active_degrades_[event.target].push_back(&event);
      ApplyLinkDegrade(event.target);
      break;
    case FaultKind::kTaskTransient:
    case FaultKind::kTransferCorruption:
      // Pure notifications: the owning run decides which of its tasks die
      // or which delivered bytes must be re-sent, on its own RNG stream.
      break;
  }
  ++total_injected_;
  ++injected_by_kind_[static_cast<size_t>(event.kind)];
  Observe(event, /*repair=*/false);
  Notify(event, /*repair=*/false);
}

void FaultInjector::Repair(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      if (--machine_down_depth_[event.target] == 0) {
        machines_.at(event.target)->SetUp(true);
      }
      break;
    case FaultKind::kLinkOutage:
      if (--link_down_depth_[event.target] == 0) {
        links_.at(event.target)->SetUp(true);
      }
      break;
    case FaultKind::kLinkDegrade: {
      auto& active = active_degrades_[event.target];
      for (auto it = active.begin(); it != active.end(); ++it) {
        if (*it == &event) {
          active.erase(it);
          break;
        }
      }
      ApplyLinkDegrade(event.target);
      break;
    }
    case FaultKind::kTaskTransient:
    case FaultKind::kTransferCorruption:
      FF_CHECK(false) << "instantaneous faults have no repair edge";
  }
  Observe(event, /*repair=*/true);
  Notify(event, /*repair=*/true);
}

void FaultInjector::ApplyLinkDegrade(const std::string& target) {
  double factor = 1.0;
  for (const FaultEvent* ev : active_degrades_[target]) {
    factor *= ev->magnitude;
  }
  links_.at(target)->SetDegrade(factor);
}

void FaultInjector::Observe(const FaultEvent& event, bool repair) {
  if (auto* tr = obs::ActiveTrace()) {
    std::string name = repair ? "repair." : "fault.";
    name += FaultKindName(event.kind);
    name += ':';
    name += event.target;
    tr->Instant(sim_->now(), obs::SpanCategory::kPlan, name, "faults");
  }
  if (auto* m = obs::ActiveMetrics()) {
    if (!repair) {
      std::string name = "fault.";
      name += FaultKindName(event.kind);
      m->counter(name)->Increment();
      m->counter("fault.injected")->Increment();
    }
  }
}

void FaultInjector::Notify(const FaultEvent& event, bool repair) {
  FaultNotice notice;
  notice.event = &event;
  notice.repair = repair;
  for (const auto& listener : listeners_) listener(notice);
}

}  // namespace fault
}  // namespace ff
