#include "fault/fault_plan.h"

#include <algorithm>
#include <tuple>

#include "util/logging.h"

namespace ff {
namespace fault {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kLinkOutage:
      return "link_outage";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kTaskTransient:
      return "task_transient";
    case FaultKind::kTransferCorruption:
      return "transfer_corruption";
  }
  return "?";
}

void FaultPlan::Add(FaultEvent event) {
  FF_CHECK(event.time >= 0.0) << "fault time must be non-negative";
  events_.push_back(std::move(event));
  sorted_ = events_.size() <= 1;
}

const std::vector<FaultEvent>& FaultPlan::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return std::tie(a.time, a.kind, a.target) <
                              std::tie(b.time, b.kind, b.target);
                     });
    sorted_ = true;
  }
  return events_;
}

namespace {

// Poisson arrivals for one (kind, target) pair on its own substream.
// Every draw needed to describe an event is taken from the same stream in
// a fixed order, so the timeline is a pure function of (seed, cfg).
void GenerateProcess(const ChaosConfig& cfg, FaultKind kind,
                     const std::string& target, double rate_per_day,
                     util::Rng rng, FaultPlan* plan) {
  double rate = rate_per_day * cfg.intensity / 86400.0;  // events per sec
  if (rate <= 0.0 || cfg.horizon <= 0.0) return;
  double t = rng.Exponential(rate);
  while (t < cfg.horizon) {
    FaultEvent ev;
    ev.time = t;
    ev.kind = kind;
    ev.target = target;
    switch (kind) {
      case FaultKind::kNodeCrash:
        ev.duration =
            rng.LogNormalMedian(cfg.node_repair_median, cfg.node_repair_sigma);
        break;
      case FaultKind::kLinkOutage:
        ev.duration =
            rng.LogNormalMedian(cfg.link_outage_median, cfg.link_outage_sigma);
        break;
      case FaultKind::kLinkDegrade:
        ev.duration = rng.LogNormalMedian(cfg.link_degrade_median,
                                          cfg.link_degrade_sigma);
        ev.magnitude =
            rng.Uniform(cfg.link_degrade_floor, cfg.link_degrade_ceil);
        break;
      case FaultKind::kTaskTransient:
        ev.magnitude = cfg.task_kill_probability;
        break;
      case FaultKind::kTransferCorruption:
        ev.magnitude =
            rng.Uniform(cfg.corrupt_fraction_floor, cfg.corrupt_fraction_ceil);
        break;
    }
    plan->Add(std::move(ev));
    t += rng.Exponential(rate);
  }
}

}  // namespace

FaultPlan FaultPlan::Generate(const ChaosConfig& cfg,
                              const std::vector<std::string>& machines,
                              const std::vector<std::string>& links,
                              const util::Rng& rng) {
  FaultPlan plan;
  auto stream = [&rng](FaultKind kind, size_t index) {
    return rng.Split(static_cast<uint64_t>(kind) * 4096 +
                     static_cast<uint64_t>(index));
  };
  for (size_t i = 0; i < machines.size(); ++i) {
    GenerateProcess(cfg, FaultKind::kNodeCrash, machines[i],
                    cfg.node_crash_rate,
                    stream(FaultKind::kNodeCrash, i), &plan);
    GenerateProcess(cfg, FaultKind::kTaskTransient, machines[i],
                    cfg.task_transient_rate,
                    stream(FaultKind::kTaskTransient, i), &plan);
  }
  for (size_t i = 0; i < links.size(); ++i) {
    GenerateProcess(cfg, FaultKind::kLinkOutage, links[i],
                    cfg.link_outage_rate,
                    stream(FaultKind::kLinkOutage, i), &plan);
    GenerateProcess(cfg, FaultKind::kLinkDegrade, links[i],
                    cfg.link_degrade_rate,
                    stream(FaultKind::kLinkDegrade, i), &plan);
    GenerateProcess(cfg, FaultKind::kTransferCorruption, links[i],
                    cfg.transfer_corrupt_rate,
                    stream(FaultKind::kTransferCorruption, i), &plan);
  }
  plan.events();  // sort eagerly; Generate output is canonical
  return plan;
}

}  // namespace fault
}  // namespace ff
