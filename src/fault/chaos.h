// ChaosSweep: the "how much failure can the factory absorb" study. Fans a
// fault-intensity x retry-policy grid across parallel::SweepRunner —
// every grid cell runs R independent replicas, each a private plant
// (N compute nodes staging one forecast each to the public server) with a
// FaultPlan generated at that cell's intensity — and scores each cell
// with delivery-SLO metrics: on-time fraction, P95 time-until-data-at-
// server, wasted CPU-hours, retries per run.
//
// Determinism: replica i (in grid order) draws everything from
// Rng(base_seed).Split(i) — the fault timeline from one substream, each
// run's retry jitter and kill decisions from another — so every artifact
// (per-run table rows, cell scores, the merged Chrome trace and metrics
// CSV) is byte-identical on 1, 4 or 16 workers.

#ifndef FF_FAULT_CHAOS_H_
#define FF_FAULT_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/forecast_run.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "parallel/sweep.h"
#include "statsdb/database.h"
#include "util/statusor.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace fault {

/// One policy column of the chaos grid.
struct ChaosPolicy {
  std::string name;  // cell label; defaults to RetryPolicyLabel(retry)
  RetryPolicy retry;
};

/// The grid and the per-replica scenario.
struct ChaosSweepConfig {
  /// Fault-process rates; `intensity` and `horizon` are overridden per
  /// cell from `intensities` / `horizon` below.
  ChaosConfig faults;
  /// Grid x-axis (0.0 = no-fault control cell) and curves.
  std::vector<double> intensities;
  std::vector<ChaosPolicy> policies;
  size_t replicas_per_cell = 4;

  uint64_t base_seed = 4242;
  size_t num_workers = 0;  // SweepOptions::num_workers
  bool record = true;      // per-replica tracing/metrics + merged views

  /// Per-replica plant: `num_nodes` §4.2 testbed nodes, one forecast
  /// each, staging to the shared public server.
  int num_nodes = 2;
  dataflow::Architecture arch = dataflow::Architecture::kProductsAtNode;
  workload::ForecastSpec spec;  // per-node forecast (set by caller)
  /// Simulated window; runs not done by then are censored at the horizon.
  double horizon = 86400.0;
  /// Delivery SLO: a run is on time when every byte reached the server
  /// within this many seconds of launch.
  double slo_seconds = 6.0 * 3600.0;
};

/// One forecast run's outcome (one statsdb `chaos_runs` row).
struct ChaosRunRecord {
  int64_t replica = 0;       // global replica index (grid order)
  int64_t cell = 0;          // cell index = replica / replicas_per_cell
  double intensity = 0.0;
  std::string policy;
  std::string forecast;
  std::string node;
  bool delivered = false;    // all data at server within the horizon
  bool abandoned = false;    // retry budget exhausted (ForecastRun::failed)
  double delivery_seconds = 0.0;  // finish time; horizon when undelivered
  int64_t retries = 0;
  double wasted_cpu_seconds = 0.0;
  int64_t faults_injected = 0;    // replica-wide injection count
};

/// One cell's delivery-SLO score.
struct ChaosCellScore {
  double intensity = 0.0;
  std::string policy;
  int64_t runs = 0;
  int64_t delivered = 0;
  int64_t abandoned = 0;
  double on_time_fraction = 0.0;
  /// Exact (sorted, no interpolation) P95 of delivery_seconds, with
  /// undelivered runs censored at the horizon.
  double p95_delivery_seconds = 0.0;
  double wasted_cpu_hours = 0.0;
  double retries_per_run = 0.0;
  int64_t faults_injected = 0;
};

/// Sweep outputs: per-run rows in replica order, per-cell scores in grid
/// order (intensity-major, then policy), plus the merged observability.
struct ChaosSweepResult {
  std::vector<ChaosRunRecord> runs;
  std::vector<ChaosCellScore> cells;
  parallel::SweepOutputs outputs;
};

/// Runs the whole grid. Cell (i, p) covers replicas
/// [(i * num_policies + p) * R, ...R) and every replica is independent,
/// so the sweep parallelizes replica-by-replica.
ChaosSweepResult RunChaosSweep(const ChaosSweepConfig& cfg);

/// Name of the table LoadChaosRuns creates.
inline constexpr char kChaosRunsTable[] = "chaos_runs";

/// Bulk-loads result.runs into `db` (drop + recreate, rows in replica
/// order, indexed by policy and cell) — same single-writer discipline as
/// parallel::LoadSweepRuns.
util::StatusOr<statsdb::Table*> LoadChaosRuns(statsdb::Database* db,
                                              const ChaosSweepResult& result);

}  // namespace fault
}  // namespace ff

#endif  // FF_FAULT_CHAOS_H_
