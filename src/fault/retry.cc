#include "fault/retry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace ff {
namespace fault {

double RetryPolicy::NextDelay(int retry, util::Rng* rng) const {
  FF_CHECK(retry >= 1) << "retry numbers are 1-based";
  double delay =
      base_backoff * std::pow(backoff_multiplier,
                              static_cast<double>(retry - 1));
  delay = std::min(delay, max_backoff);
  if (jitter > 0.0) {
    FF_CHECK(rng != nullptr) << "jittered retry needs an RNG stream";
    delay *= rng->Uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(0.0, delay);
}

std::string RetryPolicyLabel(const RetryPolicy& p) {
  if (p.max_attempts <= 1) return "no-retry";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dx@%.0fs*%.3g", p.max_attempts,
                p.base_backoff, p.backoff_multiplier);
  return buf;
}

}  // namespace fault
}  // namespace ff
