// FaultPlan: a reproducible schedule of fault events against named plant
// targets (machines and links). The paper's operational reality — nodes
// failing mid-forecast, flaky staging links, users choosing between
// waiting and dropping (§2.1, §4.3) — becomes a first-class workload:
// a plan is either scripted event by event or generated stochastically
// from a ChaosConfig, and in both cases is a pure function of its inputs.
//
// Seed discipline: generation draws from a *dedicated* RNG stream passed
// in by the caller (chaos sweeps hand each replica Split(i) of the sweep
// seed; per-(kind, target) substreams are split off that), so the same
// seed yields a byte-identical fault timeline on 1, 4 or 16 sweep
// workers, and a zero-rate config draws nothing — leaving the no-fault
// baseline's RNG consumption untouched.

#ifndef FF_FAULT_FAULT_PLAN_H_
#define FF_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ff {
namespace fault {

/// Taxonomy of injectable faults (EXPERIMENTS.md §F).
enum class FaultKind : uint8_t {
  kNodeCrash = 0,        // machine down; repaired after `duration`
  kLinkOutage,           // link down (transfers stall, no loss); `duration`
  kLinkDegrade,          // link at `magnitude` of nominal bandwidth for
                         // `duration` seconds
  kTaskTransient,        // each retryable task on the machine dies with
                         // probability `magnitude` (owner decides, using
                         // its own RNG stream)
  kTransferCorruption,   // fraction `magnitude` of each in-flight
                         // transfer's delivered bytes must be re-sent
};
inline constexpr int kNumFaultKinds = 5;

const char* FaultKindName(FaultKind k);

/// One fault occurrence against one target.
struct FaultEvent {
  double time = 0.0;       // injection instant (simulation seconds)
  FaultKind kind = FaultKind::kNodeCrash;
  std::string target;      // machine or link name
  double duration = 0.0;   // repair / outage / degrade window length
  double magnitude = 1.0;  // degrade factor, kill probability, or corrupt
                           // fraction, per kind
};

/// Stochastic fault-process parameters. All rates are events per target
/// per day, scaled by `intensity` — sweeping intensity from 0 upward is
/// the x-axis of the chaos curves. A rate of 0 disables that fault class
/// (and draws nothing from its substream).
struct ChaosConfig {
  double horizon = 86400.0;  // generate events in [0, horizon)
  double intensity = 1.0;    // global multiplier on every rate

  double node_crash_rate = 0.0;
  double node_repair_median = 2.0 * 3600.0;  // lognormal repair time
  double node_repair_sigma = 0.5;

  double link_outage_rate = 0.0;
  double link_outage_median = 900.0;
  double link_outage_sigma = 0.5;

  double link_degrade_rate = 0.0;
  double link_degrade_median = 1800.0;
  double link_degrade_sigma = 0.5;
  double link_degrade_floor = 0.1;  // factor drawn uniform in
  double link_degrade_ceil = 0.5;   // [floor, ceil]

  double task_transient_rate = 0.0;
  double task_kill_probability = 1.0;

  double transfer_corrupt_rate = 0.0;
  double corrupt_fraction_floor = 0.1;  // fraction drawn uniform in
  double corrupt_fraction_ceil = 0.5;   // [floor, ceil]
};

/// An ordered, reproducible fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends a scripted event (any order; events() sorts).
  void Add(FaultEvent event);

  /// Generates Poisson arrivals per (fault kind, target) from `cfg`.
  /// Each (kind, target) pair draws from rng->Split(kind * 4096 + index),
  /// so adding a target or enabling another fault class never perturbs
  /// the existing substreams. `rng` is not advanced.
  static FaultPlan Generate(const ChaosConfig& cfg,
                            const std::vector<std::string>& machines,
                            const std::vector<std::string>& links,
                            const util::Rng& rng);

  /// Events sorted by (time, kind, target), ties broken by insertion
  /// order (stable sort) — a total order, so two plans built from the
  /// same inputs are byte-identical.
  const std::vector<FaultEvent>& events() const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace fault
}  // namespace ff

#endif  // FF_FAULT_FAULT_PLAN_H_
