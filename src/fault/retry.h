// RetryPolicy: how a component reacts to a transient failure of one of
// its tasks or transfers (§2.1: users "may be willing to wait" for a
// degraded plant, §4.3: staging via rsync must survive flaky links).
//
// The policy is purely declarative — backoff delays are computed from the
// *owning run's* RNG stream, never from a global one, so a retry in one
// run cannot perturb the noise draws of another (the same discipline
// util::Rng::Split gives sweep replicas). With jitter = 0 the schedule is
// a deterministic exponential ladder.

#ifndef FF_FAULT_RETRY_H_
#define FF_FAULT_RETRY_H_

#include <string>

#include "util/rng.h"

namespace ff {
namespace fault {

/// Retry/backoff semantics for retryable work (product tasks, rsync
/// transfers, campaign runs knocked out by a transient fault).
struct RetryPolicy {
  /// Total attempts including the first; 1 = never retry. After the last
  /// attempt fails the work is abandoned and the owner reports it undone.
  int max_attempts = 4;

  /// Delay before the first retry, in seconds.
  double base_backoff = 60.0;

  /// Multiplier applied per subsequent retry (exponential backoff).
  double backoff_multiplier = 2.0;

  /// Upper bound on any single backoff delay.
  double max_backoff = 3600.0;

  /// Uniform jitter amplitude in [0, 1): the delay is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1 + jitter] using the run's RNG
  /// stream. 0 disables jitter (and draws nothing from the stream).
  double jitter = 0.25;

  /// Watchdog on a single transfer: when > 0, a transfer still in flight
  /// after this many seconds is cancelled and re-sent from its acked
  /// bytes (counting one attempt). 0 disables the watchdog — a stalled
  /// link then simply delays completion (stall-no-loss).
  double transfer_timeout = 0.0;

  /// Backoff before retry number `retry` (1-based: retry 1 follows the
  /// first failure). `rng` supplies jitter; may be null when jitter == 0.
  double NextDelay(int retry, util::Rng* rng) const;

  /// True when `retry` (1-based) is still allowed under max_attempts.
  bool AllowsRetry(int retry) const { return retry < max_attempts; }
};

/// Compact human-readable label, e.g. "4x@60s*2" or "no-retry" — used by
/// chaos-sweep cell names and bench output.
std::string RetryPolicyLabel(const RetryPolicy& p);

}  // namespace fault
}  // namespace ff

#endif  // FF_FAULT_RETRY_H_
