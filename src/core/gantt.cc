#include "core/gantt.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "util/strings.h"
#include "util/time_util.h"

namespace ff {
namespace core {

std::string RenderGantt(const DayPlan& plan, const GanttOptions& options) {
  std::ostringstream os;
  const double span = options.t_end - options.t_begin;
  if (span <= 0.0 || options.width < 8) return "(invalid gantt window)\n";
  auto col_of = [&](double t) {
    double frac = (t - options.t_begin) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<int>(frac * (options.width - 1));
  };

  // Group runs by node; order nodes alphabetically, runs by start time.
  std::map<std::string, std::vector<const PlannedRun*>> by_node;
  for (const auto& r : plan.runs) {
    if (!r.dropped) by_node[r.node].push_back(&r);
  }
  char letter = 'A';
  std::map<std::string, char> letters;
  for (const auto& r : plan.runs) {
    letters[r.name] = letter;
    letter = letter == 'Z' ? 'a' : static_cast<char>(letter + 1);
  }

  // Time axis header (every 4 hours).
  os << util::StrFormat("%-10s", "");
  std::string axis(static_cast<size_t>(options.width), ' ');
  for (int h = 0; h <= 24; h += 4) {
    int c = col_of(options.t_begin == 0.0 ? h * 3600.0
                                          : options.t_begin + h * span / 24);
    std::string label = util::StrFormat("%02dh", h);
    for (size_t k = 0; k < label.size(); ++k) {
      size_t pos = static_cast<size_t>(c) + k;
      if (pos < axis.size()) axis[pos] = label[k];
    }
  }
  os << axis << "\n";

  for (const auto& [node, runs] : by_node) {
    // Stack overlapping runs into sub-rows.
    std::vector<std::vector<const PlannedRun*>> rows;
    std::vector<const PlannedRun*> sorted = runs;
    std::sort(sorted.begin(), sorted.end(),
              [](const PlannedRun* a, const PlannedRun* b) {
                return a->start_time < b->start_time;
              });
    for (const PlannedRun* r : sorted) {
      bool placed = false;
      for (auto& row : rows) {
        if (row.back()->predicted_completion <= r->start_time) {
          row.push_back(r);
          placed = true;
          break;
        }
      }
      if (!placed) rows.push_back({r});
    }
    bool first = true;
    if (rows.empty()) {
      os << util::StrFormat("%-10s", node.c_str())
         << std::string(static_cast<size_t>(options.width), ' ') << "\n";
      continue;
    }
    for (const auto& row : rows) {
      os << util::StrFormat("%-10s", first ? node.c_str() : "");
      first = false;
      std::string line(static_cast<size_t>(options.width), ' ');
      for (const PlannedRun* r : row) {
        int c0 = col_of(r->start_time);
        int c1 = std::max(c0, col_of(r->predicted_completion));
        for (int c = c0; c <= c1; ++c) {
          bool past = options.now >= 0.0 &&
                      options.t_begin + (c + 0.5) * span / options.width <
                          options.now;
          line[static_cast<size_t>(c)] = past ? '.' : letters[r->name];
        }
      }
      if (options.now >= 0.0) {
        int cn = col_of(options.now);
        if (cn >= 0 && cn < options.width) {
          line[static_cast<size_t>(cn)] = '|';
        }
      }
      os << line << "\n";
    }
  }

  os << "\nlegend:";
  for (const auto& r : plan.runs) {
    os << " " << letters[r.name] << "=" << r.name
       << (r.dropped ? "(dropped)" : "");
  }
  os << "\n";
  return os.str();
}

std::string RenderPlanTable(const DayPlan& plan) {
  std::ostringstream os;
  os << util::StrFormat("%-28s %-8s %10s %12s %12s %8s %s\n", "run", "node",
                        "work(s)", "start", "completion", "slack", "flags");
  for (const auto& r : plan.runs) {
    std::string flags;
    if (r.dropped) flags += "DROPPED ";
    if (r.delayed) flags += "delayed ";
    if (r.MissesDeadline()) flags += "MISS ";
    os << util::StrFormat(
        "%-28s %-8s %10.0f %12s %12s %8.0f %s\n", r.name.c_str(),
        r.dropped ? "-" : r.node.c_str(), r.work,
        util::FormatDuration(r.start_time).c_str(),
        r.dropped ? "-" : util::FormatDuration(r.predicted_completion)
                              .c_str(),
        r.dropped ? 0.0 : r.deadline - r.predicted_completion,
        flags.c_str());
  }
  os << util::StrFormat(
      "makespan %.0f s, misses %d, dropped %d, delayed %d, max load %.2f\n",
      plan.makespan, plan.deadline_misses, plan.dropped, plan.delayed,
      plan.max_relative_load);
  return os.str();
}

}  // namespace core
}  // namespace ff
