#include "core/binpack.h"

#include <algorithm>

#include "util/strings.h"

namespace ff {
namespace core {

const char* PackHeuristicName(PackHeuristic h) {
  switch (h) {
    case PackHeuristic::kFirstFit:
      return "first-fit";
    case PackHeuristic::kFirstFitDecreasing:
      return "first-fit-decreasing";
    case PackHeuristic::kBestFitDecreasing:
      return "best-fit-decreasing";
    case PackHeuristic::kLpt:
      return "lpt";
    case PackHeuristic::kRoundRobin:
      return "round-robin";
    case PackHeuristic::kRandom:
      return "random";
    case PackHeuristic::kPreviousDay:
      return "previous-day";
  }
  return "?";
}

util::StatusOr<PackHeuristic> ParsePackHeuristic(const std::string& name) {
  for (PackHeuristic h :
       {PackHeuristic::kFirstFit, PackHeuristic::kFirstFitDecreasing,
        PackHeuristic::kBestFitDecreasing, PackHeuristic::kLpt,
        PackHeuristic::kRoundRobin, PackHeuristic::kRandom,
        PackHeuristic::kPreviousDay}) {
    if (util::EqualsIgnoreCase(name, PackHeuristicName(h))) return h;
  }
  return util::Status::InvalidArgument("unknown heuristic: " + name);
}

namespace {

struct Bin {
  const NodeInfo* node;
  double capacity;  // cpus * speed * horizon
  double load = 0.0;
  double relative_load() const { return load / capacity; }
};

size_t LeastLoadedBin(const std::vector<Bin>& bins) {
  size_t best = 0;
  for (size_t i = 1; i < bins.size(); ++i) {
    if (bins[i].relative_load() < bins[best].relative_load()) best = i;
  }
  return best;
}

}  // namespace

util::StatusOr<PackResult> Pack(
    const std::vector<PackItem>& items, const std::vector<NodeInfo>& nodes,
    PackHeuristic heuristic, double horizon,
    const std::map<std::string, std::string>* previous, util::Rng* rng) {
  if (nodes.empty()) {
    return util::Status::InvalidArgument("no nodes to pack onto");
  }
  if (horizon <= 0.0) {
    return util::Status::InvalidArgument("horizon must be positive");
  }
  for (const auto& item : items) {
    if (item.work < 0.0) {
      return util::Status::InvalidArgument("negative work: " + item.id);
    }
  }
  if (heuristic == PackHeuristic::kRandom && rng == nullptr) {
    return util::Status::InvalidArgument("kRandom requires an Rng");
  }

  std::vector<Bin> bins;
  bins.reserve(nodes.size());
  for (const auto& n : nodes) {
    bins.push_back(Bin{&n, static_cast<double>(n.num_cpus) * n.speed *
                              horizon});
  }

  // Work on an index permutation so the caller's order is preserved in
  // the result maps.
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  bool decreasing = heuristic == PackHeuristic::kFirstFitDecreasing ||
                    heuristic == PackHeuristic::kBestFitDecreasing ||
                    heuristic == PackHeuristic::kLpt;
  if (decreasing) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return items[a].work > items[b].work;
    });
  }

  PackResult result;
  size_t rr_cursor = 0;
  for (size_t oi : order) {
    const PackItem& item = items[oi];
    size_t chosen = bins.size();  // sentinel
    switch (heuristic) {
      case PackHeuristic::kFirstFit:
      case PackHeuristic::kFirstFitDecreasing: {
        for (size_t b = 0; b < bins.size(); ++b) {
          if (bins[b].load + item.work <= bins[b].capacity) {
            chosen = b;
            break;
          }
        }
        break;
      }
      case PackHeuristic::kBestFitDecreasing: {
        double best_residual = -1.0;
        for (size_t b = 0; b < bins.size(); ++b) {
          double residual = bins[b].capacity - bins[b].load - item.work;
          if (residual < 0.0) continue;
          if (chosen == bins.size() || residual < best_residual) {
            chosen = b;
            best_residual = residual;
          }
        }
        break;
      }
      case PackHeuristic::kLpt:
        chosen = LeastLoadedBin(bins);
        break;
      case PackHeuristic::kRoundRobin:
        chosen = rr_cursor++ % bins.size();
        break;
      case PackHeuristic::kRandom:
        chosen = rng->Index(bins.size());
        break;
      case PackHeuristic::kPreviousDay: {
        if (previous != nullptr) {
          auto it = previous->find(item.id);
          if (it != previous->end()) {
            for (size_t b = 0; b < bins.size(); ++b) {
              if (bins[b].node->name == it->second) {
                chosen = b;
                break;
              }
            }
          }
        }
        if (chosen == bins.size()) chosen = LeastLoadedBin(bins);
        break;
      }
    }
    // FF/BFD overflow: nothing fits — spill to the least loaded node (a
    // data product factory must place every run somewhere; capacity
    // overruns surface via max_relative_load instead).
    if (chosen == bins.size()) chosen = LeastLoadedBin(bins);

    bins[chosen].load += item.work;
    result.assignment[item.id] = bins[chosen].node->name;
  }

  for (const auto& b : bins) {
    result.node_load[b.node->name] = b.load;
    result.max_relative_load =
        std::max(result.max_relative_load, b.relative_load());
  }
  return result;
}

}  // namespace core
}  // namespace ff
