// On-demand ("made-to-order") product scheduling — the paper's §5 future
// work: "we are investigating how to incorporate made-to-order
// (on-demand) products into the system along with the made-to-stock
// products currently manufactured in the factory."
//
// Scientists request ad-hoc products (a hindcast animation, a custom
// transect) during the day. The scheduler admits a request only when
// some node can serve it by its deadline WITHOUT pushing any made-to-
// stock forecast past its own deadline — the §1 newspaper constraint
// ("having idle capacity at mid-morning doesn't mean the newspaper can
// necessarily add another edition and have it be timely").

#ifndef FF_CORE_ONDEMAND_H_
#define FF_CORE_ONDEMAND_H_

#include <string>
#include <vector>

#include "core/planner.h"

namespace ff {
namespace core {

/// An ad-hoc product request.
struct OnDemandRequest {
  std::string id;
  double arrival = 0.0;      // seconds after midnight
  double cpu_seconds = 0.0;  // reference-speed work
  double deadline = 86400.0; // absolute, seconds after midnight
};

/// Why a request was (not) admitted.
enum class AdmissionOutcome {
  kAccepted,
  kRejectedOwnDeadline,   // no node finishes it in time
  kRejectedInterference,  // serving it would make a stock run miss
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// The decision for one request.
struct OnDemandPlacement {
  OnDemandRequest request;
  AdmissionOutcome outcome = AdmissionOutcome::kRejectedOwnDeadline;
  std::string node;                    // set when accepted
  double predicted_completion = 0.0;   // set when accepted
};

/// Admits requests one at a time against a fixed daily plan.
class OnDemandScheduler {
 public:
  /// `daily_plan` is the accepted made-to-stock plan (dropped runs are
  /// ignored). Runs that already miss in the baseline plan are not
  /// charged to on-demand requests.
  OnDemandScheduler(std::vector<NodeInfo> nodes, DayPlan daily_plan);

  /// Decides a request (requests must arrive in non-decreasing time).
  /// Accepted requests occupy capacity for all later decisions.
  util::StatusOr<OnDemandPlacement> Admit(const OnDemandRequest& request);

  const std::vector<OnDemandPlacement>& placements() const {
    return placements_;
  }
  int accepted() const { return accepted_; }
  int rejected() const {
    return static_cast<int>(placements_.size()) - accepted_;
  }

 private:
  // Predicts completions of stock + accepted + optional candidate.
  util::StatusOr<SharePrediction> Predict(
      const OnDemandRequest* candidate,
      const std::string& candidate_node) const;

  std::vector<NodeInfo> nodes_;
  DayPlan plan_;
  std::vector<OnDemandPlacement> placements_;
  std::vector<std::pair<OnDemandRequest, std::string>> accepted_jobs_;
  std::vector<std::string> baseline_misses_;
  int accepted_ = 0;
  double last_arrival_ = 0.0;
};

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_ONDEMAND_H_
