// Script generation: the ForeMan back end. "Once an acceptable assignment
// of workflows to nodes is found, the user can click an accept button and
// the back end will automatically generate the needed scripts and
// commands. The back end can be tailored to any underlying scheduler or
// resource manager."

#ifndef FF_CORE_SCRIPT_GEN_H_
#define FF_CORE_SCRIPT_GEN_H_

#include <map>
#include <string>

#include "core/planner.h"

namespace ff {
namespace core {

/// Which launcher syntax to emit.
enum class ScriptBackend {
  kShell,       // plain sh: stage-in, launch, rsync stage-out
  kTorqueMaui,  // qsub job script per run (the paper cites Torque/Maui)
};

const char* ScriptBackendName(ScriptBackend b);

/// Per-node launch scripts for an accepted plan; key = node name.
/// Dropped runs are omitted; delayed runs get an `at`-style start guard.
std::map<std::string, std::string> GenerateScripts(const DayPlan& plan,
                                                   ScriptBackend backend);

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_SCRIPT_GEN_H_
