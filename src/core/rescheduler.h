// Rescheduler: reacts to node failures and fleet changes (§2.1: "if a
// node becomes temporarily unavailable, forecasts scheduled to run on it
// must be reassigned ... To accommodate the displaced forecasts, other
// runs may need to be reassigned as well"). Implements the policy
// spectrum the paper discusses: when a node fails temporarily users "may
// wish to reschedule only a subset of forecasts", while a permanent
// change may justify rescheduling everything.

#ifndef FF_CORE_RESCHEDULER_H_
#define FF_CORE_RESCHEDULER_H_

#include <string>
#include <vector>

#include "core/planner.h"

namespace ff {
namespace core {

/// How much of the plan may be disturbed when a node fails.
enum class ReschedulePolicy {
  kNone,       // displaced runs wait for the node (baseline)
  kMinimal,    // move only the displaced runs (least-loaded placement)
  kCascading,  // displaced runs move; then bounded moves of low-priority
               // runs off receiving nodes that now miss deadlines
  kFullReplan, // re-pack every unstarted run from scratch
};

const char* ReschedulePolicyName(ReschedulePolicy p);

/// Outcome of a reschedule.
struct RescheduleResult {
  DayPlan plan;
  int runs_moved = 0;     // runs whose node changed (excluding waiting)
  int runs_waiting = 0;   // runs left on the failed node (kNone)
};

/// Produces a new plan after `failed_node` goes down at `failure_time`
/// (seconds after midnight). Runs already finished are untouched; the
/// remaining work of in-flight runs on the failed node is what moves.
/// `requests` must carry each run's *remaining* work at failure_time.
util::StatusOr<RescheduleResult> RescheduleAfterFailure(
    const Planner& planner, const DayPlan& current,
    const std::vector<RunRequest>& requests, const std::string& failed_node,
    double failure_time, ReschedulePolicy policy);

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_RESCHEDULER_H_
