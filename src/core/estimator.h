// RunTimeEstimator: ForeMan's §4.3.2 estimation pipeline. Estimates a
// run's CPU demand from the statistics database — the median of recent
// completed executions, rescaled along the paper's documented laws:
// linear in timesteps, near-linear in mesh sides, relative node speed,
// and a user-supplied adjustment for code-version changes ("a programmer
// may estimate that a new code version will run 10% faster"). Falls back
// to the analytic cost model when no history exists.

#ifndef FF_CORE_ESTIMATOR_H_
#define FF_CORE_ESTIMATOR_H_

#include <map>
#include <string>

#include "statsdb/database.h"
#include "workload/cost_model.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace core {

/// An estimate of one run's demand.
struct Estimate {
  /// Reference-speed CPU-seconds the run needs.
  double cpu_seconds = 0.0;
  /// True when derived from logged history, false when from the model.
  bool from_history = false;
  /// Number of history samples used.
  int history_samples = 0;
};

/// Estimator configuration.
struct EstimatorConfig {
  /// How many most-recent completed runs to aggregate (median).
  int history_window = 7;
  /// Speed of each node name (for converting logged walltimes, which are
  /// node-local, into reference-speed work). Unknown nodes assume 1.0.
  std::map<std::string, double> node_speeds;
};

/// Estimates run demand from history in a statistics database.
class RunTimeEstimator {
 public:
  /// `db` must outlive the estimator and contain a logdata-layout "runs"
  /// table (absence is fine: everything falls back to the cost model).
  RunTimeEstimator(const statsdb::Database* db, workload::CostModel model,
                   EstimatorConfig config = {});

  /// Estimates reference-speed CPU-seconds for running `spec` today.
  util::StatusOr<Estimate> EstimateWork(
      const workload::ForecastSpec& spec) const;

  /// Registers a user adjustment factor for a forecast (multiplies the
  /// history-derived estimate; e.g. 0.9 = "new code 10% faster").
  void SetUserAdjustment(const std::string& forecast, double factor);
  void ClearUserAdjustment(const std::string& forecast);

 private:
  const statsdb::Database* db_;
  workload::CostModel model_;
  EstimatorConfig config_;
  std::map<std::string, double> user_adjustments_;
};

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_ESTIMATOR_H_
