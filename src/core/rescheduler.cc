#include "core/rescheduler.h"

#include <algorithm>
#include <map>

#include "obs/trace.h"
#include "util/logging.h"

namespace ff {
namespace core {

const char* ReschedulePolicyName(ReschedulePolicy p) {
  switch (p) {
    case ReschedulePolicy::kNone:
      return "none";
    case ReschedulePolicy::kMinimal:
      return "minimal";
    case ReschedulePolicy::kCascading:
      return "cascading";
    case ReschedulePolicy::kFullReplan:
      return "full-replan";
  }
  return "?";
}

namespace {

// Least relatively loaded healthy node.
std::string BestNode(const std::vector<NodeInfo>& nodes,
                     const std::map<std::string, double>& load,
                     const std::string& excluded) {
  std::string best;
  double best_rel = 0.0;
  for (const auto& n : nodes) {
    if (n.name == excluded) continue;
    auto it = load.find(n.name);
    double l = it == load.end() ? 0.0 : it->second;
    double rel = l / (static_cast<double>(n.num_cpus) * n.speed);
    if (best.empty() || rel < best_rel) {
      best = n.name;
      best_rel = rel;
    }
  }
  return best;
}

}  // namespace

util::StatusOr<RescheduleResult> RescheduleAfterFailure(
    const Planner& planner, const DayPlan& current,
    const std::vector<RunRequest>& requests, const std::string& failed_node,
    double failure_time, ReschedulePolicy policy) {
  obs::Span span(obs::SpanCategory::kPlan, "reschedule", "planner");
  span.Arg("policy", ReschedulePolicyName(policy));
  span.Arg("failed_node", failed_node);
  bool known = false;
  for (const auto& n : planner.nodes()) {
    if (n.name == failed_node) known = true;
  }
  if (!known) {
    return util::Status::NotFound("node " + failed_node);
  }

  // Base assignment = current plan; requests carry remaining work.
  std::map<std::string, std::string> assignment = current.Assignment();
  std::map<std::string, const RunRequest*> req_index;
  for (const auto& r : requests) req_index[r.name] = &r;
  for (const auto& [name, node] : assignment) {
    if (!req_index.count(name)) {
      return util::Status::InvalidArgument("no remaining-work request for " +
                                           name);
    }
  }

  RescheduleResult result;

  if (policy == ReschedulePolicy::kFullReplan) {
    // Re-pack everything onto the healthy nodes.
    std::vector<NodeInfo> healthy;
    for (const auto& n : planner.nodes()) {
      if (n.name != failed_node) healthy.push_back(n);
    }
    if (healthy.empty()) {
      return util::Status::FailedPrecondition("no healthy nodes left");
    }
    PlannerConfig cfg = planner.config();
    Planner replanner(healthy, cfg);
    std::vector<RunRequest> adjusted = requests;
    for (auto& r : adjusted) {
      r.earliest_start = std::max(r.earliest_start, failure_time);
    }
    FF_ASSIGN_OR_RETURN(result.plan, replanner.Plan(adjusted));
    for (const auto& r : result.plan.runs) {
      auto it = assignment.find(r.name);
      if (it != assignment.end() && !r.dropped && it->second != r.node) {
        ++result.runs_moved;
      }
    }
    span.Arg("runs_moved", static_cast<double>(result.runs_moved));
    return result;
  }

  // Current loads (remaining work) per node.
  std::map<std::string, double> load;
  for (const auto& [name, node] : assignment) {
    load[node] += req_index.at(name)->work;
  }

  std::vector<RunRequest> adjusted;
  adjusted.reserve(requests.size());
  std::map<std::string, std::string> new_assignment = assignment;

  for (const auto& r : requests) {
    RunRequest a = r;
    const std::string& node = assignment.at(r.name);
    if (node == failed_node) {
      if (policy == ReschedulePolicy::kNone) {
        ++result.runs_waiting;
        // Leave it on the failed node; the share model will still
        // predict a completion, so inflate the start far past the
        // horizon to surface the miss honestly.
        a.earliest_start = std::max(a.earliest_start,
                                    failure_time + planner.config().horizon);
      } else {
        std::string target = BestNode(planner.nodes(), load, failed_node);
        if (target.empty()) {
          return util::Status::FailedPrecondition("no healthy nodes left");
        }
        load[node] -= a.work;
        load[target] += a.work;
        new_assignment[r.name] = target;
        a.earliest_start = std::max(a.earliest_start, failure_time);
        ++result.runs_moved;
      }
    }
    adjusted.push_back(std::move(a));
  }

  FF_ASSIGN_OR_RETURN(DayPlan plan,
                      planner.Evaluate(adjusted, new_assignment));

  if (policy == ReschedulePolicy::kCascading) {
    // Bounded cascade: while a receiving node misses deadlines, move its
    // lowest-priority run to the least loaded other healthy node.
    for (int iter = 0; iter < planner.config().max_repair_iterations;
         ++iter) {
      const PlannedRun* miss = nullptr;
      for (const auto& r : plan.runs) {
        if (r.MissesDeadline()) {
          miss = &r;
          break;
        }
      }
      if (miss == nullptr) break;
      // Lowest-priority run on the missing run's node.
      std::string hot = miss->node;
      const PlannedRun* victim = nullptr;
      for (const auto& r : plan.runs) {
        if (r.dropped || r.node != hot) continue;
        if (victim == nullptr || r.priority > victim->priority) victim = &r;
      }
      if (victim == nullptr) break;
      std::string target = BestNode(planner.nodes(), load, failed_node);
      if (target.empty() || target == hot) break;
      load[hot] -= victim->work;
      load[target] += victim->work;
      new_assignment[victim->name] = target;
      ++result.runs_moved;
      FF_ASSIGN_OR_RETURN(plan, planner.Evaluate(adjusted, new_assignment));
    }
  }

  result.plan = std::move(plan);
  span.Arg("runs_moved", static_cast<double>(result.runs_moved));
  span.Arg("runs_waiting", static_cast<double>(result.runs_waiting));
  return result;
}

}  // namespace core
}  // namespace ff
