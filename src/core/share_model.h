// ShareModel: ForeMan's analytic completion-time predictor under the
// paper's CPU-sharing assumption — "if three forecasts run concurrently
// on a node with two CPUs, ForeMan will compute the expected completion
// time of each assuming each forecast gets 2/3 of the available CPU
// cycles". A run is serial (uses at most one CPU); the available cycles
// divide evenly among concurrent runs.
//
// The maths mirrors cluster::PsResource exactly — including its
// virtual-time formulation (a single cumulative-service accumulator and
// fixed per-job completion credits in a min-heap, O(n log n) per node) —
// so prediction error against the discrete-event execution is ~0 absent
// disturbances (validated by experiment T3).

#ifndef FF_CORE_SHARE_MODEL_H_
#define FF_CORE_SHARE_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace core {

/// Static description of a node as the planner sees it.
struct NodeInfo {
  std::string name;
  int num_cpus = 2;
  double speed = 1.0;  // relative to the reference node
};

/// One run to predict: assigned node, release time, CPU work demand
/// (reference-speed CPU-seconds).
struct ShareJob {
  std::string id;
  std::string node;
  double start_time = 0.0;
  double work = 0.0;
};

/// Prediction output.
struct SharePrediction {
  /// Completion time per job id.
  std::map<std::string, double> completion;
  /// Latest completion over all jobs (the day's makespan).
  double makespan = 0.0;
  /// Per-node latest completion.
  std::map<std::string, double> node_makespan;
};

/// Predicts completion times of `jobs` on `nodes` under egalitarian
/// processor sharing. InvalidArgument when a job names an unknown node or
/// has negative work; jobs with zero work complete at their start time.
util::StatusOr<SharePrediction> PredictCompletions(
    const std::vector<NodeInfo>& nodes, const std::vector<ShareJob>& jobs);

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_SHARE_MODEL_H_
