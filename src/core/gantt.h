// ASCII Gantt rendering of a DayPlan — the terminal analogue of the
// ForeMan monitoring pane (Figure 3): one row per node, time across,
// rectangles per run, a current-time marker, and shading of completed
// work.

#ifndef FF_CORE_GANTT_H_
#define FF_CORE_GANTT_H_

#include <string>

#include "core/planner.h"

namespace ff {
namespace core {

/// Rendering options.
struct GanttOptions {
  double t_begin = 0.0;       // seconds after midnight
  double t_end = 86400.0;
  int width = 96;             // characters across the time axis
  double now = -1.0;          // current-time marker; < 0 = omit
};

/// Renders the plan. Each run occupies [start, predicted completion] on
/// its node's row; concurrent runs stack into sub-rows. Completed
/// portions (before `now`) render as '.', pending as the run's letter.
std::string RenderGantt(const DayPlan& plan, const GanttOptions& options);

/// One-line-per-run textual summary (name, node, start, completion,
/// deadline slack, flags).
std::string RenderPlanTable(const DayPlan& plan);

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_GANTT_H_
