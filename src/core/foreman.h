// ForeMan: the paper's forecast-management tool (§4.1, Figure 3), as a
// library facade. Ties together the statistics database, the run-time
// estimator, the bin-packing planner, the CPU-share predictor, the
// rescheduler, the Gantt view and the script-generating back end.
//
// Typical use:
//   statsdb::Database db;                       // loaded from logs
//   ForeMan foreman(nodes, &db);
//   auto plan = foreman.PlanDay(fleet);         // assignments + ETAs
//   std::cout << foreman.RenderGantt(*plan);    // the "big picture"
//   foreman.MoveRun(&*plan, "forecast-coos", "f3");   // user drag
//   auto scripts = foreman.Accept(*plan);       // back-end scripts

#ifndef FF_CORE_FOREMAN_H_
#define FF_CORE_FOREMAN_H_

#include <map>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/gantt.h"
#include "core/planner.h"
#include "core/rescheduler.h"
#include "core/script_gen.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace core {

/// ForeMan configuration.
struct ForeManConfig {
  PlannerConfig planner;
  EstimatorConfig estimator;
  ScriptBackend backend = ScriptBackend::kShell;
};

/// The factory-management facade.
class ForeMan {
 public:
  /// `db` may be null (estimates then come from the cost model only).
  ForeMan(std::vector<NodeInfo> nodes, const statsdb::Database* db,
          ForeManConfig config = {});

  /// Estimates demand and plans the day. By default each forecast stays
  /// on yesterday's node when `previous` is supplied and the heuristic is
  /// kPreviousDay; optimizing heuristics re-pack.
  util::StatusOr<DayPlan> PlanDay(
      const std::vector<workload::ForecastSpec>& fleet,
      const std::map<std::string, std::string>* previous = nullptr);

  /// Re-evaluates a plan after the user moves one run to another node
  /// ("Users can easily move workflows to different nodes using ForeMan,
  /// without making any changes to the underlying scripts").
  util::StatusOr<DayPlan> MoveRun(const DayPlan& plan,
                                  const std::string& run,
                                  const std::string& new_node);

  /// Re-evaluates a plan with a changed start time for one run.
  util::StatusOr<DayPlan> AdjustStart(const DayPlan& plan,
                                      const std::string& run,
                                      double new_start);

  /// What-if: evaluates the same fleet on a hypothetical node set
  /// ("anticipating hardware needs as the number of forecasts grows").
  util::StatusOr<DayPlan> WhatIf(
      const std::vector<workload::ForecastSpec>& fleet,
      const std::vector<NodeInfo>& hypothetical_nodes) const;

  /// Node-failure handling; see rescheduler.h.
  util::StatusOr<RescheduleResult> HandleNodeFailure(
      const DayPlan& current, const std::string& failed_node,
      double failure_time, ReschedulePolicy policy);

  /// The monitoring pane.
  std::string RenderGantt(const DayPlan& plan, double now = -1.0) const;
  std::string RenderTable(const DayPlan& plan) const;

  /// The accept button: per-node launch scripts.
  std::map<std::string, std::string> Accept(const DayPlan& plan) const;

  RunTimeEstimator* estimator() { return &estimator_; }
  const Planner& planner() const { return planner_; }

 private:
  util::StatusOr<std::vector<RunRequest>> BuildRequests(
      const std::vector<workload::ForecastSpec>& fleet) const;

  std::vector<NodeInfo> nodes_;
  ForeManConfig config_;
  RunTimeEstimator estimator_;
  Planner planner_;
  /// Requests of the most recent PlanDay/WhatIf, used by MoveRun etc.
  std::vector<RunRequest> last_requests_;
};

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_FOREMAN_H_
