#include "core/ondemand.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace core {

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAccepted:
      return "accepted";
    case AdmissionOutcome::kRejectedOwnDeadline:
      return "rejected-own-deadline";
    case AdmissionOutcome::kRejectedInterference:
      return "rejected-interference";
  }
  return "?";
}

OnDemandScheduler::OnDemandScheduler(std::vector<NodeInfo> nodes,
                                     DayPlan daily_plan)
    : nodes_(std::move(nodes)), plan_(std::move(daily_plan)) {
  // Pre-existing misses are the plan's problem, not the requests'.
  for (const auto& r : plan_.runs) {
    if (r.MissesDeadline()) baseline_misses_.push_back(r.name);
  }
}

util::StatusOr<SharePrediction> OnDemandScheduler::Predict(
    const OnDemandRequest* candidate,
    const std::string& candidate_node) const {
  std::vector<ShareJob> jobs;
  for (const auto& r : plan_.runs) {
    if (r.dropped) continue;
    jobs.push_back(ShareJob{r.name, r.node, r.start_time, r.work});
  }
  for (const auto& [req, node] : accepted_jobs_) {
    jobs.push_back(
        ShareJob{"od:" + req.id, node, req.arrival, req.cpu_seconds});
  }
  if (candidate != nullptr) {
    jobs.push_back(ShareJob{"od:" + candidate->id, candidate_node,
                            candidate->arrival, candidate->cpu_seconds});
  }
  return PredictCompletions(nodes_, jobs);
}

util::StatusOr<OnDemandPlacement> OnDemandScheduler::Admit(
    const OnDemandRequest& request) {
  if (request.cpu_seconds < 0.0) {
    return util::Status::InvalidArgument("negative work: " + request.id);
  }
  if (request.arrival + 1e-9 < last_arrival_) {
    return util::Status::InvalidArgument(
        "requests must arrive in time order: " + request.id);
  }
  last_arrival_ = request.arrival;

  OnDemandPlacement placement;
  placement.request = request;

  bool some_node_meets_own_deadline = false;
  std::string best_node;
  double best_completion = 0.0;

  for (const auto& n : nodes_) {
    FF_ASSIGN_OR_RETURN(SharePrediction pred, Predict(&request, n.name));
    double completion = pred.completion.at("od:" + request.id);
    if (completion > request.deadline + 1e-9) continue;
    some_node_meets_own_deadline = true;
    // Does any made-to-stock run newly miss?
    bool interferes = false;
    for (const auto& r : plan_.runs) {
      if (r.dropped) continue;
      auto it = pred.completion.find(r.name);
      FF_CHECK(it != pred.completion.end());
      bool misses = it->second > r.deadline + 1e-9;
      bool baseline_miss =
          std::find(baseline_misses_.begin(), baseline_misses_.end(),
                    r.name) != baseline_misses_.end();
      if (misses && !baseline_miss) {
        interferes = true;
        break;
      }
    }
    // Accepted on-demand work must keep ITS deadlines too.
    if (!interferes) {
      for (const auto& [req, node] : accepted_jobs_) {
        auto it = pred.completion.find("od:" + req.id);
        FF_CHECK(it != pred.completion.end());
        if (it->second > req.deadline + 1e-9) {
          interferes = true;
          break;
        }
      }
    }
    if (interferes) continue;
    if (best_node.empty() || completion < best_completion) {
      best_node = n.name;
      best_completion = completion;
    }
  }

  if (best_node.empty()) {
    placement.outcome = some_node_meets_own_deadline
                            ? AdmissionOutcome::kRejectedInterference
                            : AdmissionOutcome::kRejectedOwnDeadline;
  } else {
    placement.outcome = AdmissionOutcome::kAccepted;
    placement.node = best_node;
    placement.predicted_completion = best_completion;
    accepted_jobs_.emplace_back(request, best_node);
    ++accepted_;
  }
  placements_.push_back(placement);
  return placement;
}

}  // namespace core
}  // namespace ff
