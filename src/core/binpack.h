// Bin-packing heuristics for run -> node assignment (the paper cites
// Coffman, Garey & Johnson's application of bin-packing to multiprocessor
// scheduling). Bins are nodes with capacity = cpus × speed × horizon;
// items are runs with their estimated reference-speed CPU demand.
// Includes the baselines the paper's §2.2 manual process implies
// (previous-day / round-robin / random).

#ifndef FF_CORE_BINPACK_H_
#define FF_CORE_BINPACK_H_

#include <map>
#include <string>
#include <vector>

#include "core/share_model.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace ff {
namespace core {

/// Assignment heuristic.
enum class PackHeuristic {
  kFirstFit,
  kFirstFitDecreasing,
  kBestFitDecreasing,
  kLpt,           // longest processing time -> least relatively loaded node
  kRoundRobin,    // baseline
  kRandom,        // baseline
  kPreviousDay,   // baseline: keep yesterday's node (ForeMan's default
                  // before optimization); unknown runs fall back to LPT
};

const char* PackHeuristicName(PackHeuristic h);
util::StatusOr<PackHeuristic> ParsePackHeuristic(const std::string& name);

/// One run to place.
struct PackItem {
  std::string id;
  double work = 0.0;  // reference-speed CPU-seconds
};

/// Packing output.
struct PackResult {
  /// item id -> node name.
  std::map<std::string, std::string> assignment;
  /// node -> total assigned work (reference-speed CPU-seconds).
  std::map<std::string, double> node_load;
  /// max over nodes of load / (cpus × speed × horizon); > 1 means the
  /// plan exceeds rough-cut capacity (RCCP in the paper's MRP analogy).
  double max_relative_load = 0.0;
};

/// Packs `items` onto `nodes` within `horizon` seconds of wall clock.
/// `previous` is consulted only by kPreviousDay; `rng` only by kRandom.
/// InvalidArgument when nodes is empty.
util::StatusOr<PackResult> Pack(
    const std::vector<PackItem>& items, const std::vector<NodeInfo>& nodes,
    PackHeuristic heuristic, double horizon,
    const std::map<std::string, std::string>* previous = nullptr,
    util::Rng* rng = nullptr);

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_BINPACK_H_
