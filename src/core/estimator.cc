#include "core/estimator.h"

#include <algorithm>
#include <vector>

#include "statsdb/expr.h"
#include "statsdb/query.h"

namespace ff {
namespace core {

using statsdb::Col;
using statsdb::Eq;
using statsdb::LitString;
using statsdb::Query;

RunTimeEstimator::RunTimeEstimator(const statsdb::Database* db,
                                   workload::CostModel model,
                                   EstimatorConfig config)
    : db_(db), model_(model), config_(std::move(config)) {}

void RunTimeEstimator::SetUserAdjustment(const std::string& forecast,
                                         double factor) {
  user_adjustments_[forecast] = factor;
}

void RunTimeEstimator::ClearUserAdjustment(const std::string& forecast) {
  user_adjustments_.erase(forecast);
}

util::StatusOr<Estimate> RunTimeEstimator::EstimateWork(
    const workload::ForecastSpec& spec) const {
  Estimate fallback;
  fallback.cpu_seconds = model_.TotalCpuSeconds(spec);
  fallback.from_history = false;

  if (db_ == nullptr || !db_->HasTable("runs")) return fallback;

  // Most recent completed executions of this forecast.
  auto rs_or =
      Query(db_, "runs")
          .Filter(statsdb::And(
              Eq(Col("forecast"), LitString(spec.name)),
              Eq(Col("status"), LitString("completed"))))
          .OrderBy({{"day", /*ascending=*/false}})
          .Limit(static_cast<size_t>(std::max(1, config_.history_window)))
          .Run();
  if (!rs_or.ok()) return fallback;
  const statsdb::ResultSet& rs = rs_or.value();
  if (rs.rows.empty()) return fallback;

  FF_ASSIGN_OR_RETURN(size_t c_wall, rs.schema.IndexOf("walltime"));
  FF_ASSIGN_OR_RETURN(size_t c_ts, rs.schema.IndexOf("timesteps"));
  FF_ASSIGN_OR_RETURN(size_t c_mesh, rs.schema.IndexOf("mesh_sides"));
  FF_ASSIGN_OR_RETURN(size_t c_node, rs.schema.IndexOf("node"));

  std::vector<double> samples;
  samples.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    if (row[c_wall].is_null()) continue;
    double wall = row[c_wall].double_value();
    if (wall <= 0.0) continue;
    // Convert the logged node-local walltime to reference-speed work.
    double node_speed = 1.0;
    if (!row[c_node].is_null()) {
      auto it = config_.node_speeds.find(row[c_node].string_value());
      if (it != config_.node_speeds.end()) node_speed = it->second;
    }
    double work = wall * node_speed;
    // Linear timestep scaling (§4.3.2: "scale the running time
    // accordingly").
    if (!row[c_ts].is_null() && row[c_ts].int64_value() > 0 &&
        spec.timesteps > 0) {
      work *= static_cast<double>(spec.timesteps) /
              static_cast<double>(row[c_ts].int64_value());
    }
    // Near-linear mesh-side scaling.
    if (!row[c_mesh].is_null() && row[c_mesh].int64_value() > 0 &&
        spec.mesh_sides > 0) {
      work *= static_cast<double>(spec.mesh_sides) /
              static_cast<double>(row[c_mesh].int64_value());
    }
    samples.push_back(work);
  }
  if (samples.empty()) return fallback;

  // Median: robust against contention-inflated days (Fig. 8's hump must
  // not poison the estimate).
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  double median = n % 2 ? samples[n / 2]
                        : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

  auto adj = user_adjustments_.find(spec.name);
  if (adj != user_adjustments_.end()) median *= adj->second;

  Estimate e;
  e.cpu_seconds = median;
  e.from_history = true;
  e.history_samples = static_cast<int>(n);
  return e;
}

}  // namespace core
}  // namespace ff
