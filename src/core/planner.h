// Planner: ForeMan's capacity-requirements planning (§4.1). Packs the
// day's runs onto nodes, predicts completion times under CPU sharing,
// and resolves deadline misses by moving, delaying or dropping
// lower-priority forecasts ("ForeMan also allows users to prioritize
// forecasts, and may automatically delay or drop lower priority
// forecasts if needed").

#ifndef FF_CORE_PLANNER_H_
#define FF_CORE_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "core/binpack.h"
#include "core/share_model.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace ff {
namespace core {

/// One run the planner must place (demand already estimated).
struct RunRequest {
  std::string name;
  double work = 0.0;            // reference-speed CPU-seconds
  int priority = 1;             // lower = more important
  double earliest_start = 3600.0;  // seconds after midnight
  double deadline = 86400.0;       // seconds after midnight
};

/// A planned run.
struct PlannedRun {
  std::string name;
  std::string node;           // empty when dropped
  double work = 0.0;
  int priority = 1;
  double start_time = 0.0;    // seconds after midnight
  double deadline = 0.0;
  double predicted_completion = 0.0;  // seconds after midnight
  bool dropped = false;
  bool delayed = false;
  bool MissesDeadline() const {
    return !dropped && predicted_completion > deadline;
  }
};

/// The day's plan.
struct DayPlan {
  std::vector<PlannedRun> runs;
  double makespan = 0.0;       // latest predicted completion
  int deadline_misses = 0;
  int dropped = 0;
  int delayed = 0;
  double max_relative_load = 0.0;

  /// Assignment view (excludes dropped runs).
  std::map<std::string, std::string> Assignment() const;
  const PlannedRun* Find(const std::string& name) const;
};

/// Planner policy knobs.
struct PlannerConfig {
  PackHeuristic heuristic = PackHeuristic::kFirstFitDecreasing;
  double horizon = 86400.0;  // the day
  bool allow_move = true;    // move low-priority runs off hot nodes
  bool allow_delay = true;   // push low-priority starts later
  bool allow_drop = true;    // shed lowest-priority runs as a last resort
  int max_repair_iterations = 128;
};

/// Plans one day of production.
class Planner {
 public:
  Planner(std::vector<NodeInfo> nodes, PlannerConfig config);

  /// `previous` is yesterday's assignment (used by kPreviousDay and as
  /// the move baseline); `rng` only needed for kRandom.
  util::StatusOr<DayPlan> Plan(
      const std::vector<RunRequest>& requests,
      const std::map<std::string, std::string>* previous = nullptr,
      util::Rng* rng = nullptr) const;

  /// Re-predicts completions of an existing assignment (what-if support:
  /// the ForeMan UI "will automatically recompute the expected completion
  /// times of all affected workflows" when the user drags a run).
  util::StatusOr<DayPlan> Evaluate(
      const std::vector<RunRequest>& requests,
      const std::map<std::string, std::string>& assignment) const;

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const PlannerConfig& config() const { return config_; }

 private:
  util::Status Predict(DayPlan* plan) const;
  util::Status RepairDeadlines(DayPlan* plan) const;

  std::vector<NodeInfo> nodes_;
  PlannerConfig config_;
};

}  // namespace core
}  // namespace ff

#endif  // FF_CORE_PLANNER_H_
