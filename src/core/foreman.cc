#include "core/foreman.h"

#include <algorithm>

#include "obs/trace.h"

namespace ff {
namespace core {

namespace {

EstimatorConfig WithNodeSpeeds(EstimatorConfig config,
                               const std::vector<NodeInfo>& nodes) {
  for (const auto& n : nodes) {
    config.node_speeds.emplace(n.name, n.speed);
  }
  return config;
}

}  // namespace

ForeMan::ForeMan(std::vector<NodeInfo> nodes, const statsdb::Database* db,
                 ForeManConfig config)
    : nodes_(std::move(nodes)),
      config_(std::move(config)),
      estimator_(db, workload::CostModel{},
                 WithNodeSpeeds(config_.estimator, nodes_)),
      planner_(nodes_, config_.planner) {}

util::StatusOr<std::vector<RunRequest>> ForeMan::BuildRequests(
    const std::vector<workload::ForecastSpec>& fleet) const {
  std::vector<RunRequest> requests;
  requests.reserve(fleet.size());
  for (const auto& spec : fleet) {
    FF_ASSIGN_OR_RETURN(Estimate est, estimator_.EstimateWork(spec));
    RunRequest r;
    r.name = spec.name;
    r.work = est.cpu_seconds;
    r.priority = spec.priority;
    r.earliest_start = spec.earliest_start;
    r.deadline = spec.deadline;
    requests.push_back(std::move(r));
  }
  return requests;
}

util::StatusOr<DayPlan> ForeMan::PlanDay(
    const std::vector<workload::ForecastSpec>& fleet,
    const std::map<std::string, std::string>* previous) {
  obs::Span span(obs::SpanCategory::kPlan, "foreman.plan_day", "planner");
  span.Arg("fleet", static_cast<double>(fleet.size()));
  FF_ASSIGN_OR_RETURN(last_requests_, BuildRequests(fleet));
  util::StatusOr<DayPlan> plan = planner_.Plan(last_requests_, previous);
  if (plan.ok()) {
    span.Arg("makespan", plan->makespan);
    span.Arg("dropped", static_cast<double>(plan->dropped));
  }
  return plan;
}

util::StatusOr<DayPlan> ForeMan::MoveRun(const DayPlan& plan,
                                         const std::string& run,
                                         const std::string& new_node) {
  auto assignment = plan.Assignment();
  auto it = assignment.find(run);
  if (it == assignment.end()) {
    return util::Status::NotFound("run " + run + " not in plan");
  }
  it->second = new_node;
  return planner_.Evaluate(last_requests_, assignment);
}

util::StatusOr<DayPlan> ForeMan::AdjustStart(const DayPlan& plan,
                                             const std::string& run,
                                             double new_start) {
  std::vector<RunRequest> adjusted = last_requests_;
  bool found = false;
  for (auto& r : adjusted) {
    if (r.name == run) {
      r.earliest_start = new_start;
      found = true;
    }
  }
  if (!found) {
    return util::Status::NotFound("run " + run + " not in plan");
  }
  auto assignment = plan.Assignment();
  FF_ASSIGN_OR_RETURN(DayPlan out, planner_.Evaluate(adjusted, assignment));
  last_requests_ = std::move(adjusted);
  return out;
}

util::StatusOr<DayPlan> ForeMan::WhatIf(
    const std::vector<workload::ForecastSpec>& fleet,
    const std::vector<NodeInfo>& hypothetical_nodes) const {
  FF_ASSIGN_OR_RETURN(std::vector<RunRequest> requests,
                      BuildRequests(fleet));
  Planner hypothetical(hypothetical_nodes, config_.planner);
  return hypothetical.Plan(requests);
}

util::StatusOr<RescheduleResult> ForeMan::HandleNodeFailure(
    const DayPlan& current, const std::string& failed_node,
    double failure_time, ReschedulePolicy policy) {
  // Remaining-work requests: approximate by subtracting delivered work
  // assuming each run progressed at full rate since its start (an upper
  // bound on progress; conservative for the receiving nodes).
  std::vector<RunRequest> remaining;
  remaining.reserve(last_requests_.size());
  for (const auto& r : last_requests_) {
    const PlannedRun* pr = current.Find(r.name);
    RunRequest adj = r;
    if (pr != nullptr && !pr->dropped) {
      double elapsed = std::max(0.0, failure_time - pr->start_time);
      adj.work = std::max(0.0, r.work - elapsed);
      adj.earliest_start = std::max(r.earliest_start, failure_time);
    }
    remaining.push_back(std::move(adj));
  }
  return RescheduleAfterFailure(planner_, current, remaining, failed_node,
                                failure_time, policy);
}

std::string ForeMan::RenderGantt(const DayPlan& plan, double now) const {
  GanttOptions options;
  options.now = now;
  options.t_end = std::max(86400.0, plan.makespan * 1.05);
  return core::RenderGantt(plan, options);
}

std::string ForeMan::RenderTable(const DayPlan& plan) const {
  return RenderPlanTable(plan);
}

std::map<std::string, std::string> ForeMan::Accept(
    const DayPlan& plan) const {
  return GenerateScripts(plan, config_.backend);
}

}  // namespace core
}  // namespace ff
