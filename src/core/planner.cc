#include "core/planner.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace core {

std::map<std::string, std::string> DayPlan::Assignment() const {
  std::map<std::string, std::string> out;
  for (const auto& r : runs) {
    if (!r.dropped) out[r.name] = r.node;
  }
  return out;
}

const PlannedRun* DayPlan::Find(const std::string& name) const {
  for (const auto& r : runs) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Planner::Planner(std::vector<NodeInfo> nodes, PlannerConfig config)
    : nodes_(std::move(nodes)), config_(config) {}

util::Status Planner::Predict(DayPlan* plan) const {
  std::vector<ShareJob> jobs;
  jobs.reserve(plan->runs.size());
  for (const auto& r : plan->runs) {
    if (r.dropped) continue;
    jobs.push_back(ShareJob{r.name, r.node, r.start_time, r.work});
  }
  FF_ASSIGN_OR_RETURN(SharePrediction pred,
                      PredictCompletions(nodes_, jobs));
  plan->makespan = pred.makespan;
  plan->deadline_misses = 0;
  plan->dropped = 0;
  plan->delayed = 0;
  for (auto& r : plan->runs) {
    if (r.dropped) {
      ++plan->dropped;
      continue;
    }
    auto it = pred.completion.find(r.name);
    FF_CHECK(it != pred.completion.end()) << "missing prediction " << r.name;
    r.predicted_completion = it->second;
    if (r.MissesDeadline()) ++plan->deadline_misses;
    if (r.delayed) ++plan->delayed;
  }
  return util::Status::OK();
}

util::Status Planner::RepairDeadlines(DayPlan* plan) const {
  FF_RETURN_IF_ERROR(Predict(plan));
  // Severity = sum of positive deadline overruns; a repair step is kept
  // only when it reduces (misses, severity) lexicographically, otherwise
  // it is reverted and the next lever is pulled. This keeps the loop from
  // bouncing a victim between two saturated nodes forever.
  auto severity = [&]() {
    double s = 0.0;
    for (const auto& r : plan->runs) {
      if (r.MissesDeadline()) {
        s += r.predicted_completion - r.deadline;
      }
    }
    return s;
  };
  auto improved = [&](int misses_before, double severity_before) {
    return plan->deadline_misses < misses_before ||
           (plan->deadline_misses == misses_before &&
            severity() < severity_before - 1e-6);
  };

  for (int iter = 0; iter < config_.max_repair_iterations; ++iter) {
    if (plan->deadline_misses == 0) return util::Status::OK();
    int misses_before = plan->deadline_misses;
    double severity_before = severity();

    // Find the worst miss and its node.
    const PlannedRun* worst = nullptr;
    for (const auto& r : plan->runs) {
      if (!r.MissesDeadline()) continue;
      if (worst == nullptr || r.predicted_completion - r.deadline >
                                  worst->predicted_completion -
                                      worst->deadline) {
        worst = &r;
      }
    }
    FF_CHECK(worst != nullptr);
    const std::string hot_node = worst->node;
    const double worst_deadline = worst->deadline;

    // Victim: the lowest-priority (then largest) run on the hot node.
    PlannedRun* victim = nullptr;
    for (auto& r : plan->runs) {
      if (r.dropped || r.node != hot_node) continue;
      if (victim == nullptr || r.priority > victim->priority ||
          (r.priority == victim->priority && r.work > victim->work)) {
        victim = &r;
      }
    }
    FF_CHECK(victim != nullptr);

    bool changed = false;
    if (config_.allow_move && nodes_.size() > 1) {
      // Try the node with the least assigned work.
      std::map<std::string, double> load;
      for (const auto& n : nodes_) load[n.name] = 0.0;
      for (const auto& r : plan->runs) {
        if (!r.dropped) load[r.node] += r.work;
      }
      std::string best_node;
      double best_rel = -1.0;
      for (const auto& n : nodes_) {
        if (n.name == hot_node) continue;
        double rel = load[n.name] /
                     (static_cast<double>(n.num_cpus) * n.speed);
        if (best_node.empty() || rel < best_rel) {
          best_node = n.name;
          best_rel = rel;
        }
      }
      if (!best_node.empty()) {
        std::string old_node = victim->node;
        victim->node = best_node;
        FF_RETURN_IF_ERROR(Predict(plan));
        if (improved(misses_before, severity_before)) {
          changed = true;
        } else {
          victim->node = old_node;
          FF_RETURN_IF_ERROR(Predict(plan));
        }
      }
    }
    if (!changed && config_.allow_delay && !victim->delayed) {
      // Push the victim's start past the worst run's deadline so the
      // high-priority run gets the CPUs first.
      double old_start = victim->start_time;
      victim->start_time = std::max(victim->start_time, worst_deadline);
      victim->delayed = true;
      FF_RETURN_IF_ERROR(Predict(plan));
      if (improved(misses_before, severity_before)) {
        changed = true;
      } else {
        victim->start_time = old_start;
        victim->delayed = false;
        FF_RETURN_IF_ERROR(Predict(plan));
      }
    }
    if (!changed && config_.allow_drop && !victim->dropped) {
      victim->dropped = true;
      victim->node.clear();
      FF_RETURN_IF_ERROR(Predict(plan));
      changed = true;
    }
    if (!changed) break;  // no lever left
  }
  return Predict(plan);
}

util::StatusOr<DayPlan> Planner::Plan(
    const std::vector<RunRequest>& requests,
    const std::map<std::string, std::string>* previous,
    util::Rng* rng) const {
  std::vector<PackItem> items;
  items.reserve(requests.size());
  for (const auto& r : requests) {
    items.push_back(PackItem{r.name, r.work});
  }
  FF_ASSIGN_OR_RETURN(PackResult packed,
                      Pack(items, nodes_, config_.heuristic,
                           config_.horizon, previous, rng));
  DayPlan plan;
  plan.max_relative_load = packed.max_relative_load;
  plan.runs.reserve(requests.size());
  for (const auto& r : requests) {
    PlannedRun pr;
    pr.name = r.name;
    pr.node = packed.assignment.at(r.name);
    pr.work = r.work;
    pr.priority = r.priority;
    pr.start_time = r.earliest_start;
    pr.deadline = r.deadline;
    plan.runs.push_back(std::move(pr));
  }
  FF_RETURN_IF_ERROR(RepairDeadlines(&plan));
  return plan;
}

util::StatusOr<DayPlan> Planner::Evaluate(
    const std::vector<RunRequest>& requests,
    const std::map<std::string, std::string>& assignment) const {
  DayPlan plan;
  plan.runs.reserve(requests.size());
  double horizon_load_max = 0.0;
  std::map<std::string, double> load;
  for (const auto& r : requests) {
    auto it = assignment.find(r.name);
    if (it == assignment.end()) {
      return util::Status::InvalidArgument("no assignment for " + r.name);
    }
    bool known = false;
    for (const auto& n : nodes_) {
      if (n.name == it->second) known = true;
    }
    if (!known) {
      return util::Status::InvalidArgument("unknown node " + it->second);
    }
    PlannedRun pr;
    pr.name = r.name;
    pr.node = it->second;
    pr.work = r.work;
    pr.priority = r.priority;
    pr.start_time = r.earliest_start;
    pr.deadline = r.deadline;
    plan.runs.push_back(std::move(pr));
    load[it->second] += r.work;
  }
  for (const auto& n : nodes_) {
    double rel = load[n.name] / (static_cast<double>(n.num_cpus) * n.speed *
                                 config_.horizon);
    horizon_load_max = std::max(horizon_load_max, rel);
  }
  plan.max_relative_load = horizon_load_max;
  FF_RETURN_IF_ERROR(Predict(&plan));
  return plan;
}

}  // namespace core
}  // namespace ff
