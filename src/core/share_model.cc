#include "core/share_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace ff {
namespace core {

namespace {

// The predictor mirrors cluster::PsResource's virtual-time formulation so
// the analytic model and the discrete-event execution stay bit-for-bit
// mirror images (experiment T3 relies on ~0 error): a single accumulator V
// of cumulative per-job service advances at the shared rate, and a job
// admitted at V0 with work w completes at the fixed credit V0 + w. The
// next completion is always the minimum credit — a static min-heap —
// making the per-node prediction O(n log n) instead of the former O(n^2)
// sweep-and-min-scan.
struct ActiveJob {
  double credit;      // virtual time at which the job completes
  size_t order;       // admission index, for deterministic tie-break
  const ShareJob* job;
};

struct CreditLater {
  bool operator()(const ActiveJob& a, const ActiveJob& b) const {
    if (a.credit != b.credit) return a.credit > b.credit;
    return a.order > b.order;
  }
};

// Predicts one node's jobs; appends into `out`.
util::Status PredictNode(const NodeInfo& node,
                         std::vector<const ShareJob*> jobs,
                         SharePrediction* out) {
  std::sort(jobs.begin(), jobs.end(),
            [](const ShareJob* a, const ShareJob* b) {
              if (a->start_time != b->start_time) {
                return a->start_time < b->start_time;
              }
              return a->id < b->id;
            });

  std::vector<ActiveJob> active;  // min-heap on (credit, order)
  size_t next_arrival = 0;
  double now = jobs.empty() ? 0.0 : jobs[0]->start_time;
  double virtual_time = 0.0;
  double node_makespan = 0.0;
  const double capacity = static_cast<double>(node.num_cpus);

  while (next_arrival < jobs.size() || !active.empty()) {
    // Admit everything due now.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival]->start_time <= now + 1e-9) {
      const ShareJob* job = jobs[next_arrival];
      active.push_back(ActiveJob{
          virtual_time + std::max(0.0, job->work), next_arrival, job});
      std::push_heap(active.begin(), active.end(), CreditLater{});
      ++next_arrival;
    }
    if (active.empty()) {
      // Idle gap: rebase the accumulator, as PsResource does on drain.
      virtual_time = 0.0;
      now = jobs[next_arrival]->start_time;
      continue;
    }
    double k = static_cast<double>(active.size());
    double rate = node.speed * std::min(1.0, capacity / k);
    // Next event: earliest completion at this rate, or next arrival.
    double min_remaining = active.front().credit - virtual_time;
    double t_complete = now + std::max(0.0, min_remaining) / rate;
    double t_arrival = next_arrival < jobs.size()
                           ? jobs[next_arrival]->start_time
                           : std::numeric_limits<double>::infinity();
    double t_next = std::min(t_complete, t_arrival);
    double dt = t_next - now;
    virtual_time += rate * dt;
    now = t_next;
    // Retire everything that finished (numerical slack scaled to rate).
    double eps = std::max(1e-9, rate * 1e-9);
    while (!active.empty() &&
           active.front().credit - virtual_time <= eps) {
      out->completion[active.front().job->id] = now;
      node_makespan = std::max(node_makespan, now);
      std::pop_heap(active.begin(), active.end(), CreditLater{});
      active.pop_back();
    }
  }
  out->node_makespan[node.name] = node_makespan;
  out->makespan = std::max(out->makespan, node_makespan);
  return util::Status::OK();
}

}  // namespace

util::StatusOr<SharePrediction> PredictCompletions(
    const std::vector<NodeInfo>& nodes, const std::vector<ShareJob>& jobs) {
  std::map<std::string, std::vector<const ShareJob*>> by_node;
  std::map<std::string, const NodeInfo*> node_index;
  for (const auto& n : nodes) {
    if (n.num_cpus < 1 || n.speed <= 0.0) {
      return util::Status::InvalidArgument("bad node " + n.name);
    }
    if (!node_index.emplace(n.name, &n).second) {
      return util::Status::InvalidArgument("duplicate node " + n.name);
    }
    by_node[n.name];  // ensure present even when empty
  }
  for (const auto& j : jobs) {
    if (j.work < 0.0) {
      return util::Status::InvalidArgument("negative work for job " + j.id);
    }
    auto it = by_node.find(j.node);
    if (it == by_node.end()) {
      return util::Status::InvalidArgument("job " + j.id +
                                           " names unknown node " + j.node);
    }
    it->second.push_back(&j);
  }
  SharePrediction out;
  for (const auto& n : nodes) {
    FF_RETURN_IF_ERROR(PredictNode(n, by_node[n.name], &out));
  }
  return out;
}

}  // namespace core
}  // namespace ff
