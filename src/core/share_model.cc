#include "core/share_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ff {
namespace core {

namespace {

struct ActiveJob {
  const ShareJob* job;
  double remaining;
};

// Predicts one node's jobs; appends into `out`.
util::Status PredictNode(const NodeInfo& node,
                         std::vector<const ShareJob*> jobs,
                         SharePrediction* out) {
  std::sort(jobs.begin(), jobs.end(),
            [](const ShareJob* a, const ShareJob* b) {
              if (a->start_time != b->start_time) {
                return a->start_time < b->start_time;
              }
              return a->id < b->id;
            });

  std::vector<ActiveJob> active;
  size_t next_arrival = 0;
  double now = jobs.empty() ? 0.0 : jobs[0]->start_time;
  double node_makespan = 0.0;
  const double capacity = static_cast<double>(node.num_cpus);

  while (next_arrival < jobs.size() || !active.empty()) {
    // Admit everything due now.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival]->start_time <= now + 1e-9) {
      active.push_back(ActiveJob{jobs[next_arrival],
                                 std::max(0.0, jobs[next_arrival]->work)});
      ++next_arrival;
    }
    if (active.empty()) {
      now = jobs[next_arrival]->start_time;
      continue;
    }
    double k = static_cast<double>(active.size());
    double rate = node.speed * std::min(1.0, capacity / k);
    // Next event: earliest completion at this rate, or next arrival.
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& a : active) {
      min_remaining = std::min(min_remaining, a.remaining);
    }
    double t_complete = now + min_remaining / rate;
    double t_arrival = next_arrival < jobs.size()
                           ? jobs[next_arrival]->start_time
                           : std::numeric_limits<double>::infinity();
    double t_next = std::min(t_complete, t_arrival);
    double dt = t_next - now;
    for (auto& a : active) a.remaining -= rate * dt;
    now = t_next;
    // Retire everything that finished (numerical slack scaled to rate).
    double eps = std::max(1e-9, rate * 1e-9);
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining <= eps) {
        out->completion[it->job->id] = now;
        node_makespan = std::max(node_makespan, now);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }
  out->node_makespan[node.name] = node_makespan;
  out->makespan = std::max(out->makespan, node_makespan);
  return util::Status::OK();
}

}  // namespace

util::StatusOr<SharePrediction> PredictCompletions(
    const std::vector<NodeInfo>& nodes, const std::vector<ShareJob>& jobs) {
  std::map<std::string, std::vector<const ShareJob*>> by_node;
  std::map<std::string, const NodeInfo*> node_index;
  for (const auto& n : nodes) {
    if (n.num_cpus < 1 || n.speed <= 0.0) {
      return util::Status::InvalidArgument("bad node " + n.name);
    }
    if (!node_index.emplace(n.name, &n).second) {
      return util::Status::InvalidArgument("duplicate node " + n.name);
    }
    by_node[n.name];  // ensure present even when empty
  }
  for (const auto& j : jobs) {
    if (j.work < 0.0) {
      return util::Status::InvalidArgument("negative work for job " + j.id);
    }
    auto it = by_node.find(j.node);
    if (it == by_node.end()) {
      return util::Status::InvalidArgument("job " + j.id +
                                           " names unknown node " + j.node);
    }
    it->second.push_back(&j);
  }
  SharePrediction out;
  for (const auto& n : nodes) {
    FF_RETURN_NOT_OK(PredictNode(n, by_node[n.name], &out));
  }
  return out;
}

}  // namespace core
}  // namespace ff
