// Work-stealing thread pool for campaign sweeps (parallel/sweep.h).
//
// Topology: one Chase–Lev deque per worker plus one bounded global
// submission queue. A worker services its own deque LIFO (PopBottom: hot
// caches, no contention), falls back to the global queue, then steals
// FIFO from other workers' deques (StealTop: the oldest — usually
// largest — piece of work moves, amortising the steal). External threads
// submit through the global queue and block when it is full
// (backpressure); tasks spawned *by* a worker go straight onto its own
// deque and are only visible to thieves, never to the bounded queue.
//
// The deque is the C11 formulation of Chase & Lev's dynamic circular
// work-stealing deque (Le et al., PPoPP'13): owner pushes/pops at the
// bottom with plain loads plus fences, thieves CAS the top index. The
// ring array grows geometrically; retired arrays stay alive until the
// deque dies because a thief may still hold a pointer into one.
//
// Scheduling is intentionally non-deterministic (whichever worker is
// idle steals); determinism of sweep *results* is the merge layer's job
// (obs/merge.h), which orders by replica index, never by completion.

#ifndef FF_PARALLEL_THREAD_POOL_H_
#define FF_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ff {
namespace parallel {

/// Growable single-owner / multi-thief deque of heap-allocated closures.
/// Owner: PushBottom / PopBottom. Any thread: StealTop.
class TaskDeque {
 public:
  using Task = std::function<void()>;

  TaskDeque();
  ~TaskDeque();

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only. Takes ownership of `task`.
  void PushBottom(Task* task);
  /// Owner only. Null when empty (or lost the race for the last task).
  Task* PopBottom();
  /// Any thread. Null when empty or when a concurrent steal won the CAS.
  Task* StealTop();

  /// Approximate (racy) size; for tests and heuristics only.
  size_t ApproxSize() const;

 private:
  struct RingArray {
    explicit RingArray(size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}
    Task* Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_acquire);
    }
    void Put(int64_t i, Task* t) {
      slots[static_cast<size_t>(i) & mask].store(t,
                                                 std::memory_order_release);
    }
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  RingArray* Grow(RingArray* array, int64_t top, int64_t bottom);

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<RingArray*> array_;
  // Arrays replaced by Grow; owner-only. Kept alive for the deque's
  // lifetime so a thief holding a stale array pointer reads valid memory.
  std::vector<std::unique_ptr<RingArray>> retired_;
};

/// Fixed-size pool of work-stealing workers.
class ThreadPool {
 public:
  struct Options {
    /// 0 = std::thread::hardware_concurrency() (min 1).
    size_t num_threads = 0;
    /// Bound on the external submission queue; Submit blocks when full.
    size_t max_queue = 1024;
  };

  ThreadPool();  // Options defaults: hardware threads, queue bound 1024
  explicit ThreadPool(Options options);
  explicit ThreadPool(size_t num_threads);
  /// Waits for pending tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. From a pool worker: pushed onto that worker's own
  /// deque (never blocks). From outside: appended to the bounded global
  /// queue, blocking while it is full.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  /// Runs fn(0..n-1) across the pool and waits for all of them. Safe to
  /// call from a non-worker thread only.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }
  /// Total successful steals since construction (observability/tests).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  static size_t DefaultThreads();

 private:
  void WorkerLoop(size_t index);
  /// One scan for work: own deque, global queue, then every other deque.
  std::function<void()>* FindWork(size_t index);
  void RunTask(std::function<void()>* task);

  Options options_;
  std::vector<std::unique_ptr<TaskDeque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;      // workers park here
  std::condition_variable not_full_cv_;  // producers park here
  std::condition_variable idle_cv_;      // Wait() parks here
  std::deque<std::function<void()>*> global_;  // bounded by max_queue
  uint64_t work_signal_ = 0;  // bumped on every enqueue (missed-wake guard)
  bool stop_ = false;

  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace parallel
}  // namespace ff

#endif  // FF_PARALLEL_THREAD_POOL_H_
