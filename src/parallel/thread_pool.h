// Work-stealing thread pool for campaign sweeps (parallel/sweep.h).
//
// Topology: one Chase–Lev deque per worker plus one bounded global
// submission queue. A worker services its own deque LIFO (PopBottom: hot
// caches, no contention), falls back to the global queue, then steals
// FIFO from other workers' deques (StealTop: the oldest — usually
// largest — piece of work moves, amortising the steal). External threads
// submit through the global queue and block when it is full
// (backpressure); tasks spawned *by* a worker go straight onto its own
// deque and are only visible to thieves, never to the bounded queue.
//
// The deque is the C11 formulation of Chase & Lev's dynamic circular
// work-stealing deque (Le et al., PPoPP'13): owner pushes/pops at the
// bottom with plain loads plus fences, thieves CAS the top index. The
// ring array grows geometrically; retired arrays stay alive until the
// deque dies because a thief may still hold a pointer into one.
//
// Scheduling is intentionally non-deterministic (whichever worker is
// idle steals); determinism of sweep *results* is the merge layer's job
// (obs/merge.h), which orders by replica index, never by completion.

#ifndef FF_PARALLEL_THREAD_POOL_H_
#define FF_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/runtime_stats.h"

namespace ff {
namespace parallel {

/// Growable single-owner / multi-thief deque of heap-allocated closures.
/// Owner: PushBottom / PopBottom. Any thread: StealTop.
class TaskDeque {
 public:
  using Task = std::function<void()>;

  TaskDeque();
  ~TaskDeque();

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only. Takes ownership of `task`.
  void PushBottom(Task* task);
  /// Owner only. Null when empty (or lost the race for the last task).
  Task* PopBottom();
  /// Any thread. Null when empty or when a concurrent steal won the CAS.
  Task* StealTop();

  /// Approximate (racy) size; for tests and heuristics only.
  size_t ApproxSize() const;

 private:
  struct RingArray {
    explicit RingArray(size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}
    Task* Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_acquire);
    }
    void Put(int64_t i, Task* t) {
      slots[static_cast<size_t>(i) & mask].store(t,
                                                 std::memory_order_release);
    }
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  RingArray* Grow(RingArray* array, int64_t top, int64_t bottom);

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<RingArray*> array_;
  // Arrays replaced by Grow; owner-only. Kept alive for the deque's
  // lifetime so a thief holding a stale array pointer reads valid memory.
  std::vector<std::unique_ptr<RingArray>> retired_;
};

/// Fixed-size pool of work-stealing workers.
///
/// Nested submission / wait contract
/// ---------------------------------
/// Pool-wide Wait() and ParallelFor() may only be called from OUTSIDE
/// the pool: a worker blocking on pending_ == 0 would wait for its own
/// unfinished task and deadlock. Code that runs *inside* a pool task and
/// needs to fan out (a sweep replica issuing a morsel-parallel statsdb
/// query, a query recursively parallelising a sub-plan) must use a
/// TaskGroup instead. TaskGroup::Wait() on a worker thread never blocks
/// while the pool has runnable tasks: it help-first executes work from
/// its own deque, the global queue, and other workers' deques (stealing)
/// until the group's outstanding count reaches zero, parking on the
/// pool's work signal only when no work is findable anywhere. This makes
/// arbitrarily nested ParallelFor-inside-a-pool-task safe: the waiting
/// worker keeps the pool moving instead of occupying a thread slot.
class ThreadPool {
 public:
  struct Options {
    /// 0 = std::thread::hardware_concurrency() (min 1).
    size_t num_threads = 0;
    /// Bound on the external submission queue; Submit blocks when full.
    size_t max_queue = 1024;
  };

  ThreadPool();  // Options defaults: hardware threads, queue bound 1024
  explicit ThreadPool(Options options);
  explicit ThreadPool(size_t num_threads);
  /// Waits for pending tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. From a pool worker: pushed onto that worker's own
  /// deque (never blocks). From outside: appended to the bounded global
  /// queue, blocking while it is full.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  /// Runs fn(0..n-1) across the pool and waits for all of them. Safe to
  /// call from a non-worker thread only.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }
  /// Total successful steals since construction. Shim over the
  /// per-worker runtime stats (the pre-profiler counter this grew from);
  /// live even with FF_PROFILING=OFF.
  uint64_t steals() const;

  /// Worker index of the calling thread, or SIZE_MAX if it is not a
  /// worker of this pool. Lets instrumented callers (sweep replicas)
  /// attribute work to the worker that ran it.
  size_t caller_worker_index() const { return CallerWorkerIndex(); }

  /// Snapshot of per-worker runtime counters since construction. Timing
  /// fields (run/idle ns, task histograms, depth gauges, steal-fails)
  /// are zero with FF_PROFILING=OFF; the successful-steal and task-run
  /// event counters are always live. Subtract two snapshots with
  /// PoolRuntimeProfile::Since to profile a window.
  obs::PoolRuntimeProfile RuntimeProfile() const;

  static size_t DefaultThreads();

 private:
  friend class TaskGroup;

  void WorkerLoop(size_t index);
  /// One scan for work: own deque, global queue, then every other deque.
  std::function<void()>* FindWork(size_t index);
  /// Runs and frees `task`, accounting it to worker `index` (SIZE_MAX
  /// for the rare external helper with no worker identity).
  void RunTask(std::function<void()>* task, size_t index);
  /// Worker index of the calling thread, or npos if it is not a worker
  /// of this pool.
  size_t CallerWorkerIndex() const;

  Options options_;
  std::vector<std::unique_ptr<TaskDeque>> deques_;
  std::vector<std::thread> threads_;
  // One stats block per worker, heap-separated (alignas(64) + unique
  // ownership) so workers never false-share counters.
  std::vector<std::unique_ptr<obs::WorkerRuntimeStats>> worker_stats_;
  int64_t start_ns_ = 0;  // RuntimeNowNs() at construction (0 when off)

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      // workers park here
  std::condition_variable not_full_cv_;  // producers park here
  std::condition_variable idle_cv_;      // Wait() parks here
  std::deque<std::function<void()>*> global_;  // bounded by max_queue
  uint64_t work_signal_ = 0;  // bumped on every enqueue (missed-wake guard)
  size_t global_peak_ = 0;    // high-water mark of global_ (under mu_)
  bool stop_ = false;

  std::atomic<size_t> pending_{0};
};

/// A countable subset of a pool's tasks that can be waited on from
/// anywhere — including from inside another task of the same pool (see
/// the nested-submission/wait contract on ThreadPool). Unlike
/// ThreadPool::Wait(), which waits for *every* pending task, a TaskGroup
/// waits only for the tasks submitted through it, so independent groups
/// (e.g. concurrent sweep replicas each fanning out query morsels) do
/// not serialize on each other.
///
///   TaskGroup group(&pool);
///   for (...) group.Submit([&] { ... });
///   group.Wait();  // steals/helps if called from a pool worker
///
/// Not thread-safe for concurrent Submit/Wait from multiple threads on
/// the *same* group object beyond the obvious: Submit may race with
/// other Submits, but Wait must be called after all Submits that should
/// be covered have been issued (by the same thread or synchronized-with
/// it). The group must outlive its tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn` on the pool, counted against this group.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted to this group has finished. From
  /// a worker of the owning pool this runs other pool tasks (help-first:
  /// own deque, global queue, steal) instead of blocking, so nested
  /// waits cannot deadlock the pool.
  void Wait();

  /// Runs fn(0..n-1) via this group and waits. Unlike
  /// ThreadPool::ParallelFor this is safe from inside a pool task.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  ThreadPool* pool_;
  std::atomic<size_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable done_cv_;  // external (non-worker) waiters
};

}  // namespace parallel
}  // namespace ff

#endif  // FF_PARALLEL_THREAD_POOL_H_
