// SweepRunner: fan N independent campaign/scenario replicas across a
// work-stealing pool (parallel/thread_pool.h) and fold their outputs into
// one deterministic result — the "run the factory a thousand times
// tonight" workflow the paper's operators needed for what-if studies.
//
// Each replica gets its own sim::Simulator (built by the caller's replica
// function), its own util::Rng stream (Rng(base_seed).Split(i): a pure
// function of seed and replica index, independent of draw order and
// worker count), and its own thread-locally installed TraceRecorder /
// MetricsRegistry. After the barrier the per-replica recordings are
// merged by (virtual time, replica, sequence) with per-replica lanes
// (obs/merge.h) and log records are concatenated in replica order.
//
// Determinism contract: every merged output — Chrome trace JSON, metrics
// CSV, the statsdb table LoadSweepRuns builds — is byte-identical whether
// the sweep ran on 1, 4 or 16 worker threads, and across repeated runs
// (tests/parallel/sweep_test.cc).

#ifndef FF_PARALLEL_SWEEP_H_
#define FF_PARALLEL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "logdata/log_record.h"
#include "obs/metrics.h"
#include "obs/runtime_stats.h"
#include "obs/trace.h"
#include "statsdb/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace ff {
namespace parallel {

class ThreadPool;

struct SweepOptions {
  /// Worker threads. 0 = hardware concurrency; 1 = run replicas inline on
  /// the calling thread (no pool) — the serial baseline the determinism
  /// tests compare against.
  size_t num_workers = 0;
  /// Seed of the sweep; replica i draws from Rng(base_seed).Split(i).
  uint64_t base_seed = 42;
  /// Give each replica a TraceRecorder / MetricsRegistry (installed
  /// thread-locally for the replica function) and build merged views.
  bool record_traces = true;
  bool record_metrics = true;
  /// Replica i's tracks appear as "<lane_prefix><i>/<track>" when merged.
  std::string lane_prefix = "r";
  /// External pool to run on (not owned). Null = the sweep creates a
  /// private pool of num_workers threads. Sharing one pool lets a sweep
  /// coexist with other parallel work — notably morsel-parallel statsdb
  /// queries issued from inside replicas, which then nest on the same
  /// workers via TaskGroup instead of oversubscribing the machine.
  ThreadPool* pool = nullptr;
};

/// Everything a replica function gets to work with.
struct ReplicaContext {
  size_t replica = 0;
  size_t num_replicas = 0;
  /// This replica's private stream; deterministic in (base_seed, replica).
  util::Rng rng;
  /// This replica's recorders; null when disabled in SweepOptions. They
  /// are also installed as the thread's active observability, so code
  /// using obs::ActiveTrace()/ActiveMetrics() (Campaign, Machine, ...)
  /// records into them without being passed a handle.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Log records the replica wants in the merged statsdb ingest.
  std::vector<logdata::LogRecord>* records = nullptr;
};

/// Per-replica outputs plus the deterministic merged views.
struct SweepOutputs {
  size_t num_replicas = 0;
  size_t num_workers = 0;  // as resolved (0 option -> hardware count)
  uint64_t steals = 0;     // successful deque steals during the sweep

  /// Indexed by replica. Entries are null when recording was disabled.
  std::vector<std::unique_ptr<obs::TraceRecorder>> replica_traces;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> replica_metrics;
  std::vector<std::vector<logdata::LogRecord>> replica_records;

  /// Merged views (null when the corresponding recording was disabled).
  std::unique_ptr<obs::TraceRecorder> merged_trace;
  std::unique_ptr<obs::MetricsRegistry> merged_metrics;
  /// All replica records, concatenated in replica order.
  std::vector<logdata::LogRecord> merged_records;

  /// Wall-clock runtime profile of this sweep: per-replica queue-wait /
  /// wall time / worker attribution plus the pool's counter deltas over
  /// the sweep window. Empty with FF_PROFILING compiled out. This is the
  /// OTHER clock domain — real time, different every run — and must
  /// never leak into the deterministic merged artifacts above.
  obs::SweepRuntimeProfile runtime;
};

/// Runs replica functions across a private thread pool and merges.
class SweepRunner {
 public:
  using ReplicaFn = std::function<void(ReplicaContext&)>;

  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Runs fn once per replica (any replica on any worker, work-stealing
  /// balance) and returns per-replica plus merged outputs. The replica
  /// function must confine itself to its ReplicaContext — replicas share
  /// nothing, which is what makes the sweep embarrassingly parallel.
  SweepOutputs Run(size_t num_replicas, const ReplicaFn& fn);

  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
};

/// Name of the table LoadSweepRuns creates: RunsSchema plus a leading
/// `replica` column.
inline constexpr char kSweepRunsTable[] = "sweep_runs";

/// Bulk-loads every replica's log records into `db` under a single writer
/// (statsdb is single-writer by design; the sweep's parallelism ends at
/// the merge barrier). Replaces any existing sweep_runs table. Rows are
/// appended in (replica, record) order via Table::BulkAppender, so the
/// table contents are deterministic.
util::StatusOr<statsdb::Table*> LoadSweepRuns(statsdb::Database* db,
                                              const SweepOutputs& outputs);

}  // namespace parallel
}  // namespace ff

#endif  // FF_PARALLEL_SWEEP_H_
