#include "parallel/sweep.h"

#include <utility>

#include "logdata/loader.h"
#include "obs/merge.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace ff {
namespace parallel {

SweepOutputs SweepRunner::Run(size_t num_replicas, const ReplicaFn& fn) {
  SweepOutputs out;
  out.num_replicas = num_replicas;
  out.replica_traces.resize(num_replicas);
  out.replica_metrics.resize(num_replicas);
  out.replica_records.resize(num_replicas);

  // Resolve the pool up front so the replica closure can attribute each
  // replica to the worker that ran it (runtime profiling only — the
  // deterministic outputs never see worker identity).
  size_t workers = options_.pool != nullptr
                       ? options_.pool->num_threads()
                       : options_.num_workers == 0 ? ThreadPool::DefaultThreads()
                                                   : options_.num_workers;
  out.num_workers = workers;
  const bool use_pool = workers > 1 && num_replicas > 1;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = nullptr;
  if (use_pool) {
    pool = options_.pool;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(
          ThreadPool::Options{workers, /*max_queue=*/1024});
      pool = owned.get();
    }
  }

  int64_t sweep_t0 = 0;
  obs::PoolRuntimeProfile pool_before;
  if constexpr (obs::kProfilingCompiledIn) {
    out.runtime.replicas.resize(num_replicas);
    sweep_t0 = obs::RuntimeNowNs();
    if (pool != nullptr) pool_before = pool->RuntimeProfile();
  }

  auto run_replica = [&](size_t i) {
    int64_t replica_t0 = 0;
    if constexpr (obs::kProfilingCompiledIn) {
      replica_t0 = obs::RuntimeNowNs();
      obs::ReplicaRuntime& rt = out.runtime.replicas[i];
      rt.replica = i;
      rt.queue_wait_ms = static_cast<double>(replica_t0 - sweep_t0) / 1e6;
      rt.worker = pool != nullptr ? pool->caller_worker_index() : SIZE_MAX;
    }
    // Recorders are created on the worker that runs the replica (memory
    // first-touch locality) but land in replica-indexed slots, so which
    // worker ran what leaves no trace in the outputs.
    if (options_.record_traces) {
      out.replica_traces[i] = std::make_unique<obs::TraceRecorder>();
    }
    if (options_.record_metrics) {
      out.replica_metrics[i] = std::make_unique<obs::MetricsRegistry>();
    }
    obs::ScopedObservability scoped(out.replica_traces[i].get(),
                                    out.replica_metrics[i].get());
    ReplicaContext ctx;
    ctx.replica = i;
    ctx.num_replicas = num_replicas;
    ctx.rng = util::Rng(options_.base_seed).Split(i);
    ctx.trace = out.replica_traces[i].get();
    ctx.metrics = out.replica_metrics[i].get();
    ctx.records = &out.replica_records[i];
    fn(ctx);
    if constexpr (obs::kProfilingCompiledIn) {
      out.runtime.replicas[i].wall_ms =
          static_cast<double>(obs::RuntimeNowNs() - replica_t0) / 1e6;
    }
  };

  // Post-barrier merge steps. Each consumes only the frozen per-replica
  // outputs and writes its own artifact, in replica-index order — which
  // worker (or thread count) runs them cannot show in the bytes.
  obs::MergeOptions merge_options;
  merge_options.lane_prefix = options_.lane_prefix;
  auto merge_traces = [&] {
    std::vector<const obs::TraceRecorder*> traces;
    traces.reserve(num_replicas);
    for (const auto& t : out.replica_traces) traces.push_back(t.get());
    out.merged_trace = std::make_unique<obs::TraceRecorder>();
    obs::MergeTraces(traces, out.merged_trace.get(), merge_options);
  };
  auto merge_metrics = [&] {
    std::vector<const obs::MetricsRegistry*> metrics;
    metrics.reserve(num_replicas);
    for (const auto& m : out.replica_metrics) metrics.push_back(m.get());
    out.merged_metrics = std::make_unique<obs::MetricsRegistry>();
    obs::MergeMetrics(metrics, out.merged_metrics.get(), merge_options);
  };
  auto merge_records = [&] {
    size_t total_records = 0;
    for (const auto& r : out.replica_records) total_records += r.size();
    out.merged_records.reserve(total_records);
    for (const auto& r : out.replica_records) {
      out.merged_records.insert(out.merged_records.end(), r.begin(), r.end());
    }
  };

  if (!use_pool) {
    for (size_t i = 0; i < num_replicas; ++i) run_replica(i);
    if (options_.record_traces) merge_traces();
    if (options_.record_metrics) merge_metrics();
    merge_records();
  } else {
    // Waits are scoped to this sweep's own tasks (TaskGroup, not
    // pool-wide Wait), so concurrent users of a shared pool — another
    // sweep, a parallel statsdb query — neither block us nor get
    // blocked, and the sweep itself may run from inside a pool task.
    uint64_t steals_before = pool->steals();
    TaskGroup replicas(pool);
    replicas.ParallelFor(num_replicas, run_replica);
    // The merge passes share no state with each other, so they overlap
    // on the pool — halving the serial tail that bounds sweep speedup.
    TaskGroup merges(pool);
    if (options_.record_traces) merges.Submit(merge_traces);
    if (options_.record_metrics) merges.Submit(merge_metrics);
    merge_records();
    merges.Wait();
    out.steals = pool->steals() - steals_before;
  }
  if constexpr (obs::kProfilingCompiledIn) {
    const int64_t sweep_ns = obs::RuntimeNowNs() - sweep_t0;
    out.runtime.wall_ms = static_cast<double>(sweep_ns) / 1e6;
    if (pool != nullptr) {
      out.runtime.pool = pool->RuntimeProfile().Since(pool_before);
      out.runtime.worker_occupancy.resize(out.runtime.pool.workers.size());
      for (size_t w = 0; w < out.runtime.pool.workers.size(); ++w) {
        out.runtime.worker_occupancy[w] =
            sweep_ns > 0 ? static_cast<double>(out.runtime.pool.workers[w].run_ns) /
                               static_cast<double>(sweep_ns)
                         : 0.0;
      }
    }
  }
  return out;
}

util::StatusOr<statsdb::Table*> LoadSweepRuns(statsdb::Database* db,
                                              const SweepOutputs& outputs) {
  using statsdb::DataType;
  using statsdb::Schema;
  using statsdb::Table;

  if (db->HasTable(kSweepRunsTable)) {
    FF_RETURN_IF_ERROR(db->DropTable(kSweepRunsTable));
  }
  Schema runs_schema = logdata::RunsSchema();
  std::vector<statsdb::Column> columns;
  columns.push_back({"replica", DataType::kInt64});
  for (const auto& col : runs_schema.columns()) {
    columns.push_back(col);
  }
  FF_ASSIGN_OR_RETURN(Table * table,
                      db->CreateTable(kSweepRunsTable, Schema(columns)));
  {
    Table::BulkAppender app(table);
    app.Reserve(outputs.merged_records.size());
    for (size_t ri = 0; ri < outputs.replica_records.size(); ++ri) {
      for (const auto& r : outputs.replica_records[ri]) {
        bool finished = r.status == logdata::RunStatus::kCompleted;
        app.Int64(static_cast<int64_t>(ri))
            .String(r.forecast)
            .String(r.region)
            .Int64(r.day)
            .String(r.node)
            .String(r.code_version)
            .Int64(r.mesh_sides)
            .Int64(r.timesteps)
            .Double(r.start_time);
        if (finished) {
          app.Double(r.end_time).Double(r.walltime);
        } else {
          app.Null().Null();
        }
        app.String(logdata::RunStatusName(r.status));
        FF_RETURN_IF_ERROR(app.EndRow());
      }
    }
    FF_RETURN_IF_ERROR(app.Finish());
  }
  FF_RETURN_IF_ERROR(table->CreateIndex("replica"));
  FF_RETURN_IF_ERROR(table->CreateIndex("forecast"));
  FF_RETURN_IF_ERROR(table->CreateIndex("node"));
  return table;
}

}  // namespace parallel
}  // namespace ff
