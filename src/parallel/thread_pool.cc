#include "parallel/thread_pool.h"

#include "util/logging.h"

namespace ff {
namespace parallel {

namespace {
// Which pool (if any) owns the current thread; lets Submit route a
// worker's own submissions onto its deque instead of the bounded queue.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;
}  // namespace

// ---------------------------------------------------------------------------
// TaskDeque — Chase & Lev's circular deque, C11 orderings per Le et al.

TaskDeque::TaskDeque() : array_(new RingArray(64)) {}

TaskDeque::~TaskDeque() {
  // By now no thief is running; drain anything never executed.
  RingArray* a = array_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_relaxed);
  int64_t b = bottom_.load(std::memory_order_relaxed);
  for (int64_t i = t; i < b; ++i) delete a->Get(i);
  delete a;
}

void TaskDeque::PushBottom(Task* task) {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_acquire);
  RingArray* a = array_.load(std::memory_order_relaxed);
  if (b - t > static_cast<int64_t>(a->capacity) - 1) {
    a = Grow(a, t, b);
  }
  a->Put(b, task);
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
}

TaskDeque::Task* TaskDeque::PopBottom() {
  int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  RingArray* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  // The fence orders the bottom_ publication against the top_ read below;
  // this is the owner's half of the owner/thief race on the last element.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_relaxed);
  Task* task = nullptr;
  if (t <= b) {
    task = a->Get(b);
    if (t == b) {
      // One element left: race thieves for it via the top_ CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
  }
  return task;
}

TaskDeque::Task* TaskDeque::StealTop() {
  int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  RingArray* a = array_.load(std::memory_order_acquire);
  Task* task = a->Get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // owner's pop or another thief won index t
  }
  return task;
}

size_t TaskDeque::ApproxSize() const {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

TaskDeque::RingArray* TaskDeque::Grow(RingArray* array, int64_t top,
                                      int64_t bottom) {
  auto* bigger = new RingArray(array->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) bigger->Put(i, array->Get(i));
  array_.store(bigger, std::memory_order_release);
  retired_.emplace_back(array);  // thieves may still hold a pointer
  return bigger;
}

// ---------------------------------------------------------------------------
// ThreadPool

size_t ThreadPool::DefaultThreads() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool() : ThreadPool(Options{}) {}

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(Options{num_threads, 1024}) {}

ThreadPool::ThreadPool(Options options) : options_(options) {
  size_t n = options_.num_threads == 0 ? DefaultThreads()
                                       : options_.num_threads;
  FF_CHECK(options_.max_queue > 0) << "thread pool needs a non-empty queue";
  deques_.reserve(n);
  worker_stats_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<TaskDeque>());
    worker_stats_.push_back(std::make_unique<obs::WorkerRuntimeStats>());
  }
  if constexpr (obs::kProfilingCompiledIn) {
    start_ns_ = obs::RuntimeNowNs();
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  not_full_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  auto* task = new std::function<void()>(std::move(fn));
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (tl_pool == this) {
    // Worker-spawned task: lock-free push onto the worker's own deque;
    // the bounded queue (and its backpressure) is for external producers.
    deques_[tl_worker]->PushBottom(task);
    if constexpr (obs::kProfilingCompiledIn) {
      // Owner is the only writer of its peak gauge; plain max is exact.
      auto& ws = *worker_stats_[tl_worker];
      const uint64_t depth = deques_[tl_worker]->ApproxSize();
      if (depth > ws.deque_peak.load(std::memory_order_relaxed)) {
        ws.deque_peak.store(depth, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++work_signal_;
    work_cv_.notify_one();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  not_full_cv_.wait(lock, [&] {
    return global_.size() < options_.max_queue || stop_;
  });
  FF_CHECK(!stop_) << "Submit on a stopping ThreadPool";
  global_.push_back(task);
  if constexpr (obs::kProfilingCompiledIn) {
    if (global_.size() > global_peak_) global_peak_ = global_.size();
  }
  ++work_signal_;
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  FF_CHECK(tl_pool != this) << "ParallelFor from a pool worker would "
                               "deadlock in Wait";
  if (n == 0) return;
  // Fan out from inside a worker: a single root task submits the rest,
  // which lands them on that worker's own deque — the calling thread
  // would otherwise funnel everything through the bounded global queue
  // and the work-stealing deques would sit idle. The root runs index 0
  // itself while the other workers steal. References are safe to
  // capture: Wait() holds this frame alive until every task finished.
  Submit([this, n, &fn] {
    for (size_t i = 1; i < n; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    fn(0);
  });
  Wait();
}

std::function<void()>* ThreadPool::FindWork(size_t index) {
  if (auto* task = deques_[index]->PopBottom()) return task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!global_.empty()) {
      auto* task = global_.front();
      global_.pop_front();
      not_full_cv_.notify_one();
      return task;
    }
  }
  size_t n = deques_.size();
  uint64_t fails = 0;  // empty/lost StealTop attempts this scan
  for (size_t k = 1; k < n; ++k) {
    if (auto* task = deques_[(index + k) % n]->StealTop()) {
      auto& ws = *worker_stats_[index];
      ws.steals.fetch_add(1, std::memory_order_relaxed);
      if constexpr (obs::kProfilingCompiledIn) {
        if (fails > 0) {
          ws.steal_fails.fetch_add(fails, std::memory_order_relaxed);
        }
      }
      return task;
    }
    ++fails;
  }
  if constexpr (obs::kProfilingCompiledIn) {
    if (fails > 0) {
      worker_stats_[index]->steal_fails.fetch_add(fails,
                                                  std::memory_order_relaxed);
    }
  }
  return nullptr;
}

void ThreadPool::RunTask(std::function<void()>* task, size_t index) {
  if (index != static_cast<size_t>(-1)) {
    // The task COUNT is an event counter like `steals` — one relaxed
    // fetch_add, live even with FF_PROFILING=OFF. Only the clock reads
    // and the histogram are profiling hooks.
    auto& ws = *worker_stats_[index];
    if constexpr (obs::kProfilingCompiledIn) {
      const int64_t t0 = obs::RuntimeNowNs();
      (*task)();
      const uint64_t dt = static_cast<uint64_t>(obs::RuntimeNowNs() - t0);
      ws.run_ns.fetch_add(dt, std::memory_order_relaxed);
      ws.task_ns.Record(dt);
    } else {
      (*task)();
    }
    ws.tasks_run.fetch_add(1, std::memory_order_relaxed);
  } else {
    (*task)();
  }
  delete task;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last pending task: wake Wait(). Lock so the notify cannot slip
    // between a waiter's predicate check and its wait.
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
}

size_t ThreadPool::CallerWorkerIndex() const {
  return tl_pool == this ? tl_worker : static_cast<size_t>(-1);
}

uint64_t ThreadPool::steals() const {
  uint64_t n = 0;
  for (const auto& w : worker_stats_) {
    n += w->steals.load(std::memory_order_relaxed);
  }
  return n;
}

obs::PoolRuntimeProfile ThreadPool::RuntimeProfile() const {
  obs::PoolRuntimeProfile p;
  p.num_threads = threads_.size();
  if constexpr (obs::kProfilingCompiledIn) {
    p.lifetime_ns = static_cast<uint64_t>(obs::RuntimeNowNs() - start_ns_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    p.global_queue_depth = global_.size();
    p.global_queue_peak = global_peak_;
  }
  p.workers.resize(worker_stats_.size());
  for (size_t i = 0; i < worker_stats_.size(); ++i) {
    const obs::WorkerRuntimeStats& ws = *worker_stats_[i];
    obs::WorkerRuntimeSnapshot& out = p.workers[i];
    out.tasks_run = ws.tasks_run.load(std::memory_order_relaxed);
    out.run_ns = ws.run_ns.load(std::memory_order_relaxed);
    out.idle_ns = ws.idle_ns.load(std::memory_order_relaxed);
    out.parks = ws.parks.load(std::memory_order_relaxed);
    out.steals = ws.steals.load(std::memory_order_relaxed);
    out.steal_fails = ws.steal_fails.load(std::memory_order_relaxed);
    out.deque_peak = ws.deque_peak.load(std::memory_order_relaxed);
    out.deque_depth = deques_[i]->ApproxSize();
    out.task_ns = ws.task_ns.Snap();
  }
  return p;
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    if (auto* task = FindWork(index)) {
      RunTask(task, index);
      continue;
    }
    uint64_t sig;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      sig = work_signal_;
    }
    // A task enqueued after the failed scan above bumps work_signal_, so
    // re-scanning once with the pre-scan signal in hand closes the
    // missed-wakeup window.
    if (auto* task = FindWork(index)) {
      RunTask(task, index);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if constexpr (obs::kProfilingCompiledIn) {
      auto& ws = *worker_stats_[index];
      ws.parks.fetch_add(1, std::memory_order_relaxed);
      const int64_t t0 = obs::RuntimeNowNs();
      work_cv_.wait(lock, [&] { return stop_ || work_signal_ != sig; });
      ws.idle_ns.fetch_add(static_cast<uint64_t>(obs::RuntimeNowNs() - t0),
                           std::memory_order_relaxed);
    } else {
      work_cv_.wait(lock, [&] { return stop_ || work_signal_ != sig; });
    }
    if (stop_) return;
  }
}

// ---------------------------------------------------------------------------
// TaskGroup

void TaskGroup::Submit(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  // The wrapper must not read this->pool_ after the group-section below:
  // once outstanding_ hits zero a concurrent Wait() may return and the
  // group may be destroyed, so the pool pointer is captured by value.
  ThreadPool* pool = pool_;
  pool_->Submit([this, pool, fn = std::move(fn)] {
    fn();
    bool last;
    {
      // Decrement under mu_ so a waiter that observes zero and then
      // takes mu_ cannot destroy the group while this section runs.
      std::lock_guard<std::mutex> lock(mu_);
      last = outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1;
      if (last) done_cv_.notify_all();
    }
    if (last) {
      // Wake helpers parked on the pool's work signal (they wait for
      // "new work OR group done"; group completion enqueues nothing, so
      // bump the signal the same way an enqueue would).
      std::lock_guard<std::mutex> lock(pool->mu_);
      ++pool->work_signal_;
      pool->work_cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  auto done = [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  };
  // Handshake with the final task's decrement section: after observing
  // zero, take mu_ once so we cannot return (and let the group die)
  // while that task is still between its decrement and its notify.
  auto sync_and_return = [&] { std::lock_guard<std::mutex> lock(mu_); };
  size_t idx = pool_->CallerWorkerIndex();
  if (idx == static_cast<size_t>(-1)) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, done);
    return;
  }
  // Worker of the owning pool: help-first. Run any findable pool task
  // (our tasks, other groups', unrelated ones — all drain the pool and
  // so make progress toward this group's completion) and only park when
  // the whole pool has nothing runnable, using WorkerLoop's
  // signal-snapshot pattern to close the missed-wake window against
  // both new enqueues and the group-completion bump in Submit.
  for (;;) {
    if (done()) return sync_and_return();
    if (auto* task = pool_->FindWork(idx)) {
      pool_->RunTask(task, idx);
      continue;
    }
    uint64_t sig;
    {
      std::lock_guard<std::mutex> lock(pool_->mu_);
      sig = pool_->work_signal_;
    }
    if (done()) return sync_and_return();
    if (auto* task = pool_->FindWork(idx)) {
      pool_->RunTask(task, idx);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool_->mu_);
    if constexpr (obs::kProfilingCompiledIn) {
      // A helping worker parked here is idle from the pool's point of
      // view, same as a WorkerLoop park.
      auto& ws = *pool_->worker_stats_[idx];
      ws.parks.fetch_add(1, std::memory_order_relaxed);
      const int64_t t0 = obs::RuntimeNowNs();
      pool_->work_cv_.wait(lock, [&] {
        return pool_->work_signal_ != sig || done();
      });
      ws.idle_ns.fetch_add(static_cast<uint64_t>(obs::RuntimeNowNs() - t0),
                           std::memory_order_relaxed);
    } else {
      pool_->work_cv_.wait(lock, [&] {
        return pool_->work_signal_ != sig || done();
      });
    }
  }
}

void TaskGroup::ParallelFor(size_t n,
                            const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // References are safe to capture: Wait() holds this frame alive until
  // every task has finished.
  if (pool_->CallerWorkerIndex() != static_cast<size_t>(-1)) {
    // Already on a worker: submissions land lock-free on its own deque
    // and are visible to thieves; run index 0 inline.
    for (size_t i = 1; i < n; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    fn(0);
    Wait();
    return;
  }
  // External thread: a single root task fans out from inside the pool
  // (same trick as ThreadPool::ParallelFor) so the per-worker deques see
  // the work instead of the bounded global queue.
  Submit([this, n, &fn] {
    for (size_t i = 1; i < n; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    fn(0);
  });
  Wait();
}

}  // namespace parallel
}  // namespace ff
