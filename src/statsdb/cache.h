// Two-tier query cache: optimized plans keyed by SQL text fingerprint,
// materialized results keyed by (plan fingerprint, referenced-table
// epochs).
//
// The factory's consumers are dashboards and planners that re-issue the
// same statistics queries continuously (ForeMan re-reads run history on
// every estimation update), yet each Database::Sql call used to
// re-parse, re-plan, and re-scan from scratch. This layer makes the
// repeat path cheap without changing a single observable byte:
//
//  * Plan tier — normalized-SQL-text fingerprint -> optimized PlanPtr.
//    Plans are immutable (shared_ptr<const PlanNode>), so sharing one
//    across executions is free. Entries pin the database catalog epoch
//    and each referenced table's ddl epoch: CREATE TABLE / DROP TABLE /
//    CREATE INDEX invalidate affected plans implicitly (index selection
//    happens at plan time), while plain data writes do not.
//
//  * Result tier — structural plan fingerprint -> materialized
//    ResultSet, with the referenced tables' DATA epochs captured at
//    store time. A lookup recomputes current epochs and serves the
//    entry only on exact match, so any write to any referenced table
//    (Insert, UpdateCell, DeleteRows, BulkAppender::EndRow) invalidates
//    implicitly — there is no invalidation hook to forget. The parallel
//    config is deliberately NOT part of the key: the engines are
//    byte-identical at any pool size (parallel_exec.h contract), so a
//    result computed serially may legally serve a parallel session.
//
// Correctness contract (tested by the property suite's cache lane):
// with caching on, every result — rows, row order, error text — is
// byte-identical to cache-off on both engines at any pool size. Error
// results are never cached (re-executing an erroring statement is the
// byte-identical behaviour, and errors are cheap). Plans containing
// MaterializedNode leaves or unbound parameters are uncacheable in the
// result tier and bypass it.
//
// Concurrency: lookups take a shared lock and touch per-entry
// recency stamps with relaxed atomics, so concurrent readers never
// serialize on the cache; stores/evictions take the exclusive side.
// Counters are relaxed atomics. The cache itself is TSan-clean for
// any mix of concurrent Get/Put/Stats (tests/statsdb/cache_test.cc
// hammers it under the CI TSan job); whether a whole Database may be
// shared across threads is governed by Database's own contract.
//
// Knob: FF_STATSDB_CACHE mirrors FF_STATSDB_PARALLEL —
//   FF_STATSDB_CACHE=off|0|false     disabled (the default)
//   FF_STATSDB_CACHE=plan            plan tier only
//   FF_STATSDB_CACHE=full|on|1|true  both tiers
//   FF_STATSDB_CACHE=full:E          ... result entry cap E
//   FF_STATSDB_CACHE=full:E:B        ... and result byte budget B
// Caching defaults OFF (unlike parallelism) because a cache hit
// short-circuits execution entirely: engine-comparison tests and
// profiling runs must opt in, not discover their engines were never
// exercised.

#ifndef FF_STATSDB_CACHE_H_
#define FF_STATSDB_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "statsdb/query.h"
#include "util/fingerprint.h"

namespace ff {
namespace statsdb {

class Database;

/// Cache tuning, per Database (Database::set_cache_config) and seeded
/// from FF_STATSDB_CACHE (see file comment).
struct CacheConfig {
  enum class Mode { kOff, kPlanOnly, kFull };
  Mode mode = Mode::kOff;
  /// Plan-tier entry cap.
  size_t plan_entries = 256;
  /// Result-tier entry cap.
  size_t result_entries = 1024;
  /// Result-tier byte budget (estimated result footprint). A single
  /// result larger than the whole budget is simply not stored.
  size_t result_bytes = 64ull << 20;

  static CacheConfig FromEnv();
};

/// Two independently-seeded fingerprint streams advanced in lockstep:
/// 128 bits of key material, so cache keys cannot collide in practice.
/// The primary digest indexes the hash map; the secondary is verified
/// before an entry is served.
class DualFingerprint {
 public:
  DualFingerprint();
  DualFingerprint& U8(uint8_t v);
  DualFingerprint& U64(uint64_t v);
  DualFingerprint& Str(std::string_view s);
  uint64_t fp() const { return a_.Digest(); }
  uint64_t check() const { return b_.Digest(); }

 private:
  util::FingerprintStream a_;
  util::FingerprintStream b_;
};

/// Monotonic hit/miss/bypass/evict counters plus current occupancy.
/// "Bypass" counts queries that consulted the layer while it could not
/// apply (tier disabled, or an uncacheable plan); "invalidation" counts
/// entries found stale (epoch mismatch) and recorded as misses.
struct QueryCacheStats {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_bypasses = 0;
  uint64_t plan_invalidations = 0;
  uint64_t plan_evictions = 0;
  uint64_t plan_entries = 0;

  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_bypasses = 0;
  uint64_t result_invalidations = 0;
  uint64_t result_evictions = 0;
  uint64_t result_entries = 0;
  uint64_t result_bytes = 0;
};

/// Rough heap footprint of a materialized result, for the byte budget.
size_t EstimateResultBytes(const ResultSet& rs);

class QueryCache {
 public:
  using EpochVector = std::vector<std::pair<std::string, uint64_t>>;

  struct Key {
    uint64_t fp = 0;
    uint64_t check = 0;
  };

  /// Result-tier key: the plan's structural identity plus the current
  /// data epochs of every referenced table (sorted by table name).
  struct ResultKey {
    bool cacheable = false;
    Key key;
    EpochVector epochs;
  };

  explicit QueryCache(CacheConfig config);

  CacheConfig config() const;
  /// Replaces the config. Existing entries are KEPT (re-evicted to the
  /// new budgets); toggling the mode off and back on finds a warm
  /// cache. Use Clear() to actually drop entries.
  void set_config(CacheConfig config);
  void Clear();

  // ---------------------------------------------------------- plan tier
  /// Returns the cached optimized plan for a normalized SQL text
  /// fingerprint, or null on miss. An entry is served only when the
  /// database catalog epoch and every referenced table's ddl epoch
  /// still match (DDL since planning invalidates).
  PlanPtr GetPlan(const Key& key, const Database& db);
  /// Stores an optimized plan, snapshotting the current catalog/ddl
  /// epochs. Replaces any stale entry under the same fingerprint.
  void PutPlan(const Key& key, const Database& db, const PlanPtr& optimized);
  void RecordPlanBypass();

  // -------------------------------------------------------- result tier
  /// Builds the result-tier key for an optimized plan against the
  /// database's CURRENT table epochs. cacheable=false (bypass) when the
  /// plan holds a MaterializedNode, an unbound parameter, or references
  /// a missing table.
  static ResultKey MakeResultKey(const PlanNode& plan, const Database& db);
  /// Returns the cached result on an exact (fingerprint, epochs) match;
  /// null on miss or stale entry. Concurrent callers share the lock.
  std::shared_ptr<const ResultSet> GetResult(const ResultKey& key);
  /// Stores a successful result. Never store errors: re-execution is
  /// the byte-identical (and cheap) behaviour for them.
  void PutResult(const ResultKey& key, const ResultSet& result);
  void RecordResultBypass();

  QueryCacheStats Stats() const;

 private:
  struct PlanEntry {
    PlanEntry(uint64_t check_in, uint64_t catalog_epoch_in,
              EpochVector ddl_epochs_in, PlanPtr plan_in, uint64_t used)
        : check(check_in),
          catalog_epoch(catalog_epoch_in),
          ddl_epochs(std::move(ddl_epochs_in)),
          plan(std::move(plan_in)),
          last_used(used) {}
    uint64_t check;
    uint64_t catalog_epoch;
    EpochVector ddl_epochs;  // (table, ddl epoch) at plan time
    PlanPtr plan;
    std::atomic<uint64_t> last_used;
  };

  struct ResultEntry {
    ResultEntry(uint64_t check_in, EpochVector epochs_in,
                std::shared_ptr<const ResultSet> result_in, size_t bytes_in,
                uint64_t used)
        : check(check_in),
          epochs(std::move(epochs_in)),
          result(std::move(result_in)),
          bytes(bytes_in),
          last_used(used) {}
    uint64_t check;
    EpochVector epochs;  // (table, data epoch) at store time
    std::shared_ptr<const ResultSet> result;
    size_t bytes;
    std::atomic<uint64_t> last_used;
  };

  uint64_t Touch() { return use_clock_.fetch_add(1, std::memory_order_relaxed) + 1; }
  /// Evicts least-recently-used entries until both budgets hold.
  /// Callers hold the exclusive lock.
  void EvictPlansLocked();
  void EvictResultsLocked();

  mutable std::shared_mutex mu_;
  CacheConfig config_;
  std::unordered_map<uint64_t, PlanEntry> plans_;
  std::unordered_map<uint64_t, ResultEntry> results_;
  size_t result_bytes_total_ = 0;
  std::atomic<uint64_t> use_clock_{0};

  std::atomic<uint64_t> plan_hits_{0};
  std::atomic<uint64_t> plan_misses_{0};
  std::atomic<uint64_t> plan_bypasses_{0};
  std::atomic<uint64_t> plan_invalidations_{0};
  std::atomic<uint64_t> plan_evictions_{0};
  std::atomic<uint64_t> result_hits_{0};
  std::atomic<uint64_t> result_misses_{0};
  std::atomic<uint64_t> result_bypasses_{0};
  std::atomic<uint64_t> result_invalidations_{0};
  std::atomic<uint64_t> result_evictions_{0};
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_CACHE_H_
