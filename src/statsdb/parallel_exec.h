// Morsel-driven parallel query execution on the work-stealing pool
// (parallel/thread_pool.h).
//
// The rewriter walks an optimized plan looking for parallel-safe
// pipelines — a chain of Filter/Project operators over one Scan leaf,
// optionally capped by a pipeline breaker (Aggregate, Distinct, top-k
// Sort) or feeding a hash-join side. Eligible chains are executed
// eagerly: the coordinator prepares the scan once (table lookup, index
// probe, zone-map refresh), surveys the surviving chunks, groups them
// into morsels of `morsel_chunks` consecutive 4096-row chunks, and fans
// the morsels across the pool with a TaskGroup (safe even when the
// query itself runs inside a pool task, e.g. a sweep replica). Each
// worker drains a chunk-restricted copy of the chain into a private
// partial state; a deterministic merge cascade combines the partials in
// morsel order. The merged result is spliced back into the plan as a
// MaterializedNode and the remaining serial operators run unchanged.
//
// Determinism contract: results are byte-identical to the serial
// vectorized engine (exec.h) — row order, group order, and error
// messages — at any thread count. The merge replays order-sensitive
// folds (SUM/AVG buffer their value stream; MIN/MAX/P95 replay through
// AggState::Add) in morsel order, distinct/group orders are
// first-occurrence in morsel order, top-k seq numbers are
// (morsel << 32) | local so heap ties break exactly as the serial
// arrival order, and runtime errors are reported from the
// lowest-indexed failing morsel, which is provably the error the serial
// engine would have hit first. Chains consumed with early exit (under a
// Limit with no intervening breaker) are never parallelized.

#ifndef FF_STATSDB_PARALLEL_EXEC_H_
#define FF_STATSDB_PARALLEL_EXEC_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "statsdb/query.h"

namespace ff {
namespace obs {
struct QueryProfile;
}  // namespace obs
namespace parallel {
class ThreadPool;
}  // namespace parallel

namespace statsdb {

class Database;

/// Post-hoc description of one executed morsel, for observability (the
/// obs layer turns these into Chrome-trace spans).
struct MorselStat {
  size_t morsel = 0;       // index in dispatch order
  size_t first_chunk = 0;  // first ColumnStore chunk covered
  size_t chunks = 0;       // chunks in the morsel (post zone-pruning)
  size_t rows = 0;         // rows the morsel emitted into its partial
  double wall_ms = 0.0;    // worker-side execution time
};

/// Invoked on the coordinator thread after each parallel operator's
/// barrier with the operator tag ("collect", "aggregate", "distinct",
/// "topk") and one entry per morsel.
using MorselHook =
    std::function<void(const char* op, const std::vector<MorselStat>&)>;

/// Tuning knobs for parallel execution, per Database (see
/// Database::set_parallel_config) and overridable via the
/// FF_STATSDB_PARALLEL environment variable:
///   FF_STATSDB_PARALLEL=off|0|false   disable (serial execution)
///   FF_STATSDB_PARALLEL=N             cap at N threads
///   FF_STATSDB_PARALLEL=N:M           ... and M chunks per morsel
struct ParallelConfig {
  /// Master switch; with `false` every query runs serial.
  bool enabled = true;
  /// Thread cap. 0 = hardware_concurrency; the resolved value must
  /// exceed 1 for any query to go parallel (so single-core hosts pay
  /// zero overhead — no pool is ever created).
  size_t max_threads = 0;
  /// Consecutive surviving chunks (4096 rows each) per morsel.
  size_t morsel_chunks = 1;
  /// Chains whose zone-map survey yields fewer chunks than this stay
  /// serial: tiny queries should not pay fan-out overhead.
  size_t min_chunks = 4;
  /// External pool to run on (not owned; e.g. a SweepRunner's shared
  /// pool). When null the Database lazily creates its own.
  parallel::ThreadPool* pool = nullptr;
  /// Observability callback; null = off.
  MorselHook morsel_hook;

  /// Defaults overridden by FF_STATSDB_PARALLEL (see above).
  static ParallelConfig FromEnv();
};

/// Executes an already-optimized plan, fanning eligible pipelines across
/// `config`-resolved threads. Falls back to the serial vectorized engine
/// (byte-identical results by contract) when disabled, single-threaded,
/// or when no pipeline is eligible.
util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db,
                                          const ParallelConfig& config);

/// As above with the database's own config (Database::parallel_config).
util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db);

/// Production execution of an already-optimized plan: consults the
/// database's result cache (cache.h) before either engine runs, then
/// falls through to ExecuteParallel. Successful results are stored;
/// error results never are (re-execution is byte-identical and cheap).
/// ExecutePlan (exec.h), Database::Sql, and PreparedStatement::Execute
/// all funnel through here; the engine-level entry points
/// (ExecuteParallel, ExecuteColumnar) stay cache-free so tests can
/// always reach the real engines.
util::StatusOr<ResultSet> ExecuteOptimized(const PlanPtr& optimized,
                                           const Database& db);

/// Profiled variant of ExecuteOptimized: annotates `profile->cache`
/// with "hit" (served from the result cache, nothing executed — the
/// operator tree stays empty and engine reports "cache"), "miss"
/// (consulted, executed, stored), or "bypass" (cache off or plan
/// uncacheable). Results remain byte-identical to the unprofiled run.
util::StatusOr<ResultSet> ExecuteOptimizedProfiled(
    const PlanPtr& optimized, const Database& db,
    const ParallelConfig& config, obs::QueryProfile* profile);

/// Production profiled entry point (EXPLAIN ANALYZE): optimizes `plan`
/// like ExecutePlan, executes it — parallel when eligible, serial
/// fallback otherwise — and fills `profile` with the wall-clock
/// per-operator tree (obs/runtime_stats.h). Each parallelized pipeline
/// appears as a "Parallel[<op>]" node under the MaterializedNode that
/// replaced it, carrying morsel count, merge-cascade time, and the
/// per-morsel chain profile merged in morsel order (chain wall times are
/// CPU time summed across morsels). Results stay byte-identical to the
/// unprofiled run; `profile->engine` reports which engine actually ran.
util::StatusOr<ResultSet> ExecutePlanProfiled(const PlanPtr& plan,
                                              const Database& db,
                                              const ParallelConfig& config,
                                              obs::QueryProfile* profile);

/// As above with the database's own config.
util::StatusOr<ResultSet> ExecutePlanProfiled(const PlanPtr& plan,
                                              const Database& db,
                                              obs::QueryProfile* profile);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_PARALLEL_EXEC_H_
