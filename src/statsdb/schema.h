// Column and Schema definitions for statsdb tables and query results.

#ifndef FF_STATSDB_SCHEMA_H_
#define FF_STATSDB_SCHEMA_H_

#include <string>
#include <vector>

#include "statsdb/value.h"
#include "util/statusor.h"

namespace ff {
namespace statsdb {

/// One column: a name and a type. All columns are nullable (the paper's
/// runs table inherently has incomplete rows for in-flight forecasts —
/// "a currently executing forecast ... does not have a completion time").
struct Column {
  std::string name;
  DataType type;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// InvalidArgument on duplicate or empty column names.
  static util::StatusOr<Schema> Create(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name (case-insensitive); NotFound when absent.
  util::StatusOr<size_t> IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// "name:TYPE, name:TYPE, ..." — used in error messages and tests.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// A row is a vector of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Validates `row` against `schema`: width and per-column type (NULL is
/// accepted anywhere; int64 values are accepted into double columns and
/// widened in place by the table layer).
util::Status ValidateRow(const Schema& schema, const Row& row);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_SCHEMA_H_
