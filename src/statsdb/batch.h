// Column batches streamed between plan nodes by the vectorized executor
// (see exec.h). A Batch is a window of rows, either columnar (one
// ColumnVector per output column, usually borrowing storage from a
// ColumnStore chunk) or row-major (materialized rows produced by pipeline
// breakers such as aggregation and joins). A selection vector marks the
// live rows without compacting the underlying columns.

#ifndef FF_STATSDB_BATCH_H_
#define FF_STATSDB_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "statsdb/column_store.h"
#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

class Expr;

/// One column of a batch. Element views (`b8`/`i64`/`f64`/`codes`/`vals`)
/// either borrow storage from a ColumnStore chunk or point into the
/// vector's own `own_*` stores when the values were computed. A vector in
/// `vals` mode carries exact Values (used for post-aggregation columns
/// whose runtime types can differ from the declared schema type).
class ColumnVector {
 public:
  DataType type = DataType::kNull;
  size_t length = 0;

  const uint8_t* b8 = nullptr;       // kBool
  const int64_t* i64 = nullptr;      // kInt64
  const double* f64 = nullptr;       // kDouble
  const uint32_t* codes = nullptr;   // kString (dictionary codes)
  const Dictionary* dict = nullptr;  // kString
  const Value* vals = nullptr;       // generic mode (exact Values)
  const uint64_t* null_words = nullptr;  // packed bitmap; nullptr => none

  /// True when this vector broadcasts one literal to every element.
  bool is_const = false;
  Value const_val;  // the literal, when is_const

  bool IsNull(size_t i) const {
    if (vals != nullptr) return vals[i].is_null();
    return null_words != nullptr &&
           ((null_words[i >> 6] >> (i & 63)) & 1);
  }
  Value GetValue(size_t i) const;

  // Owned storage for computed vectors: fill the store matching `type`
  // (or own_vals for generic mode), mark NULLs with SetNull, then Seal()
  // to point the views at the owned data. `length` must be set before
  // SetNull so the bitmap can be sized.
  std::vector<uint8_t> own_b8;
  std::vector<int64_t> own_i64;
  std::vector<double> own_f64;
  std::vector<uint32_t> own_codes;
  std::vector<Value> own_vals;
  std::vector<uint64_t> own_nulls;
  std::shared_ptr<const Dictionary> own_dict;

  void SetNull(size_t i) {
    if (own_nulls.empty()) own_nulls.assign((length + 63) / 64, 0);
    own_nulls[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Seal();

  /// Shallow borrow: copies the element views, not the owned storage.
  /// Valid only while `src` (and whatever it borrows from) is alive.
  static ColumnVector View(const ColumnVector& src);
  /// Broadcast literal (all `n` elements equal `v`; NULL yields an
  /// all-null vector of type kNull).
  static ColumnVector Constant(const Value& v, size_t n);
  /// Dense copy of `src` at positions `sel[0..n)`.
  static ColumnVector Gather(const ColumnVector& src, const uint32_t* sel,
                             size_t n);

  ColumnVector() = default;
  ColumnVector(ColumnVector&&) = default;
  ColumnVector& operator=(ColumnVector&&) = default;
  ColumnVector(const ColumnVector&) = delete;
  ColumnVector& operator=(const ColumnVector&) = delete;
};

/// A window of rows flowing between plan operators.
struct Batch {
  size_t num_rows = 0;

  // Columnar mode: one vector per output column.
  std::vector<ColumnVector> cols;

  // Row mode (pipeline-breaker output): rows live in own_rows, or in
  // borrowed storage when ext_rows is set.
  bool row_mode = false;
  std::vector<Row> own_rows;
  const std::vector<Row>* ext_rows = nullptr;

  // Selection: ascending indices of live rows; all rows live otherwise.
  bool has_sel = false;
  std::vector<uint32_t> sel;

  bool columnar() const { return !row_mode; }
  const std::vector<Row>& RowData() const {
    return ext_rows != nullptr ? *ext_rows : own_rows;
  }
  size_t ActiveRows() const { return has_sel ? sel.size() : num_rows; }
  size_t RowAt(size_t k) const { return has_sel ? sel[k] : k; }

  Value CellValue(size_t row, size_t col) const {
    return row_mode ? RowData()[row][col] : cols[col].GetValue(row);
  }
  /// Materializes one logical row (all `width` columns).
  Row MaterializeRow(size_t row, size_t width) const;

  /// Shallow borrow of `src`'s columns (or row storage) without the
  /// selection; callers install their own.
  static Batch ViewOf(const Batch& src);
};

/// Vectorized expression evaluation (implemented in expr.cc). Evaluates
/// `e` for the `n` rows `sel[0..n)` of `batch` (all rows [0, n) when
/// `sel` is null) and returns a dense vector of length `n`. Semantics
/// match Expr::Eval row by row, including evaluation order of errors.
util::StatusOr<ColumnVector> EvalBatch(const Expr& e, const Batch& batch,
                                       const Schema& schema,
                                       const uint32_t* sel, size_t n);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_BATCH_H_
