#include "statsdb/plan.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "statsdb/database.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/summary_stats.h"

namespace ff {
namespace statsdb {

// ------------------------------------------------------- shared helpers

void AggState::Add(const Value& v) {
  if (v.is_null()) return;
  ++count;
  if (v.type() == DataType::kInt64 || v.type() == DataType::kDouble) {
    sum += *v.AsDouble();
    if (v.type() == DataType::kDouble) sum_is_double = true;
    if (keep_values) values.push_back(*v.AsDouble());
  }
  if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
  if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
}

void AggState::AddInt64(int64_t v) {
  ++count;
  sum += static_cast<double>(v);
  if (keep_values) values.push_back(static_cast<double>(v));
  if (min_v.is_null() || v < min_v.int64_value()) min_v = Value::Int64(v);
  if (max_v.is_null() || v > max_v.int64_value()) max_v = Value::Int64(v);
}

void AggState::AddDouble(double v) {
  ++count;
  sum += v;
  sum_is_double = true;
  if (keep_values) values.push_back(v);
  // Comparisons spelled to match Value::Compare's NaN behavior (NaN is
  // never a new min but always a new max).
  if (min_v.is_null() || v < min_v.double_value()) min_v = Value::Double(v);
  if (max_v.is_null() || !(v <= max_v.double_value())) {
    max_v = Value::Double(v);
  }
}

std::vector<AggState> NewAggStates(const std::vector<AggSpec>& aggs) {
  std::vector<AggState> states(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].func == AggFunc::kP95) states[a].keep_values = true;
  }
  return states;
}

util::StatusOr<Schema> AggOutputSchema(
    const Schema& in, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& aggs, std::vector<size_t>* key_cols) {
  for (const auto& g : group_by) {
    FF_ASSIGN_OR_RETURN(size_t i, in.IndexOf(g));
    key_cols->push_back(i);
  }

  // Output schema: group-by columns, then aggregates.
  std::vector<Column> out_cols;
  for (size_t i : *key_cols) out_cols.push_back(in.column(i));
  for (const auto& a : aggs) {
    DataType t = DataType::kNull;
    switch (a.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        t = DataType::kInt64;
        break;
      case AggFunc::kAvg:
        t = DataType::kDouble;
        break;
      case AggFunc::kSum: {
        FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in));
        if (at != DataType::kInt64 && at != DataType::kDouble &&
            at != DataType::kNull) {
          return util::Status::InvalidArgument("SUM requires numeric");
        }
        t = at == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in));
        t = at == DataType::kNull ? DataType::kString : at;
        break;
      }
      case AggFunc::kP95: {
        FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in));
        if (at != DataType::kInt64 && at != DataType::kDouble &&
            at != DataType::kNull) {
          return util::Status::InvalidArgument("P95 requires numeric");
        }
        t = DataType::kDouble;
        break;
      }
    }
    std::string name = a.alias;
    if (name.empty()) {
      name = a.func == AggFunc::kCountStar
                 ? "count"
                 : util::ToLower(AggFuncName(a.func)) + "_" +
                       a.arg->ToString();
    }
    out_cols.push_back(Column{name, t});
    if (a.func == AggFunc::kAvg) {
      FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in));
      if (at != DataType::kInt64 && at != DataType::kDouble &&
          at != DataType::kNull) {
        return util::Status::InvalidArgument("AVG requires numeric");
      }
    }
  }
  return Schema(std::move(out_cols));
}

Row FinalizeAggRow(const Row& key, const std::vector<AggState>& states,
                   const std::vector<AggSpec>& aggs,
                   const Schema& out_schema) {
  Row row = key;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggState& st = states[a];
    switch (aggs[a].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        row.push_back(Value::Int64(static_cast<int64_t>(st.count)));
        break;
      case AggFunc::kSum:
        if (st.count == 0) {
          row.push_back(Value::Null());
        } else if (st.sum_is_double || out_schema.column(row.size()).type ==
                                           DataType::kDouble) {
          row.push_back(Value::Double(st.sum));
        } else {
          row.push_back(Value::Int64(static_cast<int64_t>(st.sum)));
        }
        break;
      case AggFunc::kAvg:
        row.push_back(st.count == 0
                          ? Value::Null()
                          : Value::Double(st.sum /
                                          static_cast<double>(st.count)));
        break;
      case AggFunc::kMin:
        row.push_back(st.min_v);
        break;
      case AggFunc::kMax:
        row.push_back(st.max_v);
        break;
      case AggFunc::kP95: {
        if (st.values.empty()) {
          row.push_back(Value::Null());
          break;
        }
        auto p = util::Percentile(st.values, 95.0);
        row.push_back(p.ok() ? Value::Double(*p) : Value::Null());
        break;
      }
    }
  }
  return row;
}

Schema JoinOutputSchema(const Schema& l, const Schema& r) {
  std::vector<Column> cols = l.columns();
  for (const auto& c : r.columns()) {
    std::string name = c.name;
    bool clash = false;
    for (const auto& existing : cols) {
      if (util::EqualsIgnoreCase(existing.name, name)) {
        clash = true;
        break;
      }
    }
    cols.push_back(Column{clash ? name + "_r" : name, c.type});
  }
  return Schema(std::move(cols));
}

namespace {

/// Applies WHERE semantics of `predicate` to `rs` in place (used by both
/// FilterNode and a scan with a pushed-down predicate).
util::Status FilterRows(const ExprPtr& predicate, ResultSet* rs) {
  FF_ASSIGN_OR_RETURN(DataType t, predicate->ResultType(rs->schema));
  if (t != DataType::kBool && t != DataType::kNull) {
    return util::Status::InvalidArgument(
        "WHERE predicate must be boolean: " + predicate->ToString());
  }
  std::vector<Row> kept;
  for (auto& row : rs->rows) {
    FF_ASSIGN_OR_RETURN(Value v, predicate->Eval(row, rs->schema));
    if (!v.is_null() && v.bool_value()) kept.push_back(std::move(row));
  }
  rs->rows = std::move(kept);
  return util::Status::OK();
}

}  // namespace

// ------------------------------------------------------------ the nodes

util::StatusOr<ResultSet> ScanNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(const Table* t, db.table(table));
  ResultSet rs{t->schema(), t->rows()};
  // The index annotation is a pure access-path hint: its conjunct stays
  // in the predicate, so applying the predicate alone is exact.
  if (predicate != nullptr) FF_RETURN_IF_ERROR(FilterRows(predicate, &rs));
  return rs;
}

std::string ScanNode::ToString() const {
  std::string out = "Scan(" + table;
  if (predicate != nullptr) {
    out += ", pred=" + predicate->ToString();
    // Conjuncts of the shape `column op literal` drive zone-map pruning.
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(predicate, &conjuncts);
    std::vector<std::string> prunable;
    for (const auto& c : conjuncts) {
      auto sp = MatchSimplePredicate(*c);
      if (!sp.has_value()) continue;
      if (std::find(prunable.begin(), prunable.end(), sp->column) ==
          prunable.end()) {
        prunable.push_back(sp->column);
      }
    }
    if (!prunable.empty()) out += ", prune=[" + util::Join(prunable, ", ") + "]";
  }
  if (!index_column.empty()) out += ", index=" + index_column;
  return out + ")";
}

util::StatusOr<ResultSet> FilterNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));
  FF_RETURN_IF_ERROR(FilterRows(predicate, &in));
  return in;
}

std::string FilterNode::ToString() const {
  return "Filter(" + predicate->ToString() + ", " + input->ToString() + ")";
}

util::StatusOr<ResultSet> ProjectNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));
  std::vector<Column> cols;
  for (const auto& item : items) {
    FF_ASSIGN_OR_RETURN(DataType t, item.expr->ResultType(in.schema));
    std::string name = item.alias.empty() ? item.expr->ToString() : item.alias;
    // NULL-typed output columns (e.g. literal NULL) degrade to string.
    cols.push_back(
        Column{name, t == DataType::kNull ? DataType::kString : t});
  }
  ResultSet out{Schema(std::move(cols)), {}};
  out.rows.reserve(in.rows.size());
  for (const auto& row : in.rows) {
    Row projected;
    projected.reserve(items.size());
    for (const auto& item : items) {
      FF_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row, in.schema));
      projected.push_back(std::move(v));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

std::string ProjectNode::ToString() const {
  std::vector<std::string> parts;
  for (const auto& item : items) {
    parts.push_back(item.expr->ToString() +
                    (item.alias.empty() ? "" : " AS " + item.alias));
  }
  return "Project([" + util::Join(parts, ", ") + "], " + input->ToString() +
         ")";
}

util::StatusOr<ResultSet> AggregateNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));

  std::vector<size_t> key_cols;
  FF_ASSIGN_OR_RETURN(Schema out_schema,
                      AggOutputSchema(in.schema, group_by, aggs, &key_cols));

  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Group> groups;

  for (const auto& row : in.rows) {
    Row key;
    key.reserve(key_cols.size());
    for (size_t i : key_cols) key.push_back(row[i]);
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{key, NewAggStates(aggs)});
    }
    Group& g = groups[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].func == AggFunc::kCountStar) {
        ++g.states[a].count;
      } else {
        FF_ASSIGN_OR_RETURN(Value v, aggs[a].arg->Eval(row, in.schema));
        g.states[a].Add(v);
      }
    }
  }

  // Global aggregate over an empty input still yields one row.
  if (groups.empty() && key_cols.empty()) {
    groups.push_back(Group{{}, NewAggStates(aggs)});
  }

  ResultSet out{std::move(out_schema), {}};
  for (const auto& g : groups) {
    out.rows.push_back(FinalizeAggRow(g.key, g.states, aggs, out.schema));
  }
  return out;
}

std::string AggregateNode::ToString() const {
  std::vector<std::string> parts;
  for (const auto& a : aggs) {
    parts.push_back(std::string(AggFuncName(a.func)) +
                    (a.arg ? "(" + a.arg->ToString() + ")" : ""));
  }
  return "Aggregate(by=[" + util::Join(group_by, ", ") + "], aggs=[" +
         util::Join(parts, ", ") + "], " + input->ToString() + ")";
}

util::StatusOr<ResultSet> SortNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));
  std::vector<size_t> cols;
  for (const auto& k : keys) {
    FF_ASSIGN_OR_RETURN(size_t i, in.schema.IndexOf(k.column));
    cols.push_back(i);
  }
  // With a planner top-k hint (ORDER BY under LIMIT), keep a bounded
  // heap of the first `limit_hint` rows in sort order instead of sorting
  // everything: O(n log k) and k rows of output. Ties break by original
  // row index, so the result is exactly the stable_sort prefix and the
  // reference and vectorized engines stay bit-for-bit comparable.
  if (limit_hint > 0 && limit_hint < in.rows.size()) {
    auto before = [&](size_t a, size_t b) {
      for (size_t k = 0; k < cols.size(); ++k) {
        int c = in.rows[a][cols[k]].Compare(in.rows[b][cols[k]]);
        if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
      }
      return a < b;
    };
    // Max-heap under `before`: the top is the worst survivor, evicted
    // whenever a row that sorts earlier arrives.
    std::priority_queue<size_t, std::vector<size_t>, decltype(before)> heap(
        before);
    for (size_t i = 0; i < in.rows.size(); ++i) {
      heap.push(i);
      if (heap.size() > limit_hint) heap.pop();
    }
    std::vector<size_t> order(heap.size());
    for (size_t j = order.size(); j-- > 0;) {
      order[j] = heap.top();
      heap.pop();
    }
    ResultSet out{in.schema, {}};
    out.rows.reserve(order.size());
    for (size_t i : order) out.rows.push_back(std::move(in.rows[i]));
    return out;
  }
  std::stable_sort(in.rows.begin(), in.rows.end(),
                   [&](const Row& a, const Row& b) {
                     for (size_t k = 0; k < cols.size(); ++k) {
                       int c = a[cols[k]].Compare(b[cols[k]]);
                       if (c != 0) {
                         return keys[k].ascending ? c < 0 : c > 0;
                       }
                     }
                     return false;
                   });
  return in;
}

std::string SortNode::ToString() const {
  std::vector<std::string> parts;
  for (const auto& k : keys) {
    parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
  }
  std::string top =
      limit_hint > 0 ? util::StrFormat("top=%zu, ", limit_hint) : "";
  return "Sort([" + util::Join(parts, ", ") + "], " + top +
         input->ToString() + ")";
}

util::StatusOr<ResultSet> LimitNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));
  ResultSet out{in.schema, {}};
  for (size_t i = offset; i < in.rows.size() && out.rows.size() < limit;
       ++i) {
    out.rows.push_back(std::move(in.rows[i]));
  }
  return out;
}

std::string LimitNode::ToString() const {
  return util::StrFormat("Limit(%zu, offset=%zu, ", limit, offset) +
         input->ToString() + ")";
}

util::StatusOr<ResultSet> DistinctNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet in, input->Execute(db));
  ResultSet out{in.schema, {}};
  std::unordered_set<Row, RowHash, RowEq> seen;
  for (auto& row : in.rows) {
    if (seen.insert(row).second) out.rows.push_back(std::move(row));
  }
  return out;
}

std::string DistinctNode::ToString() const {
  return "Distinct(" + input->ToString() + ")";
}

util::StatusOr<ResultSet> HashJoinNode::Execute(const Database& db) const {
  FF_ASSIGN_OR_RETURN(ResultSet l, left->Execute(db));
  FF_ASSIGN_OR_RETURN(ResultSet r, right->Execute(db));
  FF_ASSIGN_OR_RETURN(size_t lc, l.schema.IndexOf(left_col));
  FF_ASSIGN_OR_RETURN(size_t rc, r.schema.IndexOf(right_col));

  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };
  std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq> build;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    if (r.rows[i][rc].is_null()) continue;  // NULL never joins
    build[r.rows[i][rc]].push_back(i);
  }

  ResultSet out{JoinOutputSchema(l.schema, r.schema), {}};
  for (const auto& lrow : l.rows) {
    if (lrow[lc].is_null()) continue;
    auto it = build.find(lrow[lc]);
    if (it == build.end()) continue;
    for (size_t ri : it->second) {
      Row joined = lrow;
      joined.insert(joined.end(), r.rows[ri].begin(), r.rows[ri].end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

std::string HashJoinNode::ToString() const {
  return "HashJoin(" + left_col + " = " + right_col + ", " +
         left->ToString() + ", " + right->ToString() + ")";
}

util::StatusOr<ResultSet> MaterializedNode::Execute(const Database&) const {
  return ResultSet{schema, *rows};
}

std::string MaterializedNode::ToString() const {
  return "Materialized(" + std::to_string(rows->size()) + " rows)";
}

// ------------------------------------------------------ schema inference

util::StatusOr<Schema> InferSchema(const PlanNode& plan, const Database& db) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& n = static_cast<const ScanNode&>(plan);
      FF_ASSIGN_OR_RETURN(const Table* t, db.table(n.table));
      return t->schema();
    }
    case PlanKind::kFilter:
      return InferSchema(*static_cast<const FilterNode&>(plan).input, db);
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      FF_ASSIGN_OR_RETURN(Schema in, InferSchema(*n.input, db));
      std::vector<Column> cols;
      for (const auto& item : n.items) {
        FF_ASSIGN_OR_RETURN(DataType t, item.expr->ResultType(in));
        std::string name =
            item.alias.empty() ? item.expr->ToString() : item.alias;
        cols.push_back(
            Column{name, t == DataType::kNull ? DataType::kString : t});
      }
      return Schema(std::move(cols));
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(plan);
      FF_ASSIGN_OR_RETURN(Schema in, InferSchema(*n.input, db));
      std::vector<size_t> key_cols;
      return AggOutputSchema(in, n.group_by, n.aggs, &key_cols);
    }
    case PlanKind::kSort:
      return InferSchema(*static_cast<const SortNode&>(plan).input, db);
    case PlanKind::kLimit:
      return InferSchema(*static_cast<const LimitNode&>(plan).input, db);
    case PlanKind::kDistinct:
      return InferSchema(*static_cast<const DistinctNode&>(plan).input, db);
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      FF_ASSIGN_OR_RETURN(Schema l, InferSchema(*n.left, db));
      FF_ASSIGN_OR_RETURN(Schema r, InferSchema(*n.right, db));
      return JoinOutputSchema(l, r);
    }
    case PlanKind::kMaterialized:
      return static_cast<const MaterializedNode&>(plan).schema;
  }
  return util::Status::Internal("unhandled plan kind");
}

// -------------------------------------------------------- constructors

PlanPtr MakeScan(std::string table) {
  return std::make_shared<ScanNode>(std::move(table));
}
PlanPtr MakeFilter(PlanPtr input, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(input), std::move(predicate));
}
PlanPtr MakeProject(PlanPtr input, std::vector<ProjectItem> items) {
  return std::make_shared<ProjectNode>(std::move(input), std::move(items));
}
PlanPtr MakeAggregate(PlanPtr input, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs) {
  return std::make_shared<AggregateNode>(std::move(input),
                                         std::move(group_by),
                                         std::move(aggs));
}
PlanPtr MakeSort(PlanPtr input, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(input), std::move(keys));
}
PlanPtr MakeLimit(PlanPtr input, size_t limit, size_t offset) {
  return std::make_shared<LimitNode>(std::move(input), limit, offset);
}
PlanPtr MakeDistinct(PlanPtr input) {
  return std::make_shared<DistinctNode>(std::move(input));
}
PlanPtr MakeHashJoin(PlanPtr left, PlanPtr right, std::string left_col,
                     std::string right_col) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_col),
                                        std::move(right_col));
}

}  // namespace statsdb
}  // namespace ff
