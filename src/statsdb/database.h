// Database: the catalog of statsdb tables plus the SQL entry point.

#ifndef FF_STATSDB_DATABASE_H_
#define FF_STATSDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statsdb/query.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {

/// A named collection of tables. Not thread-safe (the factory drives it
/// from the single-threaded simulation loop, as the paper's daily Perl
/// crawl did).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; AlreadyExists when the name is taken.
  util::StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Drops a table; NotFound when absent.
  util::Status DropTable(const std::string& name);

  util::StatusOr<Table*> table(const std::string& name);
  util::StatusOr<const Table*> table(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Executes a SQL statement. SELECT returns rows; CREATE TABLE and
  /// INSERT return an empty ResultSet (INSERT's schema carries a single
  /// "rows_inserted" column).
  util::StatusOr<ResultSet> Sql(const std::string& statement);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_DATABASE_H_
