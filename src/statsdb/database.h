// Database: the catalog of statsdb tables plus the SQL entry point.

#ifndef FF_STATSDB_DATABASE_H_
#define FF_STATSDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statsdb/parallel_exec.h"
#include "statsdb/query.h"
#include "statsdb/table.h"

namespace ff {
namespace parallel {
class ThreadPool;
}  // namespace parallel

namespace statsdb {

/// A named collection of tables. Not thread-safe (the factory drives it
/// from the single-threaded simulation loop, as the paper's daily Perl
/// crawl did); parallel query execution fans out internally but the
/// coordinating call still comes from one thread at a time.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; AlreadyExists when the name is taken.
  util::StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Drops a table; NotFound when absent.
  util::Status DropTable(const std::string& name);

  util::StatusOr<Table*> table(const std::string& name);
  util::StatusOr<const Table*> table(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Executes a SQL statement. SELECT returns rows; CREATE TABLE and
  /// INSERT return an empty ResultSet (INSERT's schema carries a single
  /// "rows_inserted" column).
  util::StatusOr<ResultSet> Sql(const std::string& statement);

  /// Morsel-parallel execution knobs (seeded from FF_STATSDB_PARALLEL;
  /// see parallel_exec.h). Queries issued through ExecutePlan/Sql
  /// consult this config.
  const ParallelConfig& parallel_config() const { return parallel_config_; }
  void set_parallel_config(ParallelConfig config) {
    parallel_config_ = std::move(config);
  }

  /// The pool parallel queries run on when the config names no external
  /// one: lazily created at the requested size, recreated when the size
  /// changes, and never created at all while queries stay serial.
  parallel::ThreadPool* parallel_pool(size_t threads) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  ParallelConfig parallel_config_;
  mutable std::unique_ptr<parallel::ThreadPool> query_pool_;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_DATABASE_H_
