// Database: the catalog of statsdb tables plus the SQL entry point.

#ifndef FF_STATSDB_DATABASE_H_
#define FF_STATSDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statsdb/cache.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/query.h"
#include "statsdb/sql.h"
#include "statsdb/table.h"

namespace ff {
namespace parallel {
class ThreadPool;
}  // namespace parallel

namespace statsdb {

/// A named collection of tables. Not thread-safe (the factory drives it
/// from the single-threaded simulation loop, as the paper's daily Perl
/// crawl did); parallel query execution fans out internally but the
/// coordinating call still comes from one thread at a time.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; AlreadyExists when the name is taken.
  util::StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Drops a table; NotFound when absent.
  util::Status DropTable(const std::string& name);

  util::StatusOr<Table*> table(const std::string& name);
  util::StatusOr<const Table*> table(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Executes a SQL statement. SELECT returns rows; CREATE TABLE and
  /// INSERT return an empty ResultSet (INSERT's schema carries a single
  /// "rows_inserted" column).
  util::StatusOr<ResultSet> Sql(const std::string& statement);

  /// Compiles a SELECT (the only statement kind worth preparing) with
  /// `?` placeholders into a reusable statement: parse + plan happen
  /// once, Execute(params) only binds and runs. See sql.h.
  util::StatusOr<PreparedStatement> Prepare(const std::string& statement);

  /// Morsel-parallel execution knobs (seeded from FF_STATSDB_PARALLEL;
  /// see parallel_exec.h). Queries issued through ExecutePlan/Sql
  /// consult this config.
  const ParallelConfig& parallel_config() const { return parallel_config_; }
  void set_parallel_config(ParallelConfig config) {
    parallel_config_ = std::move(config);
  }

  /// The pool parallel queries run on when the config names no external
  /// one: lazily created at the requested size, recreated when the size
  /// changes, and never created at all while queries stay serial.
  parallel::ThreadPool* parallel_pool(size_t threads) const;

  /// Query cache (plan + result tiers, cache.h), seeded from
  /// FF_STATSDB_CACHE. Mutable through const because execution paths
  /// take a const Database&; the cache is internally synchronized.
  QueryCache& cache() const { return *cache_; }
  CacheConfig cache_config() const { return cache_->config(); }
  /// Reconfigures the cache in place; entries persist across config
  /// swaps (QueryCache::set_config), so toggling modes stays warm.
  void set_cache_config(CacheConfig config) {
    cache_->set_config(std::move(config));
  }

  /// Catalog epoch: bumped by CreateTable/DropTable. Plan-cache entries
  /// pin it, so any catalog change invalidates every cached plan.
  uint64_t catalog_epoch() const { return catalog_epoch_; }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  ParallelConfig parallel_config_;
  mutable std::unique_ptr<parallel::ThreadPool> query_pool_;
  std::unique_ptr<QueryCache> cache_;
  uint64_t catalog_epoch_ = 0;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_DATABASE_H_
