#include "statsdb/expr.h"

#include <cmath>

#include "util/strings.h"

namespace ff {
namespace statsdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  util::StatusOr<Value> Eval(const Row&, const Schema&) const override {
    return value_;
  }
  util::StatusOr<DataType> ResultType(const Schema&) const override {
    return value_.type();
  }
  std::string ToString() const override {
    if (value_.type() == DataType::kString) {
      return "'" + value_.ToString() + "'";
    }
    if (value_.is_null()) return "NULL";
    return value_.ToString();
  }

 private:
  Value value_;
};

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name_));
    return row[i];
  }
  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name_));
    return schema.column(i).type;
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
    switch (op_) {
      case UnaryOp::kIsNull:
        return Value::Bool(v.is_null());
      case UnaryOp::kIsNotNull:
        return Value::Bool(!v.is_null());
      case UnaryOp::kNot: {
        if (v.is_null()) return Value::Null();
        if (v.type() != DataType::kBool) {
          return util::Status::InvalidArgument("NOT requires bool");
        }
        return Value::Bool(!v.bool_value());
      }
      case UnaryOp::kNeg: {
        if (v.is_null()) return Value::Null();
        if (v.type() == DataType::kInt64) {
          return Value::Int64(-v.int64_value());
        }
        if (v.type() == DataType::kDouble) {
          return Value::Double(-v.double_value());
        }
        return util::Status::InvalidArgument("negation requires numeric");
      }
    }
    return util::Status::Internal("unhandled unary op");
  }

  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(DataType t, operand_->ResultType(schema));
    switch (op_) {
      case UnaryOp::kIsNull:
      case UnaryOp::kIsNotNull:
        return DataType::kBool;
      case UnaryOp::kNot:
        if (t != DataType::kBool && t != DataType::kNull) {
          return util::Status::InvalidArgument("NOT requires bool");
        }
        return DataType::kBool;
      case UnaryOp::kNeg:
        if (!IsNumeric(t) && t != DataType::kNull) {
          return util::Status::InvalidArgument("negation requires numeric");
        }
        return t;
    }
    return util::Status::Internal("unhandled unary op");
  }

  std::string ToString() const override {
    switch (op_) {
      case UnaryOp::kIsNull:
        return "(" + operand_->ToString() + " IS NULL)";
      case UnaryOp::kIsNotNull:
        return "(" + operand_->ToString() + " IS NOT NULL)";
      case UnaryOp::kNot:
        return "(NOT " + operand_->ToString() + ")";
      case UnaryOp::kNeg:
        return "(-" + operand_->ToString() + ")";
    }
    return "?";
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    // Kleene AND/OR must not fail just because one side is NULL.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      return EvalLogical(row, schema);
    }
    FF_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    FF_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    if (a.is_null() || b.is_null()) return Value::Null();
    switch (op_) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return EvalComparison(a, b);
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        return EvalArithmetic(a, b);
      case BinaryOp::kLike: {
        if (a.type() != DataType::kString ||
            b.type() != DataType::kString) {
          return util::Status::InvalidArgument("LIKE requires strings");
        }
        return Value::Bool(LikeMatch(a.string_value(), b.string_value()));
      }
      default:
        return util::Status::Internal("unhandled binary op");
    }
  }

  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(DataType ta, lhs_->ResultType(schema));
    FF_ASSIGN_OR_RETURN(DataType tb, rhs_->ResultType(schema));
    auto type_ok = [&](auto pred) {
      return (pred(ta) || ta == DataType::kNull) &&
             (pred(tb) || tb == DataType::kNull);
    };
    switch (op_) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        bool comparable =
            ta == DataType::kNull || tb == DataType::kNull || ta == tb ||
            (IsNumeric(ta) && IsNumeric(tb));
        if (!comparable) {
          return util::Status::InvalidArgument(
              util::StrFormat("cannot compare %s with %s",
                              DataTypeName(ta), DataTypeName(tb)));
        }
        return DataType::kBool;
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod:
        if (!type_ok(IsNumeric)) {
          return util::Status::InvalidArgument("arithmetic requires numeric");
        }
        if (ta == DataType::kDouble || tb == DataType::kDouble) {
          return DataType::kDouble;
        }
        return DataType::kInt64;
      case BinaryOp::kDiv:
        if (!type_ok(IsNumeric)) {
          return util::Status::InvalidArgument("arithmetic requires numeric");
        }
        return DataType::kDouble;  // SQL-ish: '/' always returns double here
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        if (!type_ok([](DataType t) { return t == DataType::kBool; })) {
          return util::Status::InvalidArgument("AND/OR require bool");
        }
        return DataType::kBool;
      case BinaryOp::kLike:
        if (!type_ok([](DataType t) { return t == DataType::kString; })) {
          return util::Status::InvalidArgument("LIKE requires strings");
        }
        return DataType::kBool;
    }
    return util::Status::Internal("unhandled binary op");
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  util::StatusOr<Value> EvalLogical(const Row& row,
                                    const Schema& schema) const {
    FF_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    FF_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    auto as_tri = [](const Value& v) -> util::StatusOr<int> {
      if (v.is_null()) return -1;  // unknown
      if (v.type() != DataType::kBool) {
        return util::Status::InvalidArgument("AND/OR require bool");
      }
      return v.bool_value() ? 1 : 0;
    };
    FF_ASSIGN_OR_RETURN(int ta, as_tri(a));
    FF_ASSIGN_OR_RETURN(int tb, as_tri(b));
    if (op_ == BinaryOp::kAnd) {
      if (ta == 0 || tb == 0) return Value::Bool(false);
      if (ta == -1 || tb == -1) return Value::Null();
      return Value::Bool(true);
    }
    // OR
    if (ta == 1 || tb == 1) return Value::Bool(true);
    if (ta == -1 || tb == -1) return Value::Null();
    return Value::Bool(false);
  }

  util::StatusOr<Value> EvalComparison(const Value& a,
                                       const Value& b) const {
    bool comparable = a.type() == b.type() ||
                      (IsNumeric(a.type()) && IsNumeric(b.type()));
    if (!comparable) {
      return util::Status::InvalidArgument(
          util::StrFormat("cannot compare %s with %s",
                          DataTypeName(a.type()), DataTypeName(b.type())));
    }
    int c = a.Compare(b);
    switch (op_) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        return util::Status::Internal("not a comparison");
    }
  }

  util::StatusOr<Value> EvalArithmetic(const Value& a,
                                       const Value& b) const {
    if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
      return util::Status::InvalidArgument("arithmetic requires numeric");
    }
    bool both_int = a.type() == DataType::kInt64 &&
                    b.type() == DataType::kInt64 && op_ != BinaryOp::kDiv;
    if (both_int) {
      int64_t x = a.int64_value(), y = b.int64_value();
      switch (op_) {
        case BinaryOp::kAdd:
          return Value::Int64(x + y);
        case BinaryOp::kSub:
          return Value::Int64(x - y);
        case BinaryOp::kMul:
          return Value::Int64(x * y);
        case BinaryOp::kMod:
          if (y == 0) {
            return util::Status::InvalidArgument("modulo by zero");
          }
          return Value::Int64(x % y);
        default:
          break;
      }
    }
    double x = *a.AsDouble(), y = *b.AsDouble();
    switch (op_) {
      case BinaryOp::kAdd:
        return Value::Double(x + y);
      case BinaryOp::kSub:
        return Value::Double(x - y);
      case BinaryOp::kMul:
        return Value::Double(x * y);
      case BinaryOp::kDiv:
        if (y == 0.0) {
          return util::Status::InvalidArgument("division by zero");
        }
        return Value::Double(x / y);
      case BinaryOp::kMod:
        if (y == 0.0) {
          return util::Status::InvalidArgument("modulo by zero");
        }
        return Value::Double(std::fmod(x, y));
      default:
        return util::Status::Internal("not arithmetic");
    }
  }

  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }
ExprPtr LitNull() { return Lit(Value::Null()); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr Unary(UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExpr>(op, std::move(operand));
}
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return Unary(UnaryOp::kNot, std::move(a)); }
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Like(ExprPtr a, ExprPtr pattern) {
  return Binary(BinaryOp::kLike, std::move(a), std::move(pattern));
}
ExprPtr IsNull(ExprPtr a) { return Unary(UnaryOp::kIsNull, std::move(a)); }
ExprPtr IsNotNull(ExprPtr a) {
  return Unary(UnaryOp::kIsNotNull, std::move(a));
}

ExprPtr In(ExprPtr a, std::vector<ExprPtr> candidates) {
  if (candidates.empty()) return LitBool(false);
  ExprPtr out = Eq(a, std::move(candidates[0]));
  for (size_t i = 1; i < candidates.size(); ++i) {
    out = Or(std::move(out), Eq(a, std::move(candidates[i])));
  }
  return out;
}

ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi) {
  return And(Le(std::move(lo), a), Le(a, std::move(hi)));
}

}  // namespace statsdb
}  // namespace ff
