#include "statsdb/expr.h"

#include <cmath>

#include "statsdb/batch.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

// ------------------------------------------------------ scalar semantics
//
// The single source of truth for operator behavior. Expr::Eval and the
// vectorized kernels in EvalBatch both bottom out here (the kernels only
// fast-path cases whose outcome provably matches these functions).

util::StatusOr<Value> ApplyUnaryScalar(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
    case UnaryOp::kNot: {
      if (v.is_null()) return Value::Null();
      if (v.type() != DataType::kBool) {
        return util::Status::InvalidArgument("NOT requires bool");
      }
      return Value::Bool(!v.bool_value());
    }
    case UnaryOp::kNeg: {
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInt64) {
        return Value::Int64(-v.int64_value());
      }
      if (v.type() == DataType::kDouble) {
        return Value::Double(-v.double_value());
      }
      return util::Status::InvalidArgument("negation requires numeric");
    }
  }
  return util::Status::Internal("unhandled unary op");
}

util::StatusOr<Value> ApplyComparison(BinaryOp op, const Value& a,
                                      const Value& b) {
  bool comparable = a.type() == b.type() ||
                    (IsNumeric(a.type()) && IsNumeric(b.type()));
  if (!comparable) {
    return util::Status::InvalidArgument(
        util::StrFormat("cannot compare %s with %s",
                        DataTypeName(a.type()), DataTypeName(b.type())));
  }
  int c = a.Compare(b);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return util::Status::Internal("not a comparison");
  }
}

util::StatusOr<Value> ApplyArithmetic(BinaryOp op, const Value& a,
                                      const Value& b) {
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return util::Status::InvalidArgument("arithmetic requires numeric");
  }
  bool both_int = a.type() == DataType::kInt64 &&
                  b.type() == DataType::kInt64 && op != BinaryOp::kDiv;
  if (both_int) {
    int64_t x = a.int64_value(), y = b.int64_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(x + y);
      case BinaryOp::kSub:
        return Value::Int64(x - y);
      case BinaryOp::kMul:
        return Value::Int64(x * y);
      case BinaryOp::kMod:
        if (y == 0) {
          return util::Status::InvalidArgument("modulo by zero");
        }
        return Value::Int64(x % y);
      default:
        break;
    }
  }
  double x = *a.AsDouble(), y = *b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) {
        return util::Status::InvalidArgument("division by zero");
      }
      return Value::Double(x / y);
    case BinaryOp::kMod:
      if (y == 0.0) {
        return util::Status::InvalidArgument("modulo by zero");
      }
      return Value::Double(std::fmod(x, y));
    default:
      return util::Status::Internal("not arithmetic");
  }
}

/// Non-logical binary ops: NULL propagation, then dispatch.
util::StatusOr<Value> ApplyBinaryScalar(BinaryOp op, const Value& a,
                                        const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return ApplyComparison(op, a, b);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return ApplyArithmetic(op, a, b);
    case BinaryOp::kLike: {
      if (a.type() != DataType::kString ||
          b.type() != DataType::kString) {
        return util::Status::InvalidArgument("LIKE requires strings");
      }
      return Value::Bool(LikeMatch(a.string_value(), b.string_value()));
    }
    default:
      return util::Status::Internal("unhandled binary op");
  }
}

/// Kleene AND/OR over already-evaluated operands (both sides are always
/// evaluated; there is deliberately no short-circuit, so data-dependent
/// evaluation errors surface identically everywhere).
util::StatusOr<Value> ApplyLogicalScalar(BinaryOp op, const Value& a,
                                         const Value& b) {
  auto as_tri = [](const Value& v) -> util::StatusOr<int> {
    if (v.is_null()) return -1;  // unknown
    if (v.type() != DataType::kBool) {
      return util::Status::InvalidArgument("AND/OR require bool");
    }
    return v.bool_value() ? 1 : 0;
  };
  FF_ASSIGN_OR_RETURN(int ta, as_tri(a));
  FF_ASSIGN_OR_RETURN(int tb, as_tri(b));
  if (op == BinaryOp::kAnd) {
    if (ta == 0 || tb == 0) return Value::Bool(false);
    if (ta == -1 || tb == -1) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (ta == 1 || tb == 1) return Value::Bool(true);
  if (ta == -1 || tb == -1) return Value::Null();
  return Value::Bool(false);
}

// ------------------------------------------------------------ expr nodes

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  util::StatusOr<Value> Eval(const Row&, const Schema&) const override {
    return value_;
  }
  util::StatusOr<DataType> ResultType(const Schema&) const override {
    return value_.type();
  }
  std::string ToString() const override {
    if (value_.type() == DataType::kString) {
      return "'" + value_.ToString() + "'";
    }
    if (value_.is_null()) return "NULL";
    return value_.ToString();
  }
  Kind kind() const override { return Kind::kLiteral; }
  const Value* literal() const override { return &value_; }

 private:
  Value value_;
};

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name_));
    return row[i];
  }
  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name_));
    return schema.column(i).type;
  }
  std::string ToString() const override { return name_; }
  Kind kind() const override { return Kind::kColumn; }
  const std::string* column() const override { return &name_; }

 private:
  std::string name_;
};

class ParamExpr : public Expr {
 public:
  ParamExpr(size_t index, std::shared_ptr<const ParamSlot> slot)
      : index_(index), slot_(std::move(slot)) {}

  util::StatusOr<Value> Eval(const Row&, const Schema&) const override {
    if (!slot_->bound) {
      return util::Status::InvalidArgument("parameter " + ToString() +
                                           " is unbound");
    }
    return slot_->value;
  }
  util::StatusOr<DataType> ResultType(const Schema&) const override {
    // Unbound parameters type as NULL; planning happens before binding
    // and must not reject a statement whose types are fine once bound.
    return slot_->bound ? slot_->value.type() : DataType::kNull;
  }
  std::string ToString() const override {
    return "?" + std::to_string(index_ + 1);
  }
  Kind kind() const override { return Kind::kParam; }
  const Value* literal() const override {
    return slot_->bound ? &slot_->value : nullptr;
  }

 private:
  size_t index_;
  std::shared_ptr<const ParamSlot> slot_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
    return ApplyUnaryScalar(op_, v);
  }

  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(DataType t, operand_->ResultType(schema));
    switch (op_) {
      case UnaryOp::kIsNull:
      case UnaryOp::kIsNotNull:
        return DataType::kBool;
      case UnaryOp::kNot:
        if (t != DataType::kBool && t != DataType::kNull) {
          return util::Status::InvalidArgument("NOT requires bool");
        }
        return DataType::kBool;
      case UnaryOp::kNeg:
        if (!IsNumeric(t) && t != DataType::kNull) {
          return util::Status::InvalidArgument("negation requires numeric");
        }
        return t;
    }
    return util::Status::Internal("unhandled unary op");
  }

  std::string ToString() const override {
    switch (op_) {
      case UnaryOp::kIsNull:
        return "(" + operand_->ToString() + " IS NULL)";
      case UnaryOp::kIsNotNull:
        return "(" + operand_->ToString() + " IS NOT NULL)";
      case UnaryOp::kNot:
        return "(NOT " + operand_->ToString() + ")";
      case UnaryOp::kNeg:
        return "(-" + operand_->ToString() + ")";
    }
    return "?";
  }

  Kind kind() const override { return Kind::kUnary; }
  ExprPtr child(size_t i) const override {
    return i == 0 ? operand_ : nullptr;
  }
  size_t num_children() const override { return 1; }
  UnaryOp unary_op() const override { return op_; }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  util::StatusOr<Value> Eval(const Row& row,
                             const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
    FF_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
    // Kleene AND/OR must not fail just because one side is NULL.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      return ApplyLogicalScalar(op_, a, b);
    }
    return ApplyBinaryScalar(op_, a, b);
  }

  util::StatusOr<DataType> ResultType(const Schema& schema) const override {
    FF_ASSIGN_OR_RETURN(DataType ta, lhs_->ResultType(schema));
    FF_ASSIGN_OR_RETURN(DataType tb, rhs_->ResultType(schema));
    auto type_ok = [&](auto pred) {
      return (pred(ta) || ta == DataType::kNull) &&
             (pred(tb) || tb == DataType::kNull);
    };
    switch (op_) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        bool comparable =
            ta == DataType::kNull || tb == DataType::kNull || ta == tb ||
            (IsNumeric(ta) && IsNumeric(tb));
        if (!comparable) {
          return util::Status::InvalidArgument(
              util::StrFormat("cannot compare %s with %s",
                              DataTypeName(ta), DataTypeName(tb)));
        }
        return DataType::kBool;
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod:
        if (!type_ok(IsNumeric)) {
          return util::Status::InvalidArgument("arithmetic requires numeric");
        }
        if (ta == DataType::kDouble || tb == DataType::kDouble) {
          return DataType::kDouble;
        }
        return DataType::kInt64;
      case BinaryOp::kDiv:
        if (!type_ok(IsNumeric)) {
          return util::Status::InvalidArgument("arithmetic requires numeric");
        }
        return DataType::kDouble;  // SQL-ish: '/' always returns double here
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        if (!type_ok([](DataType t) { return t == DataType::kBool; })) {
          return util::Status::InvalidArgument("AND/OR require bool");
        }
        return DataType::kBool;
      case BinaryOp::kLike:
        if (!type_ok([](DataType t) { return t == DataType::kString; })) {
          return util::Status::InvalidArgument("LIKE requires strings");
        }
        return DataType::kBool;
    }
    return util::Status::Internal("unhandled binary op");
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

  Kind kind() const override { return Kind::kBinary; }
  ExprPtr child(size_t i) const override {
    if (i == 0) return lhs_;
    if (i == 1) return rhs_;
    return nullptr;
  }
  size_t num_children() const override { return 2; }
  BinaryOp binary_op() const override { return op_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }
ExprPtr LitNull() { return Lit(Value::Null()); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr Unary(UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExpr>(op, std::move(operand));
}
ExprPtr Param(size_t index, std::shared_ptr<const ParamSlot> slot) {
  return std::make_shared<ParamExpr>(index, std::move(slot));
}
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return Unary(UnaryOp::kNot, std::move(a)); }
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Like(ExprPtr a, ExprPtr pattern) {
  return Binary(BinaryOp::kLike, std::move(a), std::move(pattern));
}
ExprPtr IsNull(ExprPtr a) { return Unary(UnaryOp::kIsNull, std::move(a)); }
ExprPtr IsNotNull(ExprPtr a) {
  return Unary(UnaryOp::kIsNotNull, std::move(a));
}

ExprPtr In(ExprPtr a, std::vector<ExprPtr> candidates) {
  if (candidates.empty()) return LitBool(false);
  ExprPtr out = Eq(a, std::move(candidates[0]));
  for (size_t i = 1; i < candidates.size(); ++i) {
    out = Or(std::move(out), Eq(a, std::move(candidates[i])));
  }
  return out;
}

ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi) {
  return And(Le(std::move(lo), a), Le(a, std::move(hi)));
}

// ----------------------------------------------------- plan-time helpers

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kBinary &&
      e->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(e->child(0), out);
    SplitConjuncts(e->child(1), out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndFold(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out == nullptr ? c : And(out, c);
  }
  return out;
}

void CollectColumns(const Expr& e, std::vector<std::string>* out) {
  if (e.kind() == Expr::Kind::kColumn) {
    out->push_back(*e.column());
    return;
  }
  for (size_t i = 0; i < e.num_children(); ++i) {
    CollectColumns(*e.child(i), out);
  }
}

ExprPtr RewriteColumns(
    const ExprPtr& e,
    const std::function<std::string(const std::string&)>& rename) {
  switch (e->kind()) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kParam:
      return e;  // params keep their shared slot through the rewrite
    case Expr::Kind::kColumn:
      return Col(rename(*e->column()));
    case Expr::Kind::kUnary:
      return Unary(e->unary_op(), RewriteColumns(e->child(0), rename));
    case Expr::Kind::kBinary:
      return Binary(e->binary_op(), RewriteColumns(e->child(0), rename),
                    RewriteColumns(e->child(1), rename));
  }
  return e;
}

std::optional<SimplePredicate> MatchSimplePredicate(const Expr& e) {
  if (e.kind() != Expr::Kind::kBinary) return std::nullopt;
  BinaryOp op = e.binary_op();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return std::nullopt;
  }
  const Expr* a = e.child(0).get();
  const Expr* b = e.child(1).get();
  // A bound parameter exposes its value through literal() and matches
  // like a literal (so prepared statements keep zone-map pruning); an
  // unbound one has no value yet and cannot match.
  auto literal_of = [](const Expr* x) -> const Value* {
    return x->kind() == Expr::Kind::kLiteral ||
                   x->kind() == Expr::Kind::kParam
               ? x->literal()
               : nullptr;
  };
  if (a->kind() == Expr::Kind::kColumn && literal_of(b) != nullptr) {
    return SimplePredicate{*a->column(), op, *literal_of(b)};
  }
  if (literal_of(a) != nullptr &&
      b->kind() == Expr::Kind::kColumn) {
    BinaryOp mirrored = op;
    switch (op) {
      case BinaryOp::kLt:
        mirrored = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        mirrored = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        mirrored = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        mirrored = BinaryOp::kLe;
        break;
      default:
        break;  // = and <> are symmetric
    }
    return SimplePredicate{*b->column(), mirrored, *a->literal()};
  }
  return std::nullopt;
}

// ------------------------------------------------- vectorized evaluation

namespace {

inline size_t SelRow(const uint32_t* sel, size_t k) {
  return sel != nullptr ? sel[k] : k;
}

/// Three-way compares matching Value::Compare (including its NaN
/// behavior: NaN compares "greater" because both == and < are false).
inline int Cmp3(int64_t a, int64_t b) {
  return a == b ? 0 : (a < b ? -1 : 1);
}
inline int Cmp3(double a, double b) {
  return a == b ? 0 : (a < b ? -1 : 1);
}

inline bool CompareOpHolds(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

inline bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

inline bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

/// Numeric element as double (caller checked type and null).
inline double NumAt(const ColumnVector& v, size_t k) {
  return v.type == DataType::kInt64 ? static_cast<double>(v.i64[k])
                                    : v.f64[k];
}

/// All-NULL result (type kNull: every consumer sees Value::Null()).
ColumnVector AllNullVector(size_t n) {
  ColumnVector out;
  out.type = DataType::kNull;
  out.length = n;
  if (n > 0) out.own_nulls.assign((n + 63) / 64, ~uint64_t{0});
  out.Seal();
  return out;
}

/// Exact per-element fallback through the scalar appliers.
util::StatusOr<ColumnVector> GenericBinaryVec(BinaryOp op,
                                              const ColumnVector& a,
                                              const ColumnVector& b,
                                              size_t n) {
  ColumnVector out;
  out.length = n;
  out.own_vals.reserve(n);
  bool logical = op == BinaryOp::kAnd || op == BinaryOp::kOr;
  for (size_t k = 0; k < n; ++k) {
    Value va = a.GetValue(k);
    Value vb = b.GetValue(k);
    util::StatusOr<Value> r = logical ? ApplyLogicalScalar(op, va, vb)
                                      : ApplyBinaryScalar(op, va, vb);
    if (!r.ok()) return r.status();
    out.own_vals.push_back(std::move(*r));
  }
  out.Seal();
  return out;
}

util::StatusOr<ColumnVector> GenericUnaryVec(UnaryOp op,
                                             const ColumnVector& v,
                                             size_t n) {
  ColumnVector out;
  out.length = n;
  out.own_vals.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    FF_ASSIGN_OR_RETURN(Value r, ApplyUnaryScalar(op, v.GetValue(k)));
    out.own_vals.push_back(std::move(r));
  }
  out.Seal();
  return out;
}

util::StatusOr<ColumnVector> EvalUnaryVec(UnaryOp op,
                                          const ColumnVector& v, size_t n) {
  switch (op) {
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull: {
      ColumnVector out;
      out.type = DataType::kBool;
      out.length = n;
      out.own_b8.resize(n);
      bool want = op == UnaryOp::kIsNull;
      for (size_t k = 0; k < n; ++k) {
        out.own_b8[k] = (v.IsNull(k) == want) ? 1 : 0;
      }
      out.Seal();
      return out;
    }
    case UnaryOp::kNot: {
      if (v.type == DataType::kNull && v.vals == nullptr) {
        return AllNullVector(n);
      }
      if (v.vals != nullptr || v.type != DataType::kBool) {
        return GenericUnaryVec(op, v, n);
      }
      ColumnVector out;
      out.type = DataType::kBool;
      out.length = n;
      out.own_b8.resize(n);
      for (size_t k = 0; k < n; ++k) {
        if (v.IsNull(k)) {
          out.own_b8[k] = 0;
          out.SetNull(k);
        } else {
          out.own_b8[k] = v.b8[k] ? 0 : 1;
        }
      }
      out.Seal();
      return out;
    }
    case UnaryOp::kNeg: {
      if (v.type == DataType::kNull && v.vals == nullptr) {
        return AllNullVector(n);
      }
      if (v.vals != nullptr ||
          (v.type != DataType::kInt64 && v.type != DataType::kDouble)) {
        return GenericUnaryVec(op, v, n);
      }
      ColumnVector out;
      out.type = v.type;
      out.length = n;
      if (v.type == DataType::kInt64) {
        out.own_i64.resize(n);
        for (size_t k = 0; k < n; ++k) {
          if (v.IsNull(k)) {
            out.own_i64[k] = 0;
            out.SetNull(k);
          } else {
            out.own_i64[k] = -v.i64[k];
          }
        }
      } else {
        out.own_f64.resize(n);
        for (size_t k = 0; k < n; ++k) {
          if (v.IsNull(k)) {
            out.own_f64[k] = 0.0;
            out.SetNull(k);
          } else {
            out.own_f64[k] = -v.f64[k];
          }
        }
      }
      out.Seal();
      return out;
    }
  }
  return util::Status::Internal("unhandled unary op");
}

util::StatusOr<ColumnVector> CompareVec(BinaryOp op, const ColumnVector& a,
                                        const ColumnVector& b, size_t n) {
  ColumnVector out;
  out.type = DataType::kBool;
  out.length = n;
  out.own_b8.assign(n, 0);
  auto emit = [&](size_t k, int c) {
    out.own_b8[k] = CompareOpHolds(op, c) ? 1 : 0;
  };

  bool a_num = IsNumeric(a.type), b_num = IsNumeric(b.type);
  if (a.type == DataType::kInt64 && b.type == DataType::kInt64) {
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k) || b.IsNull(k)) {
        out.SetNull(k);
      } else {
        emit(k, Cmp3(a.i64[k], b.i64[k]));
      }
    }
  } else if (a_num && b_num) {
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k) || b.IsNull(k)) {
        out.SetNull(k);
      } else {
        emit(k, Cmp3(NumAt(a, k), NumAt(b, k)));
      }
    }
  } else if (a.type == DataType::kString && b.type == DataType::kString) {
    if (b.is_const && (op == BinaryOp::kEq || op == BinaryOp::kNe)) {
      // Dictionary fast path: translate the literal once; a missing
      // entry means no element can be equal.
      std::optional<uint32_t> code =
          a.dict->Find(b.const_val.string_value());
      for (size_t k = 0; k < n; ++k) {
        if (a.IsNull(k)) {
          out.SetNull(k);
        } else {
          bool eq = code.has_value() && a.codes[k] == *code;
          out.own_b8[k] = (op == BinaryOp::kEq ? eq : !eq) ? 1 : 0;
        }
      }
    } else if ((op == BinaryOp::kEq || op == BinaryOp::kNe) &&
               a.dict != nullptr && a.dict == b.dict) {
      for (size_t k = 0; k < n; ++k) {
        if (a.IsNull(k) || b.IsNull(k)) {
          out.SetNull(k);
        } else {
          bool eq = a.codes[k] == b.codes[k];
          out.own_b8[k] = (op == BinaryOp::kEq ? eq : !eq) ? 1 : 0;
        }
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (a.IsNull(k) || b.IsNull(k)) {
          out.SetNull(k);
        } else {
          int c = a.dict->at(a.codes[k]).compare(b.dict->at(b.codes[k]));
          emit(k, c == 0 ? 0 : (c < 0 ? -1 : 1));
        }
      }
    }
  } else if (a.type == DataType::kBool && b.type == DataType::kBool) {
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k) || b.IsNull(k)) {
        out.SetNull(k);
      } else {
        emit(k, Cmp3(static_cast<int64_t>(a.b8[k] != 0),
                     static_cast<int64_t>(b.b8[k] != 0)));
      }
    }
  } else {
    // Incomparable runtime types: exact per-row errors and NULLs.
    return GenericBinaryVec(op, a, b, n);
  }
  out.Seal();
  return out;
}

util::StatusOr<ColumnVector> ArithmeticVec(BinaryOp op,
                                           const ColumnVector& a,
                                           const ColumnVector& b,
                                           size_t n) {
  if (!IsNumeric(a.type) || !IsNumeric(b.type)) {
    return GenericBinaryVec(op, a, b, n);
  }
  ColumnVector out;
  out.length = n;
  if (a.type == DataType::kInt64 && b.type == DataType::kInt64 &&
      op != BinaryOp::kDiv) {
    out.type = DataType::kInt64;
    out.own_i64.assign(n, 0);
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k) || b.IsNull(k)) {
        out.SetNull(k);
        continue;
      }
      int64_t x = a.i64[k], y = b.i64[k];
      switch (op) {
        case BinaryOp::kAdd:
          out.own_i64[k] = x + y;
          break;
        case BinaryOp::kSub:
          out.own_i64[k] = x - y;
          break;
        case BinaryOp::kMul:
          out.own_i64[k] = x * y;
          break;
        case BinaryOp::kMod:
          if (y == 0) {
            return util::Status::InvalidArgument("modulo by zero");
          }
          out.own_i64[k] = x % y;
          break;
        default:
          return util::Status::Internal("not arithmetic");
      }
    }
  } else {
    out.type = DataType::kDouble;
    out.own_f64.assign(n, 0.0);
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k) || b.IsNull(k)) {
        out.SetNull(k);
        continue;
      }
      double x = NumAt(a, k), y = NumAt(b, k);
      switch (op) {
        case BinaryOp::kAdd:
          out.own_f64[k] = x + y;
          break;
        case BinaryOp::kSub:
          out.own_f64[k] = x - y;
          break;
        case BinaryOp::kMul:
          out.own_f64[k] = x * y;
          break;
        case BinaryOp::kDiv:
          if (y == 0.0) {
            return util::Status::InvalidArgument("division by zero");
          }
          out.own_f64[k] = x / y;
          break;
        case BinaryOp::kMod:
          if (y == 0.0) {
            return util::Status::InvalidArgument("modulo by zero");
          }
          out.own_f64[k] = std::fmod(x, y);
          break;
        default:
          return util::Status::Internal("not arithmetic");
      }
    }
  }
  out.Seal();
  return out;
}

util::StatusOr<ColumnVector> LikeVec(const ColumnVector& a,
                                     const ColumnVector& b, size_t n) {
  if (a.type != DataType::kString || !b.is_const ||
      b.type != DataType::kString) {
    return GenericBinaryVec(BinaryOp::kLike, a, b, n);
  }
  const std::string& pattern = b.const_val.string_value();
  ColumnVector out;
  out.type = DataType::kBool;
  out.length = n;
  out.own_b8.assign(n, 0);
  if (a.dict != nullptr && a.dict->size() <= 4 * n + 16) {
    // Match each dictionary entry at most once.
    std::vector<int8_t> memo(a.dict->size(), -1);
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k)) {
        out.SetNull(k);
        continue;
      }
      uint32_t c = a.codes[k];
      if (memo[c] < 0) memo[c] = LikeMatch(a.dict->at(c), pattern) ? 1 : 0;
      out.own_b8[k] = memo[c];
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      if (a.IsNull(k)) {
        out.SetNull(k);
      } else {
        out.own_b8[k] = LikeMatch(a.dict->at(a.codes[k]), pattern) ? 1 : 0;
      }
    }
  }
  out.Seal();
  return out;
}

util::StatusOr<ColumnVector> EvalBinaryVec(BinaryOp op,
                                           const ColumnVector& a,
                                           const ColumnVector& b,
                                           size_t n) {
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    bool typed = a.vals == nullptr && b.vals == nullptr &&
                 (a.type == DataType::kBool || a.type == DataType::kNull) &&
                 (b.type == DataType::kBool || b.type == DataType::kNull);
    if (!typed) return GenericBinaryVec(op, a, b, n);
    ColumnVector out;
    out.type = DataType::kBool;
    out.length = n;
    out.own_b8.assign(n, 0);
    for (size_t k = 0; k < n; ++k) {
      int ta = (a.type == DataType::kNull || a.IsNull(k))
                   ? -1
                   : (a.b8[k] != 0 ? 1 : 0);
      int tb = (b.type == DataType::kNull || b.IsNull(k))
                   ? -1
                   : (b.b8[k] != 0 ? 1 : 0);
      if (op == BinaryOp::kAnd) {
        if (ta == 0 || tb == 0) {
          out.own_b8[k] = 0;
        } else if (ta == -1 || tb == -1) {
          out.SetNull(k);
        } else {
          out.own_b8[k] = 1;
        }
      } else {
        if (ta == 1 || tb == 1) {
          out.own_b8[k] = 1;
        } else if (ta == -1 || tb == -1) {
          out.SetNull(k);
        } else {
          out.own_b8[k] = 0;
        }
      }
    }
    out.Seal();
    return out;
  }
  if (a.vals != nullptr || b.vals != nullptr) {
    return GenericBinaryVec(op, a, b, n);
  }
  // An all-NULL operand nulls every element (NULL propagation precedes
  // every type/zero check in the scalar semantics).
  if (a.type == DataType::kNull || b.type == DataType::kNull) {
    return AllNullVector(n);
  }
  if (IsComparisonOp(op)) return CompareVec(op, a, b, n);
  if (IsArithmeticOp(op)) return ArithmeticVec(op, a, b, n);
  if (op == BinaryOp::kLike) return LikeVec(a, b, n);
  return util::Status::Internal("unhandled binary op");
}

}  // namespace

util::StatusOr<ColumnVector> EvalBatch(const Expr& e, const Batch& batch,
                                       const Schema& schema,
                                       const uint32_t* sel, size_t n) {
  if (!batch.columnar()) {
    const auto& rows = batch.RowData();
    ColumnVector out;
    out.length = n;
    out.own_vals.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      FF_ASSIGN_OR_RETURN(Value v, e.Eval(rows[SelRow(sel, k)], schema));
      out.own_vals.push_back(std::move(v));
    }
    out.Seal();
    return out;
  }
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      return ColumnVector::Constant(*e.literal(), n);
    case Expr::Kind::kParam: {
      const Value* bound = e.literal();
      if (bound == nullptr) {
        return util::Status::InvalidArgument("parameter " + e.ToString() +
                                             " is unbound");
      }
      return ColumnVector::Constant(*bound, n);
    }
    case Expr::Kind::kColumn: {
      FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(*e.column()));
      return ColumnVector::Gather(batch.cols[i], sel, n);
    }
    case Expr::Kind::kUnary: {
      FF_ASSIGN_OR_RETURN(ColumnVector v,
                          EvalBatch(*e.child(0), batch, schema, sel, n));
      return EvalUnaryVec(e.unary_op(), v, n);
    }
    case Expr::Kind::kBinary: {
      FF_ASSIGN_OR_RETURN(ColumnVector a,
                          EvalBatch(*e.child(0), batch, schema, sel, n));
      FF_ASSIGN_OR_RETURN(ColumnVector b,
                          EvalBatch(*e.child(1), batch, schema, sel, n));
      return EvalBinaryVec(e.binary_op(), a, b, n);
    }
  }
  return util::Status::Internal("unhandled expr kind");
}

}  // namespace statsdb
}  // namespace ff
