// Scalar expression trees evaluated over rows, with SQL three-valued
// logic (NULL-propagating comparisons, Kleene AND/OR). Shared by the
// programmatic query builder and the SQL front end.

#ifndef FF_STATSDB_EXPR_H_
#define FF_STATSDB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators.
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kLike,
};

/// Unary operators.
enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

const char* BinaryOpName(BinaryOp op);

/// Immutable expression node.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against a row. Columns are resolved by position using the
  /// index bound at construction (see Bind) or lazily by name.
  virtual util::StatusOr<Value> Eval(const Row& row,
                                     const Schema& schema) const = 0;

  /// Static result type (NULL literal -> kNull). Errors on type mismatch.
  virtual util::StatusOr<DataType> ResultType(
      const Schema& schema) const = 0;

  /// SQL-ish rendering, for error messages and plan display.
  virtual std::string ToString() const = 0;
};

/// Constructors.
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitBool(bool v);
ExprPtr LitNull();
ExprPtr Col(std::string name);
ExprPtr Unary(UnaryOp op, ExprPtr operand);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

/// Convenience comparison/arithmetic builders.
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Like(ExprPtr a, ExprPtr pattern);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
/// Desugared SQL conveniences: IN becomes a chain of OR'd equalities,
/// BETWEEN becomes lo <= a AND a <= hi.
ExprPtr In(ExprPtr a, std::vector<ExprPtr> candidates);
ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi);

/// SQL LIKE with % (any run) and _ (any char); case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_EXPR_H_
