// Scalar expression trees evaluated over rows, with SQL three-valued
// logic (NULL-propagating comparisons, Kleene AND/OR). Shared by the
// programmatic query builder and the SQL front end.

#ifndef FF_STATSDB_EXPR_H_
#define FF_STATSDB_EXPR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators.
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kLike,
};

/// Unary operators.
enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

const char* BinaryOpName(BinaryOp op);

/// Binding slot for one `?` placeholder of a prepared statement
/// (sql.h). The PreparedStatement owns the slots and writes them on
/// Execute(); every ParamExpr sharing the slot sees the bound value.
struct ParamSlot {
  Value value;
  bool bound = false;
};

/// Immutable expression node.
class Expr {
 public:
  enum class Kind { kLiteral, kColumn, kUnary, kBinary, kParam };

  virtual ~Expr() = default;

  /// Evaluates against a row. Columns are resolved by position using the
  /// index bound at construction (see Bind) or lazily by name.
  virtual util::StatusOr<Value> Eval(const Row& row,
                                     const Schema& schema) const = 0;

  /// Static result type (NULL literal -> kNull). Errors on type mismatch.
  virtual util::StatusOr<DataType> ResultType(
      const Schema& schema) const = 0;

  /// SQL-ish rendering, for error messages and plan display.
  virtual std::string ToString() const = 0;

  /// Structural introspection, used by the planner (predicate pushdown)
  /// and the vectorized evaluator to dispatch without RTTI.
  virtual Kind kind() const = 0;
  /// Literal value; non-null for kLiteral and for a *bound* kParam (so
  /// zone-map/index matching sees bound parameters as literals).
  virtual const Value* literal() const { return nullptr; }
  /// Column name; non-null only for kColumn.
  virtual const std::string* column() const { return nullptr; }
  /// Children: operand for kUnary, lhs (0) / rhs (1) for kBinary.
  virtual ExprPtr child(size_t) const { return nullptr; }
  virtual size_t num_children() const { return 0; }
  /// Operator; meaningful only for the matching kind.
  virtual BinaryOp binary_op() const { return BinaryOp::kEq; }
  virtual UnaryOp unary_op() const { return UnaryOp::kNot; }
};

/// Constructors.
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitBool(bool v);
ExprPtr LitNull();
ExprPtr Col(std::string name);
ExprPtr Unary(UnaryOp op, ExprPtr operand);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
/// Parameter placeholder `?N` (0-based `index`); evaluates to the value
/// currently bound into `slot`, errors when unbound.
ExprPtr Param(size_t index, std::shared_ptr<const ParamSlot> slot);

/// Convenience comparison/arithmetic builders.
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Like(ExprPtr a, ExprPtr pattern);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
/// Desugared SQL conveniences: IN becomes a chain of OR'd equalities,
/// BETWEEN becomes lo <= a AND a <= hi.
ExprPtr In(ExprPtr a, std::vector<ExprPtr> candidates);
ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi);

/// SQL LIKE with % (any run) and _ (any char); case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Flattens nested top-level ANDs into a conjunct list (appends to *out).
/// A non-AND expression yields itself.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Left-associative AND of `conjuncts` (null for an empty list).
ExprPtr AndFold(const std::vector<ExprPtr>& conjuncts);

/// Appends every column name referenced by `e` to *out (with duplicates).
void CollectColumns(const Expr& e, std::vector<std::string>* out);

/// Rebuilds `e` with every column reference renamed through `rename`.
ExprPtr RewriteColumns(const ExprPtr& e,
                       const std::function<std::string(const std::string&)>&
                           rename);

/// A predicate of the shape `column op literal` (or the mirrored
/// `literal op column`, normalized so the column is on the left).
/// Only comparison operators qualify.
struct SimplePredicate {
  std::string column;
  BinaryOp op;
  Value literal;
};
std::optional<SimplePredicate> MatchSimplePredicate(const Expr& e);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_EXPR_H_
