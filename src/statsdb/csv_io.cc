#include "statsdb/csv_io.h"

#include <sstream>

#include "util/csv.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {

std::string TableToCsv(const Table& table) {
  std::ostringstream os;
  std::vector<std::string> header;
  for (const auto& c : table.schema().columns()) header.push_back(c.name);
  util::CsvWriter writer(&os, header);
  for (const auto& row : table.rows()) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const auto& v : row) fields.push_back(v.ToString());
    writer.WriteRow(fields).ok();
  }
  return os.str();
}

namespace {

util::Status CheckHeader(const Schema& schema,
                         const std::vector<std::string>& header) {
  if (header.size() != schema.num_columns()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "CSV header width %zu != schema width %zu", header.size(),
        schema.num_columns()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!util::EqualsIgnoreCase(util::Trim(header[i]),
                                schema.column(i).name)) {
      return util::Status::InvalidArgument(
          "CSV header mismatch at column " + std::to_string(i) + ": '" +
          header[i] + "' vs '" + schema.column(i).name + "'");
    }
  }
  return util::Status::OK();
}

util::Status InsertCsvRows(Table* table, const util::CsvDocument& doc) {
  const Schema& schema = table->schema();
  for (const auto& fields : doc.rows) {
    if (fields.size() != schema.num_columns()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "CSV row width %zu != schema width %zu", fields.size(),
          schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      FF_ASSIGN_OR_RETURN(Value v,
                          Value::Parse(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    FF_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return util::Status::OK();
}

}  // namespace

util::StatusOr<Table*> TableFromCsv(Database* db, const std::string& name,
                                    const Schema& schema,
                                    const std::string& csv_text) {
  FF_ASSIGN_OR_RETURN(util::CsvDocument doc,
                      util::ParseCsv(csv_text, /*has_header=*/true));
  FF_RETURN_IF_ERROR(CheckHeader(schema, doc.header));
  FF_ASSIGN_OR_RETURN(Table * table, db->CreateTable(name, schema));
  util::Status st = InsertCsvRows(table, doc);
  if (!st.ok()) {
    db->DropTable(name).ok();
    return st;
  }
  return table;
}

util::Status AppendCsv(Table* table, const std::string& csv_text) {
  FF_ASSIGN_OR_RETURN(util::CsvDocument doc,
                      util::ParseCsv(csv_text, /*has_header=*/true));
  FF_RETURN_IF_ERROR(CheckHeader(table->schema(), doc.header));
  return InsertCsvRows(table, doc);
}

}  // namespace statsdb
}  // namespace ff
