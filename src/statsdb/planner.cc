#include "statsdb/planner.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "statsdb/database.h"
#include "statsdb/plan.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace {

/// Re-applies the not-pushable conjuncts above `node` (in evaluation
/// order: the list is folded left-associatively, deepest first).
PlanPtr WrapFilter(const std::vector<ExprPtr>& pending, PlanPtr node) {
  ExprPtr p = AndFold(pending);
  return p == nullptr ? node : MakeFilter(std::move(node), p);
}

bool TypesComparable(DataType a, DataType b) {
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  return a == b || (numeric(a) && numeric(b));
}

/// Sets `limit_hint` on the Sort feeding a Limit, descending through
/// Project nodes only (anything else — Distinct, Filter, Aggregate —
/// consumes or reshapes rows, so truncating the sort would be wrong).
PlanPtr AnnotateTopK(const PlanPtr& plan, size_t hint) {
  if (plan->kind() == PlanKind::kSort) {
    const auto& n = static_cast<const SortNode&>(*plan);
    size_t merged = n.limit_hint == 0 ? hint : std::min(n.limit_hint, hint);
    return std::make_shared<SortNode>(n.input, n.keys, merged);
  }
  if (plan->kind() == PlanKind::kProject) {
    const auto& n = static_cast<const ProjectNode&>(*plan);
    PlanPtr child = AnnotateTopK(n.input, hint);
    if (child == n.input) return plan;
    return std::make_shared<ProjectNode>(std::move(child), n.items);
  }
  return plan;
}

/// Pushes `pending` (conjuncts over `node`'s output, in evaluation
/// order) as deep as legality allows, returning the rewritten subtree.
PlanPtr Push(const PlanPtr& node, std::vector<ExprPtr> pending,
             const Database& db) {
  switch (node->kind()) {
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(*node);
      util::StatusOr<Schema> in_schema = InferSchema(*n.input, db);
      bool splittable = false;
      if (in_schema.ok()) {
        // Only dismantle a well-typed boolean filter; an ill-typed one
        // must stay intact so execution reports the reference error.
        auto t = n.predicate->ResultType(*in_schema);
        splittable =
            t.ok() && (*t == DataType::kBool || *t == DataType::kNull);
      }
      if (!splittable) {
        return WrapFilter(pending,
                          MakeFilter(Push(n.input, {}, db), n.predicate));
      }
      std::vector<ExprPtr> mine;
      SplitConjuncts(n.predicate, &mine);
      mine.insert(mine.end(), pending.begin(), pending.end());
      return Push(n.input, std::move(mine), db);
    }

    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(Push(n.input, std::move(pending), db),
                                        n.keys, n.limit_hint);
    }

    case PlanKind::kDistinct: {
      const auto& n = static_cast<const DistinctNode&>(*node);
      return std::make_shared<DistinctNode>(
          Push(n.input, std::move(pending), db));
    }

    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(*node);
      PlanPtr child = Push(n.input, {}, db);
      if (n.limit <= std::numeric_limits<size_t>::max() - n.offset) {
        child = AnnotateTopK(child, n.offset + n.limit);
      }
      return WrapFilter(pending, std::make_shared<LimitNode>(
                                     std::move(child), n.limit, n.offset));
    }

    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(*node);
      // A conjunct crosses the project iff every column it references
      // resolves (first case-insensitive match, as IndexOf would) to a
      // pass-through item, i.e. a bare input column.
      auto passthrough = [&](const std::string& name) -> const std::string* {
        for (const auto& item : n.items) {
          const std::string& out =
              item.alias.empty() ? item.expr->ToString() : item.alias;
          if (util::EqualsIgnoreCase(out, name)) {
            return item.expr->kind() == Expr::Kind::kColumn
                       ? item.expr->column()
                       : nullptr;
          }
        }
        return nullptr;
      };
      std::vector<ExprPtr> below, keep;
      for (const auto& c : pending) {
        std::vector<std::string> cols;
        CollectColumns(*c, &cols);
        bool ok = true;
        for (const auto& col : cols) {
          if (passthrough(col) == nullptr) {
            ok = false;
            break;
          }
        }
        if (ok) {
          below.push_back(RewriteColumns(
              c, [&](const std::string& name) { return *passthrough(name); }));
        } else {
          keep.push_back(c);
        }
      }
      return WrapFilter(keep, std::make_shared<ProjectNode>(
                                  Push(n.input, std::move(below), db),
                                  n.items));
    }

    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(*node);
      util::StatusOr<Schema> in_schema = InferSchema(*n.input, db);
      std::vector<size_t> key_cols;
      util::StatusOr<Schema> out_schema =
          in_schema.ok()
              ? AggOutputSchema(*in_schema, n.group_by, n.aggs, &key_cols)
              : in_schema.status();
      std::vector<ExprPtr> below, keep;
      for (const auto& c : pending) {
        bool ok = out_schema.ok();
        if (ok) {
          std::vector<std::string> cols;
          CollectColumns(*c, &cols);
          for (const auto& col : cols) {
            // Only group-by key columns exist below the aggregate (they
            // keep their input names, so no rewrite is needed).
            auto idx = out_schema->IndexOf(col);
            if (!idx.ok() || *idx >= n.group_by.size()) {
              ok = false;
              break;
            }
          }
        }
        (ok ? below : keep).push_back(c);
      }
      return WrapFilter(keep, std::make_shared<AggregateNode>(
                                  Push(n.input, std::move(below), db),
                                  n.group_by, n.aggs));
    }

    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(*node);
      util::StatusOr<Schema> ls = InferSchema(*n.left, db);
      util::StatusOr<Schema> rs = InferSchema(*n.right, db);
      if (!ls.ok() || !rs.ok()) {
        return WrapFilter(pending, std::make_shared<HashJoinNode>(
                                       Push(n.left, {}, db),
                                       Push(n.right, {}, db), n.left_col,
                                       n.right_col));
      }
      Schema out = JoinOutputSchema(*ls, *rs);
      size_t lwidth = ls->num_columns();
      std::vector<ExprPtr> to_left, to_right, keep;
      for (const auto& c : pending) {
        std::vector<std::string> cols;
        CollectColumns(*c, &cols);
        bool all_left = !cols.empty(), all_right = !cols.empty(), ok = true;
        for (const auto& col : cols) {
          auto idx = out.IndexOf(col);
          if (!idx.ok()) {
            ok = false;
            break;
          }
          (*idx < lwidth ? all_right : all_left) = false;
        }
        if (!ok || (!all_left && !all_right)) {
          keep.push_back(c);
        } else if (all_left) {
          to_left.push_back(c);
        } else {
          // Undo the "_r" clash renaming for the right side.
          to_right.push_back(
              RewriteColumns(c, [&](const std::string& name) {
                auto idx = out.IndexOf(name);
                return rs->column(*idx - lwidth).name;
              }));
        }
      }
      return WrapFilter(keep, std::make_shared<HashJoinNode>(
                                  Push(n.left, std::move(to_left), db),
                                  Push(n.right, std::move(to_right), db),
                                  n.left_col, n.right_col));
    }

    case PlanKind::kScan: {
      const auto& n = static_cast<const ScanNode&>(*node);
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(n.predicate, &conjuncts);
      conjuncts.insert(conjuncts.end(), pending.begin(), pending.end());
      if (conjuncts.empty()) return node;

      std::string index_column = n.index_column;
      Value index_value = n.index_value;
      auto table = db.table(n.table);
      if (index_column.empty() && table.ok()) {
        for (const auto& c : conjuncts) {
          auto sp = MatchSimplePredicate(*c);
          if (!sp.has_value() || sp->op != BinaryOp::kEq ||
              sp->literal.is_null()) {
            continue;
          }
          if (!(*table)->HasIndex(sp->column)) continue;
          // The residual check re-evaluates the conjunct, but only over
          // looked-up rows — an incomparable literal must error on every
          // row, so such predicates cannot take the index path.
          auto idx = (*table)->schema().IndexOf(sp->column);
          if (!idx.ok() ||
              !TypesComparable((*table)->schema().column(*idx).type,
                               sp->literal.type())) {
            continue;
          }
          index_column = sp->column;
          index_value = sp->literal;
          break;
        }
      }
      return std::make_shared<ScanNode>(n.table, AndFold(conjuncts),
                                        std::move(index_column),
                                        std::move(index_value));
    }

    case PlanKind::kMaterialized:
      // Pre-computed rows: nothing to push into.
      return WrapFilter(pending, node);
  }
  return node;
}

}  // namespace

PlanPtr OptimizePlan(const PlanPtr& plan, const Database& db) {
  if (plan == nullptr) return plan;
  return Push(plan, {}, db);
}

}  // namespace statsdb
}  // namespace ff
