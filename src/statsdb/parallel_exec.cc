#include "statsdb/parallel_exec.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "parallel/thread_pool.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/plan.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace {

using IterPtr = std::unique_ptr<BatchIterator>;

// ----------------------------------------------------------- chain shape

/// A chain is a pipeline the executor can split by chunk: Filter/Project
/// operators over exactly one Scan leaf. Chains have no cross-row state,
/// so running one per morsel and concatenating in morsel order is
/// byte-identical to one serial pass.
bool IsChain(const PlanNode& n) {
  switch (n.kind()) {
    case PlanKind::kScan:
      return true;
    case PlanKind::kFilter:
      return IsChain(*static_cast<const FilterNode&>(n).input);
    case PlanKind::kProject:
      return IsChain(*static_cast<const ProjectNode&>(n).input);
    default:
      return false;
  }
}

const ScanNode& ChainLeaf(const PlanNode& n) {
  switch (n.kind()) {
    case PlanKind::kFilter:
      return ChainLeaf(*static_cast<const FilterNode&>(n).input);
    case PlanKind::kProject:
      return ChainLeaf(*static_cast<const ProjectNode&>(n).input);
    default:
      return static_cast<const ScanNode&>(n);
  }
}

// -------------------------------------------------------- morsel fan-out

struct RewriteCtx {
  const Database& db;
  const ParallelConfig& cfg;
  parallel::ThreadPool* pool;
};

struct MorselPlan {
  ScanSetup setup;
  std::vector<std::vector<size_t>> morsels;  // consecutive chunk groups
};

/// Prepares the scan once on the coordinator and partitions the
/// surviving chunks into morsels. False = not worth parallelizing.
util::StatusOr<bool> PlanMorsels(const PlanNode& chain, RewriteCtx& ctx,
                                 MorselPlan* out) {
  FF_ASSIGN_OR_RETURN(out->setup, PrepareScan(ChainLeaf(chain), ctx.db));
  std::vector<size_t> chunks = SurveyScanChunks(out->setup);
  size_t min_chunks = std::max<size_t>(2, ctx.cfg.min_chunks);
  if (chunks.size() < min_chunks) return false;
  size_t per = std::max<size_t>(1, ctx.cfg.morsel_chunks);
  for (size_t i = 0; i < chunks.size(); i += per) {
    size_t end = std::min(i + per, chunks.size());
    out->morsels.emplace_back(chunks.begin() + i, chunks.begin() + end);
  }
  return out->morsels.size() > 1;
}

/// Runs fn(morsel, stat) for every morsel on the pool and returns the
/// error of the lowest-indexed failing morsel — which is exactly the
/// error the serial engine would hit first: chunk-level errors are
/// deterministic and position-independent, so the earliest failing chunk
/// lives in the lowest failing morsel, whose own first failure it is.
util::Status RunMorsels(
    RewriteCtx& ctx, const MorselPlan& mp, const char* op,
    const std::function<util::Status(size_t, MorselStat*)>& fn) {
  size_t m = mp.morsels.size();
  std::vector<util::Status> errs(m, util::Status::OK());
  std::vector<MorselStat> stats(m);
  parallel::TaskGroup group(ctx.pool);
  group.ParallelFor(m, [&](size_t i) {
    auto t0 = std::chrono::steady_clock::now();
    stats[i].morsel = i;
    stats[i].first_chunk = mp.morsels[i].front();
    stats[i].chunks = mp.morsels[i].size();
    errs[i] = fn(i, &stats[i]);
    stats[i].wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  });
  for (size_t i = 0; i < m; ++i) {
    if (!errs[i].ok()) return errs[i];
  }
  if (ctx.cfg.morsel_hook) ctx.cfg.morsel_hook(op, stats);
  return util::Status::OK();
}

util::Status DrainToRows(BatchIterator& it, size_t width,
                         std::vector<Row>* out) {
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* b, it.Next());
    if (b == nullptr) return util::Status::OK();
    for (size_t k = 0; k < b->ActiveRows(); ++k) {
      out->push_back(b->MaterializeRow(b->RowAt(k), width));
    }
  }
}

PlanPtr Materialize(Schema schema, std::vector<Row> rows) {
  return std::make_shared<MaterializedNode>(
      std::move(schema),
      std::make_shared<const std::vector<Row>>(std::move(rows)));
}

// ------------------------------------------------------- parallel units
//
// Each unit returns nullptr when the chain is too small to parallelize
// (the caller keeps the serial node).

/// scan -> filter -> project, full output consumed: drain each morsel
/// into rows, concatenate in morsel order.
util::StatusOr<PlanPtr> CollectChain(const PlanPtr& chain, RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*chain, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*chain, ctx.db));
  size_t width = schema.num_columns();

  std::vector<std::vector<Row>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "collect", [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it, BuildChainIterator(*chain, &mp.setup, mp.morsels[i]));
        FF_RETURN_IF_ERROR(DrainToRows(*it, width, &slots[i]));
        st->rows = slots[i].size();
        return util::Status::OK();
      }));

  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (auto& s : slots) {
    for (auto& r : s) rows.push_back(std::move(r));
  }
  return Materialize(std::move(schema), std::move(rows));
}

/// Aggregate over a chain: each morsel accumulates per-group partial
/// streams; the merge replays them through AggState in morsel order, so
/// order-sensitive folds (FP sums, first-wins min/max ties, P95 value
/// order) reproduce the serial engine bit for bit.
util::StatusOr<PlanPtr> AggregateChain(const AggregateNode& agg,
                                       RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*agg.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  FF_ASSIGN_OR_RETURN(Schema in_schema, InferSchema(*agg.input, ctx.db));
  std::vector<size_t> key_cols;
  FF_ASSIGN_OR_RETURN(
      Schema out_schema,
      AggOutputSchema(in_schema, agg.group_by, agg.aggs, &key_cols));

  // Per-morsel, per-group, per-aggregate partial: the non-null argument
  // values in arrival order (kCountStar needs only the count).
  struct PartialGroup {
    Row key;
    std::vector<size_t> star_counts;
    std::vector<std::vector<Value>> streams;
  };
  struct MorselOut {
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    std::vector<PartialGroup> groups;
  };
  std::vector<MorselOut> slots(mp.morsels.size());
  size_t num_aggs = agg.aggs.size();

  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "aggregate", [&](size_t mi, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it,
            BuildChainIterator(*agg.input, &mp.setup, mp.morsels[mi]));
        MorselOut& out = slots[mi];
        Row key;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          size_t n = in->ActiveRows();
          st->rows += n;
          const uint32_t* sel = in->has_sel ? in->sel.data() : nullptr;
          // Mirrors AggregateIterator: one vectorized evaluation per
          // aggregate per batch.
          std::vector<ColumnVector> argv(num_aggs);
          for (size_t a = 0; a < num_aggs; ++a) {
            if (agg.aggs[a].func == AggFunc::kCountStar) continue;
            FF_ASSIGN_OR_RETURN(
                argv[a],
                EvalBatch(*agg.aggs[a].arg, *in, in_schema, sel, n));
          }
          for (size_t k = 0; k < n; ++k) {
            size_t r = in->RowAt(k);
            key.clear();
            for (size_t i : key_cols) key.push_back(in->CellValue(r, i));
            auto [pos, inserted] = out.index.try_emplace(key,
                                                         out.groups.size());
            if (inserted) {
              out.groups.push_back(PartialGroup{
                  key, std::vector<size_t>(num_aggs, 0),
                  std::vector<std::vector<Value>>(num_aggs)});
            }
            PartialGroup& g = out.groups[pos->second];
            for (size_t a = 0; a < num_aggs; ++a) {
              if (agg.aggs[a].func == AggFunc::kCountStar) {
                ++g.star_counts[a];
                continue;
              }
              const ColumnVector& v = argv[a];
              // AggState::Add ignores NULL entirely, so NULLs can be
              // dropped from the stream without changing the replay.
              if (v.vals != nullptr) {
                if (!v.vals[k].is_null()) g.streams[a].push_back(v.vals[k]);
              } else if (v.IsNull(k)) {
                // skip
              } else if (v.type == DataType::kInt64) {
                g.streams[a].push_back(Value::Int64(v.i64[k]));
              } else if (v.type == DataType::kDouble) {
                g.streams[a].push_back(Value::Double(v.f64[k]));
              } else {
                g.streams[a].push_back(v.GetValue(k));
              }
            }
          }
        }
        return util::Status::OK();
      }));

  // Merge cascade: groups in first-seen morsel order, streams replayed
  // through the serial accumulator (plan.h's typed adds are documented
  // to match Add(Value) observably, so replay via Add is exact).
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Group> groups;
  for (const auto& morsel : slots) {
    for (const auto& pg : morsel.groups) {
      auto [pos, inserted] = group_index.try_emplace(pg.key, groups.size());
      if (inserted) groups.push_back(Group{pg.key, NewAggStates(agg.aggs)});
      Group& g = groups[pos->second];
      for (size_t a = 0; a < num_aggs; ++a) {
        if (agg.aggs[a].func == AggFunc::kCountStar) {
          g.states[a].count += pg.star_counts[a];
          continue;
        }
        for (const Value& v : pg.streams[a]) g.states[a].Add(v);
      }
    }
  }
  if (groups.empty() && key_cols.empty()) {
    groups.push_back(Group{{}, NewAggStates(agg.aggs)});
  }
  std::vector<Row> rows;
  rows.reserve(groups.size());
  for (const auto& g : groups) {
    rows.push_back(FinalizeAggRow(g.key, g.states, agg.aggs, out_schema));
  }
  return Materialize(std::move(out_schema), std::move(rows));
}

/// Distinct over a chain: per-morsel first-occurrence sets, merged in
/// morsel order (so the survivor of each duplicate is the serial one).
util::StatusOr<PlanPtr> DistinctChain(const DistinctNode& distinct,
                                      RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*distinct.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*distinct.input, ctx.db));
  size_t width = schema.num_columns();

  std::vector<std::vector<Row>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "distinct", [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it,
            BuildChainIterator(*distinct.input, &mp.setup, mp.morsels[i]));
        std::unordered_set<Row, RowHash, RowEq> seen;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          st->rows += in->ActiveRows();
          for (size_t k = 0; k < in->ActiveRows(); ++k) {
            Row row = in->MaterializeRow(in->RowAt(k), width);
            if (seen.insert(row).second) slots[i].push_back(std::move(row));
          }
        }
        return util::Status::OK();
      }));

  std::unordered_set<Row, RowHash, RowEq> seen;
  std::vector<Row> rows;
  for (auto& s : slots) {
    for (auto& row : s) {
      if (seen.insert(row).second) rows.push_back(std::move(row));
    }
  }
  return Materialize(std::move(schema), std::move(rows));
}

/// Top-k Sort over a chain: per-morsel k-heaps under (keys, seq) with
/// seq = (morsel << 32) | local arrival — the same total order as serial
/// arrival — then one k-heap over the retained candidates.
util::StatusOr<PlanPtr> TopKChain(const SortNode& sort, RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*sort.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*sort.input, ctx.db));
  size_t width = schema.num_columns();
  std::vector<size_t> cols;
  for (const auto& k : sort.keys) {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(k.column));
    cols.push_back(i);
  }

  struct Entry {
    Row row;
    uint64_t seq;
  };
  auto before = [&](const Entry& a, const Entry& b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      int c = a.row[cols[k]].Compare(b.row[cols[k]]);
      if (c != 0) return sort.keys[k].ascending ? c < 0 : c > 0;
    }
    return a.seq < b.seq;
  };
  using Heap =
      std::priority_queue<Entry, std::vector<Entry>, decltype(before)>;

  std::vector<std::vector<Entry>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "topk", [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it,
            BuildChainIterator(*sort.input, &mp.setup, mp.morsels[i]));
        Heap heap(before);
        uint64_t local = 0;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          st->rows += in->ActiveRows();
          for (size_t k = 0; k < in->ActiveRows(); ++k) {
            heap.push(Entry{in->MaterializeRow(in->RowAt(k), width),
                            (static_cast<uint64_t>(i) << 32) | local++});
            if (heap.size() > sort.limit_hint) heap.pop();
          }
        }
        slots[i].reserve(heap.size());
        while (!heap.empty()) {
          slots[i].push_back(std::move(const_cast<Entry&>(heap.top())));
          heap.pop();
        }
        return util::Status::OK();
      }));

  // Every row of the global top-k is in its morsel's top-k, so merging
  // the per-morsel survivors loses nothing.
  Heap heap(before);
  for (auto& s : slots) {
    for (auto& e : s) {
      heap.push(std::move(e));
      if (heap.size() > sort.limit_hint) heap.pop();
    }
  }
  std::vector<Row> rows(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    rows[i] = std::move(const_cast<Entry&>(heap.top()).row);
    heap.pop();
  }
  return Materialize(std::move(schema), std::move(rows));
}

// -------------------------------------------------------------- rewrite

/// Rewrites `node`, eagerly executing eligible pipelines and splicing
/// their results back as MaterializedNodes. `allow_exec` is false when
/// some ancestor may stop consuming early (a Limit with no intervening
/// pipeline breaker): a streaming chain must then stay lazy, while
/// breakers — which drain their input fully no matter what sits above —
/// may still parallelize. Execution order below a node matches the
/// serial engine's pull order (join build side before probe side), so
/// the first runtime error raised is the serial one.
util::StatusOr<PlanPtr> Rewrite(const PlanPtr& node, bool allow_exec,
                                RewriteCtx& ctx) {
  if (IsChain(*node)) {
    if (!allow_exec) return node;
    FF_ASSIGN_OR_RETURN(PlanPtr repl, CollectChain(node, ctx));
    return repl == nullptr ? node : repl;
  }
  switch (node->kind()) {
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(*node);
      if (IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, AggregateChain(n, ctx));
        return repl == nullptr ? node : repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<AggregateNode>(std::move(in), n.group_by,
                                          n.aggs));
    }
    case PlanKind::kDistinct: {
      const auto& n = static_cast<const DistinctNode&>(*node);
      if (IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, DistinctChain(n, ctx));
        return repl == nullptr ? node : repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<DistinctNode>(std::move(in)));
    }
    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(*node);
      if (n.limit_hint > 0 && IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, TopKChain(n, ctx));
        if (repl != nullptr) return repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<SortNode>(std::move(in), n.keys, n.limit_hint));
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, false, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<LimitNode>(std::move(in), n.limit, n.offset));
    }
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, allow_exec, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<FilterNode>(std::move(in), n.predicate));
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, allow_exec, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<ProjectNode>(std::move(in), n.items));
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(*node);
      // The serial probe drains the build (right) side in full before
      // pulling the first probe batch, so execute right before left.
      FF_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(n.right, true, ctx));
      FF_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(n.left, allow_exec, ctx));
      if (l == n.left && r == n.right) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<HashJoinNode>(std::move(l), std::move(r),
                                         n.left_col, n.right_col));
    }
    case PlanKind::kScan:          // bare scans are chains, handled above
    case PlanKind::kMaterialized:  // already computed
      return node;
  }
  return node;
}

util::StatusOr<ResultSet> DrainIterator(BatchIterator& it) {
  ResultSet rs{it.schema(), {}};
  size_t width = rs.schema.num_columns();
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* batch, it.Next());
    if (batch == nullptr) break;
    for (size_t k = 0; k < batch->ActiveRows(); ++k) {
      rs.rows.push_back(batch->MaterializeRow(batch->RowAt(k), width));
    }
  }
  return rs;
}

}  // namespace

ParallelConfig ParallelConfig::FromEnv() {
  ParallelConfig cfg;
  const char* env = std::getenv("FF_STATSDB_PARALLEL");
  if (env == nullptr || *env == '\0') return cfg;
  std::string v(env);
  if (v == "off" || v == "0" || v == "false") {
    cfg.enabled = false;
    return cfg;
  }
  size_t colon = v.find(':');
  std::string threads = colon == std::string::npos ? v : v.substr(0, colon);
  char* end = nullptr;
  unsigned long t = std::strtoul(threads.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && t > 0) {
    cfg.max_threads = static_cast<size_t>(t);
  }
  if (colon != std::string::npos) {
    std::string chunks = v.substr(colon + 1);
    unsigned long m = std::strtoul(chunks.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && m > 0) {
      cfg.morsel_chunks = static_cast<size_t>(m);
    }
  }
  return cfg;
}

util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db,
                                          const ParallelConfig& config) {
  if (plan == nullptr) {
    return util::Status::InvalidArgument("null plan");
  }
  size_t threads = config.max_threads == 0
                       ? parallel::ThreadPool::DefaultThreads()
                       : config.max_threads;
  if (!config.enabled || threads <= 1) {
    // Zero-overhead serial path; no pool is created.
    return ExecuteColumnar(*plan, db);
  }

  // Pre-validation: building the full serial iterator tree surfaces
  // every Init-time error (unknown table/column, ill-typed predicate,
  // index lookup failure) in the exact DFS order the serial engine
  // reports them — before any morsel runs.
  FF_ASSIGN_OR_RETURN(IterPtr prevalidated, BuildIterator(*plan, db));

  RewriteCtx ctx{db, config,
                 config.pool != nullptr ? config.pool
                                        : db.parallel_pool(threads)};
  FF_ASSIGN_OR_RETURN(PlanPtr rewritten, Rewrite(plan, true, ctx));
  if (rewritten == plan) {
    // Nothing was eligible: drain the prevalidated tree directly rather
    // than paying a second Init (notably a second index Lookup).
    return DrainIterator(*prevalidated);
  }
  if (rewritten->kind() == PlanKind::kMaterialized) {
    // The whole plan was executed in parallel; the merge result is
    // solely owned here, so adopt it instead of copying row by row.
    const auto& m = static_cast<const MaterializedNode&>(*rewritten);
    ResultSet rs{m.schema, {}};
    rs.rows = std::move(const_cast<std::vector<Row>&>(*m.rows));
    return rs;
  }
  return ExecuteColumnar(*rewritten, db);
}

util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db) {
  return ExecuteParallel(plan, db, db.parallel_config());
}

}  // namespace statsdb
}  // namespace ff
