#include "statsdb/parallel_exec.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/runtime_stats.h"
#include "parallel/thread_pool.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/plan.h"
#include "statsdb/planner.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace {

using IterPtr = std::unique_ptr<BatchIterator>;

// ----------------------------------------------------------- chain shape

/// A chain is a pipeline the executor can split by chunk: Filter/Project
/// operators over exactly one Scan leaf. Chains have no cross-row state,
/// so running one per morsel and concatenating in morsel order is
/// byte-identical to one serial pass.
bool IsChain(const PlanNode& n) {
  switch (n.kind()) {
    case PlanKind::kScan:
      return true;
    case PlanKind::kFilter:
      return IsChain(*static_cast<const FilterNode&>(n).input);
    case PlanKind::kProject:
      return IsChain(*static_cast<const ProjectNode&>(n).input);
    default:
      return false;
  }
}

const ScanNode& ChainLeaf(const PlanNode& n) {
  switch (n.kind()) {
    case PlanKind::kFilter:
      return ChainLeaf(*static_cast<const FilterNode&>(n).input);
    case PlanKind::kProject:
      return ChainLeaf(*static_cast<const ProjectNode&>(n).input);
    default:
      return static_cast<const ScanNode&>(n);
  }
}

// -------------------------------------------------------- morsel fan-out

struct RewriteCtx {
  const Database& db;
  const ParallelConfig& cfg;
  parallel::ThreadPool* pool;
  /// Non-null when the query runs profiled (ExecutePlanProfiled): each
  /// parallel unit deposits its "Parallel[<op>]" profile here, keyed by
  /// the MaterializedNode that replaced the pipeline, for the post-
  /// execution splice into the query's operator tree.
  std::unordered_map<const PlanNode*, std::unique_ptr<obs::OperatorProfile>>*
      unit_profiles = nullptr;
};

struct MorselPlan {
  ScanSetup setup;
  std::vector<std::vector<size_t>> morsels;  // consecutive chunk groups
};

/// Prepares the scan once on the coordinator and partitions the
/// surviving chunks into morsels. False = not worth parallelizing.
util::StatusOr<bool> PlanMorsels(const PlanNode& chain, RewriteCtx& ctx,
                                 MorselPlan* out) {
  FF_ASSIGN_OR_RETURN(out->setup, PrepareScan(ChainLeaf(chain), ctx.db));
  std::vector<size_t> chunks = SurveyScanChunks(out->setup);
  size_t min_chunks = std::max<size_t>(2, ctx.cfg.min_chunks);
  if (chunks.size() < min_chunks) return false;
  size_t per = std::max<size_t>(1, ctx.cfg.morsel_chunks);
  for (size_t i = 0; i < chunks.size(); i += per) {
    size_t end = std::min(i + per, chunks.size());
    out->morsels.emplace_back(chunks.begin() + i, chunks.begin() + end);
  }
  return out->morsels.size() > 1;
}

/// Per-unit profiling scaffolding, inert (all null/no-op) when the query
/// is not profiled. Owns the "Parallel[<op>]" operator node plus one
/// chain profile per morsel for BuildChainIterator to fill; Attach()
/// folds the morsel profiles into a single chain child (morsel order),
/// attributes the survey's pruning delta to the chain's scan leaf — the
/// chunk-restricted morsel scans never see the chunks the coordinator's
/// survey already dropped — and registers the unit under the
/// materialized node that replaced the pipeline.
class UnitProfile {
 public:
  UnitProfile(RewriteCtx& ctx, const char* op, const MorselPlan& mp)
      : ctx_(ctx) {
    if (ctx.unit_profiles == nullptr) return;
    unit_ = std::make_unique<obs::OperatorProfile>();
    unit_->name = util::StrFormat("Parallel[%s]", op);
    unit_->parallel = true;
    morsel_profs_.resize(mp.morsels.size());
    size_t surviving = 0;
    for (const auto& m : mp.morsels) surviving += m.size();
    pruned_ = mp.setup.store->num_chunks() - surviving;
    if constexpr (obs::kProfilingCompiledIn) t0_ = obs::RuntimeNowNs();
  }

  /// Chain profile for morsel `i`; null when not profiling.
  obs::OperatorProfile* morsel(size_t i) {
    return unit_ == nullptr ? nullptr : &morsel_profs_[i];
  }
  /// The unit node itself (for RunMorsels); null when not profiling.
  obs::OperatorProfile* unit() { return unit_.get(); }

  /// Brackets the deterministic merge cascade (accumulates merge_ns).
  void BeginMerge() {
    if constexpr (obs::kProfilingCompiledIn) {
      if (unit_ != nullptr) merge_t0_ = obs::RuntimeNowNs();
    }
  }
  void EndMerge() {
    if constexpr (obs::kProfilingCompiledIn) {
      if (unit_ != nullptr) {
        unit_->merge_ns +=
            static_cast<uint64_t>(obs::RuntimeNowNs() - merge_t0_);
      }
    }
  }

  void Attach(const PlanPtr& materialized, size_t rows_out) {
    if (unit_ == nullptr) return;
    obs::OperatorProfile* chain = unit_->AddChild();
    for (const obs::OperatorProfile& mp : morsel_profs_) {
      chain->MergeFrom(mp);
    }
    obs::OperatorProfile* leaf = chain;
    while (!leaf->children.empty()) leaf = leaf->children[0].get();
    if (leaf->is_scan) leaf->chunks_pruned += pruned_;
    unit_->rows_out = rows_out;
    if constexpr (obs::kProfilingCompiledIn) {
      unit_->wall_ns = static_cast<uint64_t>(obs::RuntimeNowNs() - t0_);
    }
    (*ctx_.unit_profiles)[materialized.get()] = std::move(unit_);
  }

 private:
  RewriteCtx& ctx_;
  std::unique_ptr<obs::OperatorProfile> unit_;
  std::vector<obs::OperatorProfile> morsel_profs_;
  uint64_t pruned_ = 0;
  int64_t t0_ = 0;
  int64_t merge_t0_ = 0;
};

/// Runs fn(morsel, stat) for every morsel on the pool and returns the
/// error of the lowest-indexed failing morsel — which is exactly the
/// error the serial engine would hit first: chunk-level errors are
/// deterministic and position-independent, so the earliest failing chunk
/// lives in the lowest failing morsel, whose own first failure it is.
util::Status RunMorsels(
    RewriteCtx& ctx, const MorselPlan& mp, const char* op,
    const std::function<util::Status(size_t, MorselStat*)>& fn,
    obs::OperatorProfile* up = nullptr) {
  size_t m = mp.morsels.size();
  std::vector<util::Status> errs(m, util::Status::OK());
  std::vector<MorselStat> stats(m);
  parallel::TaskGroup group(ctx.pool);
  group.ParallelFor(m, [&](size_t i) {
    auto t0 = std::chrono::steady_clock::now();
    stats[i].morsel = i;
    stats[i].first_chunk = mp.morsels[i].front();
    stats[i].chunks = mp.morsels[i].size();
    errs[i] = fn(i, &stats[i]);
    stats[i].wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  });
  for (size_t i = 0; i < m; ++i) {
    if (!errs[i].ok()) return errs[i];
  }
  if (up != nullptr) {
    up->morsels = m;
    for (const MorselStat& st : stats) {
      up->max_morsel_ns = std::max(
          up->max_morsel_ns, static_cast<uint64_t>(st.wall_ms * 1e6));
    }
  }
  if (ctx.cfg.morsel_hook) ctx.cfg.morsel_hook(op, stats);
  return util::Status::OK();
}

util::Status DrainToRows(BatchIterator& it, size_t width,
                         std::vector<Row>* out) {
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* b, it.Next());
    if (b == nullptr) return util::Status::OK();
    for (size_t k = 0; k < b->ActiveRows(); ++k) {
      out->push_back(b->MaterializeRow(b->RowAt(k), width));
    }
  }
}

PlanPtr Materialize(Schema schema, std::vector<Row> rows) {
  return std::make_shared<MaterializedNode>(
      std::move(schema),
      std::make_shared<const std::vector<Row>>(std::move(rows)));
}

// ------------------------------------------------------- parallel units
//
// Each unit returns nullptr when the chain is too small to parallelize
// (the caller keeps the serial node).

/// scan -> filter -> project, full output consumed: drain each morsel
/// into rows, concatenate in morsel order.
util::StatusOr<PlanPtr> CollectChain(const PlanPtr& chain, RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*chain, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  UnitProfile prof(ctx, "collect", mp);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*chain, ctx.db));
  size_t width = schema.num_columns();

  std::vector<std::vector<Row>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "collect",
      [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it, BuildChainIterator(*chain, &mp.setup, mp.morsels[i],
                                           prof.morsel(i)));
        FF_RETURN_IF_ERROR(DrainToRows(*it, width, &slots[i]));
        st->rows = slots[i].size();
        return util::Status::OK();
      },
      prof.unit()));

  prof.BeginMerge();
  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (auto& s : slots) {
    for (auto& r : s) rows.push_back(std::move(r));
  }
  prof.EndMerge();
  PlanPtr out = Materialize(std::move(schema), std::move(rows));
  prof.Attach(out, total);
  return out;
}

/// Aggregate over a chain: each morsel accumulates per-group partial
/// streams; the merge replays them through AggState in morsel order, so
/// order-sensitive folds (FP sums, first-wins min/max ties, P95 value
/// order) reproduce the serial engine bit for bit.
util::StatusOr<PlanPtr> AggregateChain(const AggregateNode& agg,
                                       RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*agg.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  UnitProfile prof(ctx, "aggregate", mp);
  FF_ASSIGN_OR_RETURN(Schema in_schema, InferSchema(*agg.input, ctx.db));
  std::vector<size_t> key_cols;
  FF_ASSIGN_OR_RETURN(
      Schema out_schema,
      AggOutputSchema(in_schema, agg.group_by, agg.aggs, &key_cols));

  // Per-morsel, per-group, per-aggregate partial: the non-null argument
  // values in arrival order (kCountStar needs only the count).
  struct PartialGroup {
    Row key;
    std::vector<size_t> star_counts;
    std::vector<std::vector<Value>> streams;
  };
  struct MorselOut {
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    std::vector<PartialGroup> groups;
  };
  std::vector<MorselOut> slots(mp.morsels.size());
  size_t num_aggs = agg.aggs.size();

  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "aggregate",
      [&](size_t mi, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it, BuildChainIterator(*agg.input, &mp.setup,
                                           mp.morsels[mi], prof.morsel(mi)));
        MorselOut& out = slots[mi];
        Row key;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          size_t n = in->ActiveRows();
          st->rows += n;
          const uint32_t* sel = in->has_sel ? in->sel.data() : nullptr;
          // Mirrors AggregateIterator: one vectorized evaluation per
          // aggregate per batch.
          std::vector<ColumnVector> argv(num_aggs);
          for (size_t a = 0; a < num_aggs; ++a) {
            if (agg.aggs[a].func == AggFunc::kCountStar) continue;
            FF_ASSIGN_OR_RETURN(
                argv[a],
                EvalBatch(*agg.aggs[a].arg, *in, in_schema, sel, n));
          }
          for (size_t k = 0; k < n; ++k) {
            size_t r = in->RowAt(k);
            key.clear();
            for (size_t i : key_cols) key.push_back(in->CellValue(r, i));
            auto [pos, inserted] = out.index.try_emplace(key,
                                                         out.groups.size());
            if (inserted) {
              out.groups.push_back(PartialGroup{
                  key, std::vector<size_t>(num_aggs, 0),
                  std::vector<std::vector<Value>>(num_aggs)});
            }
            PartialGroup& g = out.groups[pos->second];
            for (size_t a = 0; a < num_aggs; ++a) {
              if (agg.aggs[a].func == AggFunc::kCountStar) {
                ++g.star_counts[a];
                continue;
              }
              const ColumnVector& v = argv[a];
              // AggState::Add ignores NULL entirely, so NULLs can be
              // dropped from the stream without changing the replay.
              if (v.vals != nullptr) {
                if (!v.vals[k].is_null()) g.streams[a].push_back(v.vals[k]);
              } else if (v.IsNull(k)) {
                // skip
              } else if (v.type == DataType::kInt64) {
                g.streams[a].push_back(Value::Int64(v.i64[k]));
              } else if (v.type == DataType::kDouble) {
                g.streams[a].push_back(Value::Double(v.f64[k]));
              } else {
                g.streams[a].push_back(v.GetValue(k));
              }
            }
          }
        }
        return util::Status::OK();
      },
      prof.unit()));

  prof.BeginMerge();
  // Merge cascade: groups in first-seen morsel order, streams replayed
  // through the serial accumulator (plan.h's typed adds are documented
  // to match Add(Value) observably, so replay via Add is exact).
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Group> groups;
  for (const auto& morsel : slots) {
    for (const auto& pg : morsel.groups) {
      auto [pos, inserted] = group_index.try_emplace(pg.key, groups.size());
      if (inserted) groups.push_back(Group{pg.key, NewAggStates(agg.aggs)});
      Group& g = groups[pos->second];
      for (size_t a = 0; a < num_aggs; ++a) {
        if (agg.aggs[a].func == AggFunc::kCountStar) {
          g.states[a].count += pg.star_counts[a];
          continue;
        }
        for (const Value& v : pg.streams[a]) g.states[a].Add(v);
      }
    }
  }
  if (groups.empty() && key_cols.empty()) {
    groups.push_back(Group{{}, NewAggStates(agg.aggs)});
  }
  std::vector<Row> rows;
  rows.reserve(groups.size());
  for (const auto& g : groups) {
    rows.push_back(FinalizeAggRow(g.key, g.states, agg.aggs, out_schema));
  }
  prof.EndMerge();
  size_t total = rows.size();
  PlanPtr out = Materialize(std::move(out_schema), std::move(rows));
  prof.Attach(out, total);
  return out;
}

/// Distinct over a chain: per-morsel first-occurrence sets, merged in
/// morsel order (so the survivor of each duplicate is the serial one).
util::StatusOr<PlanPtr> DistinctChain(const DistinctNode& distinct,
                                      RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*distinct.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  UnitProfile prof(ctx, "distinct", mp);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*distinct.input, ctx.db));
  size_t width = schema.num_columns();

  std::vector<std::vector<Row>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "distinct",
      [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it, BuildChainIterator(*distinct.input, &mp.setup,
                                           mp.morsels[i], prof.morsel(i)));
        std::unordered_set<Row, RowHash, RowEq> seen;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          st->rows += in->ActiveRows();
          for (size_t k = 0; k < in->ActiveRows(); ++k) {
            Row row = in->MaterializeRow(in->RowAt(k), width);
            if (seen.insert(row).second) slots[i].push_back(std::move(row));
          }
        }
        return util::Status::OK();
      },
      prof.unit()));

  prof.BeginMerge();
  std::unordered_set<Row, RowHash, RowEq> seen;
  std::vector<Row> rows;
  for (auto& s : slots) {
    for (auto& row : s) {
      if (seen.insert(row).second) rows.push_back(std::move(row));
    }
  }
  prof.EndMerge();
  size_t total = rows.size();
  PlanPtr out = Materialize(std::move(schema), std::move(rows));
  prof.Attach(out, total);
  return out;
}

/// Top-k Sort over a chain: per-morsel k-heaps under (keys, seq) with
/// seq = (morsel << 32) | local arrival — the same total order as serial
/// arrival — then one k-heap over the retained candidates.
util::StatusOr<PlanPtr> TopKChain(const SortNode& sort, RewriteCtx& ctx) {
  MorselPlan mp;
  FF_ASSIGN_OR_RETURN(bool eligible, PlanMorsels(*sort.input, ctx, &mp));
  if (!eligible) return PlanPtr(nullptr);
  UnitProfile prof(ctx, "topk", mp);
  FF_ASSIGN_OR_RETURN(Schema schema, InferSchema(*sort.input, ctx.db));
  size_t width = schema.num_columns();
  std::vector<size_t> cols;
  for (const auto& k : sort.keys) {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(k.column));
    cols.push_back(i);
  }

  struct Entry {
    Row row;
    uint64_t seq;
  };
  auto before = [&](const Entry& a, const Entry& b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      int c = a.row[cols[k]].Compare(b.row[cols[k]]);
      if (c != 0) return sort.keys[k].ascending ? c < 0 : c > 0;
    }
    return a.seq < b.seq;
  };
  using Heap =
      std::priority_queue<Entry, std::vector<Entry>, decltype(before)>;

  std::vector<std::vector<Entry>> slots(mp.morsels.size());
  FF_RETURN_IF_ERROR(RunMorsels(
      ctx, mp, "topk",
      [&](size_t i, MorselStat* st) -> util::Status {
        FF_ASSIGN_OR_RETURN(
            IterPtr it, BuildChainIterator(*sort.input, &mp.setup,
                                           mp.morsels[i], prof.morsel(i)));
        Heap heap(before);
        uint64_t local = 0;
        for (;;) {
          FF_ASSIGN_OR_RETURN(const Batch* in, it->Next());
          if (in == nullptr) break;
          st->rows += in->ActiveRows();
          for (size_t k = 0; k < in->ActiveRows(); ++k) {
            heap.push(Entry{in->MaterializeRow(in->RowAt(k), width),
                            (static_cast<uint64_t>(i) << 32) | local++});
            if (heap.size() > sort.limit_hint) heap.pop();
          }
        }
        slots[i].reserve(heap.size());
        while (!heap.empty()) {
          slots[i].push_back(std::move(const_cast<Entry&>(heap.top())));
          heap.pop();
        }
        return util::Status::OK();
      },
      prof.unit()));

  // Every row of the global top-k is in its morsel's top-k, so merging
  // the per-morsel survivors loses nothing.
  prof.BeginMerge();
  Heap heap(before);
  for (auto& s : slots) {
    for (auto& e : s) {
      heap.push(std::move(e));
      if (heap.size() > sort.limit_hint) heap.pop();
    }
  }
  std::vector<Row> rows(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    rows[i] = std::move(const_cast<Entry&>(heap.top()).row);
    heap.pop();
  }
  prof.EndMerge();
  size_t total = rows.size();
  PlanPtr out = Materialize(std::move(schema), std::move(rows));
  prof.Attach(out, total);
  return out;
}

// -------------------------------------------------------------- rewrite

/// Rewrites `node`, eagerly executing eligible pipelines and splicing
/// their results back as MaterializedNodes. `allow_exec` is false when
/// some ancestor may stop consuming early (a Limit with no intervening
/// pipeline breaker): a streaming chain must then stay lazy, while
/// breakers — which drain their input fully no matter what sits above —
/// may still parallelize. Execution order below a node matches the
/// serial engine's pull order (join build side before probe side), so
/// the first runtime error raised is the serial one.
util::StatusOr<PlanPtr> Rewrite(const PlanPtr& node, bool allow_exec,
                                RewriteCtx& ctx) {
  if (IsChain(*node)) {
    if (!allow_exec) return node;
    FF_ASSIGN_OR_RETURN(PlanPtr repl, CollectChain(node, ctx));
    return repl == nullptr ? node : repl;
  }
  switch (node->kind()) {
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(*node);
      if (IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, AggregateChain(n, ctx));
        return repl == nullptr ? node : repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<AggregateNode>(std::move(in), n.group_by,
                                          n.aggs));
    }
    case PlanKind::kDistinct: {
      const auto& n = static_cast<const DistinctNode&>(*node);
      if (IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, DistinctChain(n, ctx));
        return repl == nullptr ? node : repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<DistinctNode>(std::move(in)));
    }
    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(*node);
      if (n.limit_hint > 0 && IsChain(*n.input)) {
        FF_ASSIGN_OR_RETURN(PlanPtr repl, TopKChain(n, ctx));
        if (repl != nullptr) return repl;
      }
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, true, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<SortNode>(std::move(in), n.keys, n.limit_hint));
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, false, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<LimitNode>(std::move(in), n.limit, n.offset));
    }
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, allow_exec, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<FilterNode>(std::move(in), n.predicate));
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(*node);
      FF_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(n.input, allow_exec, ctx));
      if (in == n.input) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<ProjectNode>(std::move(in), n.items));
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(*node);
      // The serial probe drains the build (right) side in full before
      // pulling the first probe batch, so execute right before left.
      FF_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(n.right, true, ctx));
      FF_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(n.left, allow_exec, ctx));
      if (l == n.left && r == n.right) return node;
      return std::static_pointer_cast<const PlanNode>(
          std::make_shared<HashJoinNode>(std::move(l), std::move(r),
                                         n.left_col, n.right_col));
    }
    case PlanKind::kScan:          // bare scans are chains, handled above
    case PlanKind::kMaterialized:  // already computed
      return node;
  }
  return node;
}

util::StatusOr<ResultSet> DrainIterator(BatchIterator& it) {
  ResultSet rs{it.schema(), {}};
  size_t width = rs.schema.num_columns();
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* batch, it.Next());
    if (batch == nullptr) break;
    for (size_t k = 0; k < batch->ActiveRows(); ++k) {
      rs.rows.push_back(batch->MaterializeRow(batch->RowAt(k), width));
    }
  }
  return rs;
}

/// Plan inputs in the order BuildIterator creates profile children:
/// [0] = input (joins: [0] = left, [1] = right).
std::vector<const PlanNode*> PlanInputs(const PlanNode& n) {
  switch (n.kind()) {
    case PlanKind::kFilter:
      return {static_cast<const FilterNode&>(n).input.get()};
    case PlanKind::kProject:
      return {static_cast<const ProjectNode&>(n).input.get()};
    case PlanKind::kAggregate:
      return {static_cast<const AggregateNode&>(n).input.get()};
    case PlanKind::kDistinct:
      return {static_cast<const DistinctNode&>(n).input.get()};
    case PlanKind::kSort:
      return {static_cast<const SortNode&>(n).input.get()};
    case PlanKind::kLimit:
      return {static_cast<const LimitNode&>(n).input.get()};
    case PlanKind::kHashJoin: {
      const auto& j = static_cast<const HashJoinNode&>(n);
      return {j.left.get(), j.right.get()};
    }
    case PlanKind::kScan:
    case PlanKind::kMaterialized:
      return {};
  }
  return {};
}

/// Lockstep walk of the rewritten plan and its serial profile tree,
/// grafting each parallel unit's "Parallel[<op>]" profile under the
/// MaterializedNode profile that now stands where the pipeline was —
/// so EXPLAIN ANALYZE shows both the cheap re-emission of the merged
/// rows and the fan-out that produced them.
void SpliceUnitProfiles(
    const PlanNode& plan, obs::OperatorProfile* prof,
    std::unordered_map<const PlanNode*, std::unique_ptr<obs::OperatorProfile>>*
        units) {
  if (prof == nullptr || units->empty()) return;
  if (plan.kind() == PlanKind::kMaterialized) {
    auto it = units->find(&plan);
    if (it != units->end()) {
      prof->children.push_back(std::move(it->second));
      units->erase(it);
    }
    return;
  }
  std::vector<const PlanNode*> inputs = PlanInputs(plan);
  for (size_t i = 0; i < inputs.size() && i < prof->children.size(); ++i) {
    SpliceUnitProfiles(*inputs[i], prof->children[i].get(), units);
  }
}

util::StatusOr<ResultSet> ExecuteParallelImpl(const PlanPtr& plan,
                                              const Database& db,
                                              const ParallelConfig& config,
                                              obs::QueryProfile* profile) {
  if (plan == nullptr) {
    return util::Status::InvalidArgument("null plan");
  }
  size_t threads = config.max_threads == 0
                       ? parallel::ThreadPool::DefaultThreads()
                       : config.max_threads;
  if (!config.enabled || threads <= 1) {
    // Zero-overhead serial path; no pool is created.
    if (profile != nullptr) return ExecuteColumnarProfiled(*plan, db, profile);
    return ExecuteColumnar(*plan, db);
  }

  // Pre-validation: building the full serial iterator tree surfaces
  // every Init-time error (unknown table/column, ill-typed predicate,
  // index lookup failure) in the exact DFS order the serial engine
  // reports them — before any morsel runs.
  FF_ASSIGN_OR_RETURN(IterPtr prevalidated, BuildIterator(*plan, db));

  std::unordered_map<const PlanNode*, std::unique_ptr<obs::OperatorProfile>>
      units;
  RewriteCtx ctx{db, config,
                 config.pool != nullptr ? config.pool
                                        : db.parallel_pool(threads),
                 profile != nullptr ? &units : nullptr};
  FF_ASSIGN_OR_RETURN(PlanPtr rewritten, Rewrite(plan, true, ctx));
  if (profile != nullptr) {
    profile->engine = units.empty() ? "serial" : "parallel";
  }
  if (rewritten == plan) {
    if (profile != nullptr) {
      // Nothing was eligible; re-run profiled (the second Init is the
      // price of observation — results are identical by contract).
      return ExecuteColumnarProfiled(*plan, db, profile);
    }
    // Drain the prevalidated tree directly rather than paying a second
    // Init (notably a second index Lookup).
    return DrainIterator(*prevalidated);
  }
  if (rewritten->kind() == PlanKind::kMaterialized) {
    // The whole plan was executed in parallel; the merge result is
    // solely owned here, so adopt it instead of copying row by row.
    const auto& m = static_cast<const MaterializedNode&>(*rewritten);
    if (profile != nullptr) {
      auto it = units.find(rewritten.get());
      if (it != units.end()) profile->root = std::move(it->second);
    }
    ResultSet rs{m.schema, {}};
    rs.rows = std::move(const_cast<std::vector<Row>&>(*m.rows));
    return rs;
  }
  if (profile != nullptr) {
    FF_ASSIGN_OR_RETURN(ResultSet rs,
                        ExecuteColumnarProfiled(*rewritten, db, profile));
    SpliceUnitProfiles(*rewritten, profile->root.get(), &units);
    return rs;
  }
  return ExecuteColumnar(*rewritten, db);
}

}  // namespace

ParallelConfig ParallelConfig::FromEnv() {
  ParallelConfig cfg;
  const char* env = std::getenv("FF_STATSDB_PARALLEL");
  if (env == nullptr || *env == '\0') return cfg;
  std::string v(env);
  if (v == "off" || v == "0" || v == "false") {
    cfg.enabled = false;
    return cfg;
  }
  size_t colon = v.find(':');
  std::string threads = colon == std::string::npos ? v : v.substr(0, colon);
  char* end = nullptr;
  unsigned long t = std::strtoul(threads.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && t > 0) {
    cfg.max_threads = static_cast<size_t>(t);
  }
  if (colon != std::string::npos) {
    std::string chunks = v.substr(colon + 1);
    unsigned long m = std::strtoul(chunks.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && m > 0) {
      cfg.morsel_chunks = static_cast<size_t>(m);
    }
  }
  return cfg;
}

util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db,
                                          const ParallelConfig& config) {
  return ExecuteParallelImpl(plan, db, config, nullptr);
}

util::StatusOr<ResultSet> ExecuteParallel(const PlanPtr& plan,
                                          const Database& db) {
  return ExecuteParallel(plan, db, db.parallel_config());
}

util::StatusOr<ResultSet> ExecuteOptimized(const PlanPtr& optimized,
                                           const Database& db) {
  if (optimized == nullptr) {
    return util::Status::InvalidArgument("null plan");
  }
  QueryCache& qc = db.cache();
  if (qc.config().mode != CacheConfig::Mode::kFull) {
    qc.RecordResultBypass();
    return ExecuteParallel(optimized, db);
  }
  QueryCache::ResultKey key = QueryCache::MakeResultKey(*optimized, db);
  if (!key.cacheable) {
    qc.RecordResultBypass();
    return ExecuteParallel(optimized, db);
  }
  if (std::shared_ptr<const ResultSet> hit = qc.GetResult(key)) {
    return *hit;  // copy out; the cached ResultSet stays immutable
  }
  util::StatusOr<ResultSet> result = ExecuteParallel(optimized, db);
  if (result.ok()) qc.PutResult(key, *result);
  return result;
}

util::StatusOr<ResultSet> ExecuteOptimizedProfiled(
    const PlanPtr& optimized, const Database& db,
    const ParallelConfig& config, obs::QueryProfile* profile) {
  if (profile == nullptr) {
    return util::Status::InvalidArgument("null profile");
  }
  if (optimized == nullptr) {
    return util::Status::InvalidArgument("null plan");
  }
  const int64_t t0 = obs::kProfilingCompiledIn ? obs::RuntimeNowNs() : 0;
  QueryCache& qc = db.cache();
  QueryCache::ResultKey key;
  if (qc.config().mode != CacheConfig::Mode::kFull) {
    qc.RecordResultBypass();
    profile->cache = "bypass";
  } else {
    key = QueryCache::MakeResultKey(*optimized, db);
    if (!key.cacheable) {
      qc.RecordResultBypass();
      profile->cache = "bypass";
    } else if (std::shared_ptr<const ResultSet> hit = qc.GetResult(key)) {
      // Nothing executed: no operator tree, and the engine label says
      // so. The result bytes are identical to a real run by contract.
      profile->cache = "hit";
      profile->engine = "cache";
      if (obs::kProfilingCompiledIn) {
        profile->total_ns = static_cast<uint64_t>(obs::RuntimeNowNs() - t0);
      }
      return *hit;
    } else {
      profile->cache = "miss";
    }
  }
  auto result = ExecuteParallelImpl(optimized, db, config, profile);
  if (obs::kProfilingCompiledIn) {
    // Whole-call wall time, covering parallel units executed during the
    // rewrite as well as the final serial drain.
    profile->total_ns = static_cast<uint64_t>(obs::RuntimeNowNs() - t0);
  }
  if (key.cacheable && result.ok()) qc.PutResult(key, *result);
  return result;
}

util::StatusOr<ResultSet> ExecutePlanProfiled(const PlanPtr& plan,
                                              const Database& db,
                                              const ParallelConfig& config,
                                              obs::QueryProfile* profile) {
  if (profile == nullptr) {
    return util::Status::InvalidArgument("null profile");
  }
  if (plan == nullptr) {
    return util::Status::InvalidArgument("null plan");
  }
  return ExecuteOptimizedProfiled(OptimizePlan(plan, db), db, config,
                                  profile);
}

util::StatusOr<ResultSet> ExecutePlanProfiled(const PlanPtr& plan,
                                              const Database& db,
                                              obs::QueryProfile* profile) {
  return ExecutePlanProfiled(plan, db, db.parallel_config(), profile);
}

}  // namespace statsdb
}  // namespace ff
